// Measured per-edge join selectivities.
//
// The distinct-count formula 1/max(ndv_a, ndv_b) is exact only for uniform
// fanouts; skewed FK distributions (Zipf fanouts) break it by orders of
// magnitude. A per-table estimator can instead precompute, for every schema
// join edge e = (A, B), the exact unfiltered selectivity
//     rho_e = |A join B| / (|A| * |B|)
// (one cheap two-table count at build time) and combine
//     |Q| ~= prod_t filtered_t * prod_e rho_e,
// which keeps the predicate-independence assumption but captures fanout skew
// exactly. Experiment R19 ablates this against the distinct-count formula.

#ifndef LCE_CE_EDGE_SELECTIVITY_H_
#define LCE_CE_EDGE_SELECTIVITY_H_

#include <functional>
#include <vector>

#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace ce {

/// rho_e for every edge of the schema, in schema().joins order.
std::vector<double> ComputeEdgeSelectivities(const storage::Database& db);

/// First-order correction for predicate–fanout correlation.
///
/// On clean PK–FK schemas the measured rho_e coincides with the
/// distinct-count formula (rho = 1/|PK table|), so neither captures the real
/// failure mode: predicates on the PK-side table select rows whose fanout
/// into the fact table is far from average (Zipf fanouts make this common).
/// This model samples PK-side rows per edge, stores their attribute values
/// and exact fanouts, and at query time rescales each edge by
///     E[fanout | PK row passes predicates] / E[fanout].
class FanoutCorrection {
 public:
  struct Options {
    int sample_rows = 1024;
    uint64_t seed = 53;
  };

  void Build(const storage::Database& db, const Options& options);

  /// Multiplicative correction over the query's join edges. 1.0 when no
  /// predicate touches a sampled PK side or the filtered sample is empty.
  double CorrectionFactor(const query::Query& q) const;

  bool built() const { return !edges_.empty() || built_empty_; }

 private:
  struct EdgeSample {
    int pk_table = -1;
    // columns_[c][i] = value of sampled row i in column c of pk_table.
    std::vector<std::vector<storage::Value>> columns;
    std::vector<double> fanout;  // exact FK matches per sampled row
    double mean_fanout = 0;
  };

  std::vector<EdgeSample> edges_;  // schema().joins order
  bool built_empty_ = false;
};

/// Combines per-table filtered sizes with measured edge selectivities.
/// Result clamped at one tuple.
double CombineWithEdgeSelectivities(
    const storage::DatabaseSchema& schema, const query::Query& q,
    const std::function<double(int)>& filtered_rows,
    const std::vector<double>& edge_rho);

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_EDGE_SELECTIVITY_H_
