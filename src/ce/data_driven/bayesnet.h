// Tree-shaped Bayesian network estimator (BayesCard-style).
//
// Structure: Chow–Liu maximum-spanning tree on pairwise mutual information
// over binned columns. Parameters: smoothed CPTs P(child | parent). Range
// queries are answered exactly on the tree by message passing with
// per-column coverage indicators.

#ifndef LCE_CE_DATA_DRIVEN_BAYESNET_H_
#define LCE_CE_DATA_DRIVEN_BAYESNET_H_

#include <optional>
#include <string>
#include <vector>

#include "src/ce/data_driven/binning.h"
#include "src/ce/edge_selectivity.h"
#include "src/ce/estimator.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

class BayesNetTableModel {
 public:
  struct Options {
    int max_bins = 48;
    uint64_t max_training_rows = 8000;
    /// Join combination: measured per-edge selectivities instead of the
    /// distinct-count formula (the R19 ablation knob).
    bool use_edge_selectivity = false;
    /// Rescales each join edge by the predicate-conditioned mean fanout
    /// (FanoutCorrection) — the fix for predicate-fanout correlation.
    bool use_fanout_correction = false;
  };

  void Fit(const storage::Table& table, const Options& options, Rng* rng);

  double Selectivity(
      const std::vector<std::optional<std::pair<storage::Value,
                                                storage::Value>>>& ranges)
      const;

  /// True when table-local column `c` is covered by the network (non-key);
  /// constrained unmodeled columns take the uniform fallback.
  bool ModelsColumn(int c) const {
    return c >= 0 && c < static_cast<int>(model_index_of_col_.size()) &&
           model_index_of_col_[c] >= 0;
  }

  uint64_t SizeBytes() const;

  /// Learned probabilities: root-prior entries plus CPT cells.
  uint64_t NumParameters() const;

 private:
  /// Upward message of `node`: for each of its bins, P(subtree indicators,
  /// node = bin | ...) excluding the link to its parent.
  std::vector<double> Message(
      int node,
      const std::vector<std::vector<double>>& indicators) const;

  Options options_;
  std::vector<ColumnBinner> binners_;
  std::vector<int> modeled_cols_;
  std::vector<int> model_index_of_col_;
  // Tree structure over modeled columns.
  int root_ = -1;
  std::vector<int> parent_;                    // -1 for root
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<double>> prior_;     // root: P(bin); others unused
  // cpt_[i][parent_bin][child_bin] = P(i = child_bin | parent = parent_bin)
  std::vector<std::vector<std::vector<double>>> cpt_;
};

class BayesNetEstimator : public Estimator {
 public:
  BayesNetEstimator() : BayesNetEstimator(BayesNetTableModel::Options{}) {}
  explicit BayesNetEstimator(BayesNetTableModel::Options options,
                             uint64_t seed = 173)
      : options_(options), seed_(seed) {}

  std::string Name() const override { return "BayesNet"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  uint64_t SizeBytes() const override;
  void DescribeModel(telemetry::ModelCard* card) const override;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  BayesNetTableModel::Options options_;
  uint64_t seed_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<BayesNetTableModel> models_;
  int64_t train_examples_ = -1;
  std::vector<double> table_rows_;
  std::vector<std::vector<uint64_t>> distinct_;
  std::vector<double> edge_rho_;
  FanoutCorrection fanout_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_DATA_DRIVEN_BAYESNET_H_
