// Column discretization shared by the data-driven estimators.
//
// Naru-style autoregressive models, SPNs, and Bayesian networks all model
// per-table joint distributions over discretized columns; ranges are mapped
// to bins with a uniformity correction inside partially covered bins.

#ifndef LCE_CE_DATA_DRIVEN_BINNING_H_
#define LCE_CE_DATA_DRIVEN_BINNING_H_

#include <vector>

#include "src/storage/table.h"

namespace lce {
namespace ce {

/// Equi-width binning of one column's value range.
class ColumnBinner {
 public:
  /// At most `max_bins` bins; collapses to one bin per distinct value when
  /// the domain is small.
  void Fit(const storage::ColumnStats& stats, int max_bins);

  int num_bins() const { return bins_; }

  int BinOf(storage::Value v) const;

  /// Bins overlapped by [lo, hi] with their coverage fraction (assuming
  /// uniformity within a bin). Empty when the range misses the domain.
  std::vector<std::pair<int, double>> Overlap(storage::Value lo,
                                              storage::Value hi) const;

 private:
  storage::Value min_ = 0;
  storage::Value max_ = 0;
  int bins_ = 1;
  double width_ = 1;
};

/// Fits binners for all columns of a table.
std::vector<ColumnBinner> FitBinners(const storage::Table& table,
                                     int max_bins);

/// Materializes the binned matrix [row][column] of a table.
std::vector<std::vector<int>> BinTable(const storage::Table& table,
                                       const std::vector<ColumnBinner>& binners);

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_DATA_DRIVEN_BINNING_H_
