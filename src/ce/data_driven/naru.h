// Naru-style deep autoregressive estimator (Yang et al., adapted).
//
// Per table, the joint distribution over discretized non-key columns is
// factorized autoregressively: P(x) = prod_i P(x_i | x_<i>). Each conditional
// is a small MLP over the one-hot prefix (the first column keeps its exact
// empirical marginal). Range queries are answered with progressive sampling,
// Naru's inference algorithm. Joins use the distinct-count combination (see
// join_formula.h); DESIGN.md documents this substitution for the full
// fanout-based join support of NeuroCard.

#ifndef LCE_CE_DATA_DRIVEN_NARU_H_
#define LCE_CE_DATA_DRIVEN_NARU_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ce/data_driven/binning.h"
#include "src/ce/edge_selectivity.h"
#include "src/ce/estimator.h"
#include "src/nn/mlp.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

/// Statistics of one progressive-sampling Selectivity call: the sampling
/// budget spent and how many paths died on zero range mass.
struct NaruSamplingStats {
  int num_samples = 0;
  int zero_weight_paths = 0;
  int sampled_columns = 0;  // modeled columns visited per path (last + 1)
};

/// Autoregressive model of one table.
class NaruTableModel {
 public:
  struct Options {
    int max_bins = 64;
    int hidden_dim = 32;
    int epochs = 6;
    int batch_size = 64;
    float learning_rate = 2e-3f;
    uint64_t max_training_rows = 6000;
    int num_samples = 64;  // progressive-sampling paths
    /// Join combination: measured per-edge selectivities instead of the
    /// distinct-count formula (the R19 ablation knob).
    bool use_edge_selectivity = false;
    /// Rescales each join edge by the predicate-conditioned mean fanout
    /// (FanoutCorrection) — the fix for predicate-fanout correlation.
    bool use_fanout_correction = false;
  };

  /// Fits on `table`; models all non-key columns in schema order.
  void Fit(const storage::Table& table, const Options& options, Rng* rng);

  /// P(lo_c <= col_c <= hi_c for all constrained c). `ranges` is indexed by
  /// table-local column; unconstrained columns are nullopt. Uses progressive
  /// sampling with options.num_samples paths. `stats`, when non-null, counts
  /// sampling-budget spend and zero-mass paths without drawing any extra
  /// randomness, so `rng` advances exactly as in the plain call.
  double Selectivity(
      const std::vector<std::optional<std::pair<storage::Value,
                                                storage::Value>>>& ranges,
      Rng* rng, NaruSamplingStats* stats = nullptr) const;

  /// True when table-local column `c` is modeled (non-key). Constraints on
  /// unmodeled columns are silently ignored by Selectivity.
  bool ModelsColumn(int c) const {
    return std::find(modeled_cols_.begin(), modeled_cols_.end(), c) !=
           modeled_cols_.end();
  }

  uint64_t SizeBytes() const;

  /// Learned scalars: marginal entries plus conditional-MLP weights.
  uint64_t NumParameters() const;

 private:
  /// Conditional distribution of modeled column `i` given the sampled prefix
  /// (bin ids of modeled columns 0..i-1). Returns a probability vector.
  std::vector<float> Conditional(int i, const std::vector<int>& prefix) const;

  Options options_;
  std::vector<int> modeled_cols_;       // table-local indexes of modeled cols
  std::vector<ColumnBinner> binners_;   // per table column (all columns)
  std::vector<double> marginal0_;       // empirical marginal of first modeled
  std::vector<std::unique_ptr<nn::Mlp>> conditionals_;  // for i >= 1
  std::vector<int> prefix_offset_;      // one-hot offset of modeled col i
  int prefix_dim_total_ = 0;
};

class NaruEstimator : public Estimator {
 public:
  NaruEstimator() : NaruEstimator(NaruTableModel::Options{}) {}
  explicit NaruEstimator(NaruTableModel::Options options, uint64_t seed = 97)
      : options_(options), seed_(seed), rng_(seed) {}

  std::string Name() const override { return "Naru"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  uint64_t SizeBytes() const override;
  void DescribeModel(telemetry::ModelCard* card) const override;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  NaruTableModel::Options options_;
  uint64_t seed_;
  Rng rng_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<NaruTableModel> models_;
  int64_t train_examples_ = -1;
  std::vector<double> table_rows_;
  std::vector<std::vector<uint64_t>> distinct_;
  std::vector<double> edge_rho_;
  FanoutCorrection fanout_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_DATA_DRIVEN_NARU_H_
