#include "src/ce/data_driven/naru.h"

#include <algorithm>
#include <cmath>

#include "src/ce/edge_selectivity.h"
#include "src/ce/join_formula.h"
#include "src/nn/adam.h"
#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/train_log.h"

namespace lce {
namespace ce {

namespace {

// Softmax over a logits row in place.
void SoftmaxInPlace(std::vector<float>* logits) {
  float max_logit = *std::max_element(logits->begin(), logits->end());
  float sum = 0;
  for (float& v : *logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (float& v : *logits) v /= sum;
}

}  // namespace

void NaruTableModel::Fit(const storage::Table& table, const Options& options,
                         Rng* rng) {
  telemetry::ScopedPhase fit_phase("naru/table_fit");
  options_ = options;
  modeled_cols_.clear();
  conditionals_.clear();
  prefix_offset_.clear();
  marginal0_.clear();
  binners_ = FitBinners(table, options.max_bins);
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.schema().columns[c].is_key) modeled_cols_.push_back(c);
  }
  if (modeled_cols_.empty()) return;

  // Training sample of rows (uniform without replacement via partial F-Y).
  uint64_t n = table.num_rows();
  uint64_t take = std::min(options.max_training_rows, n);
  std::vector<uint64_t> ids(n);
  for (uint64_t i = 0; i < n; ++i) ids[i] = i;
  for (uint64_t i = 0; i < take; ++i) {
    uint64_t j = i + static_cast<uint64_t>(
                         rng->UniformInt(0, static_cast<int64_t>(n - i) - 1));
    std::swap(ids[i], ids[j]);
  }

  // Binned training matrix restricted to modeled columns.
  std::vector<std::vector<int>> rows(take,
                                     std::vector<int>(modeled_cols_.size()));
  for (size_t m = 0; m < modeled_cols_.size(); ++m) {
    const auto& col = table.column(modeled_cols_[m]);
    for (uint64_t i = 0; i < take; ++i) {
      rows[i][m] = binners_[modeled_cols_[m]].BinOf(col[ids[i]]);
    }
  }

  // Prefix layout.
  prefix_offset_.resize(modeled_cols_.size());
  prefix_dim_total_ = 0;
  for (size_t m = 0; m < modeled_cols_.size(); ++m) {
    prefix_offset_[m] = prefix_dim_total_;
    prefix_dim_total_ += binners_[modeled_cols_[m]].num_bins();
  }

  // Exact empirical marginal of the first modeled column.
  int bins0 = binners_[modeled_cols_[0]].num_bins();
  marginal0_.assign(bins0, 1e-6);  // smoothing
  for (const auto& row : rows) marginal0_[row[0]] += 1.0;
  double total = 0;
  for (double v : marginal0_) total += v;
  for (double& v : marginal0_) v /= total;

  // One conditional MLP per later column, trained with softmax CE.
  for (size_t m = 1; m < modeled_cols_.size(); ++m) {
    int in_dim = prefix_offset_[m];
    int out_dim = binners_[modeled_cols_[m]].num_bins();
    conditionals_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int>{in_dim, options.hidden_dim, out_dim},
        nn::Activation::kRelu, nn::Activation::kIdentity, rng));
  }
  std::vector<int> order(take);
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  telemetry::ScopedPhase train_phase("naru/conditional_train");
  const bool train_log = telemetry::TrainLogEnabled();
  for (size_t m = 1; m < modeled_cols_.size(); ++m) {
    nn::Mlp* net = conditionals_[m - 1].get();
    nn::Adam adam(options.learning_rate);
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      int64_t epoch_start = train_log ? telemetry::MonotonicNanos() : 0;
      double epoch_ce = 0;  // summed -log p[label]; log-only, read-only
      rng->Shuffle(&order);
      for (size_t start = 0; start < order.size();
           start += options.batch_size) {
        size_t end = std::min(order.size(),
                              start + static_cast<size_t>(options.batch_size));
        int b = static_cast<int>(end - start);
        // Batch of one-hot prefixes.
        nn::Matrix x(b, prefix_offset_[m]);
        std::vector<int> labels(b);
        for (int i = 0; i < b; ++i) {
          const auto& row = rows[order[start + i]];
          for (size_t p = 0; p < m; ++p) {
            x.At(i, prefix_offset_[p] + row[p]) = 1.0f;
          }
          labels[i] = row[m];
        }
        nn::Matrix logits = net->Forward(x);
        // Softmax CE gradient: p - onehot, averaged over the batch.
        nn::Matrix grad(b, logits.cols());
        for (int i = 0; i < b; ++i) {
          std::vector<float> p = logits.RowVector(i);
          SoftmaxInPlace(&p);
          if (train_log) {
            // Cross-entropy from the softmax already computed for the
            // gradient — pure read, cannot perturb training.
            epoch_ce -= std::log(
                std::max(static_cast<double>(p[labels[i]]), 1e-30));
          }
          for (int c = 0; c < logits.cols(); ++c) {
            grad.At(i, c) = (p[c] - (c == labels[i] ? 1.0f : 0.0f)) /
                            static_cast<float>(b);
          }
        }
        net->Backward(grad);
        adam.Step(net->Params());
      }
      if (train_log) {
        telemetry::TrainingEvent ev;
        ev.family = "naru";
        ev.event = "epoch";
        ev.index = epoch;
        ev.loss = order.empty()
                      ? 0.0
                      : epoch_ce / static_cast<double>(order.size());
        ev.learning_rate = options.learning_rate;
        ev.examples = static_cast<int64_t>(order.size());
        ev.wall_seconds =
            static_cast<double>(telemetry::MonotonicNanos() - epoch_start) /
            1e9;
        ev.extra.emplace_back("column", static_cast<double>(m));
        telemetry::RecordTrainingEvent(std::move(ev));
      }
    }
  }
}

std::vector<float> NaruTableModel::Conditional(
    int i, const std::vector<int>& prefix) const {
  if (i == 0) {
    return std::vector<float>(marginal0_.begin(), marginal0_.end());
  }
  nn::Matrix x(1, prefix_offset_[i]);
  for (int p = 0; p < i; ++p) x.At(0, prefix_offset_[p] + prefix[p]) = 1.0f;
  // NOTE: Mlp caches for backward; inference-only use is safe.
  std::vector<float> logits =
      const_cast<nn::Mlp*>(conditionals_[i - 1].get())->Forward(x).RowVector(0);
  SoftmaxInPlace(&logits);
  return logits;
}

double NaruTableModel::Selectivity(
    const std::vector<std::optional<std::pair<storage::Value, storage::Value>>>&
        ranges,
    Rng* rng, NaruSamplingStats* stats) const {
  if (modeled_cols_.empty()) return 1.0;
  // Progressive sampling only needs columns up to the last constrained one.
  int last = -1;
  for (size_t m = 0; m < modeled_cols_.size(); ++m) {
    if (ranges[modeled_cols_[m]].has_value()) last = static_cast<int>(m);
  }
  if (last < 0) return 1.0;
  if (stats != nullptr) {
    stats->num_samples += options_.num_samples;
    stats->sampled_columns += last + 1;
  }

  double total_weight = 0;
  for (int s = 0; s < options_.num_samples; ++s) {
    std::vector<int> prefix;
    double weight = 1.0;
    for (int m = 0; m <= last; ++m) {
      std::vector<float> dist = Conditional(m, prefix);
      const auto& range = ranges[modeled_cols_[m]];
      if (range.has_value()) {
        auto overlap =
            binners_[modeled_cols_[m]].Overlap(range->first, range->second);
        double mass = 0;
        std::vector<double> restricted(dist.size(), 0.0);
        for (auto [bin, frac] : overlap) {
          double p = static_cast<double>(dist[bin]) * frac;
          restricted[bin] = p;
          mass += p;
        }
        if (mass <= 0) {
          weight = 0;
          if (stats != nullptr) ++stats->zero_weight_paths;
          break;
        }
        weight *= mass;
        prefix.push_back(static_cast<int>(rng->Weighted(restricted)));
      } else {
        std::vector<double> d(dist.begin(), dist.end());
        prefix.push_back(static_cast<int>(rng->Weighted(d)));
      }
    }
    total_weight += weight;
  }
  return total_weight / options_.num_samples;
}

uint64_t NaruTableModel::SizeBytes() const {
  uint64_t bytes = marginal0_.size() * sizeof(double);
  for (const auto& net : conditionals_) {
    bytes += net->NumParams() * sizeof(float);
  }
  return bytes;
}

uint64_t NaruTableModel::NumParameters() const {
  uint64_t n = marginal0_.size();
  for (const auto& net : conditionals_) n += net->NumParams();
  return n;
}

Status NaruEstimator::Build(const storage::Database& db,
                            const std::vector<query::LabeledQuery>& training) {
  (void)training;  // data-driven: learns from the data alone
  return UpdateWithData(db);
}

Status NaruEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  rng_ = Rng(seed_);
  models_.clear();
  models_.resize(db.num_tables());
  table_rows_.assign(db.num_tables(), 0);
  distinct_.assign(db.num_tables(), {});
  train_examples_ = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table not finalized");
    }
    Rng fork = rng_.Fork();
    models_[t].Fit(table, options_, &fork);
    train_examples_ += static_cast<int64_t>(
        std::min(options_.max_training_rows, table.num_rows()));
    table_rows_[t] = static_cast<double>(table.num_rows());
    distinct_[t].resize(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      distinct_[t][c] = std::max<uint64_t>(1, table.stats(c).distinct);
    }
  }
  if (options_.use_edge_selectivity) {
    edge_rho_ = ComputeEdgeSelectivities(db);
  }
  if (options_.use_fanout_correction) {
    fanout_.Build(db, FanoutCorrection::Options{});
  }
  return Status::OK();
}

double NaruEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double NaruEstimator::EstimateWithDiagnostics(const query::Query& q,
                                              ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double NaruEstimator::EstimateImpl(const query::Query& q, ExplainRecord* rec) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // Progressive sampling is dominated by autoregressive forward passes.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("forward");
  NaruSamplingStats total;
  auto filtered_rows = [&](int t) {
    std::vector<std::optional<std::pair<storage::Value, storage::Value>>>
        ranges(schema_->tables[t].columns.size());
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table == t) ranges[p.col.column] = {{p.lo, p.hi}};
    }
    double sel = models_[t].Selectivity(ranges, &rng_,
                                        rec != nullptr ? &total : nullptr);
    if (rec != nullptr) {
      rec->AddCounter("table_sel.t" + std::to_string(t), sel);
    }
    return table_rows_[t] * sel;
  };
  if (rec != nullptr) {
    for (const query::Predicate& p : q.predicates) {
      if (models_[p.col.table].ModelsColumn(p.col.column)) {
        // Progressive sampling scores the conjunction jointly; no
        // per-predicate attribution.
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "progressive_sampling"});
      } else {
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "ignored_unmodeled"});
        rec->AddFallback("naru.unmodeled_column_ignored",
                         "table=" + std::to_string(p.col.table) + " column=" +
                             std::to_string(p.col.column));
      }
    }
  }
  double correction =
      options_.use_fanout_correction ? fanout_.CorrectionFactor(q) : 1.0;
  double base =
      options_.use_edge_selectivity
          ? CombineWithEdgeSelectivities(*schema_, q, filtered_rows, edge_rho_)
          : CombineWithJoinFormula(*schema_, q, filtered_rows, [&](int t, int c) {
              return static_cast<double>(distinct_[t][c]);
            });
  if (rec != nullptr) {
    rec->AddCounter("sampling_budget", static_cast<double>(total.num_samples));
    rec->AddCounter("zero_weight_paths",
                    static_cast<double>(total.zero_weight_paths));
    rec->AddCounter("sampled_columns",
                    static_cast<double>(total.sampled_columns));
  }
  return std::max(1.0, base * correction);
}

uint64_t NaruEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& m : models_) bytes += m.SizeBytes();
  return bytes;
}

void NaruEstimator::DescribeModel(telemetry::ModelCard* card) const {
  card->model = Name();
  card->family = "naru";
  card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  card->train_examples = train_examples_;
  card->epochs = options_.epochs;
  uint64_t params = 0;
  for (const auto& m : models_) params += m.NumParameters();
  card->parameter_count = static_cast<int64_t>(params);
  card->extra.emplace_back("tables", static_cast<double>(models_.size()));
}

}  // namespace ce
}  // namespace lce
