// Sum-product network estimator (DeepDB-style, Hilprecht et al.).
//
// Structure learning follows the LearnSPN recipe: product nodes split columns
// into (approximately) independent groups via a correlation test; sum nodes
// split rows with 2-means clustering; leaves hold smoothed per-column bin
// histograms. Range probabilities are evaluated bottom-up. Joins use the
// distinct-count combination (DESIGN.md documents the substitution for
// DeepDB's fanout-annotated join SPNs).

#ifndef LCE_CE_DATA_DRIVEN_SPN_H_
#define LCE_CE_DATA_DRIVEN_SPN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ce/data_driven/binning.h"
#include "src/ce/edge_selectivity.h"
#include "src/ce/estimator.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

/// Evaluation statistics of one SpnTableModel::Selectivity call: node visits
/// by kind plus the uniform fallbacks taken for constrained key columns.
struct SpnEvalStats {
  uint64_t leaf_visits = 0;
  uint64_t product_visits = 0;
  uint64_t sum_visits = 0;
  int uniform_fallbacks = 0;
  double uniform_factor = 1.0;
};

class SpnTableModel {
 public:
  struct Options {
    int max_bins = 64;
    uint64_t max_training_rows = 8000;
    size_t min_rows_split = 400;
    double corr_threshold = 0.3;
    int kmeans_iters = 8;
    /// Join combination: measured per-edge selectivities instead of the
    /// distinct-count formula (the R19 ablation knob).
    bool use_edge_selectivity = false;
    /// Rescales each join edge by the predicate-conditioned mean fanout
    /// (FanoutCorrection) — the fix for predicate-fanout correlation.
    bool use_fanout_correction = false;
  };

  void Fit(const storage::Table& table, const Options& options, Rng* rng);

  /// P(conjunction of ranges) over modeled (non-key) columns; unmodeled
  /// constrained columns contribute a uniform factor. `stats`, when non-null,
  /// receives node-visit counts and fallback totals; collecting them never
  /// changes the returned probability.
  double Selectivity(
      const std::vector<std::optional<std::pair<storage::Value,
                                                storage::Value>>>& ranges,
      SpnEvalStats* stats = nullptr) const;

  /// True when table-local column `c` is covered by the SPN (non-key);
  /// constrained unmodeled columns take the uniform fallback.
  bool ModelsColumn(int c) const {
    return c >= 0 && c < static_cast<int>(model_index_of_col_.size()) &&
           model_index_of_col_[c] >= 0;
  }

  uint64_t SizeBytes() const;
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    enum class Kind { kSum, kProduct, kLeaf } kind = Kind::kLeaf;
    std::vector<int> children;
    std::vector<double> weights;    // sum nodes, parallel to children
    int column = -1;                // leaf: table-local column index
    std::vector<double> histogram;  // leaf: smoothed bin probabilities
  };

  int BuildNode(const std::vector<std::vector<int>>& data,
                const std::vector<uint32_t>& rows,
                const std::vector<int>& cols, Rng* rng);
  int MakeLeaf(const std::vector<std::vector<int>>& data,
               const std::vector<uint32_t>& rows, int col);
  double EvalNode(int node,
                  const std::vector<std::vector<std::pair<int, double>>*>&
                      overlaps_by_col,
                  SpnEvalStats* stats) const;

  Options options_;
  std::vector<ColumnBinner> binners_;
  std::vector<int> modeled_cols_;
  std::vector<int> model_index_of_col_;  // table col -> modeled index or -1
  std::vector<Node> nodes_;
  int root_ = -1;
};

class SpnEstimator : public Estimator {
 public:
  SpnEstimator() : SpnEstimator(SpnTableModel::Options{}) {}
  explicit SpnEstimator(SpnTableModel::Options options, uint64_t seed = 131)
      : options_(options), seed_(seed) {}

  std::string Name() const override { return "DeepDB-SPN"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  uint64_t SizeBytes() const override;
  void DescribeModel(telemetry::ModelCard* card) const override;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  SpnTableModel::Options options_;
  uint64_t seed_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<SpnTableModel> models_;
  int64_t train_examples_ = -1;
  std::vector<double> table_rows_;
  std::vector<std::vector<uint64_t>> distinct_;
  std::vector<double> edge_rho_;
  FanoutCorrection fanout_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_DATA_DRIVEN_SPN_H_
