#include "src/ce/data_driven/bayesnet.h"

#include <algorithm>
#include <cmath>

#include "src/ce/edge_selectivity.h"
#include "src/ce/join_formula.h"
#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/train_log.h"

namespace lce {
namespace ce {

namespace {

// Mutual information (nats) of two binned columns from joint counts.
double MutualInformation(const std::vector<int>& x, const std::vector<int>& y,
                         int bx, int by) {
  LCE_CHECK(x.size() == y.size() && !x.empty());
  std::vector<double> joint(static_cast<size_t>(bx) * by, 0.0);
  std::vector<double> px(bx, 0.0), py(by, 0.0);
  double n = static_cast<double>(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    joint[static_cast<size_t>(x[i]) * by + y[i]] += 1.0;
    px[x[i]] += 1.0;
    py[y[i]] += 1.0;
  }
  double mi = 0;
  for (int a = 0; a < bx; ++a) {
    for (int b = 0; b < by; ++b) {
      double pxy = joint[static_cast<size_t>(a) * by + b] / n;
      if (pxy <= 0) continue;
      mi += pxy * std::log(pxy / ((px[a] / n) * (py[b] / n)));
    }
  }
  return std::max(0.0, mi);
}

}  // namespace

void BayesNetTableModel::Fit(const storage::Table& table,
                             const Options& options, Rng* rng) {
  options_ = options;
  binners_ = FitBinners(table, options.max_bins);
  modeled_cols_.clear();
  model_index_of_col_.assign(table.num_columns(), -1);
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.schema().columns[c].is_key) {
      model_index_of_col_[c] = static_cast<int>(modeled_cols_.size());
      modeled_cols_.push_back(c);
    }
  }
  size_t d = modeled_cols_.size();
  parent_.assign(d, -1);
  children_.assign(d, {});
  prior_.assign(d, {});
  cpt_.assign(d, {});
  root_ = d > 0 ? 0 : -1;
  if (d == 0) return;

  // Sampled binned matrix.
  uint64_t n = table.num_rows();
  uint64_t take = std::min(options.max_training_rows, n);
  std::vector<std::vector<int>> cols(d, std::vector<int>(take));
  const bool train_log = telemetry::TrainLogEnabled();
  auto emit_phase = [&](const char* name, int64_t index, int64_t start_ns,
                        double extra_value, const char* extra_key) {
    telemetry::TrainingEvent ev;
    ev.family = "bayesnet";
    ev.event = "phase";
    ev.phase = name;
    ev.index = index;
    ev.examples = static_cast<int64_t>(take);
    ev.wall_seconds =
        static_cast<double>(telemetry::MonotonicNanos() - start_ns) / 1e9;
    if (extra_key != nullptr) ev.extra.emplace_back(extra_key, extra_value);
    telemetry::RecordTrainingEvent(std::move(ev));
  };
  {
    telemetry::ScopedPhase phase("bayesnet/sample_bin");
    int64_t phase_start = train_log ? telemetry::MonotonicNanos() : 0;
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) ids[i] = i;
    for (uint64_t i = 0; i < take; ++i) {
      uint64_t j = i + static_cast<uint64_t>(
                           rng->UniformInt(0, static_cast<int64_t>(n - i) - 1));
      std::swap(ids[i], ids[j]);
    }
    for (size_t m = 0; m < d; ++m) {
      const auto& col = table.column(modeled_cols_[m]);
      for (uint64_t i = 0; i < take; ++i) {
        cols[m][i] = binners_[modeled_cols_[m]].BinOf(col[ids[i]]);
      }
    }
    if (train_log) {
      emit_phase("sample_bin", 0, phase_start, static_cast<double>(d),
                 "columns");
    }
  }
  auto bins_of = [&](size_t m) {
    return binners_[modeled_cols_[m]].num_bins();
  };

  // Chow–Liu: Prim's maximum spanning tree on pairwise MI.
  if (d > 1) {
    telemetry::ScopedPhase phase("bayesnet/structure");
    int64_t phase_start = train_log ? telemetry::MonotonicNanos() : 0;
    std::vector<bool> in_tree(d, false);
    std::vector<double> best_mi(d, -1.0);
    std::vector<int> best_parent(d, -1);
    in_tree[0] = true;
    for (size_t m = 1; m < d; ++m) {
      best_mi[m] = MutualInformation(cols[0], cols[m], bins_of(0), bins_of(m));
      best_parent[m] = 0;
    }
    for (size_t added = 1; added < d; ++added) {
      int pick = -1;
      double best = -1;
      for (size_t m = 0; m < d; ++m) {
        if (!in_tree[m] && best_mi[m] > best) {
          best = best_mi[m];
          pick = static_cast<int>(m);
        }
      }
      LCE_CHECK(pick >= 0);
      in_tree[pick] = true;
      parent_[pick] = best_parent[pick];
      children_[best_parent[pick]].push_back(pick);
      for (size_t m = 0; m < d; ++m) {
        if (in_tree[m]) continue;
        double mi = MutualInformation(cols[pick], cols[m], bins_of(pick),
                                      bins_of(m));
        if (mi > best_mi[m]) {
          best_mi[m] = mi;
          best_parent[m] = pick;
        }
      }
    }
    if (train_log) {
      emit_phase("structure", 1, phase_start, static_cast<double>(d - 1),
                 "edges");
    }
  }

  // Parameters: root prior and per-edge CPTs (Laplace-smoothed).
  telemetry::ScopedPhase phase("bayesnet/cpt");
  int64_t cpt_start = train_log ? telemetry::MonotonicNanos() : 0;
  prior_[root_].assign(bins_of(root_), 1e-6);
  for (uint64_t i = 0; i < take; ++i) prior_[root_][cols[root_][i]] += 1.0;
  double total = 0;
  for (double v : prior_[root_]) total += v;
  for (double& v : prior_[root_]) v /= total;

  for (size_t m = 0; m < d; ++m) {
    if (parent_[m] < 0) continue;
    int pb = bins_of(parent_[m]);
    int cb = bins_of(m);
    cpt_[m].assign(pb, std::vector<double>(cb, 1e-6));
    for (uint64_t i = 0; i < take; ++i) {
      cpt_[m][cols[parent_[m]][i]][cols[m][i]] += 1.0;
    }
    for (int p = 0; p < pb; ++p) {
      double row_total = 0;
      for (double v : cpt_[m][p]) row_total += v;
      for (double& v : cpt_[m][p]) v /= row_total;
    }
  }
  if (train_log) {
    double cells = 0;
    for (const auto& t : cpt_) {
      for (const auto& row : t) cells += static_cast<double>(row.size());
    }
    emit_phase("cpt", 2, cpt_start, cells, "cpt_cells");
  }
}

std::vector<double> BayesNetTableModel::Message(
    int node, const std::vector<std::vector<double>>& indicators) const {
  int bins = binners_[modeled_cols_[node]].num_bins();
  std::vector<double> msg(bins);
  for (int b = 0; b < bins; ++b) msg[b] = indicators[node][b];
  for (int child : children_[node]) {
    std::vector<double> child_msg = Message(child, indicators);
    for (int b = 0; b < bins; ++b) {
      double s = 0;
      for (size_t cb = 0; cb < child_msg.size(); ++cb) {
        s += cpt_[child][b][cb] * child_msg[cb];
      }
      msg[b] *= s;
    }
  }
  return msg;
}

double BayesNetTableModel::Selectivity(
    const std::vector<std::optional<std::pair<storage::Value, storage::Value>>>&
        ranges) const {
  if (root_ < 0) return 1.0;
  double uniform_factor = 1.0;
  size_t d = modeled_cols_.size();
  std::vector<std::vector<double>> indicators(d);
  for (size_t m = 0; m < d; ++m) {
    indicators[m].assign(binners_[modeled_cols_[m]].num_bins(), 1.0);
  }
  for (size_t c = 0; c < ranges.size(); ++c) {
    if (!ranges[c].has_value()) continue;
    int m = model_index_of_col_[c];
    if (m < 0) {
      auto ov = binners_[c].Overlap(ranges[c]->first, ranges[c]->second);
      double frac = 0;
      for (auto [bin, f] : ov) frac += f;
      uniform_factor *= std::min(1.0, frac / binners_[c].num_bins());
      continue;
    }
    std::fill(indicators[m].begin(), indicators[m].end(), 0.0);
    for (auto [bin, f] :
         binners_[c].Overlap(ranges[c]->first, ranges[c]->second)) {
      indicators[m][bin] = f;
    }
  }
  std::vector<double> root_msg = Message(root_, indicators);
  double p = 0;
  for (size_t b = 0; b < root_msg.size(); ++b) {
    p += prior_[root_][b] * root_msg[b];
  }
  return std::clamp(p * uniform_factor, 0.0, 1.0);
}

uint64_t BayesNetTableModel::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& p : prior_) bytes += p.size() * sizeof(double);
  for (const auto& table : cpt_) {
    for (const auto& row : table) bytes += row.size() * sizeof(double);
  }
  return bytes;
}

uint64_t BayesNetTableModel::NumParameters() const {
  uint64_t n = 0;
  for (const auto& p : prior_) n += p.size();
  for (const auto& table : cpt_) {
    for (const auto& row : table) n += row.size();
  }
  return n;
}

Status BayesNetEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status BayesNetEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  Rng rng(seed_);
  models_.clear();
  models_.resize(db.num_tables());
  table_rows_.assign(db.num_tables(), 0);
  distinct_.assign(db.num_tables(), {});
  train_examples_ = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table not finalized");
    }
    Rng fork = rng.Fork();
    models_[t].Fit(table, options_, &fork);
    train_examples_ += static_cast<int64_t>(
        std::min(options_.max_training_rows, table.num_rows()));
    table_rows_[t] = static_cast<double>(table.num_rows());
    distinct_[t].resize(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      distinct_[t][c] = std::max<uint64_t>(1, table.stats(c).distinct);
    }
  }
  if (options_.use_edge_selectivity) {
    edge_rho_ = ComputeEdgeSelectivities(db);
  }
  if (options_.use_fanout_correction) {
    fanout_.Build(db, FanoutCorrection::Options{});
  }
  return Status::OK();
}

double BayesNetEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double BayesNetEstimator::EstimateWithDiagnostics(const query::Query& q,
                                                  ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double BayesNetEstimator::EstimateImpl(const query::Query& q,
                                       ExplainRecord* rec) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // Message passing over per-table networks plus the join formula.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  auto filtered_rows = [&](int t) {
    std::vector<std::optional<std::pair<storage::Value, storage::Value>>>
        ranges(schema_->tables[t].columns.size());
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table == t) ranges[p.col.column] = {{p.lo, p.hi}};
    }
    double sel = models_[t].Selectivity(ranges);
    if (rec != nullptr) {
      rec->AddCounter("table_sel.t" + std::to_string(t), sel);
    }
    return table_rows_[t] * sel;
  };
  int modeled = 0, unmodeled = 0;
  if (rec != nullptr) {
    for (const query::Predicate& p : q.predicates) {
      if (models_[p.col.table].ModelsColumn(p.col.column)) {
        ++modeled;
        // Message passing scores the conjunction jointly; no per-predicate
        // attribution.
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "bayesnet"});
      } else {
        ++unmodeled;
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "uniform_fallback"});
        rec->AddFallback("bayesnet.unmodeled_column_uniform",
                         "table=" + std::to_string(p.col.table) + " column=" +
                             std::to_string(p.col.column));
      }
    }
  }
  double correction =
      options_.use_fanout_correction ? fanout_.CorrectionFactor(q) : 1.0;
  double base =
      options_.use_edge_selectivity
          ? CombineWithEdgeSelectivities(*schema_, q, filtered_rows, edge_rho_)
          : CombineWithJoinFormula(*schema_, q, filtered_rows, [&](int t, int c) {
              return static_cast<double>(distinct_[t][c]);
            });
  if (rec != nullptr) {
    rec->AddCounter("modeled_predicates", static_cast<double>(modeled));
    rec->AddCounter("unmodeled_predicates", static_cast<double>(unmodeled));
    rec->AddCounter("fanout_correction", correction);
  }
  return std::max(1.0, base * correction);
}

uint64_t BayesNetEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& m : models_) bytes += m.SizeBytes();
  return bytes;
}

void BayesNetEstimator::DescribeModel(telemetry::ModelCard* card) const {
  card->model = Name();
  card->family = "bayesnet";
  card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  card->train_examples = train_examples_;
  uint64_t params = 0;
  for (const auto& m : models_) params += m.NumParameters();
  card->parameter_count = static_cast<int64_t>(params);
  card->extra.emplace_back("tables", static_cast<double>(models_.size()));
}

}  // namespace ce
}  // namespace lce
