#include "src/ce/data_driven/spn.h"

#include <algorithm>
#include <cmath>

#include "src/ce/edge_selectivity.h"
#include "src/ce/join_formula.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/train_log.h"

namespace lce {
namespace ce {

void SpnTableModel::Fit(const storage::Table& table, const Options& options,
                        Rng* rng) {
  options_ = options;
  binners_ = FitBinners(table, options.max_bins);
  nodes_.clear();
  modeled_cols_.clear();
  model_index_of_col_.assign(table.num_columns(), -1);
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.schema().columns[c].is_key) {
      model_index_of_col_[c] = static_cast<int>(modeled_cols_.size());
      modeled_cols_.push_back(c);
    }
  }
  if (modeled_cols_.empty()) {
    root_ = -1;
    return;
  }

  // Sampled, binned training matrix [row][modeled col].
  uint64_t n = table.num_rows();
  uint64_t take = std::min(options.max_training_rows, n);
  std::vector<std::vector<int>> data(take,
                                     std::vector<int>(modeled_cols_.size()));
  const bool train_log = telemetry::TrainLogEnabled();
  {
    telemetry::ScopedPhase phase("spn/sample_bin");
    int64_t phase_start = train_log ? telemetry::MonotonicNanos() : 0;
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) ids[i] = i;
    for (uint64_t i = 0; i < take; ++i) {
      uint64_t j = i + static_cast<uint64_t>(
                           rng->UniformInt(0, static_cast<int64_t>(n - i) - 1));
      std::swap(ids[i], ids[j]);
    }
    for (size_t m = 0; m < modeled_cols_.size(); ++m) {
      const auto& col = table.column(modeled_cols_[m]);
      for (uint64_t i = 0; i < take; ++i) {
        data[i][m] = binners_[modeled_cols_[m]].BinOf(col[ids[i]]);
      }
    }
    if (train_log) {
      telemetry::TrainingEvent ev;
      ev.family = "spn";
      ev.event = "phase";
      ev.phase = "sample_bin";
      ev.index = 0;
      ev.examples = static_cast<int64_t>(take);
      ev.wall_seconds =
          static_cast<double>(telemetry::MonotonicNanos() - phase_start) / 1e9;
      ev.extra.emplace_back("columns",
                            static_cast<double>(modeled_cols_.size()));
      telemetry::RecordTrainingEvent(std::move(ev));
    }
  }

  telemetry::ScopedPhase phase("spn/structure");
  int64_t structure_start = train_log ? telemetry::MonotonicNanos() : 0;
  std::vector<uint32_t> rows(take);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  std::vector<int> cols(modeled_cols_.size());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  root_ = BuildNode(data, rows, cols, rng);
  if (train_log) {
    telemetry::TrainingEvent ev;
    ev.family = "spn";
    ev.event = "phase";
    ev.phase = "structure";
    ev.index = 1;
    ev.examples = static_cast<int64_t>(take);
    ev.wall_seconds =
        static_cast<double>(telemetry::MonotonicNanos() - structure_start) /
        1e9;
    ev.extra.emplace_back("nodes", static_cast<double>(nodes_.size()));
    telemetry::RecordTrainingEvent(std::move(ev));
  }
}

int SpnTableModel::MakeLeaf(const std::vector<std::vector<int>>& data,
                            const std::vector<uint32_t>& rows, int col) {
  Node leaf;
  leaf.kind = Node::Kind::kLeaf;
  leaf.column = modeled_cols_[col];
  int bins = binners_[leaf.column].num_bins();
  leaf.histogram.assign(bins, 1e-6);
  for (uint32_t r : rows) leaf.histogram[data[r][col]] += 1.0;
  double total = 0;
  for (double v : leaf.histogram) total += v;
  for (double& v : leaf.histogram) v /= total;
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size()) - 1;
}

int SpnTableModel::BuildNode(const std::vector<std::vector<int>>& data,
                             const std::vector<uint32_t>& rows,
                             const std::vector<int>& cols, Rng* rng) {
  LCE_CHECK(!cols.empty());
  if (cols.size() == 1) return MakeLeaf(data, rows, cols[0]);

  // Too few rows: independence (product of leaves).
  if (rows.size() < options_.min_rows_split) {
    Node prod;
    prod.kind = Node::Kind::kProduct;
    std::vector<int> children;
    for (int c : cols) children.push_back(MakeLeaf(data, rows, c));
    prod.children = std::move(children);
    nodes_.push_back(std::move(prod));
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Column split: connected components of |corr| >= threshold.
  size_t d = cols.size();
  std::vector<std::vector<double>> values(d,
                                          std::vector<double>(rows.size()));
  for (size_t i = 0; i < d; ++i) {
    for (size_t r = 0; r < rows.size(); ++r) {
      values[i][r] = static_cast<double>(data[rows[r]][cols[i]]);
    }
  }
  std::vector<int> component(d, -1);
  int num_components = 0;
  for (size_t i = 0; i < d; ++i) {
    if (component[i] >= 0) continue;
    // BFS over the dependency graph.
    std::vector<size_t> frontier = {i};
    component[i] = num_components;
    while (!frontier.empty()) {
      size_t cur = frontier.back();
      frontier.pop_back();
      for (size_t j = 0; j < d; ++j) {
        if (component[j] >= 0) continue;
        if (std::abs(PearsonCorrelation(values[cur], values[j])) >=
            options_.corr_threshold) {
          component[j] = num_components;
          frontier.push_back(j);
        }
      }
    }
    ++num_components;
  }
  if (num_components > 1) {
    Node prod;
    prod.kind = Node::Kind::kProduct;
    std::vector<int> children;
    for (int comp = 0; comp < num_components; ++comp) {
      std::vector<int> group;
      for (size_t i = 0; i < d; ++i) {
        if (component[i] == comp) group.push_back(cols[i]);
      }
      children.push_back(BuildNode(data, rows, group, rng));
    }
    prod.children = std::move(children);
    nodes_.push_back(std::move(prod));
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Row split: 2-means on normalized bins.
  std::vector<std::vector<double>> centroid(2, std::vector<double>(d, 0.0));
  // Initialize with two random rows.
  for (int k = 0; k < 2; ++k) {
    uint32_t r = rows[rng->Below(static_cast<uint32_t>(rows.size()))];
    for (size_t i = 0; i < d; ++i) {
      centroid[k][i] = static_cast<double>(data[r][cols[i]]);
    }
  }
  std::vector<int> assign(rows.size(), 0);
  for (int iter = 0; iter < options_.kmeans_iters; ++iter) {
    for (size_t r = 0; r < rows.size(); ++r) {
      double dist[2] = {0, 0};
      for (int k = 0; k < 2; ++k) {
        for (size_t i = 0; i < d; ++i) {
          double diff =
              static_cast<double>(data[rows[r]][cols[i]]) - centroid[k][i];
          dist[k] += diff * diff;
        }
      }
      assign[r] = dist[1] < dist[0] ? 1 : 0;
    }
    for (int k = 0; k < 2; ++k) {
      std::fill(centroid[k].begin(), centroid[k].end(), 0.0);
      size_t count = 0;
      for (size_t r = 0; r < rows.size(); ++r) {
        if (assign[r] != k) continue;
        ++count;
        for (size_t i = 0; i < d; ++i) {
          centroid[k][i] += static_cast<double>(data[rows[r]][cols[i]]);
        }
      }
      if (count > 0) {
        for (double& v : centroid[k]) v /= static_cast<double>(count);
      }
    }
  }
  std::vector<uint32_t> left, right;
  for (size_t r = 0; r < rows.size(); ++r) {
    (assign[r] == 0 ? left : right).push_back(rows[r]);
  }
  if (left.empty() || right.empty()) {
    // Degenerate clustering: fall back to an even split.
    left.assign(rows.begin(), rows.begin() + rows.size() / 2);
    right.assign(rows.begin() + rows.size() / 2, rows.end());
  }
  Node sum;
  sum.kind = Node::Kind::kSum;
  double n = static_cast<double>(rows.size());
  std::vector<int> children = {BuildNode(data, left, cols, rng),
                               BuildNode(data, right, cols, rng)};
  sum.children = std::move(children);
  sum.weights = {static_cast<double>(left.size()) / n,
                 static_cast<double>(right.size()) / n};
  nodes_.push_back(std::move(sum));
  return static_cast<int>(nodes_.size()) - 1;
}

double SpnTableModel::EvalNode(
    int node, const std::vector<std::vector<std::pair<int, double>>*>&
                  overlaps_by_col,
    SpnEvalStats* stats) const {
  const Node& nd = nodes_[node];
  switch (nd.kind) {
    case Node::Kind::kLeaf: {
      if (stats != nullptr) ++stats->leaf_visits;
      const auto* overlap = overlaps_by_col[nd.column];
      if (overlap == nullptr) return 1.0;  // unconstrained column
      double p = 0;
      for (auto [bin, frac] : *overlap) p += nd.histogram[bin] * frac;
      return p;
    }
    case Node::Kind::kProduct: {
      if (stats != nullptr) ++stats->product_visits;
      double p = 1.0;
      for (int c : nd.children) p *= EvalNode(c, overlaps_by_col, stats);
      return p;
    }
    case Node::Kind::kSum: {
      if (stats != nullptr) ++stats->sum_visits;
      double p = 0;
      for (size_t i = 0; i < nd.children.size(); ++i) {
        p += nd.weights[i] * EvalNode(nd.children[i], overlaps_by_col, stats);
      }
      return p;
    }
  }
  return 1.0;
}

double SpnTableModel::Selectivity(
    const std::vector<std::optional<std::pair<storage::Value, storage::Value>>>&
        ranges,
    SpnEvalStats* stats) const {
  static telemetry::Counter& fallback_counter =
      telemetry::MetricsRegistry::Global().counter("ce.spn.uniform_fallback");
  double uniform_factor = 1.0;
  std::vector<std::vector<std::pair<int, double>>> overlaps(ranges.size());
  std::vector<std::vector<std::pair<int, double>>*> by_col(ranges.size(),
                                                           nullptr);
  for (size_t c = 0; c < ranges.size(); ++c) {
    if (!ranges[c].has_value()) continue;
    if (model_index_of_col_[c] < 0) {
      // Key column constrained: uniform fallback over its bin domain.
      fallback_counter.Increment();
      auto ov = binners_[c].Overlap(ranges[c]->first, ranges[c]->second);
      double frac = 0;
      for (auto [bin, f] : ov) frac += f;
      uniform_factor *= std::min(1.0, frac / binners_[c].num_bins());
      if (stats != nullptr) ++stats->uniform_fallbacks;
      continue;
    }
    overlaps[c] = binners_[c].Overlap(ranges[c]->first, ranges[c]->second);
    by_col[c] = &overlaps[c];
  }
  if (stats != nullptr) stats->uniform_factor = uniform_factor;
  double p = root_ >= 0 ? EvalNode(root_, by_col, stats) : 1.0;
  return std::clamp(p * uniform_factor, 0.0, 1.0);
}

uint64_t SpnTableModel::SizeBytes() const {
  uint64_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += sizeof(Node) + n.histogram.size() * sizeof(double) +
             n.children.size() * sizeof(int) +
             n.weights.size() * sizeof(double);
  }
  return bytes;
}

Status SpnEstimator::Build(const storage::Database& db,
                           const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status SpnEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  Rng rng(seed_);
  models_.clear();
  models_.resize(db.num_tables());
  table_rows_.assign(db.num_tables(), 0);
  distinct_.assign(db.num_tables(), {});
  train_examples_ = 0;
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table not finalized");
    }
    Rng fork = rng.Fork();
    models_[t].Fit(table, options_, &fork);
    train_examples_ += static_cast<int64_t>(
        std::min(options_.max_training_rows, table.num_rows()));
    table_rows_[t] = static_cast<double>(table.num_rows());
    distinct_[t].resize(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      distinct_[t][c] = std::max<uint64_t>(1, table.stats(c).distinct);
    }
  }
  if (options_.use_edge_selectivity) {
    edge_rho_ = ComputeEdgeSelectivities(db);
  }
  if (options_.use_fanout_correction) {
    fanout_.Build(db, FanoutCorrection::Options{});
  }
  return Status::OK();
}

double SpnEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double SpnEstimator::EstimateWithDiagnostics(const query::Query& q,
                                             ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double SpnEstimator::EstimateImpl(const query::Query& q, ExplainRecord* rec) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // The whole estimate is circuit traversal plus the join formula.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  SpnEvalStats total;
  auto filtered_rows = [&](int t) {
    std::vector<std::optional<std::pair<storage::Value, storage::Value>>>
        ranges(schema_->tables[t].columns.size());
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table == t) ranges[p.col.column] = {{p.lo, p.hi}};
    }
    if (rec == nullptr) {
      return table_rows_[t] * models_[t].Selectivity(ranges);
    }
    SpnEvalStats stats;
    double sel = models_[t].Selectivity(ranges, &stats);
    total.leaf_visits += stats.leaf_visits;
    total.product_visits += stats.product_visits;
    total.sum_visits += stats.sum_visits;
    total.uniform_fallbacks += stats.uniform_fallbacks;
    rec->AddCounter("table_sel.t" + std::to_string(t), sel);
    return table_rows_[t] * sel;
  };
  if (rec != nullptr) {
    for (const query::Predicate& p : q.predicates) {
      if (models_[p.col.table].ModelsColumn(p.col.column)) {
        // SPNs evaluate the conjunction jointly; no per-predicate share.
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "spn"});
      } else {
        rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi,
                                   -1.0, "uniform_fallback"});
        rec->AddFallback("spn.key_column_uniform",
                         "table=" + std::to_string(p.col.table) + " column=" +
                             std::to_string(p.col.column));
      }
    }
  }
  double correction =
      options_.use_fanout_correction ? fanout_.CorrectionFactor(q) : 1.0;
  double base =
      options_.use_edge_selectivity
          ? CombineWithEdgeSelectivities(*schema_, q, filtered_rows, edge_rho_)
          : CombineWithJoinFormula(*schema_, q, filtered_rows, [&](int t, int c) {
              return static_cast<double>(distinct_[t][c]);
            });
  if (rec != nullptr) {
    rec->AddCounter("leaf_visits", static_cast<double>(total.leaf_visits));
    rec->AddCounter("product_visits",
                    static_cast<double>(total.product_visits));
    rec->AddCounter("sum_visits", static_cast<double>(total.sum_visits));
    rec->AddCounter("uniform_fallbacks",
                    static_cast<double>(total.uniform_fallbacks));
    rec->AddCounter("fanout_correction", correction);
  }
  return std::max(1.0, base * correction);
}

uint64_t SpnEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& m : models_) bytes += m.SizeBytes();
  return bytes;
}

void SpnEstimator::DescribeModel(telemetry::ModelCard* card) const {
  card->model = Name();
  card->family = "spn";
  card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  card->train_examples = train_examples_;
  uint64_t nodes = 0;
  for (const auto& m : models_) nodes += m.num_nodes();
  // One weight/histogram-cell granularity is noise; node count is the
  // structural capacity of an SPN.
  card->parameter_count = static_cast<int64_t>(nodes);
  card->extra.emplace_back("tables", static_cast<double>(models_.size()));
}

}  // namespace ce
}  // namespace lce
