#include "src/ce/data_driven/binning.h"

#include <algorithm>

#include "src/util/logging.h"

namespace lce {
namespace ce {

void ColumnBinner::Fit(const storage::ColumnStats& stats, int max_bins) {
  LCE_CHECK(max_bins >= 1);
  min_ = stats.min;
  max_ = stats.max;
  uint64_t span = static_cast<uint64_t>(max_ - min_) + 1;
  bins_ = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(max_bins), span));
  bins_ = std::max(1, bins_);
  width_ = static_cast<double>(span) / bins_;
}

int ColumnBinner::BinOf(storage::Value v) const {
  if (v <= min_) return 0;
  if (v >= max_) return bins_ - 1;
  int b = static_cast<int>(static_cast<double>(v - min_) / width_);
  return std::clamp(b, 0, bins_ - 1);
}

std::vector<std::pair<int, double>> ColumnBinner::Overlap(
    storage::Value lo, storage::Value hi) const {
  std::vector<std::pair<int, double>> out;
  if (hi < lo || hi < min_ || lo > max_) return out;
  double qlo = static_cast<double>(std::max(lo, min_) - min_);
  double qhi = static_cast<double>(std::min(hi, max_) - min_) + 1.0;
  int first = std::clamp(static_cast<int>(qlo / width_), 0, bins_ - 1);
  int last = std::clamp(static_cast<int>((qhi - 1e-9) / width_), 0, bins_ - 1);
  for (int b = first; b <= last; ++b) {
    double blo = b * width_;
    double bhi = blo + width_;
    double overlap = (std::min(qhi, bhi) - std::max(qlo, blo)) / width_;
    if (overlap > 0) out.push_back({b, std::min(1.0, overlap)});
  }
  return out;
}

std::vector<ColumnBinner> FitBinners(const storage::Table& table,
                                     int max_bins) {
  LCE_CHECK(table.finalized());
  std::vector<ColumnBinner> binners(table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    binners[c].Fit(table.stats(c), max_bins);
  }
  return binners;
}

std::vector<std::vector<int>> BinTable(
    const storage::Table& table, const std::vector<ColumnBinner>& binners) {
  std::vector<std::vector<int>> out(table.num_rows(),
                                    std::vector<int>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const auto& col = table.column(c);
    for (uint64_t r = 0; r < col.size(); ++r) {
      out[r][c] = binners[c].BinOf(col[r]);
    }
  }
  return out;
}

}  // namespace ce
}  // namespace lce
