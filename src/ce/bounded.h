// Bound-corrected estimator: wraps a (learned) estimator and clamps its
// estimates into a multiplicative envelope around a cheap reference
// estimator. A standard robustness device: the wrapped model keeps its
// accuracy in-distribution while its worst case is bounded by
// K * reference-error, taming the catastrophic tails learned models show on
// out-of-distribution queries (experiments R8/R14).

#ifndef LCE_CE_BOUNDED_H_
#define LCE_CE_BOUNDED_H_

#include <memory>
#include <string>

#include "src/ce/estimator.h"

namespace lce {
namespace ce {

class BoundedEstimator : public Estimator {
 public:
  /// Estimates from `inner` are clamped to
  /// [reference / envelope, reference * envelope].
  BoundedEstimator(std::unique_ptr<Estimator> inner,
                   std::unique_ptr<Estimator> reference, double envelope);

  std::string Name() const override;
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  Status UpdateWithQueries(
      const std::vector<query::LabeledQuery>& queries) override;
  Status UpdateWithData(const storage::Database& db) override;
  uint64_t SizeBytes() const override;

  Estimator* inner() { return inner_.get(); }
  Estimator* reference() { return reference_.get(); }

 private:
  std::unique_ptr<Estimator> inner_;
  std::unique_ptr<Estimator> reference_;
  double envelope_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_BOUNDED_H_
