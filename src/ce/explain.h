// Per-query explain records: the structured "why" behind every estimate.
//
// An ExplainRecord is filled by Estimator::EstimateWithDiagnostics and
// captures, per query, the per-predicate selectivity breakdown, every
// fallback the estimator silently took (uniform assumptions, unmodeled
// columns), model-internal counters (tree depths, SPN node visits, sampling
// budgets), and — when the caller knows the label — latency and q-error.
// Records serialize to one compact JSON line each, streamed to the
// LCE_QUERY_LOG sink (src/util/telemetry/query_log.h) by the evaluation
// harness, the executor, and the bench runners.
//
// Collecting diagnostics never changes the estimate: implementations share
// the arithmetic of EstimateCardinality and only *read* values already
// computed, so estimates are bit-identical with and without a record.

#ifndef LCE_CE_EXPLAIN_H_
#define LCE_CE_EXPLAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "src/query/query.h"
#include "src/storage/types.h"

namespace lce {
namespace ce {

/// One predicate's contribution to the estimate. `selectivity` is the
/// estimator's attributed selectivity for this predicate alone, or -1 when
/// the estimator models predicates jointly and cannot separate them (grid
/// histograms, SPNs); `source` names the statistic that produced it.
struct PredicateExplain {
  int table = 0;
  int column = 0;
  storage::Value lo = 0;
  storage::Value hi = 0;
  double selectivity = -1.0;
  std::string source;
};

/// A fallback the estimator took silently on the normal path: uniformity
/// assumption, unmodeled column, degenerate statistic.
struct FallbackEvent {
  std::string site;    // stable identifier, e.g. "spn.key_column_uniform"
  std::string detail;  // human-readable context, e.g. "table=0 column=2"
};

struct ExplainRecord {
  std::string estimator;     // Estimator::Name(), or "exec.oracle"
  std::string kind = "estimate";  // "estimate" | "exec"
  double estimate = 0;
  double truth = -1;         // ground-truth cardinality; <0 = unknown
  double qerror = -1;        // <0 = unknown (no label)
  double latency_us = -1;    // <0 = not measured
  int num_tables = 0;
  int num_joins = 0;
  int num_predicates = 0;
  std::vector<PredicateExplain> predicates;
  std::vector<FallbackEvent> fallbacks;
  /// Model-internal counters: tree path depth, SPN node visits, sampling
  /// budget, encoding norms, ... Names follow area.metric.
  std::vector<std::pair<std::string, double>> counters;

  void AddCounter(std::string name, double value) {
    counters.emplace_back(std::move(name), value);
  }
  void AddFallback(std::string site, std::string detail) {
    fallbacks.push_back({std::move(site), std::move(detail)});
  }

  /// Compact single-line JSON (no trailing newline), the query-log format.
  /// Unknown truth/qerror/latency serialize as null.
  std::string ToJsonLine() const;
};

/// Fills the query-shape fields (table/join/predicate counts) from `q`.
void FillQueryShape(const query::Query& q, ExplainRecord* rec);

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_EXPLAIN_H_
