// The uniform cardinality-estimator interface of the study.
//
// Every estimator — traditional, query-driven, data-driven — implements this
// API so the evaluation harness, the optimizer, and the update experiments can
// treat the whole zoo interchangeably.

#ifndef LCE_CE_ESTIMATOR_H_
#define LCE_CE_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ce/explain.h"
#include "src/query/query.h"
#include "src/storage/database.h"
#include "src/util/status.h"
#include "src/util/telemetry/model_card.h"

namespace lce {
namespace ce {

class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Human-readable name used in every result table ("FCN", "MSCN", ...).
  virtual std::string Name() const = 0;

  /// Builds the estimator. Query-driven estimators consume `training`
  /// (queries labeled with true cardinalities); data-driven and traditional
  /// estimators read the database and may ignore the workload.
  virtual Status Build(const storage::Database& db,
                       const std::vector<query::LabeledQuery>& training) = 0;

  /// Estimated COUNT(*) of `q`. Always >= 1 (the study's q-error convention
  /// clamps both sides at one tuple).
  virtual double EstimateCardinality(const query::Query& q) = 0;

  /// Estimates for many queries at once. Semantically a loop over
  /// EstimateCardinality() — the default is exactly that — but estimators
  /// with a vectorized inference path (e.g. LW-XGB's batched GBDT traversal)
  /// override it to amortize per-call overhead. Overrides must return
  /// bit-identical values to the per-query calls in the same order.
  virtual std::vector<double> EstimateBatch(
      const std::vector<query::Query>& queries) {
    std::vector<double> out;
    out.reserve(queries.size());
    for (const query::Query& q : queries) out.push_back(EstimateCardinality(q));
    return out;
  }

  /// True when EstimateBatch() is a genuinely vectorized override rather
  /// than the default loop. Batch-aware callers (accuracy evaluation) use
  /// this to pick the batched path over per-query parallelism.
  virtual bool HasBatchEstimate() const { return false; }

  /// EstimateCardinality() plus diagnostics: fills `rec` with the estimator
  /// name, query shape, and — where the estimator overrides this — the
  /// per-predicate selectivity breakdown, fallback events, and
  /// model-internal counters behind the number. The returned estimate is
  /// bit-identical to EstimateCardinality() on the same state: overrides
  /// share the arithmetic and only *read* already-computed values, so
  /// internal Rng streams advance exactly as in the plain call. Callers own
  /// latency/truth/q-error fields. `rec` must be non-null.
  virtual double EstimateWithDiagnostics(const query::Query& q,
                                         ExplainRecord* rec) {
    rec->estimator = Name();
    FillQueryShape(q, rec);
    double est = EstimateCardinality(q);
    rec->estimate = est;
    return est;
  }

  /// Incorporates newly observed labeled queries (incremental training).
  /// Default: unsupported (traditional/data-driven estimators).
  virtual Status UpdateWithQueries(
      const std::vector<query::LabeledQuery>& queries) {
    (void)queries;
    return Status::Unimplemented(Name() + " does not update from queries");
  }

  /// Refreshes the estimator after the underlying data changed (appends).
  /// Default: unsupported; the harness then measures the stale model.
  virtual Status UpdateWithData(const storage::Database& db) {
    (void)db;
    return Status::Unimplemented(Name() + " does not update from data");
  }

  /// True when EstimateCardinality() is safe to call concurrently from
  /// multiple threads after Build(): no per-call mutable state, no internal
  /// Rng. The evaluation harness then scores test queries in parallel;
  /// per-query estimates are unchanged, so accuracy reports stay identical
  /// at every thread count. Defaults to false (neural forward passes cache
  /// activations; samplers draw from a shared Rng).
  virtual bool ThreadSafeEstimate() const { return false; }

  /// Approximate size of the built estimator in bytes (statistics, samples,
  /// or model parameters) — the footprint column of experiment R2.
  virtual uint64_t SizeBytes() const = 0;

  /// Memory footprint of the built model in bytes. Defaults to SizeBytes();
  /// estimators whose SizeBytes() excludes auxiliary structures (encoders,
  /// buffers) override this to account for everything the model keeps alive.
  virtual uint64_t FootprintBytes() const { return SizeBytes(); }

  /// Fills a model card describing the trained estimator: family,
  /// parameter count, footprint, training-set size, epochs, final loss.
  /// The base fills name/footprint; trainable families override to add what
  /// they track. `card` must be non-null; the bench harness supplies
  /// dataset, build time, and accuracy extras afterwards.
  virtual void DescribeModel(telemetry::ModelCard* card) const {
    card->model = Name();
    card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  }
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_ESTIMATOR_H_
