#include "src/ce/bounded.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

BoundedEstimator::BoundedEstimator(std::unique_ptr<Estimator> inner,
                                   std::unique_ptr<Estimator> reference,
                                   double envelope)
    : inner_(std::move(inner)),
      reference_(std::move(reference)),
      envelope_(envelope) {
  LCE_CHECK(inner_ != nullptr && reference_ != nullptr);
  LCE_CHECK_MSG(envelope_ >= 1.0, "envelope must be >= 1");
}

std::string BoundedEstimator::Name() const {
  return inner_->Name() + "+Bound";
}

Status BoundedEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  Status s = inner_->Build(db, training);
  if (!s.ok()) return s;
  return reference_->Build(db, training);
}

double BoundedEstimator::EstimateCardinality(const query::Query& q) {
  // The wrapped estimators open their own stage timers; the innermost-timer
  // stack attributes their stages to themselves, and this timer keeps the
  // clamp arithmetic under this estimator's name.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  double inner = inner_->EstimateCardinality(q);
  double reference = reference_->EstimateCardinality(q);
  stages.Stage("postprocess");
  double lo = std::max(1.0, reference / envelope_);
  double hi = reference * envelope_;
  return std::clamp(inner, lo, hi);
}

Status BoundedEstimator::UpdateWithQueries(
    const std::vector<query::LabeledQuery>& queries) {
  Status s = inner_->UpdateWithQueries(queries);
  // The reference may be statistics-only; its refusal is fine.
  reference_->UpdateWithQueries(queries);
  return s;
}

Status BoundedEstimator::UpdateWithData(const storage::Database& db) {
  Status inner = inner_->UpdateWithData(db);
  Status reference = reference_->UpdateWithData(db);
  // Success if either side refreshed (mirrors deployment: ANALYZE runs even
  // when the model itself is not retrained).
  return reference.ok() ? Status::OK() : inner;
}

uint64_t BoundedEstimator::SizeBytes() const {
  return inner_->SizeBytes() + reference_->SizeBytes();
}

}  // namespace ce
}  // namespace lce
