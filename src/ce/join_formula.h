// Shared join combination for per-table estimators.
//
// Estimators that model single-table distributions (histograms, SPNs,
// Bayesian networks, autoregressive models) extend to joins with the classic
// System-R distinct-count formula:
//   |Q| = prod_t |t| * sel_t(q)  /  prod_(join a=b) max(ndv(a), ndv(b)).
// This mirrors how such models are deployed when a full join-distribution
// model is unavailable.

#ifndef LCE_CE_JOIN_FORMULA_H_
#define LCE_CE_JOIN_FORMULA_H_

#include <algorithm>
#include <functional>

#include "src/query/query.h"
#include "src/storage/schema.h"

namespace lce {
namespace ce {

/// Combines per-table filtered sizes with the distinct-count join formula.
/// `filtered_rows(t)` returns |t| * sel_t(q); `ndv(t, c)` the distinct count
/// of column c of table t. Result clamped at one tuple.
inline double CombineWithJoinFormula(
    const storage::DatabaseSchema& schema, const query::Query& q,
    const std::function<double(int)>& filtered_rows,
    const std::function<double(int, int)>& ndv) {
  double card = 1.0;
  for (int t : q.tables) card *= filtered_rows(t);
  for (int j : q.join_edges) {
    const storage::JoinEdge& e = schema.joins[j];
    int lt = schema.TableIndex(e.left_table);
    int rt = schema.TableIndex(e.right_table);
    int lc = schema.tables[lt].ColumnIndex(e.left_column);
    int rc = schema.tables[rt].ColumnIndex(e.right_column);
    card /= std::max(1.0, std::max(ndv(lt, lc), ndv(rt, rc)));
  }
  return std::max(1.0, card);
}

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_JOIN_FORMULA_H_
