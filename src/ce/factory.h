// Construction of the full estimator zoo by name.

#ifndef LCE_CE_FACTORY_H_
#define LCE_CE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ce/estimator.h"
#include "src/ce/query_driven/neural_base.h"

namespace lce {
namespace ce {

/// Names accepted by MakeEstimator. Order matches the study's tables:
/// traditional, query-driven, data-driven.
std::vector<std::string> AllEstimatorNames();

/// Query-driven neural estimators only (the architecture-comparison subset).
std::vector<std::string> QueryDrivenNeuralNames();

/// Builds an estimator by name. `neural` configures the neural query-driven
/// family (ignored by the others); `seed` controls every stochastic choice.
std::unique_ptr<Estimator> MakeEstimator(const std::string& name,
                                         const NeuralOptions& neural = {},
                                         uint64_t seed = 42);

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_FACTORY_H_
