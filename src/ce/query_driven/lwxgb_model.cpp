#include "src/ce/query_driven/lwxgb_model.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace ce {

Status LwXgbEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  if (training.empty()) {
    return Status::InvalidArgument("LW-XGB needs training queries");
  }
  encoder_ = std::make_unique<query::QueryEncoder>(
      &db, query::QueryEncoder::Options{}, options_.seed);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  rows.reserve(training.size());
  targets.reserve(training.size());
  {
    telemetry::ScopedPhase phase("lwxgb/encode");
    for (const auto& lq : training) {
      rows.push_back(encoder_->FlatEncode(lq.q, options_.flat_variant));
      targets.push_back(encoder_->NormalizeLog(lq.cardinality));
    }
  }
  telemetry::ScopedPhase phase("lwxgb/fit");
  model_ = std::make_unique<gbdt::GradientBoosting>(options_.gbdt);
  model_->Fit(rows, targets);
  return Status::OK();
}

double LwXgbEstimator::EstimateCardinality(const query::Query& q) {
  LCE_CHECK_MSG(model_ != nullptr, "Build() before EstimateCardinality()");
  float y = model_->Predict(encoder_->FlatEncode(q, options_.flat_variant));
  return encoder_->DenormalizeLog(std::clamp(y, 0.0f, 1.0f));
}

Status LwXgbEstimator::UpdateWithQueries(
    const std::vector<query::LabeledQuery>& queries) {
  if (model_ == nullptr) return Status::FailedPrecondition("Build() first");
  if (queries.empty()) return Status::OK();
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (const auto& lq : queries) {
    rows.push_back(encoder_->FlatEncode(lq.q, options_.flat_variant));
    targets.push_back(encoder_->NormalizeLog(lq.cardinality));
  }
  model_->Boost(rows, targets, options_.update_trees);
  return Status::OK();
}

uint64_t LwXgbEstimator::SizeBytes() const {
  return model_ ? model_->SizeBytes() : 0;
}

}  // namespace ce
}  // namespace lce
