#include "src/ce/query_driven/lwxgb_model.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace ce {

Status LwXgbEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  if (training.empty()) {
    return Status::InvalidArgument("LW-XGB needs training queries");
  }
  encoder_ = std::make_unique<query::QueryEncoder>(
      &db, query::QueryEncoder::Options{}, options_.seed);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  rows.reserve(training.size());
  targets.reserve(training.size());
  {
    telemetry::ScopedPhase phase("lwxgb/encode");
    for (const auto& lq : training) {
      rows.push_back(encoder_->FlatEncode(lq.q, options_.flat_variant));
      targets.push_back(encoder_->NormalizeLog(lq.cardinality));
    }
  }
  telemetry::ScopedPhase phase("lwxgb/fit");
  model_ = std::make_unique<gbdt::GradientBoosting>(options_.gbdt);
  model_->Fit(rows, targets);
  train_examples_ = static_cast<int64_t>(training.size());
  return Status::OK();
}

double LwXgbEstimator::EstimateCardinality(const query::Query& q) {
  LCE_CHECK_MSG(model_ != nullptr, "Build() before EstimateCardinality()");
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("encode");
  std::vector<float> row = encoder_->FlatEncode(q, options_.flat_variant);
  stages.Stage("traverse");
  float y = model_->Predict(row);
  stages.Stage("postprocess");
  return encoder_->DenormalizeLog(std::clamp(y, 0.0f, 1.0f));
}

std::vector<double> LwXgbEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) {
  LCE_CHECK_MSG(model_ != nullptr, "Build() before EstimateBatch()");
  // Batched stages: histograms record per-query microseconds weighted by
  // the batch size, so batch and per-query paths share one scale.
  telemetry::StageTimer stages([this] { return Name(); },
                               static_cast<uint64_t>(queries.size()));
  stages.Stage("encode");
  std::vector<std::vector<float>> rows;
  rows.reserve(queries.size());
  for (const query::Query& q : queries) {
    rows.push_back(encoder_->FlatEncode(q, options_.flat_variant));
  }
  stages.Stage("traverse");
  std::vector<float> preds = model_->PredictBatch(rows);
  stages.Stage("postprocess");
  std::vector<double> out;
  out.reserve(preds.size());
  for (float y : preds) {
    out.push_back(encoder_->DenormalizeLog(std::clamp(y, 0.0f, 1.0f)));
  }
  return out;
}

double LwXgbEstimator::EstimateWithDiagnostics(const query::Query& q,
                                               ExplainRecord* rec) {
  LCE_CHECK_MSG(model_ != nullptr, "Build() before EstimateCardinality()");
  rec->estimator = Name();
  FillQueryShape(q, rec);
  for (const query::Predicate& p : q.predicates) {
    // Tree ensembles estimate jointly; no per-predicate attribution.
    rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi, -1.0,
                               "gbdt"});
  }
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("encode");
  std::vector<float> row = encoder_->FlatEncode(q, options_.flat_variant);
  stages.Stage("traverse");
  gbdt::GradientBoosting::PredictStats stats;
  float y = model_->PredictWithStats(row, &stats);
  stages.Stage("postprocess");
  float clamped = std::clamp(y, 0.0f, 1.0f);
  double est = encoder_->DenormalizeLog(clamped);
  rec->AddCounter("pred_normalized", static_cast<double>(y));
  rec->AddCounter("trees", static_cast<double>(stats.trees));
  rec->AddCounter("nodes_visited", static_cast<double>(stats.nodes_visited));
  rec->AddCounter("mean_path_depth", stats.mean_path_depth);
  rec->AddCounter("max_path_depth", static_cast<double>(stats.max_path_depth));
  if (y != clamped) {
    rec->AddFallback("gbdt.output_clamped",
                     "ensemble output " + std::to_string(y) +
                         " clamped to [0,1] before denormalization");
  }
  rec->estimate = est;
  return est;
}

Status LwXgbEstimator::UpdateWithQueries(
    const std::vector<query::LabeledQuery>& queries) {
  if (model_ == nullptr) return Status::FailedPrecondition("Build() first");
  if (queries.empty()) return Status::OK();
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (const auto& lq : queries) {
    rows.push_back(encoder_->FlatEncode(lq.q, options_.flat_variant));
    targets.push_back(encoder_->NormalizeLog(lq.cardinality));
  }
  model_->Boost(rows, targets, options_.update_trees);
  return Status::OK();
}

uint64_t LwXgbEstimator::SizeBytes() const {
  return model_ ? model_->SizeBytes() : 0;
}

void LwXgbEstimator::DescribeModel(telemetry::ModelCard* card) const {
  card->model = Name();
  card->family = "gbdt";
  card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  card->train_examples = train_examples_;
  if (model_ != nullptr) {
    card->parameter_count = static_cast<int64_t>(model_->NumNodes());
    card->epochs = static_cast<int64_t>(model_->num_trees());
    card->extra.emplace_back("trees",
                             static_cast<double>(model_->num_trees()));
  }
}

}  // namespace ce
}  // namespace lce
