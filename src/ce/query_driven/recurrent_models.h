// Sequence estimators: RNN and LSTM over token sequences (Ortiz et al.).

#ifndef LCE_CE_QUERY_DRIVEN_RECURRENT_MODELS_H_
#define LCE_CE_QUERY_DRIVEN_RECURRENT_MODELS_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/ce/query_driven/neural_base.h"
#include "src/nn/dense.h"
#include "src/nn/recurrent.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

/// Common head: sequence -> recurrent encoder -> Dense(h, 1) -> sigmoid.
template <typename Cell>
class RecurrentEstimatorBase : public NeuralQueryDrivenEstimator {
 public:
  explicit RecurrentEstimatorBase(NeuralOptions options)
      : NeuralQueryDrivenEstimator(options) {}

 protected:
  void InitModel(Rng* rng) override {
    cell_ = std::make_unique<Cell>(encoder().seq_token_dim(),
                                   options_.hidden_dim, rng);
    head_ = std::make_unique<nn::Dense>(options_.hidden_dim, 1, rng);
  }

  float ForwardOne(const query::Query& q) override {
    telemetry::StageTimer::Mark("encode");
    nn::Matrix seq = nn::Matrix::Stack(encoder().SequenceEncode(q));
    telemetry::StageTimer::Mark("forward");
    nn::Matrix h = cell_->ForwardSequence(seq);
    float pre = head_->Forward(h).Scalar();
    output_ = 1.0f / (1.0f + std::exp(-pre));
    return output_;
  }

  void ForwardBatch(const std::vector<query::Query>& queries,
                    std::vector<float>* out) override {
    telemetry::StageTimer::Mark("encode");
    std::vector<nn::Matrix> seqs;
    seqs.reserve(queries.size());
    for (const query::Query& q : queries) {
      seqs.push_back(nn::Matrix::Stack(encoder().SequenceEncode(q)));
    }
    telemetry::StageTimer::Mark("forward");
    // One length-packed time-major pass over all sequences, then one
    // multi-row head pass; the sigmoid tail matches ForwardOne per row.
    nn::Matrix hs = cell_->ForwardSequenceBatch(seqs);
    nn::Matrix pre = head_->Forward(hs);
    out->resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      (*out)[i] =
          1.0f / (1.0f + std::exp(-pre.At(static_cast<int>(i), 0)));
    }
  }

  void BackwardOne(float dpred) override {
    nn::Matrix g(1, 1);
    g.At(0, 0) = dpred * output_ * (1.0f - output_);  // through the sigmoid
    nn::Matrix dh = head_->Backward(g);
    cell_->BackwardSequence(dh);
  }

  std::vector<nn::Param*> Params() override {
    std::vector<nn::Param*> params = cell_->Params();
    for (nn::Param* p : head_->Params()) params.push_back(p);
    return params;
  }

  size_t NumParams() const override {
    if (cell_ == nullptr) return 0;
    return cell_->NumParams() +
           static_cast<size_t>(head_->in_dim()) * head_->out_dim() +
           head_->out_dim();
  }

 private:
  std::unique_ptr<Cell> cell_;
  std::unique_ptr<nn::Dense> head_;
  float output_ = 0;
};

class RnnEstimator : public RecurrentEstimatorBase<nn::RnnCell> {
 public:
  explicit RnnEstimator(NeuralOptions options = {})
      : RecurrentEstimatorBase(options) {}
  std::string Name() const override { return "RNN"; }
};

class LstmEstimator : public RecurrentEstimatorBase<nn::LstmCell> {
 public:
  explicit LstmEstimator(NeuralOptions options = {})
      : RecurrentEstimatorBase(options) {}
  std::string Name() const override { return "LSTM"; }
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_QUERY_DRIVEN_RECURRENT_MODELS_H_
