#include "src/ce/query_driven/flat_models.h"

#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

namespace {

// Shared batched pass of the flat family: encode every query, stack the
// encodings into one N x d matrix, and run a single multi-row forward —
// each MatMulBiasAct computes all N rows in one kernel call instead of N
// GEMVs. Row values are bit-identical to per-query forwards (matrix.h).
void FlatForwardBatch(const query::QueryEncoder& encoder,
                      query::FlatVariant variant, nn::Mlp* net,
                      const std::vector<query::Query>& queries,
                      std::vector<float>* out) {
  telemetry::StageTimer::Mark("encode");
  std::vector<std::vector<float>> rows;
  rows.reserve(queries.size());
  for (const query::Query& q : queries) {
    rows.push_back(encoder.FlatEncode(q, variant));
  }
  nn::Matrix x = nn::Matrix::Stack(rows);
  telemetry::StageTimer::Mark("forward");
  nn::Matrix y = net->Forward(x);
  out->resize(queries.size());
  for (int i = 0; i < y.rows(); ++i) (*out)[i] = y.At(i, 0);
}

}  // namespace

void LinearEstimator::InitModel(Rng* rng) {
  int in = encoder().flat_dim_for(options_.flat_variant);
  net_ = std::make_unique<nn::Mlp>(std::vector<int>{in, 1},
                                   nn::Activation::kIdentity,
                                   nn::Activation::kSigmoid, rng);
}

float LinearEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  // Kept in a member so FillEncodingDiagnostics reuses it (no second encode
  // per logged query); move-assignment recycles the buffer across calls.
  last_flat_ = encoder().FlatEncode(q, options_.flat_variant);
  nn::Matrix x = nn::Matrix::Row(last_flat_);
  telemetry::StageTimer::Mark("forward");
  return net_->Forward(x).Scalar();
}

void LinearEstimator::ForwardBatch(const std::vector<query::Query>& queries,
                                   std::vector<float>* out) {
  FlatForwardBatch(encoder(), options_.flat_variant, net_.get(), queries, out);
}

void LinearEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  net_->Backward(g);
}

void FcnEstimator::InitModel(Rng* rng) {
  std::vector<int> dims;
  dims.push_back(encoder().flat_dim_for(options_.flat_variant));
  for (int l = 0; l < options_.num_hidden_layers; ++l) {
    dims.push_back(options_.hidden_dim);
  }
  dims.push_back(1);
  net_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kRelu,
                                   nn::Activation::kSigmoid, rng);
}

float FcnEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  last_flat_ = encoder().FlatEncode(q, options_.flat_variant);
  nn::Matrix x = nn::Matrix::Row(last_flat_);
  telemetry::StageTimer::Mark("forward");
  return net_->Forward(x).Scalar();
}

void FcnEstimator::ForwardBatch(const std::vector<query::Query>& queries,
                                std::vector<float>* out) {
  FlatForwardBatch(encoder(), options_.flat_variant, net_.get(), queries, out);
}

void FcnEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  net_->Backward(g);
}

}  // namespace ce
}  // namespace lce
