#include "src/ce/query_driven/flat_models.h"

#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

void LinearEstimator::InitModel(Rng* rng) {
  int in = encoder().flat_dim_for(options_.flat_variant);
  net_ = std::make_unique<nn::Mlp>(std::vector<int>{in, 1},
                                   nn::Activation::kIdentity,
                                   nn::Activation::kSigmoid, rng);
}

float LinearEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  // Kept in a member so FillEncodingDiagnostics reuses it (no second encode
  // per logged query); move-assignment recycles the buffer across calls.
  last_flat_ = encoder().FlatEncode(q, options_.flat_variant);
  nn::Matrix x = nn::Matrix::Row(last_flat_);
  telemetry::StageTimer::Mark("forward");
  return net_->Forward(x).Scalar();
}

void LinearEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  net_->Backward(g);
}

void FcnEstimator::InitModel(Rng* rng) {
  std::vector<int> dims;
  dims.push_back(encoder().flat_dim_for(options_.flat_variant));
  for (int l = 0; l < options_.num_hidden_layers; ++l) {
    dims.push_back(options_.hidden_dim);
  }
  dims.push_back(1);
  net_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kRelu,
                                   nn::Activation::kSigmoid, rng);
}

float FcnEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  last_flat_ = encoder().FlatEncode(q, options_.flat_variant);
  nn::Matrix x = nn::Matrix::Row(last_flat_);
  telemetry::StageTimer::Mark("forward");
  return net_->Forward(x).Scalar();
}

void FcnEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  net_->Backward(g);
}

}  // namespace ce
}  // namespace lce
