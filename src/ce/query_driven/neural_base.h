// Shared training/inference plumbing of the six query-driven neural
// estimators (Linear, FCN, FCN+Pool, MSCN, RNN, LSTM).
//
// The base class owns the encoder snapshot, label normalization, the Adam
// loop (minibatch accumulation, fixed epochs, deterministic shuffling) and
// incremental updates; subclasses provide the per-query forward/backward and
// their parameter list. All models emit a sigmoid output interpreted as
// normalized log-cardinality, following the standard query-driven recipe.

#ifndef LCE_CE_QUERY_DRIVEN_NEURAL_BASE_H_
#define LCE_CE_QUERY_DRIVEN_NEURAL_BASE_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "src/ce/estimator.h"
#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/query/encoder.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

struct NeuralOptions {
  int hidden_dim = 64;
  int num_hidden_layers = 2;
  int epochs = 30;
  int batch_size = 64;
  float learning_rate = 1e-3f;
  nn::LossKind loss = nn::LossKind::kLogQ;
  /// Epochs used by UpdateWithQueries (incremental training).
  int update_epochs = 8;
  uint64_t seed = 42;
  /// Flat-encoding variant (FCN family only; the R12 ablation knob).
  query::FlatVariant flat_variant = query::FlatVariant::kFull;
  /// MSCN bitmap width.
  int mscn_sample_size = 64;
};

class NeuralQueryDrivenEstimator : public Estimator {
 public:
  explicit NeuralQueryDrivenEstimator(NeuralOptions options)
      : options_(options) {}

  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  /// One batched forward for the whole request vector (ForwardBatch), then
  /// the shared clamp + denormalize tail per query. Bit-identical to the
  /// per-query loop by the kernel-layer contract.
  std::vector<double> EstimateBatch(
      const std::vector<query::Query>& queries) override;
  bool HasBatchEstimate() const override { return true; }
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithQueries(
      const std::vector<query::LabeledQuery>& queries) override;
  uint64_t SizeBytes() const override;
  void DescribeModel(telemetry::ModelCard* card) const override;

  /// Initializes encoder and network against `db` without training — the
  /// precondition for LoadModel on a fresh instance.
  Status Prepare(const storage::Database& db);

  /// Serializes the trained parameters (not the optimizer state).
  Status SaveModel(std::ostream* os);

  /// Restores parameters into a Prepare()d or Build()t model of identical
  /// hyperparameters and schema; the estimator is usable afterwards.
  Status LoadModel(std::istream* is);

  /// Mean training loss of the last completed epoch (convergence reporting).
  double last_epoch_loss() const { return last_epoch_loss_; }
  /// Per-epoch mean losses of the initial Build (the convergence curve R18
  /// plots); incremental updates append to it.
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }
  const NeuralOptions& options() const { return options_; }

 protected:
  /// Builds the network(s); called once after the encoder exists.
  virtual void InitModel(Rng* rng) = 0;
  /// Forward pass for one query; must cache state for BackwardOne.
  virtual float ForwardOne(const query::Query& q) = 0;
  /// Backward from dL/d(output scalar) of the most recent ForwardOne.
  virtual void BackwardOne(float dpred) = 0;
  /// Inference-only batched forward: fills `out` with exactly the values N
  /// ForwardOne calls would produce, in order (bit-identical — the batched
  /// kernels accumulate per output element in the same ascending order as
  /// the per-query GEMVs). May clobber the forward caches BackwardOne
  /// reads, so it must not be interleaved with training steps. The default
  /// is the plain loop; the model families override it with genuinely
  /// vectorized passes.
  virtual void ForwardBatch(const std::vector<query::Query>& queries,
                            std::vector<float>* out);
  virtual std::vector<nn::Param*> Params() = 0;
  // Const access for SizeBytes(); default delegates via const_cast-free
  // duplication in subclasses would be noisy, so expose a count instead.
  virtual size_t NumParams() const = 0;

  /// Featurization stats (feat_dim/feat_nonzeros/feat_l2) for
  /// EstimateWithDiagnostics, called right after ForwardOne. The default
  /// re-encodes the query flat; models whose forward already consumes the
  /// flat encoding override it to reuse that vector instead of paying a
  /// second encode on every logged query.
  virtual void FillEncodingDiagnostics(const query::Query& q,
                                       ExplainRecord* rec);
  /// Appends the standard featurization counters computed from `feat`.
  static void AddFeatureStats(const std::vector<float>& feat,
                              ExplainRecord* rec);

  const query::QueryEncoder& encoder() const { return *encoder_; }

 private:
  /// One pass over `queries` in minibatches; returns the mean loss.
  double RunEpoch(const std::vector<query::LabeledQuery>& queries,
                  std::vector<int>* order, Rng* rng);

 protected:
  NeuralOptions options_;

 private:
  std::unique_ptr<query::QueryEncoder> encoder_;
  std::unique_ptr<nn::Adam> adam_;
  Rng rng_{42};
  double last_epoch_loss_ = 0;
  // Pre-step gradient L2 norm of the last minibatch; only maintained while
  // the training log is enabled (-1 otherwise).
  double last_grad_norm_ = -1.0;
  std::vector<double> epoch_losses_;
  int64_t train_examples_ = -1;
  bool built_ = false;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_QUERY_DRIVEN_NEURAL_BASE_H_
