// LW-XGB: gradient-boosted trees over the flat query encoding (Dutt et al.'s
// lightweight tree-ensemble estimator).

#ifndef LCE_CE_QUERY_DRIVEN_LWXGB_MODEL_H_
#define LCE_CE_QUERY_DRIVEN_LWXGB_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ce/estimator.h"
#include "src/gbdt/gbdt.h"
#include "src/query/encoder.h"

namespace lce {
namespace ce {

class LwXgbEstimator : public Estimator {
 public:
  struct Options {
    gbdt::GradientBoosting::Options gbdt;
    /// Boosting rounds added per incremental update.
    int update_trees = 16;
    uint64_t seed = 42;
    query::FlatVariant flat_variant = query::FlatVariant::kFull;
  };

  LwXgbEstimator() : LwXgbEstimator(Options{}) {}
  explicit LwXgbEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "LW-XGB"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  /// Batched inference: encodes all queries, then one level-synchronous
  /// PredictBatch() over the SoA forest. Bit-identical to the per-query path.
  std::vector<double> EstimateBatch(
      const std::vector<query::Query>& queries) override;
  bool HasBatchEstimate() const override { return true; }
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithQueries(
      const std::vector<query::LabeledQuery>& queries) override;
  /// Encoding and tree traversal are pure reads of the fitted model.
  bool ThreadSafeEstimate() const override { return true; }
  uint64_t SizeBytes() const override;
  void DescribeModel(telemetry::ModelCard* card) const override;

 private:
  Options options_;
  std::unique_ptr<query::QueryEncoder> encoder_;
  std::unique_ptr<gbdt::GradientBoosting> model_;
  int64_t train_examples_ = -1;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_QUERY_DRIVEN_LWXGB_MODEL_H_
