// Flat-encoding estimators: Linear and FCN (the "lightweight NN" family).

#ifndef LCE_CE_QUERY_DRIVEN_FLAT_MODELS_H_
#define LCE_CE_QUERY_DRIVEN_FLAT_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ce/query_driven/neural_base.h"
#include "src/nn/mlp.h"

namespace lce {
namespace ce {

/// Single sigmoid unit over the flat encoding: the study's minimal-capacity
/// reference point (robust, weak fit).
class LinearEstimator : public NeuralQueryDrivenEstimator {
 public:
  explicit LinearEstimator(NeuralOptions options = {})
      : NeuralQueryDrivenEstimator(options) {}
  std::string Name() const override { return "Linear"; }

 protected:
  void InitModel(Rng* rng) override;
  float ForwardOne(const query::Query& q) override;
  void ForwardBatch(const std::vector<query::Query>& queries,
                    std::vector<float>* out) override;
  void BackwardOne(float dpred) override;
  std::vector<nn::Param*> Params() override { return net_->Params(); }
  size_t NumParams() const override { return net_ ? net_->NumParams() : 0; }
  void FillEncodingDiagnostics(const query::Query& /*q*/,
                               ExplainRecord* rec) override {
    AddFeatureStats(last_flat_, rec);  // ForwardOne just produced it
  }

 private:
  std::unique_ptr<nn::Mlp> net_;
  std::vector<float> last_flat_;  // encoding of the last ForwardOne query
};

/// Fully-connected network over the flat encoding (Dutt et al.'s LW-NN /
/// the study's FCN). The flat_variant option feeds the encoding ablation.
class FcnEstimator : public NeuralQueryDrivenEstimator {
 public:
  explicit FcnEstimator(NeuralOptions options = {})
      : NeuralQueryDrivenEstimator(options) {}
  std::string Name() const override { return "FCN"; }

 protected:
  void InitModel(Rng* rng) override;
  float ForwardOne(const query::Query& q) override;
  void ForwardBatch(const std::vector<query::Query>& queries,
                    std::vector<float>* out) override;
  void BackwardOne(float dpred) override;
  std::vector<nn::Param*> Params() override { return net_->Params(); }
  size_t NumParams() const override { return net_ ? net_->NumParams() : 0; }
  void FillEncodingDiagnostics(const query::Query& /*q*/,
                               ExplainRecord* rec) override {
    AddFeatureStats(last_flat_, rec);  // ForwardOne just produced it
  }

 private:
  std::unique_ptr<nn::Mlp> net_;
  std::vector<float> last_flat_;  // encoding of the last ForwardOne query
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_QUERY_DRIVEN_FLAT_MODELS_H_
