// Set-based estimators: MSCN (Kipf et al.) and FCN+Pool.
//
// Both consume the {tables, joins, predicates} token sets: each set runs
// through its own sub-MLP, tokens are mean-pooled per set, the pooled
// vectors are concatenated, and a head MLP emits the sigmoid output. MSCN's
// table tokens carry materialized-sample bitmaps; FCN+Pool's do not — that
// is the architectural difference the study isolates.

#ifndef LCE_CE_QUERY_DRIVEN_SET_MODELS_H_
#define LCE_CE_QUERY_DRIVEN_SET_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ce/query_driven/neural_base.h"
#include "src/nn/mlp.h"

namespace lce {
namespace ce {

class SetBasedEstimator : public NeuralQueryDrivenEstimator {
 public:
  SetBasedEstimator(NeuralOptions options, bool use_sample_bitmap)
      : NeuralQueryDrivenEstimator(options),
        use_sample_bitmap_(use_sample_bitmap) {}

 protected:
  void InitModel(Rng* rng) override;
  float ForwardOne(const query::Query& q) override;
  void ForwardBatch(const std::vector<query::Query>& queries,
                    std::vector<float>* out) override;
  void BackwardOne(float dpred) override;
  std::vector<nn::Param*> Params() override;
  size_t NumParams() const override;

 private:
  /// Runs one token set through its sub-MLP and mean-pools. Caches the row
  /// count for the backward pass.
  nn::Matrix PoolSet(nn::Mlp* mlp, const std::vector<std::vector<float>>& set,
                     int* rows_out);

  bool use_sample_bitmap_;
  std::unique_ptr<nn::Mlp> table_mlp_;
  std::unique_ptr<nn::Mlp> join_mlp_;
  std::unique_ptr<nn::Mlp> pred_mlp_;
  std::unique_ptr<nn::Mlp> head_;
  int table_rows_ = 0, join_rows_ = 0, pred_rows_ = 0;
};

class MscnEstimator : public SetBasedEstimator {
 public:
  explicit MscnEstimator(NeuralOptions options = {})
      : SetBasedEstimator(options, /*use_sample_bitmap=*/true) {}
  std::string Name() const override { return "MSCN"; }
};

class FcnPoolEstimator : public SetBasedEstimator {
 public:
  explicit FcnPoolEstimator(NeuralOptions options = {})
      : SetBasedEstimator(options, /*use_sample_bitmap=*/false) {}
  std::string Name() const override { return "FCN+Pool"; }
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_QUERY_DRIVEN_SET_MODELS_H_
