#include "src/ce/query_driven/neural_base.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "src/nn/serialize.h"
#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"
#include "src/util/telemetry/train_log.h"

namespace lce {
namespace ce {

namespace {

// Per-epoch loss telemetry: the loss lands in a histogram (bench manifests
// report its trajectory via quantiles), the freshest value in a gauge, and —
// when tracing — on the epoch's span so the loss curve is readable straight
// off the timeline.
void RecordEpochTelemetry(int epoch, double loss, telemetry::TraceSpan* span) {
  static telemetry::Counter& epochs =
      telemetry::MetricsRegistry::Global().counter("nn.epochs");
  static telemetry::Histogram& loss_hist =
      telemetry::MetricsRegistry::Global().histogram("nn.epoch_loss");
  static telemetry::Gauge& last_loss =
      telemetry::MetricsRegistry::Global().gauge("nn.last_epoch_loss");
  epochs.Increment();
  loss_hist.Observe(loss);
  last_loss.Set(loss);
  span->AddArg("epoch", static_cast<double>(epoch));
  span->AddArg("loss", loss);
}

}  // namespace

Status NeuralQueryDrivenEstimator::Prepare(const storage::Database& db) {
  rng_ = Rng(options_.seed);
  query::QueryEncoder::Options enc_opts;
  enc_opts.mscn_sample_size = options_.mscn_sample_size;
  encoder_ = std::make_unique<query::QueryEncoder>(&db, enc_opts,
                                                   options_.seed ^ 0x5eedULL);
  InitModel(&rng_);
  adam_ = std::make_unique<nn::Adam>(options_.learning_rate);
  return Status::OK();
}

Status NeuralQueryDrivenEstimator::SaveModel(std::ostream* os) {
  if (encoder_ == nullptr) {
    return Status::FailedPrecondition("no model to save: Build() first");
  }
  nn::SaveParams(Params(), os);
  if (!*os) return Status::Internal("model write failed");
  return Status::OK();
}

Status NeuralQueryDrivenEstimator::LoadModel(std::istream* is) {
  if (encoder_ == nullptr) {
    return Status::FailedPrecondition("Prepare() or Build() before LoadModel");
  }
  Status s = nn::LoadParams(Params(), is);
  if (!s.ok()) return s;
  built_ = true;
  return Status::OK();
}

Status NeuralQueryDrivenEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  if (training.empty()) {
    return Status::InvalidArgument(Name() + " needs training queries");
  }
  Status prepared = Prepare(db);
  if (!prepared.ok()) return prepared;
  epoch_losses_.clear();

  std::vector<int> order(training.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  const bool train_log = telemetry::TrainLogEnabled();
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    telemetry::ScopedPhase phase("nn/epoch");
    telemetry::TraceSpan span("nn/epoch");
    int64_t epoch_start = train_log ? telemetry::MonotonicNanos() : 0;
    last_epoch_loss_ = RunEpoch(training, &order, &rng_);
    epoch_losses_.push_back(last_epoch_loss_);
    RecordEpochTelemetry(epoch, last_epoch_loss_, &span);
    if (train_log) {
      telemetry::TrainingEvent ev;
      ev.model = Name();
      ev.family = "nn";
      ev.event = "epoch";
      ev.index = epoch;
      ev.loss = last_epoch_loss_;
      ev.grad_norm = last_grad_norm_;
      ev.learning_rate = options_.learning_rate;
      ev.examples = static_cast<int64_t>(training.size());
      ev.wall_seconds =
          static_cast<double>(telemetry::MonotonicNanos() - epoch_start) / 1e9;
      telemetry::RecordTrainingEvent(std::move(ev));
    }
  }
  train_examples_ = static_cast<int64_t>(training.size());
  built_ = true;
  return Status::OK();
}

double NeuralQueryDrivenEstimator::RunEpoch(
    const std::vector<query::LabeledQuery>& queries, std::vector<int>* order,
    Rng* rng) {
  rng->Shuffle(order);
  double epoch_loss = 0;
  size_t n = order->size();
  size_t batches = 0;
  for (size_t start = 0; start < n; start += options_.batch_size) {
    size_t end = std::min(n, start + options_.batch_size);
    int b = static_cast<int>(end - start);
    double batch_loss = 0;
    for (size_t i = start; i < end; ++i) {
      const query::LabeledQuery& lq = queries[(*order)[i]];
      float target = encoder_->NormalizeLog(lq.cardinality);
      float pred = ForwardOne(lq.q);
      float diff = pred - target;
      float dpred;
      switch (options_.loss) {
        case nn::LossKind::kMse:
          batch_loss += static_cast<double>(diff) * diff;
          dpred = 2.0f * diff / static_cast<float>(b);
          break;
        case nn::LossKind::kLogQ:
        default:
          batch_loss += std::abs(static_cast<double>(diff));
          dpred = (diff > 0 ? 1.0f : (diff < 0 ? -1.0f : 0.0f)) /
                  static_cast<float>(b);
          break;
      }
      BackwardOne(dpred);
    }
    // Gradient norm is read *before* Adam consumes (and zeroes) the grads;
    // only when the training log wants it — outputs stay bit-identical with
    // the gate off since nothing else observes the value.
    if (telemetry::TrainLogEnabled()) {
      double sq_sum = 0;
      for (nn::Param* p : Params()) {
        for (int r = 0; r < p->grad.rows(); ++r) {
          const float* row = p->grad.RowPtr(r);
          for (int c = 0; c < p->grad.cols(); ++c) {
            sq_sum += static_cast<double>(row[c]) * row[c];
          }
        }
      }
      last_grad_norm_ = std::sqrt(sq_sum);
    }
    adam_->Step(Params());
    epoch_loss += batch_loss / b;
    ++batches;
  }
  return batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
}

double NeuralQueryDrivenEstimator::EstimateCardinality(const query::Query& q) {
  LCE_CHECK_MSG(built_, Name() << ": Build() before EstimateCardinality()");
  // Stage decomposition: ForwardOne marks encode/forward; the denormalize
  // tail is postprocess.
  telemetry::StageTimer stages([this] { return Name(); });
  float y = ForwardOne(q);
  telemetry::StageTimer::Mark("postprocess");
  return encoder_->DenormalizeLog(std::clamp(y, 0.0f, 1.0f));
}

std::vector<double> NeuralQueryDrivenEstimator::EstimateBatch(
    const std::vector<query::Query>& queries) {
  LCE_CHECK_MSG(built_, Name() << ": Build() before EstimateBatch()");
  std::vector<double> out(queries.size());
  if (queries.empty()) return out;
  // Batched stages: histograms record per-query microseconds weighted by the
  // batch size, so batch and per-query paths share one scale.
  telemetry::StageTimer stages([this] { return Name(); },
                               static_cast<uint64_t>(queries.size()));
  std::vector<float> preds;
  ForwardBatch(queries, &preds);
  LCE_CHECK(preds.size() == queries.size());
  telemetry::StageTimer::Mark("postprocess");
  for (size_t i = 0; i < preds.size(); ++i) {
    out[i] = encoder_->DenormalizeLog(std::clamp(preds[i], 0.0f, 1.0f));
  }
  return out;
}

void NeuralQueryDrivenEstimator::ForwardBatch(
    const std::vector<query::Query>& queries, std::vector<float>* out) {
  // Fallback for subclasses without a vectorized pass: the plain loop, which
  // satisfies the bit-identity contract trivially.
  out->clear();
  out->reserve(queries.size());
  for (const query::Query& q : queries) out->push_back(ForwardOne(q));
}

double NeuralQueryDrivenEstimator::EstimateWithDiagnostics(
    const query::Query& q, ExplainRecord* rec) {
  LCE_CHECK_MSG(built_, Name() << ": Build() before EstimateCardinality()");
  rec->estimator = Name();
  FillQueryShape(q, rec);
  for (const query::Predicate& p : q.predicates) {
    // Learned models estimate jointly; no per-predicate attribution.
    rec->predicates.push_back({p.col.table, p.col.column, p.lo, p.hi, -1.0,
                               "learned"});
  }
  double est;
  float y, clamped;
  {
    telemetry::StageTimer stages([this] { return Name(); });
    y = ForwardOne(q);
    telemetry::StageTimer::Mark("postprocess");
    clamped = std::clamp(y, 0.0f, 1.0f);
    est = encoder_->DenormalizeLog(clamped);
  }

  rec->AddCounter("pred_normalized", static_cast<double>(y));
  FillEncodingDiagnostics(q, rec);
  if (y != clamped) {
    rec->AddFallback("nn.output_clamped",
                     "sigmoid output " + std::to_string(y) +
                         " clamped to [0,1] before denormalization");
  }
  rec->estimate = est;
  return est;
}

void NeuralQueryDrivenEstimator::FillEncodingDiagnostics(const query::Query& q,
                                                         ExplainRecord* rec) {
  // Featurization stats from a fresh (read-only) encoding of the same query;
  // ForwardOne's cached activations and the estimate are untouched.
  AddFeatureStats(encoder_->FlatEncode(q, options_.flat_variant), rec);
}

void NeuralQueryDrivenEstimator::AddFeatureStats(const std::vector<float>& feat,
                                                 ExplainRecord* rec) {
  double l2 = 0;
  int nonzeros = 0;
  for (float f : feat) {
    l2 += static_cast<double>(f) * f;
    if (f != 0.0f) ++nonzeros;
  }
  rec->AddCounter("feat_dim", static_cast<double>(feat.size()));
  rec->AddCounter("feat_nonzeros", static_cast<double>(nonzeros));
  rec->AddCounter("feat_l2", std::sqrt(l2));
}

Status NeuralQueryDrivenEstimator::UpdateWithQueries(
    const std::vector<query::LabeledQuery>& queries) {
  if (!built_) return Status::FailedPrecondition("Build() before update");
  if (queries.empty()) return Status::OK();
  std::vector<int> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  const bool train_log = telemetry::TrainLogEnabled();
  for (int epoch = 0; epoch < options_.update_epochs; ++epoch) {
    telemetry::ScopedPhase phase("nn/update_epoch");
    telemetry::TraceSpan span("nn/update_epoch");
    int64_t epoch_start = train_log ? telemetry::MonotonicNanos() : 0;
    last_epoch_loss_ = RunEpoch(queries, &order, &rng_);
    epoch_losses_.push_back(last_epoch_loss_);
    RecordEpochTelemetry(epoch, last_epoch_loss_, &span);
    if (train_log) {
      telemetry::TrainingEvent ev;
      ev.model = Name();
      ev.family = "nn";
      ev.event = "epoch";
      ev.index = epoch;
      ev.loss = last_epoch_loss_;
      ev.grad_norm = last_grad_norm_;
      ev.learning_rate = options_.learning_rate;
      ev.examples = static_cast<int64_t>(queries.size());
      ev.wall_seconds =
          static_cast<double>(telemetry::MonotonicNanos() - epoch_start) / 1e9;
      ev.extra.emplace_back("update", 1.0);
      telemetry::RecordTrainingEvent(std::move(ev));
    }
  }
  return Status::OK();
}

uint64_t NeuralQueryDrivenEstimator::SizeBytes() const {
  return NumParams() * sizeof(float);
}

void NeuralQueryDrivenEstimator::DescribeModel(
    telemetry::ModelCard* card) const {
  card->model = Name();
  card->family = "nn";
  card->parameter_count = static_cast<int64_t>(NumParams());
  card->footprint_bytes = static_cast<int64_t>(FootprintBytes());
  card->train_examples = train_examples_;
  card->epochs = static_cast<int64_t>(epoch_losses_.size());
  if (!epoch_losses_.empty()) card->final_train_loss = last_epoch_loss_;
}

}  // namespace ce
}  // namespace lce
