#include "src/ce/query_driven/set_models.h"

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

namespace {

// Truncates every token to `dim` entries (drops MSCN bitmaps for FCN+Pool).
std::vector<std::vector<float>> TruncateTokens(
    const std::vector<std::vector<float>>& tokens, int dim) {
  std::vector<std::vector<float>> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    out.emplace_back(t.begin(), t.begin() + dim);
  }
  return out;
}

}  // namespace

void SetBasedEstimator::InitModel(Rng* rng) {
  int h = options_.hidden_dim;
  int table_dim = use_sample_bitmap_
                      ? encoder().mscn_table_dim()
                      : static_cast<int>(encoder().schema().tables.size());
  table_mlp_ = std::make_unique<nn::Mlp>(std::vector<int>{table_dim, h, h},
                                         nn::Activation::kRelu,
                                         nn::Activation::kRelu, rng);
  join_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{encoder().mscn_join_dim(), h, h},
      nn::Activation::kRelu, nn::Activation::kRelu, rng);
  pred_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{encoder().mscn_pred_dim(), h, h},
      nn::Activation::kRelu, nn::Activation::kRelu, rng);
  head_ = std::make_unique<nn::Mlp>(std::vector<int>{3 * h, h, 1},
                                    nn::Activation::kRelu,
                                    nn::Activation::kSigmoid, rng);
}

nn::Matrix SetBasedEstimator::PoolSet(
    nn::Mlp* mlp, const std::vector<std::vector<float>>& set, int* rows_out) {
  nn::Matrix tokens = nn::Matrix::Stack(set);
  *rows_out = tokens.rows();
  return nn::ColMean(mlp->Forward(tokens));
}

float SetBasedEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  query::MscnSets sets = encoder().MscnEncode(q);
  telemetry::StageTimer::Mark("forward");
  std::vector<std::vector<float>> table_tokens =
      use_sample_bitmap_
          ? std::move(sets.tables)
          : TruncateTokens(sets.tables,
                           static_cast<int>(encoder().schema().tables.size()));
  nn::Matrix pt = PoolSet(table_mlp_.get(), table_tokens, &table_rows_);
  nn::Matrix pj = PoolSet(join_mlp_.get(), sets.joins, &join_rows_);
  nn::Matrix pp = PoolSet(pred_mlp_.get(), sets.predicates, &pred_rows_);
  nn::Matrix concat = nn::ConcatCols({&pt, &pj, &pp});
  return head_->Forward(concat).Scalar();
}

void SetBasedEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  nn::Matrix dconcat = head_->Backward(g);
  int h = options_.hidden_dim;
  LCE_CHECK(dconcat.cols() == 3 * h);
  auto backward_set = [&](nn::Mlp* mlp, int offset, int rows) {
    // Mean pooling: every token row receives dpooled / rows.
    nn::Matrix dtokens(rows, h);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < h; ++c) {
        dtokens.At(r, c) = dconcat.At(0, offset + c) / static_cast<float>(rows);
      }
    }
    mlp->Backward(dtokens);
  };
  backward_set(table_mlp_.get(), 0, table_rows_);
  backward_set(join_mlp_.get(), h, join_rows_);
  backward_set(pred_mlp_.get(), 2 * h, pred_rows_);
}

std::vector<nn::Param*> SetBasedEstimator::Params() {
  std::vector<nn::Param*> params;
  for (nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                     head_.get()}) {
    for (nn::Param* p : m->Params()) params.push_back(p);
  }
  return params;
}

size_t SetBasedEstimator::NumParams() const {
  size_t n = 0;
  for (const nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                           head_.get()}) {
    if (m != nullptr) n += m->NumParams();
  }
  return n;
}

}  // namespace ce
}  // namespace lce
