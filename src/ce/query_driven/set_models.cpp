#include "src/ce/query_driven/set_models.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

namespace {

// Truncates every token to `dim` entries (drops MSCN bitmaps for FCN+Pool).
std::vector<std::vector<float>> TruncateTokens(
    const std::vector<std::vector<float>>& tokens, int dim) {
  std::vector<std::vector<float>> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    out.emplace_back(t.begin(), t.begin() + dim);
  }
  return out;
}

// Mean-pools each `counts[i]`-row segment of `m` into row i of `out`
// starting at `col_offset`, replicating nn::ColMean exactly: ascending-row
// accumulation into a zeroed float buffer, then one multiply by 1/rows —
// so each pooled row is bit-identical to ColMean over that query's tokens.
void SegmentMeanInto(const nn::Matrix& m, const std::vector<int>& counts,
                     int col_offset, nn::Matrix* out) {
  int off = 0;
  std::vector<float> acc(static_cast<size_t>(m.cols()));
  for (size_t i = 0; i < counts.size(); ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (int r = 0; r < counts[i]; ++r) {
      const float* row = m.RowPtr(off + r);
      for (int c = 0; c < m.cols(); ++c) acc[c] += row[c];
    }
    const float inv = 1.0f / static_cast<float>(counts[i]);
    float* orow = out->RowPtr(static_cast<int>(i));
    for (int c = 0; c < m.cols(); ++c) orow[col_offset + c] = acc[c] * inv;
    off += counts[i];
  }
}

}  // namespace

void SetBasedEstimator::InitModel(Rng* rng) {
  int h = options_.hidden_dim;
  int table_dim = use_sample_bitmap_
                      ? encoder().mscn_table_dim()
                      : static_cast<int>(encoder().schema().tables.size());
  table_mlp_ = std::make_unique<nn::Mlp>(std::vector<int>{table_dim, h, h},
                                         nn::Activation::kRelu,
                                         nn::Activation::kRelu, rng);
  join_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{encoder().mscn_join_dim(), h, h},
      nn::Activation::kRelu, nn::Activation::kRelu, rng);
  pred_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{encoder().mscn_pred_dim(), h, h},
      nn::Activation::kRelu, nn::Activation::kRelu, rng);
  head_ = std::make_unique<nn::Mlp>(std::vector<int>{3 * h, h, 1},
                                    nn::Activation::kRelu,
                                    nn::Activation::kSigmoid, rng);
}

nn::Matrix SetBasedEstimator::PoolSet(
    nn::Mlp* mlp, const std::vector<std::vector<float>>& set, int* rows_out) {
  nn::Matrix tokens = nn::Matrix::Stack(set);
  *rows_out = tokens.rows();
  return nn::ColMean(mlp->Forward(tokens));
}

float SetBasedEstimator::ForwardOne(const query::Query& q) {
  telemetry::StageTimer::Mark("encode");
  query::MscnSets sets = encoder().MscnEncode(q);
  telemetry::StageTimer::Mark("forward");
  std::vector<std::vector<float>> table_tokens =
      use_sample_bitmap_
          ? std::move(sets.tables)
          : TruncateTokens(sets.tables,
                           static_cast<int>(encoder().schema().tables.size()));
  nn::Matrix pt = PoolSet(table_mlp_.get(), table_tokens, &table_rows_);
  nn::Matrix pj = PoolSet(join_mlp_.get(), sets.joins, &join_rows_);
  nn::Matrix pp = PoolSet(pred_mlp_.get(), sets.predicates, &pred_rows_);
  nn::Matrix concat = nn::ConcatCols({&pt, &pj, &pp});
  return head_->Forward(concat).Scalar();
}

void SetBasedEstimator::ForwardBatch(const std::vector<query::Query>& queries,
                                     std::vector<float>* out) {
  telemetry::StageTimer::Mark("encode");
  const int n = static_cast<int>(queries.size());
  const int plain_table_dim =
      static_cast<int>(encoder().schema().tables.size());
  // All queries' tokens concatenated per set type; counts delimit each
  // query's segment. MscnEncode pads empty sets with one all-zero token, so
  // every segment has >= 1 row.
  std::vector<std::vector<float>> tables, joins, preds;
  std::vector<int> tcnt(n), jcnt(n), pcnt(n);
  for (int i = 0; i < n; ++i) {
    query::MscnSets sets = encoder().MscnEncode(queries[i]);
    tcnt[i] = static_cast<int>(sets.tables.size());
    jcnt[i] = static_cast<int>(sets.joins.size());
    pcnt[i] = static_cast<int>(sets.predicates.size());
    if (use_sample_bitmap_) {
      for (auto& t : sets.tables) tables.push_back(std::move(t));
    } else {
      for (const auto& t : sets.tables) {
        tables.emplace_back(t.begin(), t.begin() + plain_table_dim);
      }
    }
    for (auto& t : sets.joins) joins.push_back(std::move(t));
    for (auto& t : sets.predicates) preds.push_back(std::move(t));
  }
  telemetry::StageTimer::Mark("forward");
  // One multi-row pass per sub-MLP over every query's tokens at once, then
  // per-query segment pooling, then one multi-row head pass.
  nn::Matrix tm = table_mlp_->Forward(nn::Matrix::Stack(tables));
  nn::Matrix jm = join_mlp_->Forward(nn::Matrix::Stack(joins));
  nn::Matrix pm = pred_mlp_->Forward(nn::Matrix::Stack(preds));
  const int h = options_.hidden_dim;
  nn::Matrix pooled(n, 3 * h);
  SegmentMeanInto(tm, tcnt, 0, &pooled);
  SegmentMeanInto(jm, jcnt, h, &pooled);
  SegmentMeanInto(pm, pcnt, 2 * h, &pooled);
  nn::Matrix y = head_->Forward(pooled);
  out->resize(queries.size());
  for (int i = 0; i < n; ++i) (*out)[i] = y.At(i, 0);
}

void SetBasedEstimator::BackwardOne(float dpred) {
  nn::Matrix g(1, 1);
  g.At(0, 0) = dpred;
  nn::Matrix dconcat = head_->Backward(g);
  int h = options_.hidden_dim;
  LCE_CHECK(dconcat.cols() == 3 * h);
  auto backward_set = [&](nn::Mlp* mlp, int offset, int rows) {
    // Mean pooling: every token row receives dpooled / rows.
    nn::Matrix dtokens(rows, h);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < h; ++c) {
        dtokens.At(r, c) = dconcat.At(0, offset + c) / static_cast<float>(rows);
      }
    }
    mlp->Backward(dtokens);
  };
  backward_set(table_mlp_.get(), 0, table_rows_);
  backward_set(join_mlp_.get(), h, join_rows_);
  backward_set(pred_mlp_.get(), 2 * h, pred_rows_);
}

std::vector<nn::Param*> SetBasedEstimator::Params() {
  std::vector<nn::Param*> params;
  for (nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                     head_.get()}) {
    for (nn::Param* p : m->Params()) params.push_back(p);
  }
  return params;
}

size_t SetBasedEstimator::NumParams() const {
  size_t n = 0;
  for (const nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                           head_.get()}) {
    if (m != nullptr) n += m->NumParams();
  }
  return n;
}

}  // namespace ce
}  // namespace lce
