#include "src/ce/factory.h"

#include "src/ce/data_driven/bayesnet.h"
#include "src/ce/data_driven/naru.h"
#include "src/ce/data_driven/spn.h"
#include "src/ce/query_driven/flat_models.h"
#include "src/ce/query_driven/lwxgb_model.h"
#include "src/ce/query_driven/recurrent_models.h"
#include "src/ce/query_driven/set_models.h"
#include "src/ce/traditional/histogram.h"
#include "src/ce/traditional/kde.h"
#include "src/ce/traditional/multidim_histogram.h"
#include "src/ce/traditional/sampling.h"
#include "src/ce/traditional/wander_join.h"
#include "src/util/logging.h"

namespace lce {
namespace ce {

std::vector<std::string> AllEstimatorNames() {
  return {"Histogram", "MultiHist",  "Sampling", "KDE",
          "WanderJoin",                                      // traditional
          "Linear",    "FCN",        "FCN+Pool", "MSCN",
          "RNN",       "LSTM",       "LW-XGB",               // query-driven
          "Naru",      "DeepDB-SPN", "BayesNet"};            // data-driven
}

std::vector<std::string> QueryDrivenNeuralNames() {
  return {"Linear", "FCN", "FCN+Pool", "MSCN", "RNN", "LSTM"};
}

std::unique_ptr<Estimator> MakeEstimator(const std::string& name,
                                         const NeuralOptions& neural,
                                         uint64_t seed) {
  LCE_LOG(DEBUG) << "MakeEstimator(" << name << ", seed=" << seed << ")";
  NeuralOptions n = neural;
  n.seed = seed;
  if (name == "Histogram") return std::make_unique<HistogramEstimator>();
  if (name == "MultiHist") {
    return std::make_unique<MultiDimHistogramEstimator>();
  }
  if (name == "Sampling") {
    SamplingEstimator::Options o;
    o.seed = seed;
    return std::make_unique<SamplingEstimator>(o);
  }
  if (name == "KDE") {
    KdeEstimator::Options o;
    o.seed = seed;
    return std::make_unique<KdeEstimator>(o);
  }
  if (name == "WanderJoin") {
    WanderJoinEstimator::Options o;
    o.seed = seed;
    return std::make_unique<WanderJoinEstimator>(o);
  }
  if (name == "Linear") return std::make_unique<LinearEstimator>(n);
  if (name == "FCN") return std::make_unique<FcnEstimator>(n);
  if (name == "FCN+Pool") return std::make_unique<FcnPoolEstimator>(n);
  if (name == "MSCN") return std::make_unique<MscnEstimator>(n);
  if (name == "RNN") return std::make_unique<RnnEstimator>(n);
  if (name == "LSTM") return std::make_unique<LstmEstimator>(n);
  if (name == "LW-XGB") {
    LwXgbEstimator::Options o;
    o.seed = seed;
    o.flat_variant = neural.flat_variant;
    return std::make_unique<LwXgbEstimator>(o);
  }
  if (name == "Naru") {
    return std::make_unique<NaruEstimator>(NaruTableModel::Options{}, seed);
  }
  if (name == "DeepDB-SPN") {
    return std::make_unique<SpnEstimator>(SpnTableModel::Options{}, seed);
  }
  if (name == "BayesNet") {
    return std::make_unique<BayesNetEstimator>(BayesNetTableModel::Options{},
                                               seed);
  }
  LCE_CHECK_MSG(false, "unknown estimator name: " << name);
  return nullptr;
}

}  // namespace ce
}  // namespace lce
