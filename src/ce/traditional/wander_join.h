// Wander Join estimator (Li et al., SIGMOD 2016): online aggregation via
// random walks along join-key hash indexes. Each walk picks a uniform row of
// the first table, then follows matching rows through the query's join tree;
// the product of fanouts is an unbiased estimate of the join count. The only
// join-aware sampling estimator in the zoo — strong on joins where
// independent per-table samples miss.

#ifndef LCE_CE_TRADITIONAL_WANDER_JOIN_H_
#define LCE_CE_TRADITIONAL_WANDER_JOIN_H_

#include <map>
#include <vector>

#include "src/ce/estimator.h"
#include "src/exec/hash_index.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

class WanderJoinEstimator : public Estimator {
 public:
  struct Options {
    int num_walks = 600;
    uint64_t seed = 37;
  };

  WanderJoinEstimator() : WanderJoinEstimator(Options{}) {}
  explicit WanderJoinEstimator(Options options)
      : options_(options), rng_(options.seed) {}

  std::string Name() const override { return "WanderJoin"; }

  /// Builds hash indexes on every join-key column. NOTE: unlike the other
  /// estimators, Wander Join walks the *live* data, so `db` must outlive the
  /// estimator (it is an online method by design).
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  Status UpdateWithData(const storage::Database& db) override;
  uint64_t SizeBytes() const override;

 private:
  bool RowPasses(const query::Query& q, int table, uint32_t row) const;

  Options options_;
  Rng rng_;
  const storage::Database* db_ = nullptr;
  // (table, column) -> index over that join-key column.
  std::map<std::pair<int, int>, exec::HashIndex> indexes_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_TRADITIONAL_WANDER_JOIN_H_
