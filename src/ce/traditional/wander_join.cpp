#include "src/ce/traditional/wander_join.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

Status WanderJoinEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status WanderJoinEstimator::UpdateWithData(const storage::Database& db) {
  db_ = &db;
  indexes_.clear();
  const storage::DatabaseSchema& schema = db.schema();
  for (const storage::JoinEdge& e : schema.joins) {
    for (const auto& [table_name, column_name] :
         {std::make_pair(e.left_table, e.left_column),
          std::make_pair(e.right_table, e.right_column)}) {
      int t = schema.TableIndex(table_name);
      int c = schema.tables[t].ColumnIndex(column_name);
      auto key = std::make_pair(t, c);
      if (indexes_.count(key) == 0) {
        if (!db.table(t).finalized()) {
          return Status::FailedPrecondition("table not finalized");
        }
        indexes_[key].Build(db.table(t), c);
      }
    }
  }
  return Status::OK();
}

bool WanderJoinEstimator::RowPasses(const query::Query& q, int table,
                                    uint32_t row) const {
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table != table) continue;
    storage::Value v = db_->table(table).column(p.col.column)[row];
    if (v < p.lo || v > p.hi) return false;
  }
  return true;
}

double WanderJoinEstimator::EstimateCardinality(const query::Query& q) {
  LCE_CHECK_MSG(db_ != nullptr, "Build() before EstimateCardinality()");
  // encode = walk-order planning; traverse = the random walks themselves.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("encode");
  const storage::DatabaseSchema& schema = db_->schema();

  // Walk order: BFS over the query's join tree from its first table. Each
  // step records (child table, child column, parent table, parent column).
  struct Step {
    int table;
    int column;         // child-side join key
    int parent;         // table whose chosen row provides the key
    int parent_column;  // parent-side join key
  };
  std::vector<Step> steps;
  std::vector<int> order = {q.tables[0]};
  std::vector<int> pending = q.join_edges;
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      const storage::JoinEdge& e = schema.joins[pending[i]];
      int lt = schema.TableIndex(e.left_table);
      int rt = schema.TableIndex(e.right_table);
      bool has_l = std::find(order.begin(), order.end(), lt) != order.end();
      bool has_r = std::find(order.begin(), order.end(), rt) != order.end();
      if (has_l == has_r) continue;  // both placed (impossible on a tree) or neither
      int parent = has_l ? lt : rt;
      int child = has_l ? rt : lt;
      Step step;
      step.table = child;
      step.parent = parent;
      step.column = schema.tables[child].ColumnIndex(
          has_l ? e.right_column : e.left_column);
      step.parent_column = schema.tables[parent].ColumnIndex(
          has_l ? e.left_column : e.right_column);
      steps.push_back(step);
      order.push_back(child);
      pending.erase(pending.begin() + i);
      progressed = true;
      break;
    }
    LCE_CHECK_MSG(progressed, "query join edges do not form a tree");
  }

  const storage::Table& first = db_->table(q.tables[0]);
  if (first.num_rows() == 0) return 1.0;
  stages.Stage("traverse");
  double total = 0;
  std::vector<uint32_t> chosen_row(db_->num_tables(), 0);
  for (int w = 0; w < options_.num_walks; ++w) {
    uint32_t row = static_cast<uint32_t>(rng_.UniformInt(
        0, static_cast<int64_t>(first.num_rows()) - 1));
    if (!RowPasses(q, q.tables[0], row)) continue;
    chosen_row[q.tables[0]] = row;
    double walk = static_cast<double>(first.num_rows());
    bool dead = false;
    for (const Step& step : steps) {
      storage::Value key =
          db_->table(step.parent).column(step.parent_column)
              [chosen_row[step.parent]];
      auto it = indexes_.find({step.table, step.column});
      LCE_CHECK(it != indexes_.end());
      const std::vector<uint32_t>* bucket = it->second.Lookup(key);
      if (bucket == nullptr || bucket->empty()) {
        dead = true;
        break;
      }
      walk *= static_cast<double>(bucket->size());
      uint32_t pick = (*bucket)[rng_.Below(
          static_cast<uint32_t>(bucket->size()))];
      if (!RowPasses(q, step.table, pick)) {
        dead = true;
        break;
      }
      chosen_row[step.table] = pick;
    }
    if (!dead) total += walk;
  }
  return std::max(1.0, total / options_.num_walks);
}

uint64_t WanderJoinEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& [key, index] : indexes_) bytes += index.SizeBytes();
  return bytes;
}

}  // namespace ce
}  // namespace lce
