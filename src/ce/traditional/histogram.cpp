#include "src/ce/traditional/histogram.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

double McvList::FractionInRange(storage::Value lo, storage::Value hi) const {
  double f = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi) f += fractions[i];
  }
  return f;
}

void EquiDepthHistogram::Build(std::vector<storage::Value> values,
                               int num_buckets) {
  bounds_.clear();
  counts_.clear();
  total_ = values.size();
  if (values.empty()) return;
  std::sort(values.begin(), values.end());
  num_buckets = std::max(1, std::min<int>(num_buckets,
                                          static_cast<int>(values.size())));
  bounds_.push_back(values.front());
  size_t per_bucket = values.size() / num_buckets;
  size_t extra = values.size() % num_buckets;
  size_t pos = 0;
  for (int b = 0; b < num_buckets; ++b) {
    size_t take = per_bucket + (static_cast<size_t>(b) < extra ? 1 : 0);
    pos += take;
    counts_.push_back(take);
    bounds_.push_back(values[std::min(pos, values.size()) - 1]);
  }
}

double EquiDepthHistogram::FractionInRange(storage::Value lo,
                                           storage::Value hi) const {
  if (total_ == 0 || counts_.empty() || hi < lo) return 0;
  double covered = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    storage::Value blo = bounds_[b];
    storage::Value bhi = bounds_[b + 1];
    if (bhi < lo || blo > hi) continue;
    double overlap;
    if (bhi == blo) {
      overlap = 1.0;  // point bucket fully inside [lo, hi] here
    } else {
      double olo = static_cast<double>(std::max(lo, blo));
      double ohi = static_cast<double>(std::min(hi, bhi));
      overlap = (ohi - olo + 1.0) /
                (static_cast<double>(bhi) - static_cast<double>(blo) + 1.0);
      overlap = std::clamp(overlap, 0.0, 1.0);
    }
    covered += overlap * static_cast<double>(counts_[b]);
  }
  return covered / static_cast<double>(total_);
}

uint64_t EquiDepthHistogram::SizeBytes() const {
  return bounds_.size() * sizeof(storage::Value) +
         counts_.size() * sizeof(uint64_t);
}

double ColumnStatistics::Selectivity(storage::Value lo,
                                     storage::Value hi) const {
  if (hi < lo || null_free_rows <= 0) return 0;
  double sel = mcv.FractionInRange(lo, hi);
  double hist_mass = 1.0 - mcv.total_fraction;
  if (hist_mass > 0 && !histogram.empty()) {
    sel += hist_mass * histogram.FractionInRange(lo, hi);
  }
  return std::clamp(sel, 0.0, 1.0);
}

Status HistogramEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  (void)training;  // statistics-only estimator
  return UpdateWithData(db);
}

Status HistogramEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  stats_.assign(db.num_tables(), {});
  table_rows_.assign(db.num_tables(), 0);
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table " + table.name() +
                                        " not finalized");
    }
    table_rows_[t] = static_cast<double>(table.num_rows());
    stats_[t].resize(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      ColumnStatistics& cs = stats_[t][c];
      const std::vector<storage::Value>& col = table.column(c);
      cs.null_free_rows = static_cast<double>(col.size());
      cs.distinct = std::max<uint64_t>(1, table.stats(c).distinct);

      // Frequency map → MCV list.
      std::map<storage::Value, uint64_t> freq;
      for (storage::Value v : col) ++freq[v];
      std::vector<std::pair<uint64_t, storage::Value>> by_count;
      by_count.reserve(freq.size());
      for (const auto& [v, n] : freq) by_count.push_back({n, v});
      std::sort(by_count.rbegin(), by_count.rend());
      size_t k = std::min<size_t>(options_.num_mcvs, by_count.size());
      cs.mcv = McvList{};
      double n_rows = std::max(1.0, cs.null_free_rows);
      for (size_t i = 0; i < k; ++i) {
        // Only keep values noticeably above the uniform frequency, like
        // PostgreSQL's MCV cutoff.
        double f = static_cast<double>(by_count[i].first) / n_rows;
        if (f * static_cast<double>(cs.distinct) < 1.25 && i > 0) break;
        cs.mcv.values.push_back(by_count[i].second);
        cs.mcv.fractions.push_back(f);
        cs.mcv.total_fraction += f;
      }

      // Histogram over the residual (non-MCV) values.
      std::vector<storage::Value> residual;
      residual.reserve(col.size());
      for (storage::Value v : col) {
        bool is_mcv = std::find(cs.mcv.values.begin(), cs.mcv.values.end(),
                                v) != cs.mcv.values.end();
        if (!is_mcv) residual.push_back(v);
      }
      cs.histogram.Build(std::move(residual), options_.num_buckets);
    }
  }
  return Status::OK();
}

double HistogramEstimator::TableSelectivity(const query::Query& q,
                                            int table_index) const {
  double sel = 1.0;
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table != table_index) continue;
    sel *= stats_[table_index][p.col.column].Selectivity(p.lo, p.hi);
  }
  return sel;
}

double HistogramEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double HistogramEstimator::EstimateWithDiagnostics(const query::Query& q,
                                                   ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double HistogramEstimator::EstimateImpl(const query::Query& q,
                                        ExplainRecord* rec) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // Bucket lookups plus the join formula; no separate encode step.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  double card = 1.0;
  for (int t : q.tables) {
    double sel = 1.0;
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table != t) continue;
      double s = stats_[t][p.col.column].Selectivity(p.lo, p.hi);
      sel *= s;
      if (rec != nullptr) {
        rec->predicates.push_back(
            {p.col.table, p.col.column, p.lo, p.hi, s, "mcv+equidepth"});
      }
    }
    card *= table_rows_[t] * sel;
  }
  for (int j : q.join_edges) {
    const storage::JoinEdge& e = schema_->joins[j];
    int lt = schema_->TableIndex(e.left_table);
    int rt = schema_->TableIndex(e.right_table);
    int lc = schema_->tables[lt].ColumnIndex(e.left_column);
    int rc = schema_->tables[rt].ColumnIndex(e.right_column);
    double ndv = static_cast<double>(
        std::max(stats_[lt][lc].distinct, stats_[rt][rc].distinct));
    card /= std::max(1.0, ndv);
    if (rec != nullptr) {
      rec->AddCounter("join." + e.left_table + "-" + e.right_table + ".ndv",
                      ndv);
    }
  }
  return std::max(1.0, card);
}

uint64_t HistogramEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& table_stats : stats_) {
    for (const auto& cs : table_stats) {
      bytes += cs.histogram.SizeBytes();
      bytes += cs.mcv.values.size() * (sizeof(storage::Value) + sizeof(double));
      bytes += sizeof(ColumnStatistics);
    }
  }
  return bytes;
}

}  // namespace ce
}  // namespace lce
