#include "src/ce/traditional/multidim_histogram.h"

#include <algorithm>
#include <cmath>

#include "src/storage/table.h"
#include "src/util/logging.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace ce {

void GridHistogram::Build(const storage::Table& table,
                          const std::vector<int>& columns,
                          uint64_t max_cells) {
  columns_ = columns;
  bins_.clear();
  min_.clear();
  max_.clear();
  cells_.clear();
  total_ = static_cast<double>(table.num_rows());
  if (columns_.empty()) return;

  int d = static_cast<int>(columns_.size());
  // Per-dimension bins: floor(max_cells^(1/d)), at least 2, at most 64.
  int per_dim = std::max(
      2, static_cast<int>(std::pow(static_cast<double>(max_cells),
                                   1.0 / static_cast<double>(d))));
  per_dim = std::min(per_dim, 64);

  uint64_t cells = 1;
  for (int i = 0; i < d; ++i) {
    const storage::ColumnStats& s = table.stats(columns_[i]);
    min_.push_back(s.min);
    max_.push_back(s.max);
    // A dimension never needs more bins than distinct values.
    int b = std::min<int>(per_dim, std::max<uint64_t>(1, s.distinct));
    bins_.push_back(b);
    cells *= static_cast<uint64_t>(b);
  }
  cells_.assign(cells, 0.0);

  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    uint64_t idx = 0;
    for (int i = 0; i < d; ++i) {
      storage::Value v = table.column(columns_[i])[r];
      double span = static_cast<double>(max_[i] - min_[i]) + 1.0;
      int bin = static_cast<int>(static_cast<double>(v - min_[i]) /
                                 span * bins_[i]);
      bin = std::clamp(bin, 0, bins_[i] - 1);
      idx = idx * static_cast<uint64_t>(bins_[i]) + static_cast<uint64_t>(bin);
    }
    cells_[idx] += 1.0;
  }
}

double GridHistogram::Selectivity(
    const std::vector<std::pair<storage::Value, storage::Value>>& ranges) const {
  if (total_ <= 0) return 0;
  if (columns_.empty()) return 1.0;
  LCE_CHECK(ranges.size() == columns_.size());
  int d = static_cast<int>(columns_.size());

  // Per dimension, the overlapped bins and their coverage fractions.
  std::vector<std::vector<std::pair<int, double>>> dim_bins(d);
  for (int i = 0; i < d; ++i) {
    auto [lo, hi] = ranges[i];
    if (hi < lo) return 0;
    double span = static_cast<double>(max_[i] - min_[i]) + 1.0;
    double bin_width = span / bins_[i];
    for (int b = 0; b < bins_[i]; ++b) {
      double blo = static_cast<double>(min_[i]) + b * bin_width;
      double bhi = blo + bin_width;  // exclusive
      double olo = std::max(blo, static_cast<double>(lo));
      double ohi = std::min(bhi, static_cast<double>(hi) + 1.0);
      if (ohi <= olo) continue;
      dim_bins[i].push_back({b, (ohi - olo) / bin_width});
    }
    if (dim_bins[i].empty()) return 0;
  }

  // Walk the cross product of overlapped bins (small: ranges are narrow).
  double mass = 0;
  std::vector<size_t> cursor(d, 0);
  for (;;) {
    uint64_t idx = 0;
    double frac = 1.0;
    for (int i = 0; i < d; ++i) {
      auto [bin, coverage] = dim_bins[i][cursor[i]];
      idx = idx * static_cast<uint64_t>(bins_[i]) + static_cast<uint64_t>(bin);
      frac *= coverage;
    }
    mass += cells_[idx] * frac;
    int i = d - 1;
    while (i >= 0 && ++cursor[i] == dim_bins[i].size()) {
      cursor[i] = 0;
      --i;
    }
    if (i < 0) break;
  }
  return std::clamp(mass / total_, 0.0, 1.0);
}

Status MultiDimHistogramEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status MultiDimHistogramEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  grids_.assign(db.num_tables(), {});
  table_rows_.assign(db.num_tables(), 0);
  distinct_.assign(db.num_tables(), {});
  full_ranges_.assign(db.num_tables(), {});
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table not finalized");
    }
    table_rows_[t] = static_cast<double>(table.num_rows());
    distinct_[t].resize(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      distinct_[t][c] = std::max<uint64_t>(1, table.stats(c).distinct);
    }
    std::vector<int> grid_cols;
    for (int c = 0; c < table.num_columns() &&
                    static_cast<int>(grid_cols.size()) < options_.max_dims;
         ++c) {
      if (!table.schema().columns[c].is_key) grid_cols.push_back(c);
    }
    grids_[t].Build(table, grid_cols, options_.max_cells);
    for (int c : grid_cols) {
      full_ranges_[t].push_back({table.stats(c).min, table.stats(c).max});
    }
  }
  return Status::OK();
}

double MultiDimHistogramEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double MultiDimHistogramEstimator::EstimateWithDiagnostics(
    const query::Query& q, ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double MultiDimHistogramEstimator::EstimateImpl(const query::Query& q,
                                                ExplainRecord* rec) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // Grid probes plus the join formula; no separate encode step.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  static telemetry::Counter& fallback_counter =
      telemetry::MetricsRegistry::Global().counter(
          "ce.multihist.uniform_fallback");
  double card = 1.0;
  for (int t : q.tables) {
    // Ranges per grid dimension, defaulting to the full column range.
    std::vector<std::pair<storage::Value, storage::Value>> ranges =
        full_ranges_[t];
    double extra_sel = 1.0;  // predicates on columns outside the grid
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table != t) continue;
      const auto& cols = grids_[t].columns();
      auto it = std::find(cols.begin(), cols.end(), p.col.column);
      if (it != cols.end()) {
        size_t dim = static_cast<size_t>(it - cols.begin());
        ranges[dim].first = std::max(ranges[dim].first, p.lo);
        ranges[dim].second = std::min(ranges[dim].second, p.hi);
        if (rec != nullptr) {
          // Joint (grid) selectivity cannot be attributed per predicate.
          rec->predicates.push_back(
              {p.col.table, p.col.column, p.lo, p.hi, -1.0, "grid"});
        }
      } else {
        // Uniform fallback for non-gridded columns.
        fallback_counter.Increment();
        double dom = static_cast<double>(distinct_[t][p.col.column]);
        double width = static_cast<double>(p.hi - p.lo) + 1.0;
        double s = std::clamp(width / dom, 0.0, 1.0);
        extra_sel *= s;
        if (rec != nullptr) {
          rec->predicates.push_back(
              {p.col.table, p.col.column, p.lo, p.hi, s, "uniform_fallback"});
          rec->AddFallback("multihist.uniform_column",
                           "table=" + std::to_string(t) +
                               " column=" + std::to_string(p.col.column));
        }
      }
    }
    double grid_sel = grids_[t].Selectivity(ranges);
    if (rec != nullptr) {
      rec->AddCounter("grid_sel.t" + std::to_string(t), grid_sel);
    }
    card *= table_rows_[t] * grid_sel * extra_sel;
  }
  for (int j : q.join_edges) {
    const storage::JoinEdge& e = schema_->joins[j];
    int lt = schema_->TableIndex(e.left_table);
    int rt = schema_->TableIndex(e.right_table);
    int lc = schema_->tables[lt].ColumnIndex(e.left_column);
    int rc = schema_->tables[rt].ColumnIndex(e.right_column);
    card /= std::max(1.0, static_cast<double>(std::max(distinct_[lt][lc],
                                                       distinct_[rt][rc])));
  }
  return std::max(1.0, card);
}

uint64_t MultiDimHistogramEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& g : grids_) bytes += g.SizeBytes();
  return bytes;
}

}  // namespace ce
}  // namespace lce
