#include "src/ce/traditional/sampling.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

Status SamplingEstimator::Build(
    const storage::Database& db,
    const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status SamplingEstimator::UpdateWithData(const storage::Database& db) {
  sample_db_ = std::make_unique<storage::Database>(db.schema());
  scale_.assign(db.num_tables(), 1.0);
  Rng rng(options_.seed);
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    uint64_t n = table.num_rows();
    uint64_t take = std::min(options_.rows_per_table, n);
    // Partial Fisher–Yates over row ids for a uniform sample w/o replacement.
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) ids[i] = i;
    for (uint64_t i = 0; i < take; ++i) {
      uint64_t j = i + static_cast<uint64_t>(
                           rng.UniformInt(0, static_cast<int64_t>(n - i) - 1));
      std::swap(ids[i], ids[j]);
    }
    std::vector<std::vector<storage::Value>> cols(table.num_columns());
    for (int c = 0; c < table.num_columns(); ++c) {
      cols[c].reserve(take);
      for (uint64_t i = 0; i < take; ++i) {
        cols[c].push_back(table.column(c)[ids[i]]);
      }
    }
    sample_db_->table(t).AppendColumns(cols);
    scale_[t] = take > 0 ? static_cast<double>(n) / static_cast<double>(take)
                         : 1.0;
  }
  sample_db_->FinalizeAll();
  executor_ = std::make_unique<exec::Executor>(sample_db_.get());
  return Status::OK();
}

double SamplingEstimator::EstimateCardinality(const query::Query& q) {
  return EstimateImpl(q, nullptr);
}

double SamplingEstimator::EstimateWithDiagnostics(const query::Query& q,
                                                  ExplainRecord* rec) {
  rec->estimator = Name();
  FillQueryShape(q, rec);
  double est = EstimateImpl(q, rec);
  rec->estimate = est;
  return est;
}

double SamplingEstimator::EstimateImpl(const query::Query& q,
                                       ExplainRecord* rec) {
  LCE_CHECK_MSG(executor_ != nullptr, "Build() before EstimateCardinality()");
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  double count = executor_->Cardinality(q);
  stages.Stage("postprocess");
  double scale = 1.0;
  for (int t : q.tables) scale *= scale_[t];
  if (rec != nullptr) {
    rec->AddCounter("sample_matches", count);
    rec->AddCounter("scale", scale);
    if (count <= 0) {
      rec->AddFallback("sampling.zero_matches",
                       "no sample row satisfied the query; clamped to 1");
    }
  }
  return std::max(1.0, count * scale);
}

uint64_t SamplingEstimator::SizeBytes() const {
  return sample_db_ ? sample_db_->SizeBytes() : 0;
}

}  // namespace ce
}  // namespace lce
