#include "src/ce/traditional/kde.h"

#include <algorithm>
#include <cmath>

#include "src/ce/join_formula.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/telemetry/stage_timer.h"

namespace lce {
namespace ce {

namespace {

// Standard normal CDF.
double Phi(double z) { return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0))); }

}  // namespace

Status KdeEstimator::Build(const storage::Database& db,
                           const std::vector<query::LabeledQuery>& training) {
  (void)training;
  return UpdateWithData(db);
}

Status KdeEstimator::UpdateWithData(const storage::Database& db) {
  schema_ = &db.schema();
  tables_.assign(db.num_tables(), {});
  distinct_.assign(db.num_tables(), {});
  Rng rng(options_.seed);
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::Table& table = db.table(t);
    if (!table.finalized()) {
      return Status::FailedPrecondition("table not finalized");
    }
    TableKde& kde = tables_[t];
    kde.rows = static_cast<double>(table.num_rows());
    uint64_t n = table.num_rows();
    uint64_t take = std::min(options_.sample_rows, n);
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) ids[i] = i;
    for (uint64_t i = 0; i < take; ++i) {
      uint64_t j = i + static_cast<uint64_t>(
                           rng.UniformInt(0, static_cast<int64_t>(n - i) - 1));
      std::swap(ids[i], ids[j]);
    }
    kde.sample.resize(table.num_columns());
    kde.bandwidth.resize(table.num_columns());
    distinct_[t].resize(table.num_columns());
    // Scott's rule in d=1 per column: h = sigma * m^(-1/5), floored at half a
    // value step so point predicates keep mass.
    for (int c = 0; c < table.num_columns(); ++c) {
      distinct_[t][c] = std::max<uint64_t>(1, table.stats(c).distinct);
      auto& col_sample = kde.sample[c];
      col_sample.resize(take);
      for (uint64_t i = 0; i < take; ++i) {
        col_sample[i] = static_cast<double>(table.column(c)[ids[i]]);
      }
      double sigma = StdDev(col_sample);
      double h = sigma * std::pow(static_cast<double>(std::max<uint64_t>(take, 2)),
                                  -0.2);
      kde.bandwidth[c] = std::max(h, 0.5);
    }
  }
  return Status::OK();
}

double KdeEstimator::TableSelectivity(const query::Query& q, int table) const {
  const TableKde& kde = tables_[table];
  if (kde.sample.empty() || kde.sample[0].empty()) return 1.0;
  size_t m = kde.sample[0].size();
  // Collect the constrained columns once.
  std::vector<const query::Predicate*> preds;
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table == table) preds.push_back(&p);
  }
  if (preds.empty()) return 1.0;
  double total = 0;
  for (size_t i = 0; i < m; ++i) {
    double w = 1.0;
    for (const query::Predicate* p : preds) {
      double x = kde.sample[p->col.column][i];
      double h = kde.bandwidth[p->col.column];
      double mass = Phi((static_cast<double>(p->hi) + 0.5 - x) / h) -
                    Phi((static_cast<double>(p->lo) - 0.5 - x) / h);
      w *= std::clamp(mass, 0.0, 1.0);
      if (w <= 0) break;
    }
    total += w;
  }
  return total / static_cast<double>(m);
}

double KdeEstimator::EstimateCardinality(const query::Query& q) {
  LCE_CHECK_MSG(schema_ != nullptr, "Build() before EstimateCardinality()");
  // Kernel sums over the stored samples plus the join formula.
  telemetry::StageTimer stages([this] { return Name(); });
  stages.Stage("traverse");
  return CombineWithJoinFormula(
      *schema_, q,
      [&](int t) { return tables_[t].rows * TableSelectivity(q, t); },
      [&](int t, int c) { return static_cast<double>(distinct_[t][c]); });
}

uint64_t KdeEstimator::SizeBytes() const {
  uint64_t bytes = 0;
  for (const TableKde& kde : tables_) {
    for (const auto& col : kde.sample) bytes += col.size() * sizeof(double);
    bytes += kde.bandwidth.size() * sizeof(double);
  }
  return bytes;
}

}  // namespace ce
}  // namespace lce
