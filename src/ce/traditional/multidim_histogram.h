// Multi-dimensional equi-width histogram estimator.
//
// Captures intra-table correlation that per-attribute histograms miss, at an
// exponential space cost in the number of attributes — exactly the trade-off
// the study discusses. Joins still use the distinct-count formula.

#ifndef LCE_CE_TRADITIONAL_MULTIDIM_HISTOGRAM_H_
#define LCE_CE_TRADITIONAL_MULTIDIM_HISTOGRAM_H_

#include <vector>

#include "src/ce/estimator.h"
#include "src/storage/types.h"

namespace lce {
namespace ce {

/// A d-dimensional grid over a table's non-key columns. The per-dimension bin
/// count shrinks with d so the grid stays within `max_cells`.
class GridHistogram {
 public:
  void Build(const storage::Table& table, const std::vector<int>& columns,
             uint64_t max_cells);

  /// Selectivity of the conjunction of ranges, one per grid dimension
  /// ([lo, hi] pairs aligned with the build columns; unconstrained dimensions
  /// pass the full column range). Partial bin overlap assumes uniformity.
  double Selectivity(const std::vector<std::pair<storage::Value,
                                                 storage::Value>>& ranges) const;

  const std::vector<int>& columns() const { return columns_; }
  uint64_t SizeBytes() const {
    return cells_.size() * sizeof(double) + columns_.size() * 32;
  }

 private:
  std::vector<int> columns_;            // table-local column indexes
  std::vector<int> bins_;               // bins per dimension
  std::vector<storage::Value> min_;     // per dimension
  std::vector<storage::Value> max_;     // per dimension
  std::vector<double> cells_;           // row-major counts
  double total_ = 0;
};

class MultiDimHistogramEstimator : public Estimator {
 public:
  struct Options {
    uint64_t max_cells = 65536;
    /// At most this many columns per grid; wider tables get their first
    /// `max_dims` non-key columns gridded and the rest treated independently.
    int max_dims = 4;
  };

  MultiDimHistogramEstimator() : MultiDimHistogramEstimator(Options{}) {}
  explicit MultiDimHistogramEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "MultiHist"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  /// Estimation reads only the built grids.
  bool ThreadSafeEstimate() const override { return true; }
  uint64_t SizeBytes() const override;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  Options options_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<GridHistogram> grids_;          // one per table
  std::vector<double> table_rows_;
  std::vector<std::vector<uint64_t>> distinct_;  // [table][column]
  std::vector<std::vector<std::pair<storage::Value, storage::Value>>>
      full_ranges_;  // [table][grid dim] column min/max at build time
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_TRADITIONAL_MULTIDIM_HISTOGRAM_H_
