// Uniform-sampling estimator: executes the query on per-table uniform samples
// and scales the count by the inverse sampling fractions. Accurate for
// selective single-table predicates, high-variance on joins — the classic
// failure mode the study contrasts learned models against.

#ifndef LCE_CE_TRADITIONAL_SAMPLING_H_
#define LCE_CE_TRADITIONAL_SAMPLING_H_

#include <memory>

#include "src/ce/estimator.h"
#include "src/exec/executor.h"

namespace lce {
namespace ce {

class SamplingEstimator : public Estimator {
 public:
  struct Options {
    uint64_t rows_per_table = 2000;
    uint64_t seed = 7;
  };

  SamplingEstimator() : SamplingEstimator(Options{}) {}
  explicit SamplingEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "Sampling"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  /// Estimation is a read-only exact count over the frozen sample database.
  bool ThreadSafeEstimate() const override { return true; }
  uint64_t SizeBytes() const override;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  Options options_;
  std::unique_ptr<storage::Database> sample_db_;
  std::unique_ptr<exec::Executor> executor_;
  std::vector<double> scale_;  // per table: full rows / sampled rows
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_TRADITIONAL_SAMPLING_H_
