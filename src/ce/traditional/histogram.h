// PostgreSQL-style statistics: most-common-value lists plus equi-depth
// histograms per column, combined under attribute independence, with the
// System-R distinct-count formula for equi-joins.

#ifndef LCE_CE_TRADITIONAL_HISTOGRAM_H_
#define LCE_CE_TRADITIONAL_HISTOGRAM_H_

#include <unordered_map>
#include <vector>

#include "src/ce/estimator.h"
#include "src/storage/types.h"

namespace lce {
namespace ce {

/// Most-common-value list: the top-k values and their frequencies (fractions
/// of the table). Values covered here are excluded from the histogram.
struct McvList {
  std::vector<storage::Value> values;
  std::vector<double> fractions;  // parallel to values
  double total_fraction = 0;

  /// Fraction of rows whose value is an MCV inside [lo, hi].
  double FractionInRange(storage::Value lo, storage::Value hi) const;
};

/// Equi-depth histogram over the non-MCV values of one column.
class EquiDepthHistogram {
 public:
  /// Builds `num_buckets` equal-mass buckets from (unsorted) values.
  void Build(std::vector<storage::Value> values, int num_buckets);

  /// Fraction of the histogram's own mass falling in [lo, hi], assuming
  /// uniformity inside each bucket.
  double FractionInRange(storage::Value lo, storage::Value hi) const;

  bool empty() const { return counts_.empty(); }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t SizeBytes() const;

 private:
  // bounds_ has counts_.size() + 1 entries; bucket i covers
  // [bounds_[i], bounds_[i+1]] (last bucket inclusive of its upper bound).
  std::vector<storage::Value> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Statistics for one column: MCVs + histogram + distinct count.
struct ColumnStatistics {
  McvList mcv;
  EquiDepthHistogram histogram;
  uint64_t distinct = 1;
  double null_free_rows = 0;  // rows contributing to the stats

  /// Selectivity of `lo <= col <= hi` against this column.
  double Selectivity(storage::Value lo, storage::Value hi) const;
};

/// The classic estimator: per-attribute stats, independence across
/// predicates, distinct-count join formula. Supports UpdateWithData
/// (re-ANALYZE) but not query feedback.
class HistogramEstimator : public Estimator {
 public:
  struct Options {
    int num_buckets = 64;
    int num_mcvs = 24;
  };

  HistogramEstimator() : HistogramEstimator(Options{}) {}
  explicit HistogramEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "Histogram"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  double EstimateWithDiagnostics(const query::Query& q,
                                 ExplainRecord* rec) override;
  Status UpdateWithData(const storage::Database& db) override;
  /// Estimation reads only the built per-column statistics.
  bool ThreadSafeEstimate() const override { return true; }
  uint64_t SizeBytes() const override;

  /// Selectivity of all of `q`'s predicates on `table_index` (independence).
  double TableSelectivity(const query::Query& q, int table_index) const;

 private:
  double EstimateImpl(const query::Query& q, ExplainRecord* rec);

  Options options_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<std::vector<ColumnStatistics>> stats_;  // [table][column]
  std::vector<double> table_rows_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_TRADITIONAL_HISTOGRAM_H_
