// Kernel-density estimator (Heimel et al. style): a Gaussian KDE over a
// uniform row sample per table, with Scott's-rule bandwidths. Smoother than
// sampling on sparse regions, still per-table (joins via distinct counts).

#ifndef LCE_CE_TRADITIONAL_KDE_H_
#define LCE_CE_TRADITIONAL_KDE_H_

#include <vector>

#include "src/ce/estimator.h"

namespace lce {
namespace ce {

class KdeEstimator : public Estimator {
 public:
  struct Options {
    uint64_t sample_rows = 2048;
    uint64_t seed = 29;
  };

  KdeEstimator() : KdeEstimator(Options{}) {}
  explicit KdeEstimator(Options options) : options_(options) {}

  std::string Name() const override { return "KDE"; }
  Status Build(const storage::Database& db,
               const std::vector<query::LabeledQuery>& training) override;
  double EstimateCardinality(const query::Query& q) override;
  Status UpdateWithData(const storage::Database& db) override;
  /// Estimation reads only the frozen per-table samples and bandwidths.
  bool ThreadSafeEstimate() const override { return true; }
  uint64_t SizeBytes() const override;

 private:
  struct TableKde {
    // sample[column][i]: the i-th sampled row's value in `column`.
    std::vector<std::vector<double>> sample;
    std::vector<double> bandwidth;  // per column (Scott's rule)
    double rows = 0;
  };

  double TableSelectivity(const query::Query& q, int table) const;

  Options options_;
  const storage::DatabaseSchema* schema_ = nullptr;
  std::vector<TableKde> tables_;
  std::vector<std::vector<uint64_t>> distinct_;
};

}  // namespace ce
}  // namespace lce

#endif  // LCE_CE_TRADITIONAL_KDE_H_
