#include "src/ce/edge_selectivity.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/executor.h"
#include "src/util/rng.h"

namespace lce {
namespace ce {

std::vector<double> ComputeEdgeSelectivities(const storage::Database& db) {
  const storage::DatabaseSchema& schema = db.schema();
  exec::Executor executor(&db);
  std::vector<double> rho;
  rho.reserve(schema.joins.size());
  for (size_t j = 0; j < schema.joins.size(); ++j) {
    const storage::JoinEdge& e = schema.joins[j];
    int lt = schema.TableIndex(e.left_table);
    int rt = schema.TableIndex(e.right_table);
    query::Query pair;
    pair.tables = {std::min(lt, rt), std::max(lt, rt)};
    pair.join_edges = {static_cast<int>(j)};
    double join_count = executor.Cardinality(pair);
    double cross = static_cast<double>(db.table(lt).num_rows()) *
                   static_cast<double>(db.table(rt).num_rows());
    rho.push_back(cross > 0 ? join_count / cross : 0.0);
  }
  return rho;
}

void FanoutCorrection::Build(const storage::Database& db,
                             const Options& options) {
  const storage::DatabaseSchema& schema = db.schema();
  edges_.clear();
  built_empty_ = schema.joins.empty();
  Rng rng(options.seed);
  for (const storage::JoinEdge& e : schema.joins) {
    // Convention: the left side of an edge is the PK (dimension) side.
    EdgeSample sample;
    int pk = schema.TableIndex(e.left_table);
    int fk = schema.TableIndex(e.right_table);
    int pk_col = schema.tables[pk].ColumnIndex(e.left_column);
    int fk_col = schema.tables[fk].ColumnIndex(e.right_column);
    sample.pk_table = pk;
    const storage::Table& pk_table = db.table(pk);
    const storage::Table& fk_table = db.table(fk);

    // FK value frequencies (exact fanout per key).
    std::unordered_map<storage::Value, double> fanout_of_key;
    for (storage::Value v : fk_table.column(fk_col)) fanout_of_key[v] += 1.0;
    double mean =
        pk_table.num_rows() > 0
            ? static_cast<double>(fk_table.num_rows()) /
                  static_cast<double>(pk_table.num_rows())
            : 0.0;
    sample.mean_fanout = mean;

    uint64_t n = pk_table.num_rows();
    uint64_t take = std::min<uint64_t>(options.sample_rows, n);
    std::vector<uint64_t> ids(n);
    for (uint64_t i = 0; i < n; ++i) ids[i] = i;
    for (uint64_t i = 0; i < take; ++i) {
      uint64_t j = i + static_cast<uint64_t>(
                           rng.UniformInt(0, static_cast<int64_t>(n - i) - 1));
      std::swap(ids[i], ids[j]);
    }
    sample.columns.resize(pk_table.num_columns());
    sample.fanout.resize(take);
    for (int c = 0; c < pk_table.num_columns(); ++c) {
      sample.columns[c].reserve(take);
      for (uint64_t i = 0; i < take; ++i) {
        sample.columns[c].push_back(pk_table.column(c)[ids[i]]);
      }
    }
    for (uint64_t i = 0; i < take; ++i) {
      storage::Value key = pk_table.column(pk_col)[ids[i]];
      auto it = fanout_of_key.find(key);
      sample.fanout[i] = it == fanout_of_key.end() ? 0.0 : it->second;
    }
    edges_.push_back(std::move(sample));
  }
}

double FanoutCorrection::CorrectionFactor(const query::Query& q) const {
  double factor = 1.0;
  for (int j : q.join_edges) {
    const EdgeSample& edge = edges_[j];
    if (edge.mean_fanout <= 0 || edge.fanout.empty()) continue;
    // Predicates of q on the PK-side table.
    std::vector<const query::Predicate*> preds;
    for (const query::Predicate& p : q.predicates) {
      if (p.col.table == edge.pk_table) preds.push_back(&p);
    }
    if (preds.empty()) continue;
    double mass = 0;
    size_t passing = 0;
    for (size_t i = 0; i < edge.fanout.size(); ++i) {
      bool pass = true;
      for (const query::Predicate* p : preds) {
        storage::Value v = edge.columns[p->col.column][i];
        if (v < p->lo || v > p->hi) {
          pass = false;
          break;
        }
      }
      if (pass) {
        mass += edge.fanout[i];
        ++passing;
      }
    }
    if (passing == 0) continue;  // no evidence: leave the edge uncorrected
    double conditional_mean = mass / static_cast<double>(passing);
    factor *= conditional_mean / edge.mean_fanout;
  }
  return factor;
}

double CombineWithEdgeSelectivities(
    const storage::DatabaseSchema& schema, const query::Query& q,
    const std::function<double(int)>& filtered_rows,
    const std::vector<double>& edge_rho) {
  (void)schema;
  double card = 1.0;
  for (int t : q.tables) card *= filtered_rows(t);
  for (int j : q.join_edges) card *= edge_rho[j];
  return std::max(1.0, card);
}

}  // namespace ce
}  // namespace lce
