#include "src/ce/explain.h"

#include "src/util/json_writer.h"

namespace lce {
namespace ce {

namespace {

void ValueOrNull(JsonWriter* w, double v) {
  if (v < 0) {
    w->Null();
  } else {
    w->Value(v);
  }
}

}  // namespace

std::string ExplainRecord::ToJsonLine() const {
  std::string out;
  // A typical record runs 600-900 bytes; one allocation instead of the
  // doubling walk matters at one-line-per-query rates.
  out.reserve(512 + 96 * predicates.size() + 64 * fallbacks.size() +
              48 * counters.size());
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject();
  w.Key("estimator").Value(estimator);
  w.Key("kind").Value(kind);
  w.Key("estimate").Value(estimate);
  w.Key("truth");
  ValueOrNull(&w, truth);
  w.Key("qerror");
  ValueOrNull(&w, qerror);
  w.Key("latency_us");
  ValueOrNull(&w, latency_us);
  w.Key("query")
      .BeginObject()
      .Key("tables").Value(num_tables)
      .Key("joins").Value(num_joins)
      .Key("predicates").Value(num_predicates)
      .EndObject();
  w.Key("predicates").BeginArray();
  for (const PredicateExplain& p : predicates) {
    w.BeginObject()
        .Key("table").Value(p.table)
        .Key("column").Value(p.column)
        .Key("lo").Value(int64_t{p.lo})
        .Key("hi").Value(int64_t{p.hi})
        .Key("selectivity");
    ValueOrNull(&w, p.selectivity);
    w.Key("source").Value(p.source).EndObject();
  }
  w.EndArray();
  w.Key("fallbacks").BeginArray();
  for (const FallbackEvent& f : fallbacks) {
    w.BeginObject()
        .Key("site").Value(f.site)
        .Key("detail").Value(f.detail)
        .EndObject();
  }
  w.EndArray();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    w.Key(name).Value(value);
  }
  w.EndObject();
  w.EndObject();
  return out;
}

void FillQueryShape(const query::Query& q, ExplainRecord* rec) {
  rec->num_tables = static_cast<int>(q.tables.size());
  rec->num_joins = q.num_joins();
  rec->num_predicates = static_cast<int>(q.predicates.size());
}

}  // namespace ce
}  // namespace lce
