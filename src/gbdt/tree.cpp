#include "src/gbdt/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace gbdt {

void FeatureBinner::Fit(const std::vector<std::vector<float>>& rows,
                        int max_bins) {
  LCE_CHECK(!rows.empty());
  LCE_CHECK(max_bins >= 2 && max_bins <= 256);
  telemetry::ScopedPhase phase("gbdt/binner_fit");
  max_bins_ = max_bins;
  size_t d = rows[0].size();
  edges_.assign(d, {});
  // Features are independent (disjoint edges_[f] writes), so the quantile
  // sorts run in parallel chunks with a per-chunk column buffer. One lane
  // processes all features in one chunk (one buffer, like the old loop).
  int64_t fit_grain =
      parallel::ThreadCount() <= 1 ? static_cast<int64_t>(d) : 1;
  parallel::ParallelFor(
      0, static_cast<int64_t>(d), fit_grain, [&](int64_t f0, int64_t f1) {
        std::vector<float> column(rows.size());
        for (int64_t f = f0; f < f1; ++f) {
          for (size_t r = 0; r < rows.size(); ++r) column[r] = rows[r][f];
          std::sort(column.begin(), column.end());
          std::vector<float>& edges = edges_[f];
          for (int b = 1; b <= max_bins; ++b) {
            size_t idx =
                std::min(rows.size() - 1,
                         rows.size() * static_cast<size_t>(b) / max_bins);
            float edge = b == max_bins ? std::numeric_limits<float>::infinity()
                                       : column[idx];
            edges.push_back(edge);
          }
          // Deduplicate plateau edges so empty bins collapse.
          for (size_t i = 1; i < edges.size(); ++i) {
            if (edges[i] < edges[i - 1]) edges[i] = edges[i - 1];
          }
        }
      });
}

std::vector<uint8_t> FeatureBinner::Transform(
    const std::vector<float>& row) const {
  LCE_CHECK(row.size() == edges_.size());
  std::vector<uint8_t> out(row.size());
  for (size_t f = 0; f < row.size(); ++f) {
    const std::vector<float>& edges = edges_[f];
    // First bin whose upper edge covers the value.
    auto it = std::lower_bound(edges.begin(), edges.end(), row[f]);
    size_t bin = static_cast<size_t>(it - edges.begin());
    if (bin >= edges.size()) bin = edges.size() - 1;
    out[f] = static_cast<uint8_t>(bin);
  }
  return out;
}

void RegressionTree::Fit(const std::vector<std::vector<uint8_t>>& binned,
                         const std::vector<float>& targets,
                         const Options& options, int max_bins) {
  LCE_CHECK(binned.size() == targets.size());
  LCE_CHECK(!binned.empty());
  nodes_.clear();
  std::vector<uint32_t> rows(binned.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  BuildNode(binned, targets, rows, 0, options, max_bins);
}

int RegressionTree::BuildNode(const std::vector<std::vector<uint8_t>>& binned,
                              const std::vector<float>& targets,
                              const std::vector<uint32_t>& rows, int depth,
                              const Options& options, int max_bins) {
  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});

  double sum = 0;
  for (uint32_t r : rows) sum += targets[r];
  double n = static_cast<double>(rows.size());
  float mean = static_cast<float>(sum / n);
  nodes_[node_id].value = mean;

  if (depth >= options.max_depth ||
      rows.size() < 2 * static_cast<size_t>(options.min_samples_leaf)) {
    return node_id;
  }

  // Best split: maximize SSE reduction = sumL^2/nL + sumR^2/nR - sum^2/n.
  // Features scan in parallel chunks; chunk winners are combined in feature
  // order with the same strict-greater rule as the sequential loop, so the
  // chosen split (including tie-breaks toward the lowest feature/bin) is
  // identical at any thread count.
  size_t d = binned[0].size();
  double parent_score = sum * sum / n;

  struct SplitCandidate {
    double gain;
    int feature;
    int bin;
  };
  const SplitCandidate no_split{options.min_gain, -1, -1};
  // One lane scans all features in a single chunk (one scratch histogram,
  // like the old loop); otherwise aim for >= 16k row-bin increments per
  // chunk so small nodes stay inline.
  int64_t grain =
      parallel::ThreadCount() <= 1
          ? static_cast<int64_t>(d)
          : std::max<int64_t>(1, (16 << 10) / static_cast<int64_t>(
                                                  std::max<size_t>(
                                                      1, rows.size())));
  // Scoped to the reduce only, so the recursive child builds below do not
  // double-count into gbdt/split_search.
  std::optional<telemetry::ScopedPhase> phase;
  phase.emplace("gbdt/split_search");
  SplitCandidate best = parallel::ParallelReduce<SplitCandidate>(
      0, static_cast<int64_t>(d), grain, no_split,
      [&](int64_t f0, int64_t f1) {
        SplitCandidate local{options.min_gain, -1, -1};
        std::vector<double> bin_sum(max_bins);
        std::vector<uint32_t> bin_count(max_bins);
        for (int64_t f = f0; f < f1; ++f) {
          std::fill(bin_sum.begin(), bin_sum.end(), 0.0);
          std::fill(bin_count.begin(), bin_count.end(), 0u);
          for (uint32_t r : rows) {
            uint8_t b = binned[r][f];
            bin_sum[b] += targets[r];
            ++bin_count[b];
          }
          double left_sum = 0;
          uint32_t left_count = 0;
          for (int b = 0; b < max_bins - 1; ++b) {
            left_sum += bin_sum[b];
            left_count += bin_count[b];
            uint32_t right_count =
                static_cast<uint32_t>(rows.size()) - left_count;
            if (left_count < static_cast<uint32_t>(options.min_samples_leaf) ||
                right_count < static_cast<uint32_t>(options.min_samples_leaf)) {
              continue;
            }
            double right_sum = sum - left_sum;
            double gain = left_sum * left_sum / left_count +
                          right_sum * right_sum / right_count - parent_score;
            if (gain > local.gain) {
              local = {gain, static_cast<int>(f), b};
            }
          }
        }
        return local;
      },
      [](SplitCandidate acc, SplitCandidate chunk) {
        return chunk.gain > acc.gain ? chunk : acc;
      });
  phase.reset();
  int best_feature = best.feature;
  int best_bin = best.bin;

  if (best_feature < 0) return node_id;

  std::vector<uint32_t> left_rows, right_rows;
  for (uint32_t r : rows) {
    if (binned[r][best_feature] <= best_bin) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].bin_threshold = static_cast<uint8_t>(best_bin);
  int left =
      BuildNode(binned, targets, left_rows, depth + 1, options, max_bins);
  int right =
      BuildNode(binned, targets, right_rows, depth + 1, options, max_bins);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

float RegressionTree::Predict(const std::vector<uint8_t>& binned_row) const {
  LCE_CHECK(!nodes_.empty());
  int cur = 0;
  while (!nodes_[cur].is_leaf) {
    const TreeNode& node = nodes_[cur];
    cur = binned_row[node.feature] <= node.bin_threshold ? node.left
                                                         : node.right;
  }
  return nodes_[cur].value;
}

float RegressionTree::PredictWithDepth(const std::vector<uint8_t>& binned_row,
                                       int* depth) const {
  LCE_CHECK(!nodes_.empty());
  int cur = 0;
  int d = 0;
  while (!nodes_[cur].is_leaf) {
    const TreeNode& node = nodes_[cur];
    cur = binned_row[node.feature] <= node.bin_threshold ? node.left
                                                         : node.right;
    ++d;
  }
  *depth = d;
  return nodes_[cur].value;
}

}  // namespace gbdt
}  // namespace lce
