// Gradient boosting with squared loss over binned regression trees.

#ifndef LCE_GBDT_GBDT_H_
#define LCE_GBDT_GBDT_H_

#include <cstdint>
#include <vector>

#include "src/gbdt/tree.h"

namespace lce {
namespace gbdt {

/// Structure-of-arrays mirror of an ensemble's trees for batched inference.
/// Node fields live in parallel arrays sized for the traversal's access
/// pattern: the split descriptor packs feature id and bin threshold into one
/// 32-bit word (feat_thr) and both child ids sit in one contiguous pair
/// (children), so stepping a cursor down one level touches exactly two node
/// cache lines instead of the four a naive field-per-array split (or the
/// 24-byte AoS TreeNode) costs. Leaves are encoded as self-loops
/// (children == {self, self}, threshold == 255) so the level-synchronous
/// batch traversal needs no is_leaf branch — bins are uint8, so `bin <= 255`
/// always holds and a cursor that reaches a leaf stays put for the remaining
/// levels.
///
/// Accumulate() applies trees in ensemble order with one float accumulator
/// per row — the exact accumulation order of per-row Predict(), so batched
/// and scalar inference are bit-identical.
struct FlatForest {
  /// Threshold value marking a leaf's self-loop descriptor.
  static constexpr uint32_t kLeafThreshold = 255;

  /// feature << 8 | threshold. Go left iff bin <= threshold (low byte).
  std::vector<uint32_t> feat_thr;
  /// children[2 * node + 0] = left, [.. + 1] = right; both = node for leaves.
  std::vector<int32_t> children;
  std::vector<float> value;  // leaf prediction; 0 for internal nodes

  std::vector<int32_t> root;    // per tree: root node id
  std::vector<int32_t> levels;  // per tree: max root-to-leaf path length

  size_t num_trees() const { return root.size(); }
  size_t num_nodes() const { return feat_thr.size(); }
  void Clear();

  /// Appends one fitted tree's nodes (ensemble order = call order).
  void AppendTree(const RegressionTree& tree);

  /// out[i - r0] += lr * tree_value for every tree in [t0, t1) and row i in
  /// [r0, r1); bins is the row-major num_features-wide bin matrix. Rows
  /// advance through each tree level-synchronously in blocks.
  void Accumulate(const uint8_t* bins, int num_features, int64_t r0,
                  int64_t r1, size_t t0, size_t t1, float lr,
                  float* out) const;
};

class GradientBoosting {
 public:
  struct Options {
    int num_trees = 96;
    float learning_rate = 0.15f;
    int max_bins = 32;
    RegressionTree::Options tree;
  };

  GradientBoosting() : GradientBoosting(Options{}) {}
  explicit GradientBoosting(Options options) : options_(options) {}

  /// Fits from scratch: bins features, then adds trees on residuals.
  void Fit(const std::vector<std::vector<float>>& rows,
           const std::vector<float>& targets);

  /// Adds `num_trees` boosting rounds fit on new data's residuals, keeping
  /// the existing ensemble and binner — the incremental-update path.
  void Boost(const std::vector<std::vector<float>>& rows,
             const std::vector<float>& targets, int num_trees);

  float Predict(const std::vector<float>& row) const;

  /// Predictions for many rows at once. With LCE_SIMD on (default) this bins
  /// all rows into one contiguous matrix and runs the level-synchronous
  /// FlatForest traversal in parallel row blocks; otherwise it falls back to
  /// per-row Predict(). Both paths are bit-identical to calling Predict() on
  /// each row (same per-row accumulation order) at any thread count.
  std::vector<float> PredictBatch(
      const std::vector<std::vector<float>>& rows) const;

  /// Traversal statistics of one Predict() call; fuels explain records.
  struct PredictStats {
    int trees = 0;
    uint64_t nodes_visited = 0;    // internal nodes crossed (sum of depths)
    double mean_path_depth = 0;
    int max_path_depth = 0;
  };

  /// Predict() with per-tree path statistics. The accumulation mirrors
  /// Predict() term by term, so the returned value is bit-identical.
  float PredictWithStats(const std::vector<float>& row,
                         PredictStats* stats) const;

  size_t num_trees() const { return trees_.size(); }
  uint64_t SizeBytes() const;
  /// Total tree nodes across the ensemble — the model-card parameter count
  /// (each node carries a split threshold or a leaf value).
  uint64_t NumNodes() const;
  bool fitted() const { return fitted_; }

 private:
  void AddTrees(const std::vector<std::vector<uint8_t>>& binned,
                const std::vector<float>& targets, int num_trees);

  Options options_;
  FeatureBinner binner_;
  float base_score_ = 0;
  std::vector<RegressionTree> trees_;
  FlatForest flat_;  // SoA mirror of trees_, maintained by AddTrees
  bool fitted_ = false;
};

}  // namespace gbdt
}  // namespace lce

#endif  // LCE_GBDT_GBDT_H_
