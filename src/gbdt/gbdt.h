// Gradient boosting with squared loss over binned regression trees.

#ifndef LCE_GBDT_GBDT_H_
#define LCE_GBDT_GBDT_H_

#include <vector>

#include "src/gbdt/tree.h"

namespace lce {
namespace gbdt {

class GradientBoosting {
 public:
  struct Options {
    int num_trees = 96;
    float learning_rate = 0.15f;
    int max_bins = 32;
    RegressionTree::Options tree;
  };

  GradientBoosting() : GradientBoosting(Options{}) {}
  explicit GradientBoosting(Options options) : options_(options) {}

  /// Fits from scratch: bins features, then adds trees on residuals.
  void Fit(const std::vector<std::vector<float>>& rows,
           const std::vector<float>& targets);

  /// Adds `num_trees` boosting rounds fit on new data's residuals, keeping
  /// the existing ensemble and binner — the incremental-update path.
  void Boost(const std::vector<std::vector<float>>& rows,
             const std::vector<float>& targets, int num_trees);

  float Predict(const std::vector<float>& row) const;

  /// Traversal statistics of one Predict() call; fuels explain records.
  struct PredictStats {
    int trees = 0;
    uint64_t nodes_visited = 0;    // internal nodes crossed (sum of depths)
    double mean_path_depth = 0;
    int max_path_depth = 0;
  };

  /// Predict() with per-tree path statistics. The accumulation mirrors
  /// Predict() term by term, so the returned value is bit-identical.
  float PredictWithStats(const std::vector<float>& row,
                         PredictStats* stats) const;

  size_t num_trees() const { return trees_.size(); }
  uint64_t SizeBytes() const;
  /// Total tree nodes across the ensemble — the model-card parameter count
  /// (each node carries a split threshold or a leaf value).
  uint64_t NumNodes() const;
  bool fitted() const { return fitted_; }

 private:
  void AddTrees(const std::vector<std::vector<uint8_t>>& binned,
                const std::vector<float>& targets, int num_trees);

  Options options_;
  FeatureBinner binner_;
  float base_score_ = 0;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
};

}  // namespace gbdt
}  // namespace lce

#endif  // LCE_GBDT_GBDT_H_
