#include "src/gbdt/gbdt.h"

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/train_log.h"

namespace lce {
namespace gbdt {

namespace {

// Rows per parallel chunk for per-row binning / prediction sweeps.
constexpr int64_t kRowGrain = 256;

// Binned copies of `rows`, computed in parallel (disjoint writes; Transform
// only reads the fitted binner).
std::vector<std::vector<uint8_t>> BinRows(
    const FeatureBinner& binner, const std::vector<std::vector<float>>& rows) {
  telemetry::ScopedPhase phase("gbdt/bin_rows");
  std::vector<std::vector<uint8_t>> binned(rows.size());
  parallel::ParallelFor(0, static_cast<int64_t>(rows.size()), kRowGrain,
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            binned[i] = binner.Transform(rows[i]);
                          }
                        });
  return binned;
}

}  // namespace

void GradientBoosting::Fit(const std::vector<std::vector<float>>& rows,
                           const std::vector<float>& targets) {
  LCE_CHECK(!rows.empty() && rows.size() == targets.size());
  trees_.clear();
  binner_.Fit(rows, options_.max_bins);
  double sum = 0;
  for (float t : targets) sum += t;
  base_score_ = static_cast<float>(sum / static_cast<double>(targets.size()));
  fitted_ = true;

  AddTrees(BinRows(binner_, rows), targets, options_.num_trees);
}

void GradientBoosting::Boost(const std::vector<std::vector<float>>& rows,
                             const std::vector<float>& targets,
                             int num_trees) {
  LCE_CHECK_MSG(fitted_, "Fit() before Boost()");
  LCE_CHECK(!rows.empty() && rows.size() == targets.size());
  AddTrees(BinRows(binner_, rows), targets, num_trees);
}

void GradientBoosting::AddTrees(
    const std::vector<std::vector<uint8_t>>& binned,
    const std::vector<float>& targets, int num_trees) {
  // Current predictions for the (possibly new) data under the ensemble.
  // Each row's prediction is independent and sums the trees in ensemble
  // order, so the row-parallel replay matches the sequential one exactly.
  const int64_t n = static_cast<int64_t>(binned.size());
  std::vector<float> pred(binned.size(), base_score_);
  parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      for (const RegressionTree& tree : trees_) {
        pred[i] += options_.learning_rate * tree.Predict(binned[i]);
      }
    }
  });
  std::vector<float> residual(binned.size());
  const bool train_log = telemetry::TrainLogEnabled();
  const int64_t round_base = static_cast<int64_t>(trees_.size());
  for (int t = 0; t < num_trees; ++t) {
    int64_t round_start = train_log ? telemetry::MonotonicNanos() : 0;
    for (size_t i = 0; i < binned.size(); ++i) {
      residual[i] = targets[i] - pred[i];
    }
    RegressionTree tree;
    {
      telemetry::ScopedPhase phase("gbdt/tree_fit");
      tree.Fit(binned, residual, options_.tree, options_.max_bins);
    }
    {
      telemetry::ScopedPhase phase("gbdt/update_pred");
      parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          pred[i] += options_.learning_rate * tree.Predict(binned[i]);
        }
      });
    }
    size_t tree_nodes = tree.num_nodes();
    trees_.push_back(std::move(tree));
    if (train_log) {
      // Post-round training MSE; read-only over pred/targets, so enabling
      // the log cannot perturb the fit.
      double mse = 0;
      for (size_t i = 0; i < binned.size(); ++i) {
        double d = static_cast<double>(targets[i]) - pred[i];
        mse += d * d;
      }
      telemetry::TrainingEvent ev;
      ev.family = "gbdt";
      ev.event = "round";
      ev.index = round_base + t;
      ev.loss = binned.empty() ? 0.0 : mse / static_cast<double>(n);
      ev.learning_rate = options_.learning_rate;
      ev.examples = n;
      ev.wall_seconds =
          static_cast<double>(telemetry::MonotonicNanos() - round_start) / 1e9;
      ev.extra.emplace_back("tree_nodes", static_cast<double>(tree_nodes));
      telemetry::RecordTrainingEvent(std::move(ev));
    }
  }
}

float GradientBoosting::Predict(const std::vector<float>& row) const {
  LCE_CHECK_MSG(fitted_, "Fit() before Predict()");
  std::vector<uint8_t> binned = binner_.Transform(row);
  float out = base_score_;
  for (const RegressionTree& tree : trees_) {
    out += options_.learning_rate * tree.Predict(binned);
  }
  return out;
}

float GradientBoosting::PredictWithStats(const std::vector<float>& row,
                                         PredictStats* stats) const {
  LCE_CHECK_MSG(fitted_, "Fit() before Predict()");
  std::vector<uint8_t> binned = binner_.Transform(row);
  float out = base_score_;
  *stats = PredictStats{};
  for (const RegressionTree& tree : trees_) {
    int depth = 0;
    out += options_.learning_rate * tree.PredictWithDepth(binned, &depth);
    ++stats->trees;
    stats->nodes_visited += static_cast<uint64_t>(depth);
    stats->max_path_depth = std::max(stats->max_path_depth, depth);
  }
  stats->mean_path_depth =
      stats->trees > 0
          ? static_cast<double>(stats->nodes_visited) / stats->trees
          : 0.0;
  return out;
}

uint64_t GradientBoosting::NumNodes() const {
  uint64_t nodes = 0;
  for (const RegressionTree& tree : trees_) nodes += tree.num_nodes();
  return nodes;
}

uint64_t GradientBoosting::SizeBytes() const {
  uint64_t bytes = 0;
  for (const RegressionTree& tree : trees_) {
    bytes += tree.num_nodes() * sizeof(TreeNode);
  }
  // Binner edges.
  bytes += static_cast<uint64_t>(binner_.num_features()) *
           binner_.max_bins() * sizeof(float);
  return bytes;
}

}  // namespace gbdt
}  // namespace lce
