#include "src/gbdt/gbdt.h"

#include <array>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/simd.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"
#include "src/util/telemetry/train_log.h"

#define LCE_GBDT_RESTRICT __restrict__

namespace lce {
namespace gbdt {

namespace {

// Rows per parallel chunk for per-row binning / prediction sweeps. Also the
// block size of the level-synchronous batch traversal: 256 cursors (1 KiB)
// plus their bin rows stay L1-resident across all trees of the ensemble.
constexpr int64_t kRowGrain = 256;

// Binned copies of `rows`, computed in parallel (disjoint writes; Transform
// only reads the fitted binner).
std::vector<std::vector<uint8_t>> BinRows(
    const FeatureBinner& binner, const std::vector<std::vector<float>>& rows) {
  telemetry::ScopedPhase phase("gbdt/bin_rows");
  std::vector<std::vector<uint8_t>> binned(rows.size());
  parallel::ParallelFor(0, static_cast<int64_t>(rows.size()), kRowGrain,
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            binned[i] = binner.Transform(rows[i]);
                          }
                        });
  return binned;
}

// Binned rows packed into one contiguous row-major matrix (n x f bytes) so
// the batch traversal's bin loads hit sequential cache lines.
std::vector<uint8_t> PackBins(const std::vector<std::vector<uint8_t>>& binned,
                              int num_features) {
  std::vector<uint8_t> bins(binned.size() * static_cast<size_t>(num_features));
  parallel::ParallelFor(0, static_cast<int64_t>(binned.size()), kRowGrain,
                        [&](int64_t b, int64_t e) {
                          for (int64_t i = b; i < e; ++i) {
                            std::copy(binned[i].begin(), binned[i].end(),
                                      bins.begin() + i * num_features);
                          }
                        });
  return bins;
}

}  // namespace

void FlatForest::Clear() {
  feat_thr.clear();
  children.clear();
  value.clear();
  root.clear();
  levels.clear();
}

void FlatForest::AppendTree(const RegressionTree& tree) {
  const std::vector<TreeNode>& nodes = tree.nodes();
  LCE_CHECK(!nodes.empty());
  const int32_t base = static_cast<int32_t>(feat_thr.size());
  root.push_back(base);  // tree-local node 0 is the root
  for (size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& n = nodes[i];
    const int32_t self = base + static_cast<int32_t>(i);
    if (n.is_leaf) {
      // Leaf self-loop: threshold 255 always compares true against uint8
      // bins, so the cursor takes the left child (= itself) on every further
      // level. 255 cannot be a real split threshold: a uint8-binned split at
      // 255 would send every row left and never separate the children.
      feat_thr.push_back(kLeafThreshold);  // feature 0, threshold 255
      children.push_back(self);
      children.push_back(self);
      value.push_back(n.value);
    } else {
      feat_thr.push_back(static_cast<uint32_t>(n.feature) << 8 |
                         n.bin_threshold);
      children.push_back(base + n.left);
      children.push_back(base + n.right);
      value.push_back(0.0f);
    }
  }
  // Max root-to-leaf path length: after this many steps every cursor sits on
  // a leaf (then self-loops). Nodes are created parent-before-child, so one
  // forward pass suffices.
  std::vector<int32_t> depth(nodes.size(), 0);
  int32_t max_depth = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].is_leaf) continue;
    depth[nodes[i].left] = depth[i] + 1;
    depth[nodes[i].right] = depth[i] + 1;
    max_depth = std::max(max_depth,
                         std::max(depth[nodes[i].left], depth[nodes[i].right]));
  }
  levels.push_back(max_depth);
}

void FlatForest::Accumulate(const uint8_t* bins, int num_features, int64_t r0,
                            int64_t r1, size_t t0, size_t t1, float lr,
                            float* out) const {
  constexpr int kBlock = static_cast<int>(kRowGrain);
  std::array<int32_t, kBlock> cursor;
  const uint32_t* LCE_GBDT_RESTRICT desc = feat_thr.data();
  const int32_t* LCE_GBDT_RESTRICT child = children.data();
  const float* LCE_GBDT_RESTRICT val = value.data();
  for (int64_t b = r0; b < r1; b += kBlock) {
    const int n = static_cast<int>(std::min<int64_t>(kBlock, r1 - b));
    const uint8_t* LCE_GBDT_RESTRICT block_bins = bins + b * num_features;
    // Trees inner: the block's bin rows stay cached across the whole
    // ensemble, and out[row] still accumulates trees in ensemble order —
    // the same float addition sequence as per-row Predict().
    for (size_t t = t0; t < t1; ++t) {
      const int32_t tree_root = root[t];
      for (int r = 0; r < n; ++r) cursor[r] = tree_root;
      for (int32_t level = 0; level < levels[t]; ++level) {
        // Level-synchronous step: all rows cross one level together. Rows
        // are independent, so the node loads pipeline instead of
        // serializing on one row's pointer chase; leaves self-loop (see
        // AppendTree). Each step reads one packed descriptor and one
        // children pair — two node cache lines.
        uint32_t alive = 0;
        for (int r = 0; r < n; ++r) {
          const int32_t node = cursor[r];
          const uint32_t d = desc[node];
          const uint32_t thr = d & 0xffu;
          alive |= thr ^ kLeafThreshold;  // nonzero while any row is internal
          const uint8_t bin =
              block_bins[static_cast<int64_t>(r) * num_features + (d >> 8)];
          cursor[r] = child[2 * node + (bin > thr ? 1 : 0)];
        }
        // Unbalanced trees park most cursors on shallow leaves well before
        // levels[t]; once the whole block is parked the remaining levels
        // are self-loop no-ops, so stop.
        if (alive == 0) break;
      }
      const int64_t off = b - r0;
      for (int r = 0; r < n; ++r) out[off + r] += lr * val[cursor[r]];
    }
  }
}

void GradientBoosting::Fit(const std::vector<std::vector<float>>& rows,
                           const std::vector<float>& targets) {
  LCE_CHECK(!rows.empty() && rows.size() == targets.size());
  trees_.clear();
  flat_.Clear();
  binner_.Fit(rows, options_.max_bins);
  double sum = 0;
  for (float t : targets) sum += t;
  base_score_ = static_cast<float>(sum / static_cast<double>(targets.size()));
  fitted_ = true;

  AddTrees(BinRows(binner_, rows), targets, options_.num_trees);
}

void GradientBoosting::Boost(const std::vector<std::vector<float>>& rows,
                             const std::vector<float>& targets,
                             int num_trees) {
  LCE_CHECK_MSG(fitted_, "Fit() before Boost()");
  LCE_CHECK(!rows.empty() && rows.size() == targets.size());
  AddTrees(BinRows(binner_, rows), targets, num_trees);
}

void GradientBoosting::AddTrees(
    const std::vector<std::vector<uint8_t>>& binned,
    const std::vector<float>& targets, int num_trees) {
  // Current predictions for the (possibly new) data under the ensemble.
  // Each row's prediction is independent and sums the trees in ensemble
  // order, so the row-parallel replay matches the sequential one exactly —
  // and the batched FlatForest replay keeps that same per-row order, so
  // training is bit-identical across LCE_SIMD settings too.
  const int64_t n = static_cast<int64_t>(binned.size());
  const int num_features = binned.empty() ? 0 : static_cast<int>(binned[0].size());
  const bool batch = simd::SimdEnabled() && num_features > 0;
  const std::vector<uint8_t> bins =
      batch ? PackBins(binned, num_features) : std::vector<uint8_t>();
  std::vector<float> pred(binned.size(), base_score_);
  parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
    if (batch) {
      flat_.Accumulate(bins.data(), num_features, b, e, 0, flat_.num_trees(),
                       options_.learning_rate, pred.data() + b);
      return;
    }
    for (int64_t i = b; i < e; ++i) {
      for (const RegressionTree& tree : trees_) {
        pred[i] += options_.learning_rate * tree.Predict(binned[i]);
      }
    }
  });
  std::vector<float> residual(binned.size());
  const bool train_log = telemetry::TrainLogEnabled();
  const int64_t round_base = static_cast<int64_t>(trees_.size());
  for (int t = 0; t < num_trees; ++t) {
    int64_t round_start = train_log ? telemetry::MonotonicNanos() : 0;
    for (size_t i = 0; i < binned.size(); ++i) {
      residual[i] = targets[i] - pred[i];
    }
    RegressionTree tree;
    {
      telemetry::ScopedPhase phase("gbdt/tree_fit");
      tree.Fit(binned, residual, options_.tree, options_.max_bins);
    }
    flat_.AppendTree(tree);
    {
      telemetry::ScopedPhase phase("gbdt/update_pred");
      parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
        if (batch) {
          // Only the just-appended tree.
          flat_.Accumulate(bins.data(), num_features, b, e,
                           flat_.num_trees() - 1, flat_.num_trees(),
                           options_.learning_rate, pred.data() + b);
          return;
        }
        for (int64_t i = b; i < e; ++i) {
          pred[i] += options_.learning_rate * tree.Predict(binned[i]);
        }
      });
    }
    size_t tree_nodes = tree.num_nodes();
    trees_.push_back(std::move(tree));
    if (train_log) {
      // Post-round training MSE; read-only over pred/targets, so enabling
      // the log cannot perturb the fit.
      double mse = 0;
      for (size_t i = 0; i < binned.size(); ++i) {
        double d = static_cast<double>(targets[i]) - pred[i];
        mse += d * d;
      }
      telemetry::TrainingEvent ev;
      ev.family = "gbdt";
      ev.event = "round";
      ev.index = round_base + t;
      ev.loss = binned.empty() ? 0.0 : mse / static_cast<double>(n);
      ev.learning_rate = options_.learning_rate;
      ev.examples = n;
      ev.wall_seconds =
          static_cast<double>(telemetry::MonotonicNanos() - round_start) / 1e9;
      ev.extra.emplace_back("tree_nodes", static_cast<double>(tree_nodes));
      telemetry::RecordTrainingEvent(std::move(ev));
    }
  }
}

float GradientBoosting::Predict(const std::vector<float>& row) const {
  LCE_CHECK_MSG(fitted_, "Fit() before Predict()");
  std::vector<uint8_t> binned = binner_.Transform(row);
  float out = base_score_;
  for (const RegressionTree& tree : trees_) {
    out += options_.learning_rate * tree.Predict(binned);
  }
  return out;
}

std::vector<float> GradientBoosting::PredictBatch(
    const std::vector<std::vector<float>>& rows) const {
  LCE_CHECK_MSG(fitted_, "Fit() before PredictBatch()");
  // Kernel span for the profiler: the batched SoA forest traversal is the
  // GBDT inference hot path. Work ≈ node visits (rows × trees × depth),
  // thresholded so single-row per-query calls don't pay span overhead on a
  // microsecond traversal.
  telemetry::KernelSpan span(
      "FlatForest::PredictBatch",
      static_cast<int64_t>(rows.size()) * static_cast<int64_t>(num_trees()) *
          options_.tree.max_depth);
  std::vector<float> out(rows.size(), base_score_);
  if (rows.empty()) return out;
  const int64_t n = static_cast<int64_t>(rows.size());
  if (!simd::SimdEnabled()) {
    parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) out[i] = Predict(rows[i]);
    });
    return out;
  }
  // Bin every row into one contiguous matrix, then traverse the SoA forest
  // level-synchronously over row blocks. Per row the accumulation order is
  // base + lr*tree0 + lr*tree1 + ... — identical to Predict().
  const int num_features = static_cast<int>(rows[0].size());
  std::vector<uint8_t> bins(rows.size() * static_cast<size_t>(num_features));
  parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      std::vector<uint8_t> binned = binner_.Transform(rows[i]);
      std::copy(binned.begin(), binned.end(), bins.begin() + i * num_features);
    }
  });
  parallel::ParallelFor(0, n, kRowGrain, [&](int64_t b, int64_t e) {
    flat_.Accumulate(bins.data(), num_features, b, e, 0, flat_.num_trees(),
                     options_.learning_rate, out.data() + b);
  });
  return out;
}

float GradientBoosting::PredictWithStats(const std::vector<float>& row,
                                         PredictStats* stats) const {
  LCE_CHECK_MSG(fitted_, "Fit() before Predict()");
  std::vector<uint8_t> binned = binner_.Transform(row);
  float out = base_score_;
  *stats = PredictStats{};
  for (const RegressionTree& tree : trees_) {
    int depth = 0;
    out += options_.learning_rate * tree.PredictWithDepth(binned, &depth);
    ++stats->trees;
    stats->nodes_visited += static_cast<uint64_t>(depth);
    stats->max_path_depth = std::max(stats->max_path_depth, depth);
  }
  stats->mean_path_depth =
      stats->trees > 0
          ? static_cast<double>(stats->nodes_visited) / stats->trees
          : 0.0;
  return out;
}

uint64_t GradientBoosting::NumNodes() const {
  uint64_t nodes = 0;
  for (const RegressionTree& tree : trees_) nodes += tree.num_nodes();
  return nodes;
}

uint64_t GradientBoosting::SizeBytes() const {
  uint64_t bytes = 0;
  for (const RegressionTree& tree : trees_) {
    bytes += tree.num_nodes() * sizeof(TreeNode);
  }
  // SoA inference mirror: packed descriptor (uint32), children pair
  // (2x int32), value (float) per node, plus root/levels (int32) per tree.
  bytes += flat_.num_nodes() *
               (sizeof(uint32_t) + 2 * sizeof(int32_t) + sizeof(float)) +
           flat_.num_trees() * 2 * sizeof(int32_t);
  // Binner edges.
  bytes += static_cast<uint64_t>(binner_.num_features()) *
           binner_.max_bins() * sizeof(float);
  return bytes;
}

}  // namespace gbdt
}  // namespace lce
