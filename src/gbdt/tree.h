// Binned regression tree: the base learner of the gradient-boosting
// estimator (LW-XGB). Split finding uses per-feature histograms over
// quantile-binned inputs, the same strategy as XGBoost's `hist` mode.

#ifndef LCE_GBDT_TREE_H_
#define LCE_GBDT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lce {
namespace gbdt {

/// Quantile binner fit once on the training matrix; maps each float feature
/// to a small bin id. Shared by all trees of an ensemble.
class FeatureBinner {
 public:
  void Fit(const std::vector<std::vector<float>>& rows, int max_bins);

  /// Bin ids for one row.
  std::vector<uint8_t> Transform(const std::vector<float>& row) const;

  int num_features() const { return static_cast<int>(edges_.size()); }
  int max_bins() const { return max_bins_; }
  /// Upper edge of `bin` for `feature` (split threshold reconstruction).
  float BinUpperEdge(int feature, int bin) const { return edges_[feature][bin]; }

 private:
  int max_bins_ = 0;
  std::vector<std::vector<float>> edges_;  // per feature: bin upper edges
};

struct TreeNode {
  bool is_leaf = true;
  int feature = -1;
  uint8_t bin_threshold = 0;  // go left if bin <= threshold
  float value = 0;            // leaf prediction
  int left = -1;
  int right = -1;
};

class RegressionTree {
 public:
  struct Options {
    int max_depth = 6;
    int min_samples_leaf = 8;
    float min_gain = 1e-7f;
  };

  /// Fits targets on pre-binned rows (binned[i] from FeatureBinner).
  void Fit(const std::vector<std::vector<uint8_t>>& binned,
           const std::vector<float>& targets, const Options& options,
           int max_bins);

  float Predict(const std::vector<uint8_t>& binned_row) const;

  /// Predict() plus the root-to-leaf path length in `*depth` (0 when the
  /// tree is a single leaf). Same traversal, same leaf value.
  float PredictWithDepth(const std::vector<uint8_t>& binned_row,
                         int* depth) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Node storage (root is node 0); read by FlatForest::AppendTree.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

 private:
  int BuildNode(const std::vector<std::vector<uint8_t>>& binned,
                const std::vector<float>& targets,
                const std::vector<uint32_t>& rows, int depth,
                const Options& options, int max_bins);

  std::vector<TreeNode> nodes_;
};

}  // namespace gbdt
}  // namespace lce

#endif  // LCE_GBDT_TREE_H_
