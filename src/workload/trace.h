// Workload traces: persist labeled workloads as text and replay them.
//
// Format: one query per line, `<true_count>\t<SQL>`. SQL is the dialect
// query::ToSql emits, re-parsed on load, so traces are human-editable and
// portable across runs of the same schema.

#ifndef LCE_WORKLOAD_TRACE_H_
#define LCE_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace workload {

Status SaveTrace(const std::vector<query::LabeledQuery>& workload,
                 const storage::DatabaseSchema& schema, std::ostream* out);

Status SaveTraceFile(const std::vector<query::LabeledQuery>& workload,
                     const storage::DatabaseSchema& schema,
                     const std::string& path);

/// Parses a trace against `db`'s schema. Fails on the first malformed line
/// (message carries the line number).
Result<std::vector<query::LabeledQuery>> LoadTrace(
    std::istream* in, const storage::Database& db);

Result<std::vector<query::LabeledQuery>> LoadTraceFile(
    const std::string& path, const storage::Database& db);

}  // namespace workload
}  // namespace lce

#endif  // LCE_WORKLOAD_TRACE_H_
