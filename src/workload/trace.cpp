#include "src/workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/query/parser.h"

namespace lce {
namespace workload {

Status SaveTrace(const std::vector<query::LabeledQuery>& workload,
                 const storage::DatabaseSchema& schema, std::ostream* out) {
  for (const auto& lq : workload) {
    char count[32];
    std::snprintf(count, sizeof(count), "%.0f", lq.cardinality);
    *out << count << "\t" << query::ToSql(lq.q, schema) << "\n";
  }
  if (!*out) return Status::Internal("trace write failed");
  return Status::OK();
}

Status SaveTraceFile(const std::vector<query::LabeledQuery>& workload,
                     const storage::DatabaseSchema& schema,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  return SaveTrace(workload, schema, &out);
}

Result<std::vector<query::LabeledQuery>> LoadTrace(
    std::istream* in, const storage::Database& db) {
  std::vector<query::LabeledQuery> out;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": missing count/SQL separator");
    }
    double cardinality = 0;
    try {
      cardinality = std::stod(line.substr(0, tab));
    } catch (...) {
      return Status::InvalidArgument("trace line " +
                                     std::to_string(line_number) +
                                     ": bad count");
    }
    Result<query::Query> parsed = query::ParseSql(line.substr(tab + 1), db);
    if (!parsed.ok()) {
      return Status::InvalidArgument(
          "trace line " + std::to_string(line_number) + ": " +
          parsed.status().message());
    }
    out.push_back({std::move(parsed).value(), cardinality});
  }
  return out;
}

Result<std::vector<query::LabeledQuery>> LoadTraceFile(
    const std::string& path, const storage::Database& db) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadTrace(&in, db);
}

}  // namespace workload
}  // namespace lce
