#include "src/workload/generator.h"

#include <algorithm>

#include "src/storage/column_index.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/memory.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace workload {

namespace {

telemetry::Counter& QueriesLabeled() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("workload.queries_labeled");
  return c;
}

telemetry::Counter& LabelFallbacks() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("workload.label_fallbacks");
  return c;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const storage::Database* db,
                                     WorkloadOptions options)
    : db_(db), options_(std::move(options)), executor_(db) {
  // Every labeling run touches the sorted columns (predicate-center quantile
  // lookups) and, with the accelerated oracle, the join-key remaps. Build
  // them across the pool now instead of serializing lazy first-touch builds
  // behind the index mutex inside the labeling loop.
  db_->index().Prebuild(/*include_edges=*/exec::OracleIndexEnabled());
  // Prebuild just materialized the sorted columns (and join edges); record
  // their footprint for the manifest's memory object. Set, not Add: repeated
  // generators over one database re-measure the same shared structures.
  telemetry::MemoryTracker::Global().Set(
      "index", static_cast<int64_t>(db_->index().SizeBytes()));
  LCE_CHECK(options_.max_joins >= 0);
  LCE_CHECK(options_.min_predicates >= 0);
  LCE_CHECK(options_.max_predicates >= options_.min_predicates);
  LCE_CHECK(options_.center_lo >= 0 && options_.center_hi <= 1.0 &&
            options_.center_lo < options_.center_hi);
  for (const auto& tmpl : options_.template_whitelist) {
    LCE_CHECK_MSG(db_->IsConnected(tmpl), "whitelisted template not connected");
  }
}

std::vector<int> WorkloadGenerator::TemplateEdges(
    const std::vector<int>& tables) const {
  std::vector<int> edges;
  const auto& schema = db_->schema();
  for (size_t j = 0; j < schema.joins.size(); ++j) {
    int lt = schema.TableIndex(schema.joins[j].left_table);
    int rt = schema.TableIndex(schema.joins[j].right_table);
    bool has_l = std::find(tables.begin(), tables.end(), lt) != tables.end();
    bool has_r = std::find(tables.begin(), tables.end(), rt) != tables.end();
    if (has_l && has_r) edges.push_back(static_cast<int>(j));
  }
  LCE_CHECK_MSG(edges.size() == tables.size() - 1,
                "join graph must be a tree for unique template edges");
  return edges;
}

std::vector<std::vector<int>> WorkloadGenerator::EnumerateTemplates() const {
  std::vector<std::vector<int>> out;
  int n = db_->num_tables();
  LCE_CHECK_MSG(n <= 20, "template enumeration assumes small schemas");
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> tables;
    for (int t = 0; t < n; ++t) {
      if (mask & (1u << t)) tables.push_back(t);
    }
    if (static_cast<int>(tables.size()) > options_.max_joins + 1) continue;
    if (!db_->IsConnected(tables)) continue;
    out.push_back(std::move(tables));
  }
  return out;
}

std::vector<int> WorkloadGenerator::RandomTemplate(Rng* rng) const {
  if (!options_.template_whitelist.empty()) {
    return options_.template_whitelist[rng->Below(
        static_cast<uint32_t>(options_.template_whitelist.size()))];
  }
  // Random walk on the join graph: uniform target size, grow by neighbors.
  int max_tables = std::min(options_.max_joins + 1, db_->num_tables());
  int target = 1 + static_cast<int>(rng->Below(static_cast<uint32_t>(max_tables)));
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::vector<int> tables = {
        static_cast<int>(rng->Below(static_cast<uint32_t>(db_->num_tables())))};
    while (static_cast<int>(tables.size()) < target) {
      // Candidate neighbors of the current set.
      std::vector<int> candidates;
      for (int t = 0; t < db_->num_tables(); ++t) {
        if (std::find(tables.begin(), tables.end(), t) != tables.end()) continue;
        for (int u : tables) {
          if (db_->JoinBetween(u, t) >= 0) {
            candidates.push_back(t);
            break;
          }
        }
      }
      if (candidates.empty()) break;
      tables.push_back(
          candidates[rng->Below(static_cast<uint32_t>(candidates.size()))]);
    }
    if (static_cast<int>(tables.size()) == target) {
      std::sort(tables.begin(), tables.end());
      return tables;
    }
  }
  // Isolated table fallback (e.g. single-table schemas).
  return {0};
}

query::Query WorkloadGenerator::BuildFromTemplate(const std::vector<int>& tables,
                                                  Rng* rng) const {
  query::Query q;
  q.tables = tables;
  std::sort(q.tables.begin(), q.tables.end());
  if (q.tables.size() > 1) q.join_edges = TemplateEdges(q.tables);

  // Candidate predicate columns: non-key columns of used tables.
  std::vector<query::ColumnRef> candidates;
  for (int t : q.tables) {
    const auto& ts = db_->schema().tables[t];
    for (size_t c = 0; c < ts.columns.size(); ++c) {
      if (!ts.columns[c].is_key) {
        candidates.push_back({t, static_cast<int>(c)});
      }
    }
  }
  if (candidates.empty()) return q;
  rng->Shuffle(&candidates);
  int span = options_.max_predicates - options_.min_predicates + 1;
  int want = options_.min_predicates + static_cast<int>(rng->Below(span));
  want = std::min<int>(want, static_cast<int>(candidates.size()));

  for (int i = 0; i < want; ++i) {
    const query::ColumnRef& ref = candidates[i];
    const storage::Table& table = db_->table(ref.table);
    if (table.num_rows() == 0) continue;
    const storage::ColumnStats& stats = table.stats(ref.column);
    // Data-centered bound: a value drawn from the configured quantile range
    // of the column's distribution (the workload-drift knob).
    const std::vector<storage::Value>& sorted =
        SortedColumn(ref.table, ref.column);
    double quantile = rng->Uniform(options_.center_lo, options_.center_hi);
    uint64_t rank = static_cast<uint64_t>(
        quantile * static_cast<double>(sorted.size() - 1));
    rank = std::min<uint64_t>(rank, sorted.size() - 1);
    storage::Value center = sorted[rank];

    query::Predicate p;
    p.col = ref;
    if (rng->Bernoulli(options_.equality_prob)) {
      p.lo = p.hi = center;
    } else {
      double range = static_cast<double>(stats.max - stats.min);
      double width = rng->Uniform() * options_.max_range_frac * range;
      double offset = rng->Uniform() * width;
      p.lo = static_cast<storage::Value>(static_cast<double>(center) - offset);
      p.hi = static_cast<storage::Value>(static_cast<double>(p.lo) + width);
      if (p.hi < p.lo) p.hi = p.lo;
    }
    q.predicates.push_back(p);
  }
  return q;
}

const std::vector<storage::Value>& WorkloadGenerator::SortedColumn(
    int table, int column) const {
  return db_->index().Column(table, column).values;
}

query::Query WorkloadGenerator::GenerateQuery(Rng* rng) const {
  return BuildFromTemplate(RandomTemplate(rng), rng);
}

query::LabeledQuery WorkloadGenerator::LabelOne(Rng* rng) const {
  query::Query q;
  double card = 0;
  bool found = false;
  for (int attempt = 0; attempt < options_.max_attempts_per_query; ++attempt) {
    q = GenerateQuery(rng);
    card = executor_.Cardinality(q);
    if (card >= options_.min_cardinality) {
      found = true;
      break;
    }
  }
  if (!found) {
    // Guaranteed-nonempty fallback: an unfiltered single-table scan.
    LCE_LOG_EVERY_N(WARN, 64)
        << "query labeling exhausted " << options_.max_attempts_per_query
        << " attempts; emitting unfiltered single-table fallback";
    LabelFallbacks().Increment();
    q = query::Query{};
    q.tables = {static_cast<int>(rng->Below(
        static_cast<uint32_t>(db_->num_tables())))};
    card = static_cast<double>(db_->table(q.tables[0]).num_rows());
  }
  QueriesLabeled().Increment();
  return {std::move(q), card};
}

std::vector<query::LabeledQuery> WorkloadGenerator::GenerateLabeled(
    int n, Rng* rng) const {
  if (n <= 0) return {};
  telemetry::ScopedPhase phase("workload/label");
  if (parallel::ThreadCount() <= 1) {
    // Sequential path: consumes `rng` exactly like older releases, keeping
    // seeded single-thread runs byte-identical.
    std::vector<query::LabeledQuery> out;
    out.reserve(n);
    while (static_cast<int>(out.size()) < n) out.push_back(LabelOne(rng));
    return out;
  }
  // Parallel path: replays the exact sequential algorithm, but labels in
  // parallel. Query *generation* stays on the caller's Rng stream (it is
  // cheap); the exact-count labeling (the dominant cost) is a pure function
  // of the query, so a batch of speculatively generated candidates can be
  // labeled concurrently and then fed through the sequential accept/reject
  // replay. Two events make the sequential stream diverge from speculation —
  // a slot exhausting its attempts (fallback draw) and the final slot filling
  // (generation stops) — and both rewind `rng` to the recorded state of the
  // last consumed candidate, so workload AND final Rng state are bit-identical
  // to the sequential path at every thread count.
  std::vector<query::LabeledQuery> out;
  out.reserve(n);
  int attempts_used = 0;  // rejected candidates for the current slot
  std::vector<query::Query> batch;
  std::vector<Rng> state_after;  // rng snapshot after generating batch[i]
  std::vector<double> cards;
  while (static_cast<int>(out.size()) < n) {
    // Small slack over the remaining slot count: rejections are rare, and any
    // shortfall just costs another round.
    int remaining = n - static_cast<int>(out.size());
    int k = std::min(256, remaining + 8);
    batch.resize(k);
    state_after.resize(k);
    for (int i = 0; i < k; ++i) {
      batch[i] = GenerateQuery(rng);
      state_after[i] = *rng;
    }
    cards.assign(k, 0.0);
    parallel::ParallelFor(0, k, 8, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        cards[static_cast<size_t>(i)] = executor_.Cardinality(batch[i]);
      }
    });
    int consumed = 0;
    bool rewound = false;
    for (int i = 0; i < k && static_cast<int>(out.size()) < n; ++i) {
      consumed = i + 1;
      if (cards[i] >= options_.min_cardinality) {
        out.push_back({std::move(batch[i]), cards[i]});
        QueriesLabeled().Increment();
        attempts_used = 0;
      } else if (++attempts_used >= options_.max_attempts_per_query) {
        // The sequential fallback draw interleaves into the generation
        // stream, so the speculation past this candidate is invalid.
        LCE_LOG_EVERY_N(WARN, 64)
            << "query labeling exhausted " << options_.max_attempts_per_query
            << " attempts; emitting unfiltered single-table fallback";
        LabelFallbacks().Increment();
        QueriesLabeled().Increment();
        *rng = state_after[i];
        query::Query q;
        q.tables = {static_cast<int>(
            rng->Below(static_cast<uint32_t>(db_->num_tables())))};
        double card = static_cast<double>(db_->table(q.tables[0]).num_rows());
        out.push_back({std::move(q), card});
        attempts_used = 0;
        rewound = true;
        break;
      }
    }
    // Un-consume speculative candidates past the sequential stopping point.
    if (!rewound && consumed > 0) *rng = state_after[consumed - 1];
  }
  return out;
}

}  // namespace workload
}  // namespace lce
