// Workload generation.
//
// Follows the protocol of learned-CE benchmarks: queries are built from
// templates (connected table sets of the join graph) with data-centered range
// predicates — a predicate's bounds are drawn around the value of a randomly
// sampled row, so queries hit populated regions. The options expose the knobs
// the experiments sweep: join count, predicate count, template whitelists
// (generalization, R8) and center-region restriction (workload drift, R14).

#ifndef LCE_WORKLOAD_GENERATOR_H_
#define LCE_WORKLOAD_GENERATOR_H_

#include <vector>

#include "src/exec/executor.h"
#include "src/query/query.h"
#include "src/storage/database.h"
#include "src/util/rng.h"

namespace lce {
namespace workload {

struct WorkloadOptions {
  /// Maximum number of join edges (tables - 1). 0 = single-table queries.
  int max_joins = 3;
  int min_predicates = 1;
  int max_predicates = 4;
  /// Probability that a predicate is an equality instead of a range.
  double equality_prob = 0.25;
  /// Maximum predicate width as a fraction of the column's value range.
  double max_range_frac = 0.35;
  /// Predicate centers are drawn from this quantile range of each column's
  /// value distribution. [0, 1] reproduces data-centered sampling; narrowing
  /// it shifts the workload toward low/high value regions (drift knob).
  double center_lo = 0.0;
  double center_hi = 1.0;
  /// If non-empty, only these templates (table sets) are used.
  std::vector<std::vector<int>> template_whitelist;
  /// Labeled generation rejects queries below this true cardinality, matching
  /// the study's "drop empty-result training queries" rule.
  double min_cardinality = 1.0;
  int max_attempts_per_query = 200;
};

class WorkloadGenerator {
 public:
  /// `db` must be finalized and outlive the generator.
  WorkloadGenerator(const storage::Database* db, WorkloadOptions options);

  /// One structurally valid query (cardinality not checked).
  query::Query GenerateQuery(Rng* rng) const;

  /// `n` queries with true cardinalities >= options.min_cardinality.
  ///
  /// Query generation always consumes `rng` exactly like the sequential
  /// rejection-sampling loop; with >= 2 pool lanes only the exact-count
  /// labeling (a pure function of each query) runs in parallel, over
  /// speculatively generated batches. The returned workload and the final
  /// state of `rng` are bit-identical at every thread count.
  std::vector<query::LabeledQuery> GenerateLabeled(int n, Rng* rng) const;

  /// All templates (connected table subsets) with at most `max_joins` edges.
  /// Every join graph in this library is a tree, so a connected subset has a
  /// unique spanning edge set.
  std::vector<std::vector<int>> EnumerateTemplates() const;

  /// The induced join edges of a connected table set.
  std::vector<int> TemplateEdges(const std::vector<int>& tables) const;

  const WorkloadOptions& options() const { return options_; }

 private:
  query::Query BuildFromTemplate(const std::vector<int>& tables,
                                 Rng* rng) const;
  std::vector<int> RandomTemplate(Rng* rng) const;
  /// One rejection-sampled labeled query (the body of GenerateLabeled).
  query::LabeledQuery LabelOne(Rng* rng) const;
  /// A column's values in ascending order (quantile lookups), served by the
  /// database's shared oracle index — the same structure the executor's
  /// indexed filters probe, so labeling builds each sorted column once.
  const std::vector<storage::Value>& SortedColumn(int table, int column) const;

  const storage::Database* db_;
  WorkloadOptions options_;
  exec::Executor executor_;
};

}  // namespace workload
}  // namespace lce

#endif  // LCE_WORKLOAD_GENERATOR_H_
