// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit Rng so that all
// experiments are reproducible from a single seed. The core generator is
// PCG32 (O'Neill, 2014): small state, good statistical quality, cheap.

#ifndef LCE_UTIL_RNG_H_
#define LCE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace lce {

/// PCG32 generator plus the distribution helpers the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    NextU32();
    state_ += 0x853c49e6748fea9bULL + seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  uint32_t Below(uint32_t bound) {
    LCE_CHECK(bound > 0);
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LCE_CHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit span
    // 64-bit rejection sampling.
    uint64_t threshold = (0ULL - span) % span;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return lo + static_cast<int64_t>(r % span);
    }
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal via Box–Muller.
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = Uniform();
    double u2 = Uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(static_cast<uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Draw an index according to (unnormalized, non-negative) weights.
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    LCE_CHECK_MSG(total > 0, "Weighted() needs a positive total weight");
    double r = Uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fork an independent stream (for per-worker / per-table generators).
  Rng Fork() { return Rng(NextU64() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  bool has_spare_ = false;
  double spare_ = 0;
};

/// Zipf(θ) sampler over {0, ..., n-1} using the rejection-inversion method of
/// Hörmann & Derflinger. θ = 0 degenerates to uniform; larger θ is more
/// skewed. Precomputes nothing beyond scalar constants, so it is cheap to
/// construct per column.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
    LCE_CHECK(n >= 1);
    LCE_CHECK(theta >= 0.0);
    if (theta_ < 1e-9) return;  // uniform fallback
    h_x1_ = H(1.5) - InvPow(1.0);
    h_n_ = H(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - HInv(H(2.5) - InvPow(2.0));
  }

  uint64_t Sample(Rng* rng) {
    if (n_ == 1) return 0;
    if (theta_ < 1e-9) {
      return static_cast<uint64_t>(rng->UniformInt(0, static_cast<int64_t>(n_) - 1));
    }
    for (;;) {
      double u = h_n_ + rng->Uniform() * (h_x1_ - h_n_);
      double x = HInv(u);
      double k = std::floor(x + 0.5);
      if (k < 1) k = 1;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_ || u >= H(k + 0.5) - InvPow(k)) {
        return static_cast<uint64_t>(k) - 1;
      }
    }
  }

 private:
  // H(x) = integral of x^-theta; handles theta == 1 via log.
  double H(double x) const {
    if (std::abs(1.0 - theta_) < 1e-9) return std::log(x);
    return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
  }
  double HInv(double x) const {
    if (std::abs(1.0 - theta_) < 1e-9) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
  }
  double InvPow(double x) const { return std::pow(x, -theta_); }

  uint64_t n_;
  double theta_;
  double h_x1_ = 0, h_n_ = 0, s_ = 0;
};

}  // namespace lce

#endif  // LCE_UTIL_RNG_H_
