// Deterministic thread-pool parallelism.
//
// A lazily-initialized global ThreadPool (size from the LCE_THREADS env var,
// default hardware_concurrency) backs two primitives:
//
//   ParallelFor(begin, end, grain, fn)     — fn(chunk_begin, chunk_end) over a
//                                            fixed chunking of [begin, end)
//   ParallelReduce(begin, end, grain, ...) — per-chunk map results combined in
//                                            chunk-index order
//
// Determinism contract (see DESIGN.md §6):
//   * Chunk boundaries depend only on (begin, end, grain) — never on the
//     thread count — so any work whose chunks write disjoint outputs or whose
//     chunk results are combined in index order produces identical output at
//     every thread count.
//   * ChunkSeed(base, chunk) derives an independent Rng seed per chunk, so
//     seeded randomized work stays reproducible at any thread count >= 2.
//   * With LCE_THREADS=1 no worker threads are ever spawned and every
//     primitive degenerates to the plain sequential loop.

#ifndef LCE_UTIL_PARALLEL_H_
#define LCE_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lce {
namespace parallel {

/// Fixed-size pool of `size - 1` worker threads (the caller of ParallelFor is
/// the remaining lane). size <= 1 spawns no threads at all. The destructor
/// drains every submitted task before joining.
class ThreadPool {
 public:
  explicit ThreadPool(int size);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the caller lane (>= 1).
  int size() const { return size_; }

  /// Enqueues a task for the worker threads. With size() <= 1 the task runs
  /// inline. Tasks must not block on other pool tasks.
  void Submit(std::function<void()> task);

 private:
  struct Impl;
  int size_;
  Impl* impl_;  // null when size_ <= 1
};

/// The process-wide pool, created on first use. Size comes from LCE_THREADS
/// (if set to a positive integer) else std::thread::hardware_concurrency().
ThreadPool* GlobalPool();

/// Size of the global pool (>= 1). Cheap after first use.
int ThreadCount();

/// Replaces the global pool with one of `size` threads (<= 0 restores the
/// LCE_THREADS / hardware default). Must not race with in-flight parallel
/// work; intended for tests and benchmarks.
void SetThreadCountForTesting(int size);

/// Derives an independent, well-mixed Rng seed for one chunk of a parallel
/// region from the region's base seed (splitmix64-style finalizer).
inline uint64_t ChunkSeed(uint64_t base_seed, uint64_t chunk_index) {
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (chunk_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace internal {

/// True when a region of `num_chunks` chunks should fan out to the pool:
/// more than one chunk, more than one lane, and not already inside a pool
/// worker (nested regions run inline to avoid starving the fixed pool).
bool ShouldParallelize(int64_t num_chunks);

/// Pool dispatch for ParallelForChunks; only reached on the fan-out path, so
/// the type erasure costs nothing for inline (sequential) callers.
void ParallelForChunksImpl(
    int64_t begin, int64_t end, int64_t grain, int64_t num_chunks,
    const std::function<void(int64_t, int64_t, int64_t)>& fn);

}  // namespace internal

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every grain-sized chunk
/// of [begin, end). Chunks run concurrently on the global pool; the caller
/// participates and returns after all chunks finish. The first exception
/// thrown by any chunk is rethrown in the caller. Runs inline (in chunk
/// order) when the pool has one lane, when there is a single chunk, or when
/// called from inside a pool worker (no nested fan-out).
template <typename Fn>
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  if (!internal::ShouldParallelize(num_chunks)) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t b = begin + c * grain;
      fn(c, b, b + grain < end ? b + grain : end);
    }
    return;
  }
  internal::ParallelForChunksImpl(begin, end, grain, num_chunks, fn);
}

/// ParallelForChunks without the chunk index: fn(chunk_begin, chunk_end).
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](int64_t, int64_t b, int64_t e) { fn(b, e); });
}

/// Deterministic reduction: map_chunk(chunk_begin, chunk_end) -> T runs per
/// chunk (concurrently), then combine(acc, chunk_result) folds the results in
/// chunk-index order starting from `init`, so the numeric output is
/// independent of thread scheduling and thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 MapFn map_chunk, CombineFn combine) {
  if (end <= begin) return init;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> results(static_cast<size_t>(num_chunks), init);
  ParallelForChunks(begin, end, grain,
                    [&](int64_t chunk, int64_t b, int64_t e) {
                      results[static_cast<size_t>(chunk)] = map_chunk(b, e);
                    });
  T acc = std::move(init);
  for (T& r : results) acc = combine(std::move(acc), std::move(r));
  return acc;
}

}  // namespace parallel
}  // namespace lce

#endif  // LCE_UTIL_PARALLEL_H_
