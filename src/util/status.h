// Status / Result<T>: lightweight error propagation without exceptions.
//
// Modeled after the RocksDB/Abseil style: functions that can fail return a
// Status (or Result<T> when they also produce a value). Hot paths (estimation,
// execution) are designed so failures are programming errors and are guarded
// with LCE_CHECK instead.

#ifndef LCE_UTIL_STATUS_H_
#define LCE_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lce {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Value-or-error. `value()` asserts that the result is OK.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace lce

#endif  // LCE_UTIL_STATUS_H_
