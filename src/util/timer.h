// Wall-clock timing helpers for the cost-profile experiments (R2, R9).

#ifndef LCE_UTIL_TIMER_H_
#define LCE_UTIL_TIMER_H_

#include <chrono>

namespace lce {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lce

#endif  // LCE_UTIL_TIMER_H_
