#include "src/util/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace lce {
namespace fs {

Status EnsureParentDirs(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + parent.string() +
                            ": " + ec.message());
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  Status dirs = EnsureParentDirs(path);
  if (!dirs.ok()) return dirs;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing: " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read of " + path + " failed");
  return Status::OK();
}

}  // namespace fs
}  // namespace lce
