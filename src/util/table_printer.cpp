#include "src/util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/logging.h"

namespace lce {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  LCE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LCE_CHECK_MSG(row.size() == header_.size(),
                "row width " << row.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v) {
  std::ostringstream oss;
  if (v == 0) {
    oss << "0";
  } else if (std::abs(v) >= 1e6 || std::abs(v) < 1e-3) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    oss << buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    oss << buf;
  }
  return oss.str();
}

std::string TablePrinter::Fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream oss;
    for (size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "| " : " | ");
      oss << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    oss << " |\n";
    return oss.str();
  };
  std::ostringstream oss;
  oss << render_row(header_);
  oss << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    oss << std::string(widths[c] + 2, '-') << "|";
  }
  oss << "\n";
  for (const auto& row : rows_) oss << render_row(row);
  return oss.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace lce
