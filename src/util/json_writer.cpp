#include "src/util/json_writer.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/util/logging.h"

namespace lce {

JsonWriter::JsonWriter(std::string* out, Style style)
    : out_(out), style_(style) {
  LCE_CHECK(out != nullptr);
}

void JsonWriter::NewlineIndent() {
  if (style_ != Style::kPretty) return;
  out_->push_back('\n');
  out_->append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    LCE_CHECK_MSG(!root_written_, "JsonWriter: multiple top-level values");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    LCE_CHECK_MSG(top.key_pending, "JsonWriter: object value without Key()");
    top.key_pending = false;
  } else {
    if (top.items > 0) out_->push_back(',');
    NewlineIndent();
  }
  ++top.items;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_->push_back('{');
  stack_.push_back({/*is_object=*/true});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  LCE_CHECK_MSG(!stack_.empty() && stack_.back().is_object &&
                    !stack_.back().key_pending,
                "JsonWriter: unbalanced EndObject()");
  bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) NewlineIndent();
  out_->push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_->push_back('[');
  stack_.push_back({/*is_object=*/false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  LCE_CHECK_MSG(!stack_.empty() && !stack_.back().is_object,
                "JsonWriter: unbalanced EndArray()");
  bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) NewlineIndent();
  out_->push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  LCE_CHECK_MSG(!stack_.empty() && stack_.back().is_object &&
                    !stack_.back().key_pending,
                "JsonWriter: Key() outside an object or after another Key()");
  if (stack_.back().items > 0) out_->push_back(',');
  NewlineIndent();
  out_->push_back('"');
  AppendEscaped(key);
  out_->append(style_ == Style::kPretty ? "\": " : "\":");
  stack_.back().key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  out_->push_back('"');
  AppendEscaped(v);
  out_->push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  return Value(std::string_view(v));
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  return Value(std::string_view(v));
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_->append(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(int v) { return Value(static_cast<int64_t>(v)); }

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_->append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_->append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  if (!std::isfinite(v)) return Null();
  BeforeValue();
  // Shortest round-trip form via to_chars: parses back to the same double
  // and is ~10x cheaper than snprintf("%g"), which matters for the query
  // log's one-JSON-line-per-query path.
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out_->append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_->append("null");
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_->append(json);
  return *this;
}

bool JsonWriter::done() const { return root_written_ && stack_.empty(); }

void JsonWriter::AppendEscaped(std::string_view s) {
  // Common case: nothing to escape — append in one shot, no temporary.
  bool clean = true;
  for (unsigned char c : s) {
    if (c == '"' || c == '\\' || c < 0x20) {
      clean = false;
      break;
    }
  }
  if (clean) {
    out_->append(s);
    return;
  }
  out_->append(Escape(s));
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace json {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      // Containers recurse one stack frame per level; bound the depth so
      // adversarial input ("[[[[…") fails with a parse error instead of a
      // stack overflow.
      case '{':
      case '[': {
        if (depth_ >= kMaxDepth) return Fail("nesting too deep");
        ++depth_;
        bool ok =
            text_[pos_] == '{' ? ParseObject(out) : ParseArray(out);
        --depth_;
        return ok;
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences; good enough for the
          // ASCII-plus-escapes artifacts this repo emits).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    out->kind = JsonValue::Kind::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, out->number);
    if (ec != std::errc() || ptr != last) return Fail("bad number");
    return true;
  }

  /// Maximum container nesting depth accepted by Parse.
  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Parse(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).Run(out);
}

}  // namespace json
}  // namespace lce
