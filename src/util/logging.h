// Logging and invariant-checking macros.
//
// LCE_CHECK* terminate the process with a diagnostic; they guard programming
// errors on paths where Status propagation would add noise without value.
//
// LCE_LOG(severity) is stream-style leveled logging to stderr:
//
//   LCE_LOG(INFO) << "labeled " << n << " queries in " << secs << "s";
//   LCE_LOG_EVERY_N(WARN, 64) << "labeling fell back to unfiltered scan";
//
// Severities are DEBUG < INFO < WARN < ERROR. The threshold comes from the
// LCE_LOG_LEVEL env var (DEBUG/INFO/WARN/ERROR/OFF, case-insensitive; default
// INFO); messages below it cost one comparison and never evaluate their
// stream operands.

#ifndef LCE_UTIL_LOGGING_H_
#define LCE_UTIL_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lce {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& what) {
  std::fprintf(stderr, "[LCE CHECK FAILED] %s:%d: %s\n", file, line,
               what.c_str());
  std::abort();
}

}  // namespace internal

namespace logging {

enum class Severity : int { kDEBUG = 0, kINFO = 1, kWARN = 2, kERROR = 3, kOFF = 4 };

/// Current threshold: messages with severity < MinSeverity() are dropped.
/// Parsed once from LCE_LOG_LEVEL unless overridden for tests.
Severity MinSeverity();

/// Overrides the threshold (tests); pass ResetMinSeverity() to re-read env.
void SetMinSeverityForTesting(Severity s);
void ResetMinSeverityForTesting();

/// One in-flight log statement; flushes to stderr as a single line on
/// destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, Severity severity);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  const char* file_;
  int line_;
  Severity severity_;
};

/// Swallows the ostream expression in the discarded branch of LCE_LOG's
/// ternary; operator& binds looser than <<, tighter than ?:.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace logging
}  // namespace lce

#define LCE_LOG(severity)                                                   \
  (::lce::logging::Severity::k##severity < ::lce::logging::MinSeverity())   \
      ? (void)0                                                             \
      : ::lce::logging::Voidify() &                                         \
            ::lce::logging::LogMessage(__FILE__, __LINE__,                  \
                                       ::lce::logging::Severity::k##severity) \
                .stream()

#define LCE_LOGGING_CONCAT_(a, b) a##b
#define LCE_LOGGING_CONCAT(a, b) LCE_LOGGING_CONCAT_(a, b)

// Logs on the 1st, (n+1)th, (2n+1)th, ... execution of the statement.
#define LCE_LOG_EVERY_N(severity, n)                                        \
  static ::std::atomic<uint64_t> LCE_LOGGING_CONCAT(lce_log_occurrences_,   \
                                                    __LINE__){0};           \
  if (LCE_LOGGING_CONCAT(lce_log_occurrences_, __LINE__)                    \
              .fetch_add(1, ::std::memory_order_relaxed) %                  \
          static_cast<uint64_t>(n) ==                                       \
      0)                                                                    \
  LCE_LOG(severity)

#define LCE_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, #cond);          \
    }                                                                   \
  } while (0)

#define LCE_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream oss_;                                          \
      oss_ << #cond << " — " << msg;                                    \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, oss_.str());     \
    }                                                                   \
  } while (0)

#define LCE_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    const ::lce::Status s_ = (status_expr);                             \
    if (!s_.ok()) {                                                     \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, s_.ToString());  \
    }                                                                   \
  } while (0)

#endif  // LCE_UTIL_LOGGING_H_
