// Minimal logging and invariant-checking macros.
//
// LCE_CHECK* terminate the process with a diagnostic; they guard programming
// errors on paths where Status propagation would add noise without value.

#ifndef LCE_UTIL_LOGGING_H_
#define LCE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace lce {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& what) {
  std::fprintf(stderr, "[LCE CHECK FAILED] %s:%d: %s\n", file, line,
               what.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace lce

#define LCE_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, #cond);          \
    }                                                                   \
  } while (0)

#define LCE_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream oss_;                                          \
      oss_ << #cond << " — " << msg;                                    \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, oss_.str());     \
    }                                                                   \
  } while (0)

#define LCE_CHECK_OK(status_expr)                                       \
  do {                                                                  \
    const ::lce::Status s_ = (status_expr);                             \
    if (!s_.ok()) {                                                     \
      ::lce::internal::CheckFailed(__FILE__, __LINE__, s_.ToString());  \
    }                                                                   \
  } while (0)

#endif  // LCE_UTIL_LOGGING_H_
