// Aligned ASCII table rendering for benchmark output.
//
// Every bench binary prints its table/figure series through this class so the
// regenerated rows look uniform and are trivially diffable run-to-run.

#ifndef LCE_UTIL_TABLE_PRINTER_H_
#define LCE_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace lce {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 4 significant digits.
  static std::string Num(double v);
  /// Fixed decimals (e.g. latencies).
  static std::string Fixed(double v, int decimals);

  /// Renders the whole table, header first, with a separator rule.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lce

#endif  // LCE_UTIL_TABLE_PRINTER_H_
