// Shared JSON emission (and a minimal reader for round-trip validation).
//
// JsonWriter replaces the hand-rolled fprintf JSON in the bench binaries and
// backs every machine-readable artifact the repo produces: BENCH_parallel.json,
// the per-bench run manifests, and Chrome trace-event exports (LCE_TRACE).
// It handles string escaping, comma placement, and stable number formatting so
// emitters can never produce unparseable output.
//
// json::Parse is a small recursive-descent parser used by tests (and available
// to tools) to validate that emitted artifacts actually parse; it builds a
// plain JsonValue tree and is not optimized for large documents.

#ifndef LCE_UTIL_JSON_WRITER_H_
#define LCE_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lce {

/// Streaming JSON writer. Usage:
///
///   std::string out;
///   JsonWriter w(&out);
///   w.BeginObject()
///       .Key("kernel").Value("matmul")
///       .Key("threads").Value(int64_t{4})
///       .Key("speedups").BeginArray().Value(1.0).Value(1.9).EndArray()
///   .EndObject();
///
/// The writer asserts balanced Begin/End and key-before-value in objects via
/// LCE_CHECK (programming errors, not data errors).
class JsonWriter {
 public:
  enum class Style { kCompact, kPretty };

  explicit JsonWriter(std::string* out, Style style = Style::kPretty);

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v);  // without this, char* converts to bool
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(bool v);
  JsonWriter& Value(int v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(double v);  // non-finite values emit null (JSON has no NaN)
  JsonWriter& Null();

  /// Splices `json` verbatim where a value is expected (comma/indent handled
  /// as for Value). The caller guarantees `json` is one well-formed JSON
  /// value; used to embed pre-serialized records without re-parsing.
  JsonWriter& RawValue(std::string_view json);

  /// True once the single top-level value is complete.
  bool done() const;

  /// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
  static std::string Escape(std::string_view s);

 private:
  struct Frame {
    bool is_object;
    int items = 0;
    bool key_pending = false;  // object: Key() seen, value not yet written
  };

  void BeforeValue();  // comma/indent bookkeeping shared by all Value()s
  void NewlineIndent();
  void AppendEscaped(std::string_view s);  // Escape() minus the temporary

  std::string* out_;
  Style style_;
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

namespace json {

/// A parsed JSON document node (null / bool / number / string / array /
/// object). Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr. Only meaningful for kObject.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` (one complete JSON value, surrounding whitespace ok) into
/// `*out`. On failure returns false and, when `error` is non-null, stores a
/// message with the byte offset of the problem. Container nesting is capped
/// at 256 levels ("nesting too deep") to keep recursion stack-safe.
bool Parse(std::string_view text, JsonValue* out, std::string* error = nullptr);

}  // namespace json
}  // namespace lce

#endif  // LCE_UTIL_JSON_WRITER_H_
