// Memory accounting: process peak RSS plus per-subsystem byte counters,
// surfaced in run manifests (the `memory` object) so bench_diff can gate on
// regressions (e.g. --watch mem.peak_rss_bytes).
//
// PeakRssBytes() reads VmHWM from /proc/self/status — the kernel's
// high-water mark for resident set size. Linux-only; other platforms report
// 0 and the manifest records null.
//
// The MemoryTracker aggregates voluntary accounting from the subsystems that
// dominate the repo's footprint:
//   "model" — trained estimator footprints (credited by ModelCardRegistry)
//   "index" — column indexes (DatabaseIndex::SizeBytes after Prebuild)
//   "cache" — executor bitmap/LRU caches
// Counters are plain atomics: always live (a handful of adds per bench, not
// per query), cheap enough to never need env gating. When LCE_METRICS is on,
// SamplePeakRss() additionally publishes `mem.peak_rss_bytes` and per-
// subsystem `mem.<name>_bytes` gauges into the MetricsRegistry so they land
// in the manifest's metrics snapshot and in bench_diff's flattened view.

#ifndef LCE_UTIL_TELEMETRY_MEMORY_H_
#define LCE_UTIL_TELEMETRY_MEMORY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lce {

class JsonWriter;

namespace telemetry {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 when unavailable (non-Linux, or /proc
/// unreadable).
uint64_t PeakRssBytes();

/// Per-subsystem byte accounting. All methods thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  /// Adds `bytes` to subsystem `name` (creating it on first use).
  void Add(const std::string& name, int64_t bytes);

  /// Replaces subsystem `name`'s total (for idempotent re-measurement, e.g.
  /// index bytes after a rebuild).
  void Set(const std::string& name, int64_t bytes);

  /// Current total for `name` (0 if never touched).
  int64_t Bytes(const std::string& name) const;

  /// All (name, bytes) pairs, sorted by name.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Re-reads peak RSS and, when LCE_METRICS is on, publishes
  /// `mem.peak_rss_bytes` plus `mem.<subsystem>_bytes` gauges. Returns the
  /// peak RSS value read.
  uint64_t SamplePeakRss();

  /// Appends {"peak_rss_bytes": ..., "subsystems": {...}} as a JSON object
  /// to an open writer. peak_rss_bytes is null when unavailable.
  void WriteJson(JsonWriter& w) const;

  /// Zeroes all subsystem counters (tests).
  void ResetForTesting();

 private:
  MemoryTracker() = default;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, int64_t>> subsystems_;
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_MEMORY_H_
