// Process-wide metrics: counters, gauges, and log-bucketed latency
// histograms, collected through sharded per-thread cells so recording from
// inside the parallel kernels never contends on a lock or a shared cache
// line.
//
// Everything is env-gated: with LCE_METRICS unset (or "0"), every recording
// call is a relaxed atomic load plus a predictable branch — no clock reads,
// no allocation — and estimator outputs are bit-identical to a build without
// telemetry. With LCE_METRICS set, recording is a relaxed fetch_add on a
// per-thread shard.
//
// Naming conventions (see DESIGN.md §7):
//   counters    dot-separated area.metric        e.g. exec.rows_scanned
//   gauges      same                              e.g. nn.last_epoch_loss
//   histograms  same, unit-suffixed               e.g. eval.estimate_latency_us
//   phases      phase.<scope>:<name>.{ns,calls}   e.g. phase.FCN:nn/epoch.ns
// where <scope> is the enclosing PhaseScope label (usually the estimator
// under build) and <name> is a slash-separated area/step like
// "gbdt/split_search".

#ifndef LCE_UTIL_TELEMETRY_TELEMETRY_H_
#define LCE_UTIL_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lce {

class JsonWriter;

namespace telemetry {

/// True when metric collection is on: LCE_METRICS set to anything but "0",
/// or overridden for tests. A relaxed load; safe and cheap on hot paths.
bool MetricsEnabled();

/// Overrides LCE_METRICS (tests). on<0 restores the env-derived value.
void SetMetricsEnabledForTesting(int on);

/// Monotonic nanoseconds since the first call in this process.
int64_t MonotonicNanos();

namespace internal {
constexpr int kShards = 16;
/// Stable per-thread shard index in [0, kShards).
int ShardIndex();
}  // namespace internal

/// Monotonically increasing sum, sharded per thread. Add() is dropped while
/// metrics are disabled.
class Counter {
 public:
  void Add(uint64_t delta) {
    if (!MetricsEnabled()) return;
    AddAlways(delta);
  }
  void Increment() { Add(1); }
  /// Records even while disabled; for callers that already checked the gate
  /// and for tests.
  void AddAlways(uint64_t delta) {
    cells_[internal::ShardIndex()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[internal::kShards];
};

/// Last-writer-wins double value.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    SetAlways(v);
  }
  /// Records even while metrics are disabled; for subsystems with their own
  /// opt-in gate (e.g. drift monitors) and for tests.
  void SetAlways(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  double min = 0;  // exact smallest observed value
  double max = 0;  // exact largest observed value
};

/// Log-bucketed histogram: buckets grow by 2^(1/3) (~26% relative width)
/// from kMinValue, so quantiles are exact to within one bucket across ten
/// decades without ever allocating on the record path. Values at or below
/// kMinValue land in the underflow bucket and report as kMinValue.
class Histogram {
 public:
  static constexpr int kNumBuckets = 128;
  static constexpr double kMinValue = 1e-3;
  static constexpr int kBucketsPerDoubling = 3;

  void Observe(double value) {
    if (!MetricsEnabled()) return;
    ObserveAlways(value);
  }
  void ObserveAlways(double value) { ObserveCountAlways(value, 1); }

  /// Records `count` observations of `value` (one bucket add; sum, min, and
  /// max treat it as `count` repeats). The event-ring drainer uses this to
  /// apply weighted histogram events.
  void ObserveCountAlways(double value, uint64_t count);

  HistogramSnapshot Snapshot() const;

  /// Bucket index for `value`; exposed for tests.
  static int BucketOf(double value);

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kNumBuckets] = {};
    std::atomic<double> sum{0.0};
    // Empty-shard sentinels; Snapshot() ignores them when merging.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  Shard shards_[internal::kShards];
};

/// The process-wide registry. Handles returned by counter()/gauge()/
/// histogram() are valid for the process lifetime (ResetForTesting zeroes
/// values but never invalidates handles), so hot call sites may cache them
/// in function-local statics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Writes {"counters": {...}, "gauges": {...}, "histograms": {...}} as one
  /// JSON object value into `w` (which must be positioned to accept a value).
  void WriteJson(JsonWriter* w) const;

  /// Sorted name -> value snapshot of all counters (tests, manifests).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;

  /// Sorted name -> value snapshot of all gauges (exporters).
  std::vector<std::pair<std::string, double>> GaugeValues() const;

  /// Sorted name -> snapshot of all histograms (exporters).
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const;

  /// Zeroes every counter, gauge, and histogram; handles stay valid.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Labels all phases recorded on this thread until destruction (phases nest:
/// the innermost scope wins). The bench harness scopes each estimator build
/// so phase counters attribute to "LW-XGB:gbdt/split_search" rather than a
/// global pot.
class PhaseScope {
 public:
  explicit PhaseScope(std::string label);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// The current thread's innermost scope label ("" when none).
  static const std::string& Current();

 private:
  std::string saved_;
};

/// RAII phase timer: on destruction adds elapsed time to the
/// phase.<scope>:<name>.{ns,calls} counters (when metrics are on) and emits a
/// trace span (when span recording is on). Both go through the lock-free
/// event ring. `name` must outlive the object — use a string literal.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  int64_t start_ns_ = 0;
  bool metrics_on_;
  bool trace_on_;
  uint64_t span_id_ = 0;         // trace span id while tracing is on
  uint64_t parent_span_id_ = 0;  // enclosing span at construction
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_TELEMETRY_H_
