// Model cards: one structured record per trained estimator, surfaced in run
// manifests (the `model_cards` array) and aggregated by tools/lce_report.
//
// A ModelCard answers "what did this training run produce and what did it
// cost": parameter count, memory footprint (from Estimator::FootprintBytes),
// training-set size, epochs to converge, final train/validation loss, and
// build wall time. Estimators fill in what they know via
// Estimator::DescribeModel; the bench harness adds the dataset name, build
// seconds, and accuracy extras before registering the card.
//
// The registry is process-global and append-only; BenchRun snapshots it into
// the manifest at scope exit. Registration also credits the card's footprint
// to the "model" subsystem of the MemoryTracker (see memory.h).

#ifndef LCE_UTIL_TELEMETRY_MODEL_CARD_H_
#define LCE_UTIL_TELEMETRY_MODEL_CARD_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lce {

class JsonWriter;

namespace telemetry {

struct ModelCard {
  std::string model;    // estimator name as benched ("MSCN", "SPN", ...)
  std::string family;   // "nn" | "gbdt" | "spn" | "bayesnet" | "naru" | ...
  std::string dataset;  // bench dataset / workload label ("" if unknown)
  int64_t parameter_count = 0;   // learned scalars (0 for non-parametric)
  int64_t footprint_bytes = 0;   // serialized model size estimate
  int64_t train_examples = -1;   // rows or queries trained on (-1 unknown)
  int64_t epochs = -1;           // epochs/rounds run (-1 if not iterative)
  double final_train_loss = -1.0;  // last epoch's training loss (-1 unknown)
  double final_val_loss = -1.0;    // validation loss if tracked (-1 unknown)
  double build_seconds = -1.0;     // wall time of Build() (-1 unknown)
  /// Free-form numeric annotations ("qerr_p50", "tables", ...).
  std::vector<std::pair<std::string, double>> extra;

  /// Appends this card as a JSON object to an open writer (caller manages
  /// surrounding array/object structure). -1 sentinels serialize as null.
  void WriteJson(JsonWriter& w) const;
};

/// Process-global, append-only collection of cards from this run.
class ModelCardRegistry {
 public:
  static ModelCardRegistry& Global();

  /// Records a card and credits `footprint_bytes` to the "model" subsystem
  /// of the global MemoryTracker. Thread-safe.
  void Add(ModelCard card);

  /// Copy of all cards registered so far, in registration order.
  std::vector<ModelCard> Snapshot() const;

  size_t size() const;

  /// Drops all cards (tests). Does not touch the MemoryTracker.
  void ResetForTesting();

 private:
  ModelCardRegistry() = default;

  mutable std::mutex mu_;
  std::vector<ModelCard> cards_;
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_MODEL_CARD_H_
