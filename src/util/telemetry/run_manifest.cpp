#include "src/util/telemetry/run_manifest.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string_view>
#include <thread>
#include <vector>

#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/drift.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/memory.h"
#include "src/util/telemetry/model_card.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"
#include "src/util/telemetry/train_log.h"

#ifndef LCE_GIT_COMMIT
#define LCE_GIT_COMMIT "unknown"
#endif

namespace lce {
namespace telemetry {

namespace {

std::string UtcTimestamp() {
  std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

void WriteEnvEntry(JsonWriter* w, const char* name) {
  const char* v = std::getenv(name);
  w->Key(name);
  if (v == nullptr) {
    w->Null();
  } else {
    w->Value(v);
  }
}

// Digests phase.<key>.ns / phase.<key>.calls counter pairs into a
// [{name, calls, total_ms, mean_us}] array ordered by descending total time.
void WritePhaseBreakdown(JsonWriter* w) {
  struct PhaseRow {
    std::string name;
    uint64_t ns = 0;
    uint64_t calls = 0;
  };
  std::vector<PhaseRow> rows;
  constexpr std::string_view kPrefix = "phase.";
  for (const auto& [name, value] : MetricsRegistry::Global().CounterValues()) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    std::string_view rest(name);
    rest.remove_prefix(kPrefix.size());
    bool is_ns = false;
    if (rest.size() > 3 && rest.substr(rest.size() - 3) == ".ns") {
      is_ns = true;
      rest.remove_suffix(3);
    } else if (rest.size() > 6 && rest.substr(rest.size() - 6) == ".calls") {
      rest.remove_suffix(6);
    } else {
      continue;
    }
    PhaseRow* row = nullptr;
    for (PhaseRow& r : rows) {
      if (r.name == rest) {
        row = &r;
        break;
      }
    }
    if (row == nullptr) {
      rows.push_back({std::string(rest), 0, 0});
      row = &rows.back();
    }
    (is_ns ? row->ns : row->calls) = value;
  }
  std::sort(rows.begin(), rows.end(),
            [](const PhaseRow& a, const PhaseRow& b) { return a.ns > b.ns; });
  w->BeginArray();
  for (const PhaseRow& r : rows) {
    w->BeginObject()
        .Key("name").Value(r.name)
        .Key("calls").Value(r.calls)
        .Key("total_ms").Value(static_cast<double>(r.ns) / 1e6)
        .Key("mean_us").Value(r.calls > 0 ? static_cast<double>(r.ns) /
                                                (1e3 * static_cast<double>(r.calls))
                                          : 0.0)
        .EndObject();
  }
  w->EndArray();
}

}  // namespace

const char* BuildGitCommit() { return LCE_GIT_COMMIT; }

std::string RunManifestJson(const std::string& bench_name,
                            double wall_seconds) {
  // Apply everything still sitting in the event rings so the phase
  // breakdown and metrics snapshot below are complete.
  FlushEventRings();
  // Refresh mem.* gauges (when LCE_METRICS is on) so the metrics snapshot
  // below carries the peak RSS bench_diff watches.
  MemoryTracker::Global().SamplePeakRss();
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("bench").Value(bench_name);
  w.Key("git_commit").Value(BuildGitCommit());
  w.Key("timestamp_utc").Value(UtcTimestamp());
  w.Key("wall_seconds").Value(wall_seconds);
  w.Key("threads")
      .BeginObject()
      .Key("configured").Value(parallel::ThreadCount())
      .Key("hardware_concurrency")
      .Value(uint64_t{std::thread::hardware_concurrency()})
      .EndObject();
  w.Key("env").BeginObject();
  WriteEnvEntry(&w, "LCE_THREADS");
  WriteEnvEntry(&w, "LCE_METRICS");
  WriteEnvEntry(&w, "LCE_TRACE");
  WriteEnvEntry(&w, "LCE_LOG_LEVEL");
  WriteEnvEntry(&w, "LCE_QUERY_LOG");
  WriteEnvEntry(&w, "LCE_TRAIN_LOG");
  WriteEnvEntry(&w, "LCE_DRIFT_WINDOW");
  WriteEnvEntry(&w, "LCE_DRIFT_THRESHOLD");
  WriteEnvEntry(&w, "LCE_BENCH_OUT_DIR");
  WriteEnvEntry(&w, "LCE_BENCH_LATENCY_SAMPLES");
  WriteEnvEntry(&w, "LCE_ORACLE_INDEX");
  WriteEnvEntry(&w, "LCE_BITMAP_CACHE_SIZE");
  WriteEnvEntry(&w, "LCE_SIMD");
  WriteEnvEntry(&w, "LCE_FASTMATH");
  WriteEnvEntry(&w, "LCE_PROFILE");
  WriteEnvEntry(&w, "LCE_EVENT_RING_KB");
  WriteEnvEntry(&w, "LCE_FLIGHT_RECORDER");
  WriteEnvEntry(&w, "LCE_FR_QERR_TRIGGER");
  WriteEnvEntry(&w, "LCE_FR_LAT_TRIGGER");
  WriteEnvEntry(&w, "LCE_FR_DRIFT");
  WriteEnvEntry(&w, "LCE_FR_SIGNAL");
  WriteEnvEntry(&w, "LCE_FR_DIR");
  WriteEnvEntry(&w, "LCE_FR_RING");
  WriteEnvEntry(&w, "LCE_FR_MAX_BUNDLES");
  WriteEnvEntry(&w, "LCE_METRICS_SNAPSHOT");
  WriteEnvEntry(&w, "LCE_SERVE_BATCH");
  WriteEnvEntry(&w, "LCE_SERVE_BATCH_US");
  WriteEnvEntry(&w, "LCE_SERVE_MAX_BATCH");
  w.EndObject();
  // Mirrors exec::OracleIndexEnabled()'s env parse (telemetry cannot depend
  // on exec); test-only overrides are not reflected here.
  {
    const char* v = std::getenv("LCE_ORACLE_INDEX");
    w.Key("oracle_index_enabled")
        .Value(v == nullptr || std::string_view(v) != "0");
  }
  // Mirrors simd::SimdEnabled()/FastMathEnabled()'s env parses (telemetry
  // cannot depend on the kernel layer); test-only overrides not reflected.
  {
    const char* v = std::getenv("LCE_SIMD");
    w.Key("simd_enabled").Value(v == nullptr || std::string_view(v) != "0");
    const char* f = std::getenv("LCE_FASTMATH");
    w.Key("fastmath_enabled")
        .Value(f != nullptr && *f != '\0' && std::string_view(f) != "0");
  }
  w.Key("metrics_enabled").Value(MetricsEnabled());
  w.Key("trace_path");
  if (TraceEnabled()) {
    w.Value(TracePath());
  } else {
    w.Null();
  }
  w.Key("profile_path");
  if (ProfileEnabled()) {
    w.Value(ProfilePath());
  } else {
    w.Null();
  }
  w.Key("event_ring")
      .BeginObject()
      .Key("capacity_bytes").Value(uint64_t{EventRingCapacityBytes()})
      .Key("dropped_events").Value(DroppedEventCount())
      .EndObject();
  w.Key("query_log");
  if (QueryLogEnabled()) {
    w.Value(QueryLogPath());
  } else {
    w.Null();
  }
  w.Key("train_log");
  if (TrainLogEnabled()) {
    w.Value(TrainLogPath());
  } else {
    w.Null();
  }
  // Mirrors eval::LatencySampleCap()'s env parse (telemetry cannot depend on
  // eval): LCE_BENCH_LATENCY_SAMPLES when a positive integer, else 200.
  {
    uint64_t cap = 200;
    const char* v = std::getenv("LCE_BENCH_LATENCY_SAMPLES");
    if (v != nullptr && *v != '\0') {
      char* end = nullptr;
      long n = std::strtol(v, &end, 10);
      if (end != nullptr && *end == '\0' && n > 0) {
        cap = static_cast<uint64_t>(n);
      }
    }
    w.Key("latency_sample_cap").Value(cap);
  }
  w.Key("model_cards").BeginArray();
  for (const ModelCard& card : ModelCardRegistry::Global().Snapshot()) {
    card.WriteJson(w);
  }
  w.EndArray();
  w.Key("memory");
  MemoryTracker::Global().WriteJson(w);
  w.Key("drift_alerts").BeginArray();
  for (const DriftAlert& a : AllDriftAlertHistory()) {
    w.BeginObject()
        .Key("monitor").Value(a.monitor)
        .Key("observation").Value(a.observation)
        .Key("p95").Value(a.p95)
        .Key("threshold").Value(a.threshold)
        .EndObject();
  }
  w.EndArray();
  w.Key("flight_recorder");
  FlightRecorder::Global().WriteJson(&w);
  w.Key("phases");
  WritePhaseBreakdown(&w);
  w.Key("metrics");
  MetricsRegistry::Global().WriteJson(&w);
  w.EndObject();
  return out;
}

Status WriteRunManifest(const std::string& path, const std::string& bench_name,
                        double wall_seconds) {
  std::string json = RunManifestJson(bench_name, wall_seconds);
  json.push_back('\n');
  Status written = fs::WriteStringToFile(path, json);
  if (!written.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write run manifest: " << written.ToString();
    return written;
  }
  LCE_LOG(INFO) << "wrote run manifest " << path;
  return Status::OK();
}

}  // namespace telemetry
}  // namespace lce
