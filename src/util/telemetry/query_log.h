// Env-gated JSONL query log (LCE_QUERY_LOG=<path>).
//
// When enabled, the evaluation harness, the exact executor, and the bench
// runners stream one JSON object per query (an ExplainRecord serialized by
// src/ce/explain.h) into a buffered appender. Lines accumulate in memory and
// are written in 64 KiB batches; parent directories are created on first
// flush and the file is truncated once per process. A final flush runs at
// process exit, so short-lived tools never lose the tail.
//
// With LCE_QUERY_LOG unset, Append() is a relaxed load plus a branch:
// nothing is buffered, no clock is read, and estimator outputs are
// bit-identical to a run without the sink (tested).

#ifndef LCE_UTIL_TELEMETRY_QUERY_LOG_H_
#define LCE_UTIL_TELEMETRY_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"
#include "src/util/telemetry/jsonl_sink.h"

namespace lce {
namespace telemetry {

/// True when the query log is on (LCE_QUERY_LOG set, or a test override).
bool QueryLogEnabled();

/// The current query-log path ("" when disabled).
std::string QueryLogPath();

/// Overrides the destination (tests). Empty string disables; nullptr
/// restores the LCE_QUERY_LOG-derived value. Flushes and closes any open
/// sink first so tests see complete files.
void SetQueryLogPathForTesting(const char* path);

/// The process-wide buffered JSONL appender.
class QueryLog {
 public:
  static QueryLog& Global();

  /// Buffers one JSON line (newline appended here). No-op when the sink is
  /// disabled. Thread-safe.
  void Append(std::string_view json_line);

  /// Writes everything buffered so far to QueryLogPath(), creating parent
  /// directories on the first write. Returns the first error encountered;
  /// once a write fails the sink stays disabled for the process (the error
  /// is logged once, with the path).
  Status Flush();

  /// Lines appended since process start (or the last reset). Test hook.
  uint64_t lines_appended() const;

  /// Drops buffered data, closes the file, and zeroes counters (tests).
  void ResetForTesting();

 private:
  QueryLog() : sink_("query log") {}

  JsonlSink sink_;
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_QUERY_LOG_H_
