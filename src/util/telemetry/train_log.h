// Env-gated JSONL training log (LCE_TRAIN_LOG=<path>) — the training-side
// counterpart of the query log.
//
// Every trainable estimator emits one TrainingEvent per unit of training
// progress: per epoch for the neural models (neural_base, Naru conditionals),
// per boosting round for GBDT/LW-XGB, and per structure-learning phase for
// SPN and BayesNet. Each event carries the loss, gradient norm, learning
// rate, example count, wall time, and derived rows/sec, so a training run
// can be replayed as a convergence curve straight from the log.
//
// Schema (one JSON object per line; see DESIGN.md §9):
//   {"model": "FCN", "family": "nn", "event": "epoch", "index": 3,
//    "loss": 0.41, "grad_norm": 0.021, "lr": 0.001, "examples": 1500,
//    "wall_s": 0.012, "rows_per_sec": 125000.0, "phase": null,
//    "extra": {"column": 2}}
// Unknown quantities (e.g. grad_norm for tree models) serialize as null.
//
// With LCE_TRAIN_LOG unset, TrainLogEnabled() is a relaxed load plus a
// branch; call sites skip loss/grad-norm side computations and clock reads
// entirely, so model outputs are bit-identical to a run without the log
// (tested, following the LCE_METRICS gating precedent).

#ifndef LCE_UTIL_TELEMETRY_TRAIN_LOG_H_
#define LCE_UTIL_TELEMETRY_TRAIN_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"
#include "src/util/telemetry/jsonl_sink.h"

namespace lce {
namespace telemetry {

/// True when the training log is on (LCE_TRAIN_LOG set, or a test override).
bool TrainLogEnabled();

/// The current training-log path ("" when disabled).
std::string TrainLogPath();

/// Overrides the destination (tests). Empty string disables; nullptr
/// restores the LCE_TRAIN_LOG-derived value. Flushes and closes any open
/// sink first so tests see complete files.
void SetTrainLogPathForTesting(const char* path);

/// One unit of training progress. Quantities a family cannot provide stay at
/// their defaults and serialize as null.
struct TrainingEvent {
  /// Sentinel for "not measured" double fields (serializes as null).
  static constexpr double kUnset = -1.0;

  std::string model;    // estimator name; defaults to PhaseScope::Current()
  std::string family;   // "nn" | "gbdt" | "spn" | "bayesnet" | "naru" | ...
  std::string event;    // "epoch" | "round" | "phase"
  std::string phase;    // structure-phase name ("" for epoch/round events)
  int64_t index = 0;    // epoch / round / phase ordinal (0-based)
  double loss = kUnset;           // mean training loss of this unit
  double grad_norm = kUnset;      // L2 norm of the last parameter gradient
  double learning_rate = kUnset;  // optimizer step size in effect
  int64_t examples = -1;          // rows/queries processed in this unit
  double wall_seconds = kUnset;   // wall time of this unit
  /// Free-form numeric annotations ("column", "trees", "nodes", ...).
  std::vector<std::pair<std::string, double>> extra;

  /// One compact JSON object (no trailing newline). rows_per_sec is derived
  /// from examples / wall_seconds when both are present.
  std::string ToJsonLine() const;
};

/// The process-wide buffered JSONL appender for training events.
class TrainLog {
 public:
  static TrainLog& Global();

  /// Serializes and buffers one event. No-op when the sink is disabled; the
  /// caller should still gate expensive field computation (losses, clock
  /// reads) on TrainLogEnabled(). Thread-safe.
  void Record(const TrainingEvent& event);

  /// Writes everything buffered so far to TrainLogPath().
  Status Flush();

  /// Events recorded since process start (or the last reset). Test hook.
  uint64_t events_recorded() const;

  /// Drops buffered data, closes the file, and zeroes counters (tests).
  void ResetForTesting();

 private:
  TrainLog() : sink_("training log") {}

  JsonlSink sink_;
};

/// Convenience: TrainLog::Global().Record(event), with `event.model`
/// defaulted to the current PhaseScope label when empty.
void RecordTrainingEvent(TrainingEvent event);

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_TRAIN_LOG_H_
