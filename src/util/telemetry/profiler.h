// Span profiler: folds the trace stream into a call tree with self/total
// time and invocation counts, and exports flamegraph-compatible
// collapsed-stack files.
//
// Setting LCE_PROFILE enables span recording even when LCE_TRACE is unset
// (see SpanRecordingEnabled() in trace.h): every TraceSpan / ScopedPhase /
// stage span is collected, and WriteProfileIfEnabled() — called by the bench
// harness and at process exit — walks each span's parent chain (span ids
// propagate across threads through ThreadPool::Submit, so pool work folds
// under the submitting span) and aggregates by name path:
//
//   build/FCN@dmv;nn/epoch;parallel/lane;MatMul 184223
//
// One line per distinct path, value = self time in microseconds (total time
// minus the time covered by child spans), directly consumable by
// https://github.com/brendangregg/FlameGraph or speedscope.app. The folded
// tree (with per-path totals and invocation counts) also feeds the top-N
// hot-path table in tools/lce_report.
//
// LCE_PROFILE=1 writes `lce_profile.collapsed` in the working directory; any
// other non-"0" value is used as the output path.

#ifndef LCE_UTIL_TELEMETRY_PROFILER_H_
#define LCE_UTIL_TELEMETRY_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {

/// True when profiling is on (LCE_PROFILE set to anything but "0", or a test
/// override). A relaxed load; safe on hot paths.
bool ProfileEnabled();

/// Overrides the profile destination (tests). Empty path disables profiling;
/// nullptr restores the LCE_PROFILE-derived value.
void SetProfilePathForTesting(const char* path);

/// The collapsed-stack output path ("" when profiling is off).
std::string ProfilePath();

/// One aggregated call-tree node: every recorded span whose ancestor-name
/// chain spells `path` contributes to it.
struct ProfileNode {
  std::string path;     // ";"-joined names, root first
  std::string name;     // leaf name (last path component)
  int depth = 0;        // number of ancestors (root = 0)
  int64_t total_ns = 0; // sum of span durations at this path
  int64_t self_ns = 0;  // total minus child-span time, clamped at 0
  uint64_t count = 0;   // invocations (spans aggregated here)
};

/// Folds spans into path-aggregated nodes, sorted by descending self time.
/// Spans whose parent id is unknown (still open at export, or dropped) root
/// their own subtree. Self time is clamped at zero: children running in
/// parallel on pool threads can sum past their parent's wall time.
std::vector<ProfileNode> BuildProfile(const std::vector<TraceEvent>& events);

/// Collapsed-stack text for `nodes`: one "path self_micros" line per node
/// with nonzero self time, in descending self-time order. Semicolons inside
/// span names are rewritten to ':' to keep the path separator unambiguous.
std::string ToCollapsed(const std::vector<ProfileNode>& nodes);

/// Flushes the event rings and folds everything recorded so far (tests).
std::vector<ProfileNode> SnapshotProfileForTesting();

/// Writes the collapsed-stack file to ProfilePath(). OK when profiling is
/// off or the file was written; errors are logged and counted in
/// `telemetry.export_failures`.
Status WriteProfileNow();
void WriteProfileIfEnabled();

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_PROFILER_H_
