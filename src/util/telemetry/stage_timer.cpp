#include "src/util/telemetry/stage_timer.h"

#include <unordered_map>

#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {

namespace {

thread_local StageTimer* tls_innermost_timer = nullptr;

struct StageKeyHash {
  size_t operator()(const std::pair<std::string, const char*>& k) const {
    return std::hash<std::string_view>{}(k.first) ^
           (std::hash<const void*>{}(k.second) * 1099511628211ull);
  }
};

// (model, stage-literal) -> interned "ce.<model>.stage.<stage>.micros".
// Keyed on the literal's address: Stage()/Mark() contract requires literals,
// so repeat calls hit the cache without composing the metric name.
uint32_t StageHistId(const std::string& model, const char* stage) {
  thread_local std::unordered_map<std::pair<std::string, const char*>,
                                  uint32_t, StageKeyHash>
      cache;
  auto key = std::make_pair(model, stage);
  auto it = cache.find(key);
  if (it == cache.end()) {
    uint32_t id =
        InternName("ce." + model + ".stage." + stage + ".micros");
    it = cache.emplace(std::move(key), id).first;
  }
  return it->second;
}

uint32_t StageSpanId(const char* stage) {
  thread_local std::unordered_map<const void*, uint32_t> cache;
  auto it = cache.find(stage);
  if (it == cache.end()) {
    it = cache.emplace(stage, InternName(std::string("stage/") + stage)).first;
  }
  return it->second;
}

uint32_t LatencyHistId(const std::string& model) {
  thread_local std::unordered_map<std::string, uint32_t> cache;
  auto it = cache.find(model);
  if (it == cache.end()) {
    it = cache.emplace(model, InternName("ce." + model + ".latency.micros"))
             .first;
  }
  return it->second;
}

}  // namespace

bool StageTimer::ShouldActivate() {
  return MetricsEnabled() || SpanRecordingEnabled() || FlightRecorderEnabled();
}

void StageTimer::Activate(std::string model, uint64_t batch) {
  active_ = true;
  metrics_on_ = MetricsEnabled();
  spans_on_ = SpanRecordingEnabled();
  fr_on_ = FlightRecorderEnabled();
  batch_ = batch == 0 ? 1 : batch;
  model_ = std::move(model);
  prev_ = tls_innermost_timer;
  tls_innermost_timer = this;
  // A top-level timer starts a fresh per-query stage capture; nested timers
  // (wrapper estimators) append to the same query's samples.
  if (fr_on_ && prev_ == nullptr) internal::ResetThreadStageSamples();
  begin_ns_ = MonotonicNanos();
}

void StageTimer::CloseOpenStage(int64_t now_ns) {
  if (open_stage_ == nullptr) return;
  if (spans_on_) {
    internal::RestoreCurrentSpan(open_parent_id_);
    EmitSpanEvent(StageSpanId(open_stage_), open_start_ns_, now_ns,
                  internal::CurrentTraceTid(), open_span_id_, open_parent_id_,
                  nullptr, 0);
  }
  if (metrics_on_ || fr_on_) {
    double micros = static_cast<double>(now_ns - open_start_ns_) /
                    (1e3 * static_cast<double>(batch_));
    if (metrics_on_) {
      EmitHistogram(StageHistId(model_, open_stage_), micros, batch_);
    }
    if (fr_on_) internal::NoteThreadStageSample(open_stage_, micros);
  }
  open_stage_ = nullptr;
}

void StageTimer::Stage(const char* stage) {
  if (!active_) return;
  int64_t now = MonotonicNanos();
  CloseOpenStage(now);
  open_stage_ = stage;
  open_start_ns_ = now;
  if (spans_on_) {
    open_parent_id_ = CurrentSpanId();
    open_span_id_ = internal::BeginSpan();
  }
}

void StageTimer::Deactivate() {
  int64_t now = MonotonicNanos();
  CloseOpenStage(now);
  if (metrics_on_) {
    double micros = static_cast<double>(now - begin_ns_) /
                    (1e3 * static_cast<double>(batch_));
    EmitHistogram(LatencyHistId(model_), micros, batch_);
  }
  tls_innermost_timer = prev_;
}

void StageTimer::Mark(const char* stage) {
  if (tls_innermost_timer != nullptr) tls_innermost_timer->Stage(stage);
}

}  // namespace telemetry
}  // namespace lce
