#include "src/util/telemetry/drift.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

WindowedQuantileSketch::WindowedQuantileSketch(size_t window)
    : window_(std::max<size_t>(1, window)) {
  ring_.reserve(window_);
}

void WindowedQuantileSketch::Observe(double value) {
  if (ring_.size() < window_) {
    ring_.push_back(value);
  } else {
    ring_[next_] = value;
  }
  next_ = (next_ + 1) % window_;
  ++count_;
}

size_t WindowedQuantileSketch::size() const { return ring_.size(); }

double WindowedQuantileSketch::Quantile(double q) const {
  if (ring_.empty()) return 0;
  std::vector<double> sorted = ring_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

DriftMonitor::DriftMonitor(std::string name, Options options)
    : name_(std::move(name)), options_(options), sketch_(options.window) {}

void DriftMonitor::Observe(double qerror) {
  std::lock_guard<std::mutex> lock(mu_);
  sketch_.Observe(qerror);
  double p95 = sketch_.Quantile(0.95);
  double p50 = sketch_.Quantile(0.50);
  // Gauges publish unconditionally: constructing a monitor is its own
  // opt-in (env gate or an explicit bench), independent of LCE_METRICS.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.gauge("ce/" + name_ + "/qerr_p95_window").SetAlways(p95);
  reg.gauge("ce/" + name_ + "/qerr_p50_window").SetAlways(p50);
  if (!sketch_.full()) return;
  bool now_above = p95 > options_.threshold_p95;
  if (now_above && !above_) {
    DriftAlert alert{name_, sketch_.count(), p95, options_.threshold_p95};
    alerts_.push_back(alert);
    history_.push_back(std::move(alert));
    if (history_.size() > kAlertHistory) {
      history_.erase(history_.begin(),
                     history_.begin() + (history_.size() - kAlertHistory));
    }
    reg.counter("drift.alerts").AddAlways(1);
    // Alert edge = flight-recorder trigger (LCE_FR_DRIFT). The recorder
    // takes its own locks but never calls back into drift monitors.
    FlightRecorder::Global().TriggerDriftAlert(name_, p95,
                                               options_.threshold_p95);
  }
  above_ = now_above;
}

double DriftMonitor::WindowP95() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.Quantile(0.95);
}

double DriftMonitor::WindowP50() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.Quantile(0.50);
}

uint64_t DriftMonitor::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.count();
}

std::vector<DriftAlert> DriftMonitor::DrainAlerts() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DriftAlert> out = std::move(alerts_);
  alerts_.clear();
  return out;
}

std::vector<DriftAlert> DriftMonitor::AlertHistory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

namespace {

int EnvDriftWindow() {
  static int v = [] {
    const char* e = std::getenv("LCE_DRIFT_WINDOW");
    if (e == nullptr || *e == '\0') return 0;
    int n = std::atoi(e);
    return n > 0 ? n : 0;
  }();
  return v;
}

// -1 = follow LCE_DRIFT_WINDOW; >= 0 = test override.
std::atomic<int> g_window_override{-1};

struct MonitorRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<DriftMonitor>> monitors;
};

MonitorRegistry& Monitors() {
  static MonitorRegistry* reg = new MonitorRegistry();
  return *reg;
}

}  // namespace

size_t DriftWindow() {
  int o = g_window_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<size_t>(o);
  return static_cast<size_t>(EnvDriftWindow());
}

bool DriftEnabled() { return DriftWindow() > 0; }

double DriftThreshold() {
  static double v = [] {
    const char* e = std::getenv("LCE_DRIFT_THRESHOLD");
    if (e == nullptr || *e == '\0') return 10.0;
    double t = std::atof(e);
    return t > 0 ? t : 10.0;
  }();
  return v;
}

void SetDriftWindowForTesting(int window) {
  g_window_override.store(window, std::memory_order_relaxed);
}

DriftMonitor& GlobalDriftMonitor(const std::string& name) {
  MonitorRegistry& reg = Monitors();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.monitors.find(name);
  if (it == reg.monitors.end()) {
    DriftMonitor::Options opts;
    opts.window = std::max<size_t>(1, DriftWindow());
    opts.threshold_p95 = DriftThreshold();
    it = reg.monitors
             .emplace(name, std::make_unique<DriftMonitor>(name, opts))
             .first;
  }
  return *it->second;
}

std::vector<DriftAlert> DrainAllDriftAlerts() {
  MonitorRegistry& reg = Monitors();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<DriftAlert> out;
  for (auto& [name, monitor] : reg.monitors) {
    for (DriftAlert& a : monitor->DrainAlerts()) out.push_back(std::move(a));
  }
  return out;
}

std::vector<DriftAlert> AllDriftAlertHistory() {
  MonitorRegistry& reg = Monitors();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<DriftAlert> out;
  for (auto& [name, monitor] : reg.monitors) {
    for (DriftAlert& a : monitor->AlertHistory()) out.push_back(std::move(a));
  }
  return out;
}

void ResetDriftForTesting() {
  MonitorRegistry& reg = Monitors();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.monitors.clear();
}

}  // namespace telemetry
}  // namespace lce
