#include "src/util/telemetry/query_log.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/fs.h"
#include "src/util/logging.h"

namespace lce {
namespace telemetry {

namespace {

constexpr size_t kFlushBytes = 64 * 1024;

std::string EnvQueryLogPath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_QUERY_LOG");
    return std::string(e != nullptr ? e : "");
  }();
  return v;
}

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
// Fast-path flag mirroring "path is non-empty".
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvQueryLogPath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Tools and examples that never construct a BenchRun still get the tail.
    std::atexit([] { QueryLog::Global().Flush(); });
  }
}

}  // namespace

bool QueryLogEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

std::string QueryLogPath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvQueryLogPath();
}

void SetQueryLogPathForTesting(const char* path) {
  InitEnabledFlag();
  QueryLog::Global().Flush();
  QueryLog::Global().ResetForTesting();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvQueryLogPath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

void QueryLog::Append(std::string_view json_line) {
  if (!QueryLogEnabled()) return;
  bool want_flush = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) return;
    buffer_.append(json_line);
    buffer_.push_back('\n');
    ++lines_;
    want_flush = buffer_.size() >= kFlushBytes;
  }
  if (want_flush) Flush();
}

Status QueryLog::Flush() {
  if (!QueryLogEnabled()) return Status::OK();
  std::string path = QueryLogPath();
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) return first_error_;
  if (buffer_.empty() && file_ != nullptr) {
    std::fflush(static_cast<std::FILE*>(file_));
    return Status::OK();
  }
  if (file_ == nullptr || open_path_ != path) {
    if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
    Status dirs = fs::EnsureParentDirs(path);
    if (!dirs.ok()) {
      failed_ = true;
      first_error_ = dirs;
      LCE_LOG(ERROR) << "query log disabled: " << dirs.ToString();
      return first_error_;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      failed_ = true;
      first_error_ = Status::Internal("cannot open query log " + path + ": " +
                                      std::strerror(errno));
      LCE_LOG(ERROR) << first_error_.ToString();
      return first_error_;
    }
    file_ = f;
    open_path_ = path;
  }
  std::FILE* f = static_cast<std::FILE*>(file_);
  size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  if (written != buffer_.size()) {
    failed_ = true;
    first_error_ = Status::Internal("short write to query log " + path);
    LCE_LOG(ERROR) << first_error_.ToString();
    return first_error_;
  }
  buffer_.clear();
  std::fflush(f);
  return Status::OK();
}

uint64_t QueryLog::lines_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void QueryLog::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  open_path_.clear();
  buffer_.clear();
  lines_ = 0;
  failed_ = false;
  first_error_ = Status::OK();
}

}  // namespace telemetry
}  // namespace lce
