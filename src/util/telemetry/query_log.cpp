#include "src/util/telemetry/query_log.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace lce {
namespace telemetry {

namespace {

std::string EnvQueryLogPath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_QUERY_LOG");
    return std::string(e != nullptr ? e : "");
  }();
  return v;
}

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
// Fast-path flag mirroring "path is non-empty".
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvQueryLogPath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Tools and examples that never construct a BenchRun still get the tail.
    std::atexit([] { QueryLog::Global().Flush(); });
  }
}

}  // namespace

bool QueryLogEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

std::string QueryLogPath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvQueryLogPath();
}

void SetQueryLogPathForTesting(const char* path) {
  InitEnabledFlag();
  QueryLog::Global().Flush();
  QueryLog::Global().ResetForTesting();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvQueryLogPath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

void QueryLog::Append(std::string_view json_line) {
  if (!QueryLogEnabled()) return;
  sink_.Append(json_line, QueryLogPath());
}

Status QueryLog::Flush() {
  if (!QueryLogEnabled()) return Status::OK();
  return sink_.Flush(QueryLogPath());
}

uint64_t QueryLog::lines_appended() const { return sink_.lines_appended(); }

void QueryLog::ResetForTesting() { sink_.ResetForTesting(); }

}  // namespace telemetry
}  // namespace lce
