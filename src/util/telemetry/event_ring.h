// Lock-free per-thread event pipeline for telemetry hot paths.
//
// Counter increments, histogram records, and span begin/end used to funnel
// through mutex-guarded sinks (the registry map on every phase close, the
// per-thread trace-buffer mutex on every span). That kept telemetry env-gated:
// too expensive to leave on under production load. This pipeline makes the
// producer side wait-free: each thread owns a single-producer single-consumer
// ring of fixed-size POD events; emitting is a couple of relaxed atomic loads,
// one slot store, and a release store of the head index. No locks, no
// allocation, no clock reads beyond what the caller already took.
//
// Names are interned once (global table behind a mutex, fronted by a
// thread-local cache) so events carry 32-bit ids instead of strings.
//
// A background drainer thread — started lazily with the first ring — empties
// every ring a few hundred times per second and applies the events: counter
// and histogram events update MetricsRegistry handles, span events append to
// the trace stream. When a producer outruns the drainer the ring drops the
// event and counts it; drops surface as the `telemetry.dropped_events`
// counter and in run manifests. Ring capacity is `LCE_EVENT_RING_KB` per
// thread (default 256 KiB, i.e. a few thousand events).
//
// Consumers that need everything applied *now* (manifest export, trace
// export, test snapshots) call FlushEventRings(), which drains synchronously.

#ifndef LCE_UTIL_TELEMETRY_EVENT_RING_H_
#define LCE_UTIL_TELEMETRY_EVENT_RING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lce {
namespace telemetry {

/// Per-thread ring capacity in bytes: LCE_EVENT_RING_KB * 1024 when set to a
/// positive integer, else 256 KiB. Rounded down to a power-of-two slot count.
size_t EventRingCapacityBytes();

/// Overrides the per-thread slot count for rings created *after* the call
/// (tests exercising drop behavior use a tiny ring on a fresh thread).
/// n == 0 restores the env-derived capacity.
void SetEventRingSlotsForTesting(size_t n);

/// Pauses/resumes the background drainer loop (tests). FlushEventRings()
/// still drains while paused.
void SetDrainerPausedForTesting(bool paused);

/// Interns `name`, returning its stable process-wide id. Thread-local cache
/// makes repeat calls on the same thread lock-free.
uint32_t InternName(std::string_view name);

/// The interned string for `id`. Aborts on an id never returned by
/// InternName.
const std::string& InternedNameOf(uint32_t id);

/// Emits a counter increment for the named counter. Wait-free; applied to
/// MetricsRegistry by the drainer.
void EmitCounterAdd(uint32_t name_id, uint64_t delta);

/// Emits `count` observations of `value` into the named histogram.
void EmitHistogram(uint32_t name_id, double value, uint64_t count = 1);

/// Numeric span argument carried inline (at most 2 per ring span; spans with
/// more take the legacy buffered path in trace.cpp).
struct SpanArg {
  uint32_t name_id = 0;
  double value = 0;
};

/// Emits a finished span into the trace stream. `tid` is the trace-layer
/// thread id (telemetry::internal::CurrentTraceTid()).
void EmitSpanEvent(uint32_t name_id, int64_t start_ns, int64_t end_ns,
                   uint32_t tid, uint64_t span_id, uint64_t parent_id,
                   const SpanArg* args, int num_args);

/// Emits a finished ScopedPhase: phase.<key>.{ns,calls} counter increments
/// (when `metrics_on`) and a span named `key` (when `spans_on`). Interned
/// ids for `key` are cached thread-locally, so the string is hashed at most
/// once per (thread, key).
void EmitPhase(const std::string& key, int64_t start_ns, int64_t end_ns,
               uint64_t span_id, uint64_t parent_id, bool metrics_on,
               bool spans_on);

/// Synchronously drains every ring and applies the events. Safe from any
/// thread, any time (no-op before the first event). Every exporter calls
/// this before reading the registry or the trace stream.
void FlushEventRings();

/// Total events dropped so far across all rings (producers outran the
/// drainer). Also surfaced as the `telemetry.dropped_events` counter after a
/// flush.
uint64_t DroppedEventCount();

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_EVENT_RING_H_
