// Machine-readable run manifests for the bench binaries.
//
// A manifest records everything needed to interpret one bench run as a point
// on a perf trajectory: git commit, UTC timestamp, thread configuration, the
// telemetry env knobs in effect, wall-clock, and — when LCE_METRICS is on —
// a full metrics snapshot plus a digested per-phase breakdown (total ms,
// calls, mean us per phase.<scope>:<name> pair). Written as
// BENCH_manifest_<name>.json next to the bench's other outputs.

#ifndef LCE_UTIL_TELEMETRY_RUN_MANIFEST_H_
#define LCE_UTIL_TELEMETRY_RUN_MANIFEST_H_

#include <string>

#include "src/util/status.h"

namespace lce {
namespace telemetry {

/// The commit baked in at configure time ("unknown" outside a git checkout).
const char* BuildGitCommit();

/// Renders the manifest JSON for a run named `bench_name` that took
/// `wall_seconds`. Exposed separately from WriteRunManifest for tests.
std::string RunManifestJson(const std::string& bench_name,
                            double wall_seconds);

/// Writes RunManifestJson to `path`, creating parent directories as needed.
/// On I/O failure returns the error (also logged, with the path).
Status WriteRunManifest(const std::string& path, const std::string& bench_name,
                        double wall_seconds);

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_RUN_MANIFEST_H_
