// Buffered JSONL file appender shared by the env-gated line sinks (query
// log, training log).
//
// A JsonlSink accumulates newline-terminated JSON lines in memory and writes
// them in 64 KiB batches; parent directories are created on the first flush
// and the file is truncated once per sink lifetime. Once a write fails the
// sink latches the error and drops further lines (logged once, with the
// path), so a full disk never turns into a crash loop inside a bench.
//
// Owners (QueryLog, TrainLog) keep their own env gating and path resolution;
// the sink only manages buffering and file I/O. Thread-safe.

#ifndef LCE_UTIL_TELEMETRY_JSONL_SINK_H_
#define LCE_UTIL_TELEMETRY_JSONL_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lce {
namespace telemetry {

class JsonlSink {
 public:
  /// `what` names the sink in error logs ("query log", "training log").
  explicit JsonlSink(std::string what) : what_(std::move(what)) {}
  ~JsonlSink();
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Buffers one JSON line (newline appended here); flushes to `path` when
  /// the buffer crosses the batch threshold. Dropped after a write failure.
  void Append(std::string_view json_line, const std::string& path);

  /// Writes everything buffered so far to `path`, creating parent
  /// directories on the first write. Returns the first error encountered;
  /// once a write fails the sink stays disabled for its lifetime.
  Status Flush(const std::string& path);

  /// Lines appended since construction (or the last reset).
  uint64_t lines_appended() const;

  /// Drops buffered data, closes the file, and zeroes counters (tests).
  void ResetForTesting();

 private:
  Status FlushLocked(const std::string& path);

  const std::string what_;
  mutable std::mutex mu_;
  std::string buffer_;
  uint64_t lines_ = 0;
  std::string open_path_;   // path the current file handle points at
  void* file_ = nullptr;    // std::FILE*, opaque to keep <cstdio> out
  bool failed_ = false;     // a write failed; stop trying, keep the Status
  Status first_error_;
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_JSONL_SINK_H_
