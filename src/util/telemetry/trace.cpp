#include "src/util/telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

namespace {

// Per-thread event buffer. Registered globally on first use and kept alive
// (shared_ptr) past thread exit so a flush can still read it.
struct ThreadTraceBuffer {
  uint32_t tid;
  std::string thread_name;
  std::vector<TraceEvent> events;
  std::mutex mu;  // owner thread appends; flush/snapshot reads concurrently
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::atomic<uint32_t> next_tid{1};
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    TraceState& s = State();
    b->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string EnvTracePath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_TRACE");
    return std::string(e != nullptr ? e : "");
  }();
  return v;
}

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
// Fast-path flag mirroring "path is non-empty".
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvTracePath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Examples/tests that never construct a BenchRun still get their trace.
    std::atexit([] { WriteTraceIfEnabled(); });
  }
}

}  // namespace

bool TraceEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

void SetTracePathForTesting(const char* path) {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvTracePath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

std::string TracePath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvTracePath();
}

void SetCurrentThreadName(std::string name) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.thread_name = std::move(name);
}

namespace internal {

void AppendCompleteEvent(std::string name, int64_t start_ns, int64_t end_ns,
                         std::vector<std::pair<std::string, double>> args) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = std::move(name);
  event.start_ns = start_ns;
  event.dur_ns = end_ns - start_ns;
  event.tid = buffer.tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

}  // namespace internal

TraceSpan::TraceSpan(const char* name) : active_(TraceEnabled()) {
  if (!active_) return;
  name_ = name;
  start_ns_ = MonotonicNanos();
}

TraceSpan::TraceSpan(std::string name) : active_(TraceEnabled()) {
  if (!active_) return;
  name_ = std::move(name);
  start_ns_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  internal::AppendCompleteEvent(std::move(name_), start_ns_, MonotonicNanos(),
                                std::move(args_));
}

void TraceSpan::AddArg(const char* key, double value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

namespace {

// Snapshot of every buffer, in tid order, events in recording order.
std::vector<std::pair<TraceEvent, std::string>> CollectEvents() {
  TraceState& s = State();
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  std::vector<std::pair<TraceEvent, std::string>> out;  // event, thread name
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    for (const TraceEvent& e : b->events) {
      out.emplace_back(e, b->thread_name);
    }
  }
  return out;
}

}  // namespace

void WriteTraceIfEnabled() { (void)WriteTraceNow(); }

Status WriteTraceNow() {
  std::string path = TracePath();
  if (path.empty()) return Status::OK();
  auto events = CollectEvents();
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.start_ns < b.first.start_ns;
                   });

  std::string out;
  out.reserve(events.size() * 128 + 256);
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  w.BeginObject()
      .Key("ph").Value("M")
      .Key("name").Value("process_name")
      .Key("pid").Value(1)
      .Key("tid").Value(0)
      .Key("args").BeginObject().Key("name").Value("lce").EndObject()
      .EndObject();
  // Thread-name metadata: one event per named thread.
  {
    TraceState& s = State();
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      buffers = s.buffers;
    }
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      if (b->thread_name.empty()) continue;
      w.BeginObject()
          .Key("ph").Value("M")
          .Key("name").Value("thread_name")
          .Key("pid").Value(1)
          .Key("tid").Value(uint64_t{b->tid})
          .Key("args").BeginObject().Key("name").Value(b->thread_name).EndObject()
          .EndObject();
    }
  }
  for (const auto& [e, thread_name] : events) {
    w.BeginObject()
        .Key("ph").Value("X")
        .Key("name").Value(e.name)
        .Key("cat").Value("lce")
        .Key("pid").Value(1)
        .Key("tid").Value(uint64_t{e.tid})
        .Key("ts").Value(static_cast<double>(e.start_ns) / 1000.0)
        .Key("dur").Value(static_cast<double>(e.dur_ns) / 1000.0);
    if (!e.args.empty()) {
      w.Key("args").BeginObject();
      for (const auto& [k, v] : e.args) w.Key(k).Value(v);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  Status written = fs::WriteStringToFile(path, out);
  if (!written.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write trace output: " << written.ToString();
    return written;
  }
  LCE_LOG(INFO) << "wrote " << events.size() << " trace events to " << path;
  return Status::OK();
}

std::vector<TraceEvent> SnapshotTraceEventsForTesting() {
  std::vector<TraceEvent> out;
  for (auto& [e, name] : CollectEvents()) out.push_back(std::move(e));
  return out;
}

void ClearTraceForTesting() {
  TraceState& s = State();
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->events.clear();
  }
}

}  // namespace telemetry
}  // namespace lce
