#include "src/util/telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

namespace {

// Per-thread event buffer. Registered globally on first use and kept alive
// (shared_ptr) past thread exit so a flush can still read it.
struct ThreadTraceBuffer {
  uint32_t tid;
  std::string thread_name;
  std::vector<TraceEvent> events;
  std::mutex mu;  // owner thread appends; flush/snapshot reads concurrently
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::atomic<uint32_t> next_tid{1};
  // Spans drained from the event rings (already carry their tid). Only the
  // ring consumer appends, under drained_mu.
  std::mutex drained_mu;
  std::vector<TraceEvent> drained;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    TraceState& s = State();
    b->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string EnvTracePath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_TRACE");
    return std::string(e != nullptr ? e : "");
  }();
  return v;
}

// Span-id plumbing: ids are process-unique; each thread tracks the innermost
// live span so nested (and pool-adopted) spans can record their parent.
std::atomic<uint64_t> g_next_span_id{1};
thread_local uint64_t tls_current_span_id = 0;

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
// Fast-path flag mirroring "path is non-empty".
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvTracePath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Examples/tests that never construct a BenchRun still get their trace.
    std::atexit([] { WriteTraceIfEnabled(); });
  }
}

}  // namespace

bool TraceEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

bool SpanRecordingEnabled() { return TraceEnabled() || ProfileEnabled(); }

void SetTracePathForTesting(const char* path) {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvTracePath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

std::string TracePath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvTracePath();
}

uint64_t CurrentSpanId() { return tls_current_span_id; }

ScopedTraceParent::ScopedTraceParent(uint64_t parent_id)
    : saved_(tls_current_span_id) {
  tls_current_span_id = parent_id;
}

ScopedTraceParent::~ScopedTraceParent() { tls_current_span_id = saved_; }

void SetCurrentThreadName(std::string name) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.thread_name = std::move(name);
}

namespace internal {

void AppendCompleteEvent(std::string name, int64_t start_ns, int64_t end_ns,
                         uint64_t id, uint64_t parent_id,
                         std::vector<std::pair<std::string, double>> args) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = std::move(name);
  event.start_ns = start_ns;
  event.dur_ns = end_ns - start_ns;
  event.tid = buffer.tid;
  event.id = id;
  event.parent_id = parent_id;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

uint64_t BeginSpan() {
  uint64_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  tls_current_span_id = id;
  return id;
}

void RestoreCurrentSpan(uint64_t parent_id) {
  tls_current_span_id = parent_id;
}

void AppendDrainedEvent(TraceEvent event) {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.drained_mu);
  s.drained.push_back(std::move(event));
}

uint32_t CurrentTraceTid() { return LocalBuffer().tid; }

}  // namespace internal

TraceSpan::TraceSpan(const char* name) : active_(SpanRecordingEnabled()) {
  if (!active_) return;
  name_ = name;
  parent_id_ = CurrentSpanId();
  id_ = internal::BeginSpan();
  start_ns_ = MonotonicNanos();
}

TraceSpan::TraceSpan(std::string name) : active_(SpanRecordingEnabled()) {
  if (!active_) return;
  name_ = std::move(name);
  parent_id_ = CurrentSpanId();
  id_ = internal::BeginSpan();
  start_ns_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  internal::RestoreCurrentSpan(parent_id_);
  int64_t end_ns = MonotonicNanos();
  if (args_.size() <= 2) {
    // Hot path: through the lock-free event ring.
    SpanArg ring_args[2];
    for (size_t i = 0; i < args_.size(); ++i) {
      ring_args[i] = {InternName(args_[i].first), args_[i].second};
    }
    EmitSpanEvent(InternName(name_), start_ns_, end_ns,
                  internal::CurrentTraceTid(), id_, parent_id_, ring_args,
                  static_cast<int>(args_.size()));
    return;
  }
  internal::AppendCompleteEvent(std::move(name_), start_ns_, end_ns, id_,
                                parent_id_, std::move(args_));
}

void TraceSpan::AddArg(const char* key, double value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

namespace {

// Snapshot of every buffer plus the ring-drained stream, events in
// recording order per source. Drains the event rings first so nothing
// recorded before the call is missing.
std::vector<std::pair<TraceEvent, std::string>> CollectEvents() {
  FlushEventRings();
  TraceState& s = State();
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  std::vector<std::pair<TraceEvent, std::string>> out;  // event, thread name
  std::map<uint32_t, std::string> names_by_tid;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    if (!b->thread_name.empty()) names_by_tid[b->tid] = b->thread_name;
    for (const TraceEvent& e : b->events) {
      out.emplace_back(e, b->thread_name);
    }
  }
  {
    std::lock_guard<std::mutex> lock(s.drained_mu);
    for (const TraceEvent& e : s.drained) {
      auto it = names_by_tid.find(e.tid);
      out.emplace_back(e,
                       it == names_by_tid.end() ? std::string() : it->second);
    }
  }
  return out;
}

}  // namespace

void WriteTraceIfEnabled() { (void)WriteTraceNow(); }

Status WriteTraceNow() {
  std::string path = TracePath();
  if (path.empty()) return Status::OK();
  auto events = CollectEvents();
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.start_ns < b.first.start_ns;
                   });

  std::string out;
  out.reserve(events.size() * 128 + 256);
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  w.BeginObject()
      .Key("ph").Value("M")
      .Key("name").Value("process_name")
      .Key("pid").Value(1)
      .Key("tid").Value(0)
      .Key("args").BeginObject().Key("name").Value("lce").EndObject()
      .EndObject();
  // Thread-name metadata: one event per named thread.
  {
    TraceState& s = State();
    std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      buffers = s.buffers;
    }
    for (const auto& b : buffers) {
      std::lock_guard<std::mutex> lock(b->mu);
      if (b->thread_name.empty()) continue;
      w.BeginObject()
          .Key("ph").Value("M")
          .Key("name").Value("thread_name")
          .Key("pid").Value(1)
          .Key("tid").Value(uint64_t{b->tid})
          .Key("args").BeginObject().Key("name").Value(b->thread_name).EndObject()
          .EndObject();
    }
  }
  // Parent lookup for cross-thread flow arrows: span id -> (tid, start_ns).
  std::map<uint64_t, std::pair<uint32_t, int64_t>> span_index;
  for (const auto& [e, thread_name] : events) {
    if (e.id != 0) span_index.emplace(e.id, std::make_pair(e.tid, e.start_ns));
  }
  for (const auto& [e, thread_name] : events) {
    w.BeginObject()
        .Key("ph").Value("X")
        .Key("name").Value(e.name)
        .Key("cat").Value("lce")
        .Key("pid").Value(1)
        .Key("tid").Value(uint64_t{e.tid})
        .Key("ts").Value(static_cast<double>(e.start_ns) / 1000.0)
        .Key("dur").Value(static_cast<double>(e.dur_ns) / 1000.0);
    if (!e.args.empty() || e.id != 0) {
      w.Key("args").BeginObject();
      if (e.id != 0) {
        w.Key("span_id").Value(e.id);
        w.Key("parent_span_id").Value(e.parent_id);
      }
      for (const auto& [k, v] : e.args) w.Key(k).Value(v);
      w.EndObject();
    }
    w.EndObject();
    // Spans whose parent lives on another thread get a flow arrow from the
    // parent span's start to this span's start (chrome://tracing draws the
    // submit edge). Same-thread nesting is already visible from the stack.
    auto parent = span_index.find(e.parent_id);
    if (e.parent_id != 0 && parent != span_index.end() &&
        parent->second.first != e.tid) {
      w.BeginObject()
          .Key("ph").Value("s")
          .Key("id").Value(e.id)
          .Key("name").Value("submit")
          .Key("cat").Value("lce")
          .Key("pid").Value(1)
          .Key("tid").Value(uint64_t{parent->second.first})
          .Key("ts").Value(static_cast<double>(parent->second.second) / 1000.0)
          .EndObject();
      w.BeginObject()
          .Key("ph").Value("f")
          .Key("bp").Value("e")
          .Key("id").Value(e.id)
          .Key("name").Value("submit")
          .Key("cat").Value("lce")
          .Key("pid").Value(1)
          .Key("tid").Value(uint64_t{e.tid})
          .Key("ts").Value(static_cast<double>(e.start_ns) / 1000.0)
          .EndObject();
    }
  }
  w.EndArray();
  w.EndObject();

  Status written = fs::WriteStringToFile(path, out);
  if (!written.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write trace output: " << written.ToString();
    return written;
  }
  LCE_LOG(INFO) << "wrote " << events.size() << " trace events to " << path;
  return Status::OK();
}

std::vector<TraceEvent> SnapshotTraceEventsForTesting() {
  std::vector<TraceEvent> out;
  for (auto& [e, name] : CollectEvents()) out.push_back(std::move(e));
  return out;
}

void ClearTraceForTesting() {
  FlushEventRings();  // stale ring events must not leak into the next test
  TraceState& s = State();
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->events.clear();
  }
  std::lock_guard<std::mutex> lock(s.drained_mu);
  s.drained.clear();
}

}  // namespace telemetry
}  // namespace lce
