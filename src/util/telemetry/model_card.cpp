#include "src/util/telemetry/model_card.h"

#include "src/util/json_writer.h"
#include "src/util/telemetry/memory.h"

namespace lce {
namespace telemetry {

namespace {

void WriteOptionalInt(JsonWriter& w, const char* key, int64_t v) {
  w.Key(key);
  if (v < 0) {
    w.Null();
  } else {
    w.Value(v);
  }
}

void WriteOptionalDouble(JsonWriter& w, const char* key, double v) {
  w.Key(key);
  if (v < 0.0) {
    w.Null();
  } else {
    w.Value(v);
  }
}

}  // namespace

void ModelCard::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("model").Value(model);
  w.Key("family").Value(family);
  w.Key("dataset");
  if (dataset.empty()) {
    w.Null();
  } else {
    w.Value(dataset);
  }
  w.Key("parameter_count").Value(parameter_count);
  w.Key("footprint_bytes").Value(footprint_bytes);
  WriteOptionalInt(w, "train_examples", train_examples);
  WriteOptionalInt(w, "epochs", epochs);
  WriteOptionalDouble(w, "final_train_loss", final_train_loss);
  WriteOptionalDouble(w, "final_val_loss", final_val_loss);
  WriteOptionalDouble(w, "build_seconds", build_seconds);
  if (!extra.empty()) {
    w.Key("extra").BeginObject();
    for (const auto& [k, v] : extra) w.Key(k).Value(v);
    w.EndObject();
  }
  w.EndObject();
}

ModelCardRegistry& ModelCardRegistry::Global() {
  static ModelCardRegistry* registry = new ModelCardRegistry();
  return *registry;
}

void ModelCardRegistry::Add(ModelCard card) {
  if (card.footprint_bytes > 0) {
    MemoryTracker::Global().Add("model", card.footprint_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  cards_.push_back(std::move(card));
}

std::vector<ModelCard> ModelCardRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cards_;
}

size_t ModelCardRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cards_.size();
}

void ModelCardRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  cards_.clear();
}

}  // namespace telemetry
}  // namespace lce
