#include "src/util/telemetry/jsonl_sink.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/util/fs.h"
#include "src/util/logging.h"

namespace lce {
namespace telemetry {

namespace {
constexpr size_t kFlushBytes = 64 * 1024;
}  // namespace

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void JsonlSink::Append(std::string_view json_line, const std::string& path) {
  bool want_flush = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) return;
    buffer_.append(json_line);
    buffer_.push_back('\n');
    ++lines_;
    want_flush = buffer_.size() >= kFlushBytes;
  }
  if (want_flush) Flush(path);
}

Status JsonlSink::Flush(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked(path);
}

Status JsonlSink::FlushLocked(const std::string& path) {
  if (failed_) return first_error_;
  if (buffer_.empty() && file_ != nullptr) {
    std::fflush(static_cast<std::FILE*>(file_));
    return Status::OK();
  }
  if (file_ == nullptr || open_path_ != path) {
    if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
    Status dirs = fs::EnsureParentDirs(path);
    if (!dirs.ok()) {
      failed_ = true;
      first_error_ = dirs;
      LCE_LOG(ERROR) << what_ << " disabled: " << dirs.ToString();
      return first_error_;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      failed_ = true;
      first_error_ = Status::Internal("cannot open " + what_ + " " + path +
                                      ": " + std::strerror(errno));
      LCE_LOG(ERROR) << first_error_.ToString();
      return first_error_;
    }
    file_ = f;
    open_path_ = path;
  }
  std::FILE* f = static_cast<std::FILE*>(file_);
  size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  if (written != buffer_.size()) {
    failed_ = true;
    first_error_ = Status::Internal("short write to " + what_ + " " + path);
    LCE_LOG(ERROR) << first_error_.ToString();
    return first_error_;
  }
  buffer_.clear();
  std::fflush(f);
  return Status::OK();
}

uint64_t JsonlSink::lines_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void JsonlSink::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  open_path_.clear();
  buffer_.clear();
  lines_ = 0;
  failed_ = false;
  first_error_ = Status::OK();
}

}  // namespace telemetry
}  // namespace lce
