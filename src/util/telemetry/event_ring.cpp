#include "src/util/telemetry/event_ring.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {

namespace {

enum class EventType : uint8_t { kCounterAdd, kHistObserve, kSpan };

// Fixed-size POD event. 88 bytes; a 256 KiB ring holds 2048 of them.
struct RingEvent {
  uint32_t name_id = 0;
  uint32_t tid = 0;
  uint32_t arg_name_id[2] = {0, 0};
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  double value = 0;    // counter delta / histogram value / unused for spans
  uint64_t count = 0;  // histogram observation weight
  double arg_value[2] = {0, 0};
  EventType type = EventType::kCounterAdd;
  uint8_t num_args = 0;
};

size_t EnvRingSlots() {
  static size_t v = [] {
    size_t bytes = 256 * 1024;
    const char* e = std::getenv("LCE_EVENT_RING_KB");
    if (e != nullptr && *e != '\0') {
      char* end = nullptr;
      long kb = std::strtol(e, &end, 10);
      if (end != nullptr && *end == '\0' && kb > 0) {
        bytes = static_cast<size_t>(kb) * 1024;
      }
    }
    size_t slots = 64;
    while (slots * 2 * sizeof(RingEvent) <= bytes) slots *= 2;
    return slots;
  }();
  return v;
}

std::atomic<size_t> g_slots_override{0};  // 0 = env-derived

size_t RingSlots() {
  size_t o = g_slots_override.load(std::memory_order_relaxed);
  return o != 0 ? o : EnvRingSlots();
}

// Single-producer (owning thread) single-consumer (whoever holds the drain
// mutex) ring. head_ is only written by the producer, tail_ only by the
// consumer; capacity is a power of two fixed at construction.
class EventRing {
 public:
  explicit EventRing(size_t slots)
      : mask_(slots - 1), slots_(new RingEvent[slots]) {}

  bool TryPush(const RingEvent& e) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  template <typename Fn>
  size_t Drain(Fn&& fn) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    size_t n = 0;
    while (tail != head) {
      fn(slots_[tail & mask_]);
      ++tail;
      ++n;
    }
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Consumer-side bookkeeping: drops already added to the drop counter.
  uint64_t dropped_applied = 0;

 private:
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
  const uint64_t mask_;
  std::unique_ptr<RingEvent[]> slots_;
};

struct RingState {
  std::mutex registry_mu;  // guards rings
  std::vector<std::shared_ptr<EventRing>> rings;
  std::mutex drain_mu;  // serializes consumers; guards the handle caches
  // name_id -> resolved registry handle (consumer side, under drain_mu).
  std::vector<Counter*> counter_handles;
  std::vector<Histogram*> histogram_handles;
  std::atomic<bool> drainer_started{false};
  std::atomic<bool> drainer_paused{false};
};

RingState& Rings() {
  static RingState* state = new RingState();  // leaked: drainer outlives exit
  return *state;
}

void EnsureDrainerStarted() {
  RingState& s = Rings();
  if (s.drainer_started.exchange(true, std::memory_order_acq_rel)) return;
  std::thread([] {
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (Rings().drainer_paused.load(std::memory_order_relaxed)) continue;
      FlushEventRings();
    }
  }).detach();
}

EventRing& LocalRing() {
  thread_local std::shared_ptr<EventRing> ring = [] {
    auto r = std::make_shared<EventRing>(RingSlots());
    RingState& s = Rings();
    {
      std::lock_guard<std::mutex> lock(s.registry_mu);
      s.rings.push_back(r);
    }
    EnsureDrainerStarted();
    return r;
  }();
  return *ring;
}

// --- Name interning -------------------------------------------------------

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

struct InternState {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>> ids;
  // id -> name. Pointers are stable (deque-like growth via unique_ptr).
  std::vector<std::unique_ptr<std::string>> names;
};

InternState& Interns() {
  static InternState* state = new InternState();
  return *state;
}

// Applies one drained event. Runs under drain_mu.
void ApplyEvent(RingState& s, const RingEvent& e) {
  switch (e.type) {
    case EventType::kCounterAdd: {
      if (s.counter_handles.size() <= e.name_id) {
        s.counter_handles.resize(e.name_id + 1, nullptr);
      }
      Counter*& c = s.counter_handles[e.name_id];
      if (c == nullptr) {
        c = &MetricsRegistry::Global().counter(InternedNameOf(e.name_id));
      }
      c->AddAlways(e.count);
      break;
    }
    case EventType::kHistObserve: {
      if (s.histogram_handles.size() <= e.name_id) {
        s.histogram_handles.resize(e.name_id + 1, nullptr);
      }
      Histogram*& h = s.histogram_handles[e.name_id];
      if (h == nullptr) {
        h = &MetricsRegistry::Global().histogram(InternedNameOf(e.name_id));
      }
      h->ObserveCountAlways(e.value, e.count);
      break;
    }
    case EventType::kSpan: {
      TraceEvent event;
      event.name = InternedNameOf(e.name_id);
      event.start_ns = e.start_ns;
      event.dur_ns = e.end_ns - e.start_ns;
      event.tid = e.tid;
      event.id = e.span_id;
      event.parent_id = e.parent_id;
      for (int i = 0; i < e.num_args; ++i) {
        event.args.emplace_back(InternedNameOf(e.arg_name_id[i]),
                                e.arg_value[i]);
      }
      internal::AppendDrainedEvent(std::move(event));
      break;
    }
  }
}

}  // namespace

size_t EventRingCapacityBytes() { return RingSlots() * sizeof(RingEvent); }

void SetEventRingSlotsForTesting(size_t n) {
  size_t slots = 0;
  if (n != 0) {
    slots = 1;
    while (slots < n) slots *= 2;
  }
  g_slots_override.store(slots, std::memory_order_relaxed);
}

void SetDrainerPausedForTesting(bool paused) {
  Rings().drainer_paused.store(paused, std::memory_order_relaxed);
}

uint32_t InternName(std::string_view name) {
  thread_local std::unordered_map<std::string, uint32_t, StringHash,
                                  std::equal_to<>>
      cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  InternState& s = Interns();
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto [pos, inserted] =
        s.ids.emplace(std::string(name), static_cast<uint32_t>(s.names.size()));
    if (inserted) {
      s.names.push_back(std::make_unique<std::string>(name));
    }
    id = pos->second;
  }
  cache.emplace(std::string(name), id);
  return id;
}

const std::string& InternedNameOf(uint32_t id) {
  InternState& s = Interns();
  std::lock_guard<std::mutex> lock(s.mu);
  LCE_CHECK_MSG(id < s.names.size(), "unknown interned name id");
  return *s.names[id];
}

void EmitCounterAdd(uint32_t name_id, uint64_t delta) {
  RingEvent e;
  e.type = EventType::kCounterAdd;
  e.name_id = name_id;
  e.count = delta;
  LocalRing().TryPush(e);
}

void EmitHistogram(uint32_t name_id, double value, uint64_t count) {
  RingEvent e;
  e.type = EventType::kHistObserve;
  e.name_id = name_id;
  e.value = value;
  e.count = count;
  LocalRing().TryPush(e);
}

void EmitSpanEvent(uint32_t name_id, int64_t start_ns, int64_t end_ns,
                   uint32_t tid, uint64_t span_id, uint64_t parent_id,
                   const SpanArg* args, int num_args) {
  RingEvent e;
  e.type = EventType::kSpan;
  e.name_id = name_id;
  e.tid = tid;
  e.start_ns = start_ns;
  e.end_ns = end_ns;
  e.span_id = span_id;
  e.parent_id = parent_id;
  if (num_args > 2) num_args = 2;
  e.num_args = static_cast<uint8_t>(num_args);
  for (int i = 0; i < num_args; ++i) {
    e.arg_name_id[i] = args[i].name_id;
    e.arg_value[i] = args[i].value;
  }
  LocalRing().TryPush(e);
}

void EmitPhase(const std::string& key, int64_t start_ns, int64_t end_ns,
               uint64_t span_id, uint64_t parent_id, bool metrics_on,
               bool spans_on) {
  struct PhaseIds {
    uint32_t ns, calls, name;
  };
  thread_local std::unordered_map<std::string, PhaseIds, StringHash,
                                  std::equal_to<>>
      cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    PhaseIds ids{InternName("phase." + key + ".ns"),
                 InternName("phase." + key + ".calls"), InternName(key)};
    it = cache.emplace(key, ids).first;
  }
  const PhaseIds& ids = it->second;
  if (metrics_on) {
    EmitCounterAdd(ids.ns, static_cast<uint64_t>(end_ns - start_ns));
    EmitCounterAdd(ids.calls, 1);
  }
  if (spans_on) {
    EmitSpanEvent(ids.name, start_ns, end_ns, internal::CurrentTraceTid(),
                  span_id, parent_id, nullptr, 0);
  }
}

void FlushEventRings() {
  RingState& s = Rings();
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lock(s.registry_mu);
    rings = s.rings;
  }
  if (rings.empty()) return;
  std::lock_guard<std::mutex> drain_lock(s.drain_mu);
  uint64_t new_drops = 0;
  for (const auto& ring : rings) {
    ring->Drain([&s](const RingEvent& e) { ApplyEvent(s, e); });
    uint64_t dropped = ring->Dropped();
    new_drops += dropped - ring->dropped_applied;
    ring->dropped_applied = dropped;
  }
  if (new_drops > 0) {
    MetricsRegistry::Global()
        .counter("telemetry.dropped_events")
        .AddAlways(new_drops);
  }
}

uint64_t DroppedEventCount() {
  RingState& s = Rings();
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lock(s.registry_mu);
    rings = s.rings;
  }
  uint64_t total = 0;
  for (const auto& ring : rings) total += ring->Dropped();
  return total;
}

}  // namespace telemetry
}  // namespace lce
