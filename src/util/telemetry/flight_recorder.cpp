#include "src/util/telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>

#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/telemetry/drift.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/run_manifest.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {

namespace {

// --- env gates ------------------------------------------------------------

std::atomic<int> g_enabled_override{-1};

bool EnvEnabled() {
  static bool v = [] {
    const char* e = std::getenv("LCE_FLIGHT_RECORDER");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return v;
}

double EnvDoubleKnob(const char* name) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return 0;
  char* end = nullptr;
  double v = std::strtod(e, &end);
  if (end == nullptr || *end != '\0' || !(v > 0)) return 0;
  return v;
}

bool EnvBoolKnob(const char* name) {
  const char* e = std::getenv(name);
  return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

// Test overrides: NaN / INT_MIN sentinels mean "use the env value".
std::atomic<double> g_qerr_override{-1.0};
std::atomic<double> g_lat_override{-1.0};
std::atomic<int> g_drift_override{-1};
std::atomic<int> g_max_bundles_override{-1};

double LatencyTriggerFactor() {
  double o = g_lat_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static double v = EnvDoubleKnob("LCE_FR_LAT_TRIGGER");
  return v;
}

bool DriftTriggerEnabled() {
  int o = g_drift_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static bool v = EnvBoolKnob("LCE_FR_DRIFT");
  return v;
}

bool SignalTriggerEnabled() { return EnvBoolKnob("LCE_FR_SIGNAL"); }

int MaxBundles() {
  int o = g_max_bundles_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static int v = [] {
    const char* e = std::getenv("LCE_FR_MAX_BUNDLES");
    if (e != nullptr && *e != '\0') {
      char* end = nullptr;
      long n = std::strtol(e, &end, 10);
      if (end != nullptr && *end == '\0' && n >= 0) return static_cast<int>(n);
    }
    return 8;
  }();
  return v;
}

std::string EnvBundleRoot() {
  if (const char* d = std::getenv("LCE_FR_DIR"); d != nullptr && *d != '\0') {
    return d;
  }
  // Mirrors bench::BenchOutDir() (telemetry cannot depend on bench/).
  const char* out = std::getenv("LCE_BENCH_OUT_DIR");
  std::string base = (out != nullptr && *out != '\0') ? out : "bench/out";
  return base + "/postmortem";
}

// --- async-signal-safe formatting ----------------------------------------
//
// The signal path cannot use snprintf/ostream/std::string (allocation,
// locale locks). These writers cover everything a ForensicRecord needs:
// decimals, a truncating 6-digit double, and lowercase hex.

struct Buf {
  char* p;
  char* end;

  void Put(char c) {
    if (p < end) *p++ = c;
  }
  void Str(const char* s) {
    while (*s != '\0') Put(*s++);
  }
  void U64(uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Put(tmp[--n]);
  }
  void I64(int64_t v) {
    uint64_t u = static_cast<uint64_t>(v);
    if (v < 0) {
      Put('-');
      u = ~u + 1;
    }
    U64(u);
  }
  void Hex64(uint64_t v) {
    static const char* digits = "0123456789abcdef";
    char tmp[16];
    int n = 0;
    do {
      tmp[n++] = digits[v & 0xF];
      v >>= 4;
    } while (v != 0);
    while (n > 0) Put(tmp[--n]);
  }
  // Truncating (not rounding) decimal with 6 fractional digits, switching to
  // a manual e-notation outside [1e-4, 1e15). Non-finite values emit null
  // (JSON has no NaN/Inf).
  void Dbl(double v) {
    if (!__builtin_isfinite(v)) {
      Str("null");
      return;
    }
    if (v < 0) {
      Put('-');
      v = -v;
    }
    int exp10 = 0;
    if (v > 0 && (v >= 1e15 || v < 1e-4)) {
      while (v >= 10) {
        v /= 10;
        ++exp10;
      }
      while (v < 1) {
        v *= 10;
        --exp10;
      }
    }
    uint64_t ip = static_cast<uint64_t>(v);
    U64(ip);
    double frac = v - static_cast<double>(ip);
    char fd[6];
    int nd = 0;
    for (int i = 0; i < 6; ++i) {
      frac *= 10;
      int d = static_cast<int>(frac);
      if (d > 9) d = 9;
      fd[nd++] = static_cast<char>('0' + d);
      frac -= d;
    }
    while (nd > 0 && fd[nd - 1] == '0') --nd;
    if (nd > 0) {
      Put('.');
      for (int i = 0; i < nd; ++i) Put(fd[i]);
    }
    if (exp10 != 0) {
      Put('e');
      I64(exp10);
    }
  }
  // <0 sentinel fields serialize as null ("unknown"), like ExplainRecord.
  void DblOrNull(double v) {
    if (v < 0) {
      Str("null");
    } else {
      Dbl(v);
    }
  }
};

constexpr size_t kRecordBufBytes = 2048;

// --- ring slots -----------------------------------------------------------

// Per-slot seqlock: 0 = never written, odd = writer in the slot, even =
// published with state == 2*seq + 2. A reader that sees a different state
// after copying the payload drops the copy (torn or overwritten).
struct Slot {
  std::atomic<uint64_t> state{0};
  ForensicRecord rec;
};

// Signal-handler view of the ring (set once the recorder exists). The
// handler must not touch FlightRecorder::Global() — it only reads these.
Slot* g_sig_ring = nullptr;
size_t g_sig_slots = 0;
std::atomic<uint64_t>* g_sig_next_seq = nullptr;
char g_sig_root[512] = "bench/out/postmortem";
std::atomic<bool> g_sig_in_handler{false};

const char* TriggerKindName(int kind) {
  static const char* names[] = {"qerr", "latency", "drift", "signal",
                                "manual"};
  return names[kind];
}
constexpr int kKindQerr = 0;
constexpr int kKindLatency = 1;
constexpr int kKindDrift = 2;
constexpr int kKindSignal = 3;
constexpr int kKindManual = 4;
constexpr int kNumKinds = 5;

}  // namespace

// --- record helpers -------------------------------------------------------

uint64_t ForensicRecord::IrHash() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(num_tables);
  for (int i = 0; i < tables_recorded; ++i) mix(static_cast<uint64_t>(tables[i]));
  mix(num_predicates);
  for (int i = 0; i < preds_recorded; ++i) {
    mix(static_cast<uint64_t>(preds[i].table) << 32 |
        static_cast<uint32_t>(preds[i].column));
    mix(static_cast<uint64_t>(preds[i].lo));
    mix(static_cast<uint64_t>(preds[i].hi));
  }
  return h;
}

void SetFrName(char* dst, size_t cap, std::string_view src) {
  size_t n = 0;
  for (char c : src) {
    if (n + 1 >= cap) break;
    unsigned char u = static_cast<unsigned char>(c);
    dst[n++] = (u < 0x20 || c == '"' || c == '\\' || u == 0x7F) ? '_' : c;
  }
  dst[n] = '\0';
}

size_t FormatForensicRecord(const ForensicRecord& rec, char* buf, size_t cap) {
  Buf b{buf, buf + cap};
  b.Str("{\"seq\":");
  b.U64(rec.seq);
  b.Str(",\"ts_ms\":");
  b.Dbl(static_cast<double>(rec.ts_ns) / 1e6);
  b.Str(",\"kind\":\"");
  b.Str(rec.kind == 'x' ? "exec" : "estimate");
  b.Str("\",\"estimator\":\"");
  b.Str(rec.estimator);
  b.Str("\",\"scope\":\"");
  b.Str(rec.scope);
  b.Str("\",\"query_hash\":\"");
  b.Hex64(rec.query_hash);
  b.Str("\",\"tables\":[");
  for (int i = 0; i < rec.tables_recorded; ++i) {
    if (i > 0) b.Put(',');
    b.I64(rec.tables[i]);
  }
  b.Str("],\"joins\":");
  b.U64(rec.num_joins);
  b.Str(",\"predicates\":");
  b.U64(rec.num_predicates);
  b.Str(",\"estimate\":");
  b.Dbl(rec.estimate);
  b.Str(",\"truth\":");
  b.DblOrNull(rec.truth);
  b.Str(",\"qerror\":");
  b.DblOrNull(rec.qerror);
  b.Str(",\"latency_us\":");
  b.DblOrNull(rec.latency_us);
  b.Str(",\"preds\":[");
  for (int i = 0; i < rec.preds_recorded; ++i) {
    if (i > 0) b.Put(',');
    b.Str("{\"t\":");
    b.I64(rec.preds[i].table);
    b.Str(",\"c\":");
    b.I64(rec.preds[i].column);
    b.Str(",\"lo\":");
    b.I64(rec.preds[i].lo);
    b.Str(",\"hi\":");
    b.I64(rec.preds[i].hi);
    b.Str(",\"sel\":");
    b.DblOrNull(rec.preds[i].selectivity);
    b.Put('}');
  }
  b.Str("],\"stages\":[");
  for (int i = 0; i < rec.stages_recorded; ++i) {
    if (i > 0) b.Put(',');
    b.Str("{\"s\":\"");
    b.Str(rec.stages[i].name);
    b.Str("\",\"us\":");
    b.Dbl(rec.stages[i].micros);
    b.Put('}');
  }
  b.Str("],\"fallbacks\":");
  b.U64(rec.num_fallbacks);
  b.Str(",\"fallback_site\":\"");
  b.Str(rec.fallback_site);
  b.Str("\"}");
  return static_cast<size_t>(b.p - buf);
}

void AppendRecordJson(const ForensicRecord& rec, std::string* out) {
  char buf[kRecordBufBytes];
  out->append(buf, FormatForensicRecord(rec, buf, sizeof(buf)));
}

// --- gate -----------------------------------------------------------------

bool FlightRecorderEnabled() {
  int o = g_enabled_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return EnvEnabled();
}

void SetFlightRecorderEnabledForTesting(int on) {
  g_enabled_override.store(on < 0 ? -1 : (on != 0),
                           std::memory_order_relaxed);
}

double QerrTriggerThreshold() {
  double o = g_qerr_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static double v = [] {
    double t = EnvDoubleKnob("LCE_FR_QERR_TRIGGER");
    return t > 1 ? t : 0;
  }();
  return v;
}

// --- recorder -------------------------------------------------------------

struct FlightRecorder::Impl {
  size_t slots = 0;
  uint64_t mask = 0;
  Slot* ring = nullptr;  // leaked with the Impl; the signal handler reads it
  std::atomic<uint64_t> next_seq{0};

  std::mutex bundle_mu;
  std::vector<BundleInfo> bundles;
  std::map<std::string, uint64_t> counter_snapshot;  // at the last bundle
  uint64_t last_kind_seq[kNumKinds] = {};
  std::string root_override;  // empty = env-derived
  bool root_overridden = false;

  std::mutex lat_mu;
  WindowedQuantileSketch lat_sketch{FlightRecorder::kLatencyWindow};

  std::atomic<uint64_t> trigger_counts[kNumKinds] = {};
  std::atomic<bool> signals_installed{false};

  std::string BundleRootLocked() const {
    return root_overridden ? root_override : EnvBundleRoot();
  }
};

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();  // leaked: see Impl
  return *instance;
}

FlightRecorder::FlightRecorder() : impl_(new Impl()) {
  size_t want = 512;
  const char* e = std::getenv("LCE_FR_RING");
  if (e != nullptr && *e != '\0') {
    char* end = nullptr;
    long n = std::strtol(e, &end, 10);
    if (end != nullptr && *end == '\0' && n > 0) {
      want = static_cast<size_t>(n);
    }
  }
  size_t slots = 8;
  while (slots < want) slots *= 2;
  impl_->slots = slots;
  impl_->mask = slots - 1;
  impl_->ring = new Slot[slots];
  // Publish the signal-handler view before handlers can be installed.
  g_sig_ring = impl_->ring;
  g_sig_slots = slots;
  g_sig_next_seq = &impl_->next_seq;
  if (SignalTriggerEnabled()) InstallSignalHandlers();
}

size_t FlightRecorder::RingSlots() const { return impl_->slots; }

uint64_t FlightRecorder::RecordCount() const {
  return impl_->next_seq.load(std::memory_order_relaxed);
}

uint64_t FlightRecorder::Append(ForensicRecord rec, bool trigger_eligible) {
  if (!FlightRecorderEnabled()) return 0;
  if (rec.ts_ns == 0) rec.ts_ns = MonotonicNanos();
  if (rec.query_hash == 0) rec.query_hash = rec.IrHash();
  uint64_t seq = impl_->next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.seq = seq;
  Slot& slot = impl_->ring[seq & impl_->mask];
  slot.state.store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.rec = rec;
  slot.state.store(2 * seq + 2, std::memory_order_release);
  static Counter& records =
      MetricsRegistry::Global().counter("telemetry.fr.records");
  records.Increment();

  if (!trigger_eligible) return seq;
  double qt = QerrTriggerThreshold();
  if (qt > 0 && rec.truth >= 0 && rec.qerror >= qt) {
    char detail[128];
    Buf b{detail, detail + sizeof(detail) - 1};
    b.Str("qerror ");
    b.Dbl(rec.qerror);
    b.Str(" >= trigger ");
    b.Dbl(qt);
    b.Put('\0');
    detail[sizeof(detail) - 1] = '\0';
    MaybeTriggerBundle(kKindQerr, detail, &rec);
  }
  double lf = LatencyTriggerFactor();
  if (lf > 0 && rec.latency_us >= 0) {
    double p99 = 0;
    bool armed = false;
    {
      std::lock_guard<std::mutex> lock(impl_->lat_mu);
      armed = impl_->lat_sketch.full();
      p99 = impl_->lat_sketch.Quantile(0.99);
      impl_->lat_sketch.Observe(rec.latency_us);
    }
    if (armed && p99 > 0 && rec.latency_us > lf * p99) {
      char detail[160];
      Buf b{detail, detail + sizeof(detail) - 1};
      b.Str("latency_us ");
      b.Dbl(rec.latency_us);
      b.Str(" > ");
      b.Dbl(lf);
      b.Str(" x rolling p99 ");
      b.Dbl(p99);
      b.Put('\0');
      detail[sizeof(detail) - 1] = '\0';
      MaybeTriggerBundle(kKindLatency, detail, &rec);
    }
  }
  return seq;
}

std::vector<ForensicRecord> FlightRecorder::SnapshotRing() const {
  std::vector<ForensicRecord> out;
  uint64_t head = impl_->next_seq.load(std::memory_order_acquire);
  if (head == 0) return out;
  uint64_t lo = head > impl_->slots ? head - impl_->slots + 1 : 1;
  out.reserve(head - lo + 1);
  for (uint64_t s = lo; s <= head; ++s) {
    const Slot& slot = impl_->ring[s & impl_->mask];
    uint64_t s1 = slot.state.load(std::memory_order_acquire);
    if (s1 != 2 * s + 2) continue;  // never written, torn, or overwritten
    ForensicRecord copy = slot.rec;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.state.load(std::memory_order_relaxed) != s1) continue;
    out.push_back(copy);
  }
  return out;
}

void FlightRecorder::TriggerDriftAlert(const std::string& monitor,
                                       double window_p95, double threshold) {
  if (!FlightRecorderEnabled() || !DriftTriggerEnabled()) return;
  char detail[192];
  Buf b{detail, detail + sizeof(detail) - 1};
  b.Str("drift monitor ");
  // Monitor names are estimator names; sanitize like record fields.
  char name[kFrNameLen];
  SetFrName(name, sizeof(name), monitor);
  b.Str(name);
  b.Str(" window p95 ");
  b.Dbl(window_p95);
  b.Str(" > threshold ");
  b.Dbl(threshold);
  b.Put('\0');
  detail[sizeof(detail) - 1] = '\0';
  MaybeTriggerBundle(kKindDrift, detail, nullptr);
}

Status FlightRecorder::TriggerManualBundle(const std::string& detail) {
  char buf[192];
  SetFrName(buf, sizeof(buf), detail);
  return MaybeTriggerBundle(kKindManual, buf, nullptr);
}

std::vector<BundleInfo> FlightRecorder::Bundles() const {
  std::lock_guard<std::mutex> lock(impl_->bundle_mu);
  return impl_->bundles;
}

// Writes one bundle under the cooldown / budget rules. `offending` may be
// null (drift/manual: the trigger is not one record's fault).
Status FlightRecorder::MaybeTriggerBundle(int kind, const char* detail,
                                          const ForensicRecord* offending) {
  std::lock_guard<std::mutex> lock(impl_->bundle_mu);
  uint64_t seq = offending != nullptr ? offending->seq : RecordCount();
  if (kind == kKindQerr || kind == kKindLatency) {
    uint64_t last = impl_->last_kind_seq[kind];
    if (last != 0 && seq - last < kSameKindCooldownRecords) {
      return Status::OK();  // cooldown: deliberately not an error
    }
  }
  if (static_cast<int>(impl_->bundles.size()) >= MaxBundles()) {
    static Counter& suppressed =
        MetricsRegistry::Global().counter("telemetry.fr.bundles_suppressed");
    suppressed.AddAlways(1);
    return Status::OK();
  }
  impl_->last_kind_seq[kind] = seq == 0 ? 1 : seq;
  impl_->trigger_counts[kind].fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global()
      .counter(std::string("telemetry.fr.trigger.") + TriggerKindName(kind))
      .AddAlways(1);
  return WriteBundleLocked(kind, detail, offending);
}

namespace {

std::string UtcCompactTimestamp() {
  std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%dT%H%M%S", &tm_utc);
  return buf;
}

}  // namespace

Status FlightRecorder::WriteBundleLocked(int kind, const char* detail,
                                         const ForensicRecord* offending) {
  // Apply pending ring events so the metrics dump and counter deltas are
  // current as of the trigger.
  FlushEventRings();
  const std::string root = impl_->BundleRootLocked();
  std::string name = UtcCompactTimestamp() + "-" + TriggerKindName(kind);
  std::string dir = root + "/" + name;
  struct stat st;
  for (int i = 2; ::stat(dir.c_str(), &st) == 0; ++i) {
    dir = root + "/" + name + "-" + std::to_string(i);
  }

  // ring.jsonl — oldest first, full fidelity.
  std::vector<ForensicRecord> ring = SnapshotRing();
  std::string ring_text;
  ring_text.reserve(ring.size() * 512);
  for (const ForensicRecord& r : ring) {
    AppendRecordJson(r, &ring_text);
    ring_text.push_back('\n');
  }

  // metrics.json — the full registry dump.
  std::string metrics_text;
  {
    JsonWriter w(&metrics_text);
    MetricsRegistry::Global().WriteJson(&w);
  }
  metrics_text.push_back('\n');

  // meta.json — trigger context, the offending record, counter deltas since
  // the previous bundle (or process start).
  auto counters_now = MetricsRegistry::Global().CounterValues();
  std::string meta_text;
  {
    JsonWriter w(&meta_text);
    w.BeginObject();
    w.Key("version").Value(uint64_t{1});
    w.Key("trigger").Value(TriggerKindName(kind));
    w.Key("detail").Value(detail);
    w.Key("timestamp_utc").Value(UtcCompactTimestamp());
    w.Key("git_commit").Value(BuildGitCommit());
    w.Key("ring_records").Value(uint64_t{ring.size()});
    w.Key("records_total").Value(RecordCount());
    w.Key("offending_seq")
        .Value(offending != nullptr ? offending->seq : uint64_t{0});
    w.Key("offending");
    if (offending != nullptr) {
      std::string rec_json;
      AppendRecordJson(*offending, &rec_json);
      w.RawValue(rec_json);
    } else {
      w.Null();
    }
    w.Key("trigger_counts").BeginObject();
    for (int k = 0; k < kNumKinds; ++k) {
      w.Key(TriggerKindName(k))
          .Value(impl_->trigger_counts[k].load(std::memory_order_relaxed));
    }
    w.EndObject();
    w.Key("counter_deltas").BeginObject();
    for (const auto& [cname, value] : counters_now) {
      auto it = impl_->counter_snapshot.find(cname);
      uint64_t prev = it != impl_->counter_snapshot.end() ? it->second : 0;
      if (value != prev) w.Key(cname).Value(value - prev);
    }
    w.EndObject();
    w.EndObject();
  }
  meta_text.push_back('\n');

  Status s = fs::WriteStringToFile(dir + "/meta.json", meta_text);
  if (s.ok()) s = fs::WriteStringToFile(dir + "/ring.jsonl", ring_text);
  if (s.ok()) s = fs::WriteStringToFile(dir + "/metrics.json", metrics_text);
  if (s.ok() && SpanRecordingEnabled()) {
    s = fs::WriteStringToFile(dir + "/profile.collapsed",
                              ToCollapsed(SnapshotProfileForTesting()));
  }
  if (!s.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write postmortem bundle: " << s.ToString();
    return s;
  }
  impl_->counter_snapshot =
      std::map<std::string, uint64_t>(counters_now.begin(), counters_now.end());
  impl_->bundles.push_back(
      {dir, TriggerKindName(kind),
       offending != nullptr ? offending->seq : uint64_t{0}});
  LCE_LOG(WARN) << "flight recorder wrote postmortem bundle " << dir << " ("
                << detail << ")";
  return Status::OK();
}

void FlightRecorder::WriteJson(JsonWriter* w) const {
  std::vector<BundleInfo> bundles = Bundles();
  w->BeginObject();
  w->Key("enabled").Value(FlightRecorderEnabled());
  w->Key("ring_slots").Value(uint64_t{impl_->slots});
  w->Key("records").Value(RecordCount());
  w->Key("qerr_trigger").Value(QerrTriggerThreshold());
  w->Key("latency_trigger_factor").Value(LatencyTriggerFactor());
  w->Key("drift_trigger").Value(DriftTriggerEnabled());
  w->Key("signal_trigger")
      .Value(impl_->signals_installed.load(std::memory_order_relaxed));
  w->Key("triggers").BeginObject();
  for (int k = 0; k < kNumKinds; ++k) {
    w->Key(TriggerKindName(k))
        .Value(impl_->trigger_counts[k].load(std::memory_order_relaxed));
  }
  w->EndObject();
  w->Key("bundles").BeginArray();
  for (const BundleInfo& b : bundles) {
    w->BeginObject()
        .Key("path").Value(b.path)
        .Key("trigger").Value(b.trigger)
        .Key("seq").Value(b.seq)
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

// --- fatal-signal path ----------------------------------------------------
//
// Everything below runs inside a signal handler: only direct syscalls
// (mkdir/open/write/close), the Buf formatters above, and lock-free reads
// of the ring. No allocation, no locks, no stdio.

namespace {

void SigMkdirP(const char* path) {
  char tmp[512];
  size_t n = 0;
  while (path[n] != '\0' && n + 1 < sizeof(tmp)) {
    tmp[n] = path[n];
    ++n;
  }
  tmp[n] = '\0';
  for (size_t i = 1; i < n; ++i) {
    if (tmp[i] == '/') {
      tmp[i] = '\0';
      mkdir(tmp, 0755);
      tmp[i] = '/';
    }
  }
  mkdir(tmp, 0755);
}

void SigWriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = write(fd, data + off, n - off);
    if (w <= 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(w);
  }
}

// Static buffers: the handler is serialized by g_sig_in_handler, and a
// faulting thread's stack may be the thing that's broken.
char g_sig_path[640];
char g_sig_buf[kRecordBufBytes];

void FlightRecorderSignalHandler(int signo) {
  if (!g_sig_in_handler.exchange(true)) {
    // Bundle dir: <root>/<unix-seconds>-signal (wall-clock formatting via
    // gmtime is not async-signal-safe; the postmortem tool accepts either).
    Buf p{g_sig_path, g_sig_path + sizeof(g_sig_path) - 1};
    p.Str(g_sig_root);
    p.Str("/");
    p.U64(static_cast<uint64_t>(time(nullptr)));
    p.Str("-signal");
    p.Put('\0');
    SigMkdirP(g_sig_path);
    size_t dir_len = static_cast<size_t>(p.p - g_sig_path) - 1;

    uint64_t head = g_sig_next_seq != nullptr
                        ? g_sig_next_seq->load(std::memory_order_acquire)
                        : 0;

    // meta.json
    {
      Buf f{g_sig_path + dir_len, g_sig_path + sizeof(g_sig_path) - 1};
      f.Str("/meta.json");
      f.Put('\0');
      int fd = open(g_sig_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        Buf b{g_sig_buf, g_sig_buf + sizeof(g_sig_buf)};
        b.Str("{\"version\":1,\"trigger\":\"signal\",\"signal\":");
        b.I64(signo);
        b.Str(",\"unix_time\":");
        b.U64(static_cast<uint64_t>(time(nullptr)));
        b.Str(",\"records_total\":");
        b.U64(head);
        b.Str(",\"ring_slots\":");
        b.U64(g_sig_slots);
        b.Str(",\"offending_seq\":0,\"offending\":null}\n");
        SigWriteAll(fd, g_sig_buf, static_cast<size_t>(b.p - g_sig_buf));
        close(fd);
      }
    }

    // ring.jsonl — seqlock-read each slot into a static copy, skip torn.
    if (g_sig_ring != nullptr && head > 0) {
      Buf f{g_sig_path + dir_len, g_sig_path + sizeof(g_sig_path) - 1};
      f.Str("/ring.jsonl");
      f.Put('\0');
      int fd = open(g_sig_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        static ForensicRecord copy;
        uint64_t mask = g_sig_slots - 1;
        uint64_t lo = head > g_sig_slots ? head - g_sig_slots + 1 : 1;
        for (uint64_t s = lo; s <= head; ++s) {
          Slot& slot = g_sig_ring[s & mask];
          uint64_t s1 = slot.state.load(std::memory_order_acquire);
          if (s1 != 2 * s + 2) continue;
          copy = slot.rec;
          std::atomic_thread_fence(std::memory_order_acquire);
          if (slot.state.load(std::memory_order_relaxed) != s1) continue;
          size_t n = FormatForensicRecord(copy, g_sig_buf,
                                          sizeof(g_sig_buf) - 1);
          g_sig_buf[n++] = '\n';
          SigWriteAll(fd, g_sig_buf, n);
        }
        close(fd);
      }
    }
  }
  // Restore the default disposition and redeliver, so exit codes, cores,
  // and death tests see the signal exactly as without the recorder.
  signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

void FlightRecorder::InstallSignalHandlers() {
  if (impl_->signals_installed.exchange(true)) return;
  {
    // Pre-resolve the bundle root: getenv inside a handler is unsafe.
    std::lock_guard<std::mutex> lock(impl_->bundle_mu);
    std::string root = impl_->BundleRootLocked();
    size_t n = root.size() < sizeof(g_sig_root) - 1 ? root.size()
                                                    : sizeof(g_sig_root) - 1;
    std::memcpy(g_sig_root, root.data(), n);
    g_sig_root[n] = '\0';
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &FlightRecorderSignalHandler;
  sigemptyset(&sa.sa_mask);
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM}) {
    sigaction(signo, &sa, nullptr);
  }
  LCE_LOG(INFO) << "flight recorder: fatal-signal bundle handler installed "
                << "(root " << g_sig_root << ")";
}

// --- test hooks -----------------------------------------------------------

void FlightRecorder::SetBundleRootForTesting(const char* dir) {
  std::lock_guard<std::mutex> lock(impl_->bundle_mu);
  impl_->root_overridden = dir != nullptr;
  impl_->root_override = dir != nullptr ? dir : "";
  if (dir != nullptr) {
    size_t n = impl_->root_override.size() < sizeof(g_sig_root) - 1
                   ? impl_->root_override.size()
                   : sizeof(g_sig_root) - 1;
    std::memcpy(g_sig_root, impl_->root_override.data(), n);
    g_sig_root[n] = '\0';
  }
}

void FlightRecorder::SetQerrTriggerForTesting(double t) {
  g_qerr_override.store(t, std::memory_order_relaxed);
}

void FlightRecorder::SetLatencyTriggerForTesting(double factor) {
  g_lat_override.store(factor, std::memory_order_relaxed);
}

void FlightRecorder::SetDriftTriggerForTesting(int on) {
  g_drift_override.store(on, std::memory_order_relaxed);
}

void FlightRecorder::SetMaxBundlesForTesting(int n) {
  g_max_bundles_override.store(n, std::memory_order_relaxed);
}

void FlightRecorder::ResetForTesting() {
  std::lock_guard<std::mutex> lock(impl_->bundle_mu);
  impl_->next_seq.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < impl_->slots; ++i) {
    impl_->ring[i].state.store(0, std::memory_order_relaxed);
  }
  impl_->bundles.clear();
  impl_->counter_snapshot.clear();
  for (int k = 0; k < kNumKinds; ++k) {
    impl_->last_kind_seq[k] = 0;
    impl_->trigger_counts[k].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lat_lock(impl_->lat_mu);
  impl_->lat_sketch = WindowedQuantileSketch(kLatencyWindow);
}

// --- per-thread stage capture (StageTimer feed) ---------------------------

namespace {

struct ThreadStages {
  ForensicStage stages[kFrMaxStages];
  int count = 0;
};
thread_local ThreadStages tls_stages;

}  // namespace

namespace internal {

void ResetThreadStageSamples() { tls_stages.count = 0; }

void NoteThreadStageSample(const char* stage, double micros) {
  if (tls_stages.count >= kFrMaxStages) return;
  ForensicStage& s = tls_stages.stages[tls_stages.count++];
  SetFrName(s.name, sizeof(s.name), stage);
  s.micros = micros;
}

}  // namespace internal

void FillStagesFromThread(ForensicRecord* rec) {
  int n = tls_stages.count;
  if (n > kFrMaxStages) n = kFrMaxStages;
  for (int i = 0; i < n; ++i) rec->stages[i] = tls_stages.stages[i];
  rec->stages_recorded = static_cast<uint8_t>(n);
}

}  // namespace telemetry
}  // namespace lce
