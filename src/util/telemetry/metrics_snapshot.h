// Plain-text metrics snapshot exporter (LCE_METRICS_SNAPSHOT=<path>).
//
// Run manifests embed the full metrics registry as JSON, which is right for
// bench_diff and lce_report but heavy for external scrapers and shell tests
// that just want one number. This exporter writes the registry as
// Prometheus-style text exposition — one `name value` pair per line:
//
//   lce_exec_rows_scanned 1183744
//   lce_eval_estimate_latency_us_count 200
//   lce_eval_estimate_latency_us_p99 512.375
//
// Counters export as-is; gauges as-is; histograms fan out into
// _count/_sum/_mean/_p50/_p95/_p99/_p999/_min/_max series. Metric names are
// sanitized to the Prometheus charset ([a-zA-Z0-9_:]) with every other byte
// mapped to '_', and prefixed "lce_". Lines are sorted by name, so the file
// diffs cleanly across runs.
//
// The bench harness (BenchRun) writes the snapshot at shutdown when
// LCE_METRICS_SNAPSHOT is set; other hosts may call WriteMetricsSnapshotNow
// at any flush point.

#ifndef LCE_UTIL_TELEMETRY_METRICS_SNAPSHOT_H_
#define LCE_UTIL_TELEMETRY_METRICS_SNAPSHOT_H_

#include <string>

#include "src/util/status.h"

namespace lce {
namespace telemetry {

/// True when LCE_METRICS_SNAPSHOT names a destination (or a test override
/// does).
bool MetricsSnapshotEnabled();

/// The configured snapshot path ("" when disabled).
std::string MetricsSnapshotPath();

/// Overrides LCE_METRICS_SNAPSHOT (tests). Empty string disables; nullptr
/// restores the env-derived value.
void SetMetricsSnapshotPathForTesting(const char* path);

/// Renders the registry (after flushing the event rings) as the text
/// exposition described above.
std::string RenderMetricsSnapshot();

/// Sanitizes one metric name for the exposition: "lce_" + name with every
/// byte outside [a-zA-Z0-9_:] replaced by '_'. Exposed for tests and for
/// tools that grep snapshot files.
std::string PrometheusName(const std::string& name);

/// Writes RenderMetricsSnapshot() to `path`, creating parent directories.
/// Failures are logged and counted in `telemetry.export_failures`.
Status WriteMetricsSnapshotNow(const std::string& path);

/// WriteMetricsSnapshotNow(MetricsSnapshotPath()) when enabled; else no-op.
void WriteMetricsSnapshotIfEnabled();

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_METRICS_SNAPSHOT_H_
