#include "src/util/telemetry/metrics_snapshot.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/fs.h"
#include "src/util/logging.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

namespace {

std::mutex g_path_mu;
const std::string* g_path_override = nullptr;  // leaked on override

std::string EnvPath() {
  const char* v = std::getenv("LCE_METRICS_SNAPSHOT");
  return (v != nullptr && *v != '\0') ? v : "";
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) {
    out->append(buf, p);
  } else {
    out->append("0");
  }
}

void AppendLine(std::string* out, const std::string& name, double v) {
  out->append(name);
  out->push_back(' ');
  AppendNumber(out, v);
  out->push_back('\n');
}

}  // namespace

bool MetricsSnapshotEnabled() { return !MetricsSnapshotPath().empty(); }

std::string MetricsSnapshotPath() {
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_path_override != nullptr) return *g_path_override;
  return EnvPath();
}

void SetMetricsSnapshotPathForTesting(const char* path) {
  std::lock_guard<std::mutex> lock(g_path_mu);
  delete g_path_override;
  g_path_override = path != nullptr ? new std::string(path) : nullptr;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "lce_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderMetricsSnapshot() {
  FlushEventRings();
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::vector<std::pair<std::string, double>> series;
  for (const auto& [name, value] : reg.CounterValues()) {
    series.emplace_back(PrometheusName(name), static_cast<double>(value));
  }
  for (const auto& [name, value] : reg.GaugeValues()) {
    series.emplace_back(PrometheusName(name), value);
  }
  for (const auto& [name, snap] : reg.HistogramSnapshots()) {
    std::string base = PrometheusName(name);
    series.emplace_back(base + "_count", static_cast<double>(snap.count));
    series.emplace_back(base + "_sum", snap.sum);
    series.emplace_back(base + "_mean", snap.mean);
    series.emplace_back(base + "_p50", snap.p50);
    series.emplace_back(base + "_p95", snap.p95);
    series.emplace_back(base + "_p99", snap.p99);
    series.emplace_back(base + "_p999", snap.p999);
    series.emplace_back(base + "_min", snap.min);
    series.emplace_back(base + "_max", snap.max);
  }
  // Distinct registry names can collide after sanitization ("a.b" / "a/b");
  // a stable sort keeps both lines, in registry order, instead of losing one.
  std::stable_sort(series.begin(), series.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  out.reserve(series.size() * 48 + 64);
  out.append("# lce metrics snapshot (text exposition; counters, gauges, "
             "histogram digests)\n");
  for (const auto& [name, value] : series) AppendLine(&out, name, value);
  return out;
}

Status WriteMetricsSnapshotNow(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("metrics snapshot path is empty");
  }
  Status written = fs::WriteStringToFile(path, RenderMetricsSnapshot());
  if (!written.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write metrics snapshot: " << written.ToString();
    return written;
  }
  LCE_LOG(INFO) << "wrote metrics snapshot " << path;
  return Status::OK();
}

void WriteMetricsSnapshotIfEnabled() {
  std::string path = MetricsSnapshotPath();
  if (!path.empty()) WriteMetricsSnapshotNow(path);
}

}  // namespace telemetry
}  // namespace lce
