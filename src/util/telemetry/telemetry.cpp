#include "src/util/telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "src/util/json_writer.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace telemetry {

namespace {

bool EnvMetricsEnabled() {
  static bool v = [] {
    const char* e = std::getenv("LCE_METRICS");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
  }();
  return v;
}

// -1 = follow LCE_METRICS; 0/1 = test override.
std::atomic<int> g_metrics_override{-1};

thread_local std::string tls_phase_scope;

}  // namespace

bool MetricsEnabled() {
  int o = g_metrics_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return EnvMetricsEnabled();
}

void SetMetricsEnabledForTesting(int on) {
  g_metrics_override.store(on < 0 ? -1 : (on != 0), std::memory_order_relaxed);
}

int64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point base = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              base)
      .count();
}

namespace internal {

int ShardIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local int idx = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return idx;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) {
    total += c.value.load(std::memory_order_relaxed);
  }
  return total;
}

int Histogram::BucketOf(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  int idx = 1 + static_cast<int>(std::floor(
                    std::log2(value / kMinValue) * kBucketsPerDoubling));
  if (idx < 1) idx = 1;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

void Histogram::ObserveCountAlways(double value, uint64_t count) {
  if (count == 0) return;
  Shard& shard = shards_[internal::ShardIndex()];
  shard.counts[BucketOf(value)].fetch_add(count, std::memory_order_relaxed);
  double add = value * static_cast<double>(count);
  double cur = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(cur, cur + add,
                                          std::memory_order_relaxed)) {
  }
  // Exact min/max. After warm-up the comparisons fail and no CAS runs.
  double lo = shard.min.load(std::memory_order_relaxed);
  while (value < lo &&
         !shard.min.compare_exchange_weak(lo, value,
                                          std::memory_order_relaxed)) {
  }
  double hi = shard.max.load(std::memory_order_relaxed);
  while (value > hi &&
         !shard.max.compare_exchange_weak(hi, value,
                                          std::memory_order_relaxed)) {
  }
}

namespace {

// Lower edge of bucket i (i >= 1); bucket 0 is the underflow bucket.
double BucketLowerEdge(int i) {
  return Histogram::kMinValue *
         std::exp2(static_cast<double>(i - 1) / Histogram::kBucketsPerDoubling);
}

// Geometric interpolation of rank `target` (0-based, may be fractional)
// within merged bucket counts.
double QuantileFromBuckets(const uint64_t* counts, double target) {
  double cum = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    double c = static_cast<double>(counts[i]);
    if (c <= 0) continue;
    if (cum + c > target) {
      if (i == 0) return Histogram::kMinValue;
      double lo = BucketLowerEdge(i);
      double hi = BucketLowerEdge(i + 1);
      double frac = (target - cum) / c;
      return lo * std::pow(hi / lo, frac);
    }
    cum += c;
  }
  return 0;
}

}  // namespace

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t merged[kNumBuckets] = {};
  HistogramSnapshot snap;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      merged[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  for (uint64_t c : merged) snap.count += c;
  if (snap.count == 0) return snap;
  snap.mean = snap.sum / static_cast<double>(snap.count);
  double n = static_cast<double>(snap.count);
  snap.p50 = QuantileFromBuckets(merged, 0.50 * n);
  snap.p95 = QuantileFromBuckets(merged, 0.95 * n);
  snap.p99 = QuantileFromBuckets(merged, 0.99 * n);
  snap.p999 = QuantileFromBuckets(merged, 0.999 * n);
  snap.min = std::isfinite(min) ? min : 0.0;
  snap.max = std::isfinite(max) ? max : 0.0;
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name),
                             std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w->Key(name).Value(c->Value());
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w->Key(name).Value(g->Value());
  }
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    w->Key(name)
        .BeginObject()
        .Key("count").Value(s.count)
        .Key("mean").Value(s.mean)
        .Key("p50").Value(s.p50)
        .Key("p95").Value(s.p95)
        .Key("p99").Value(s.p99)
        .Key("p999").Value(s.p999)
        .Key("min").Value(s.min)
        .Key("max").Value(s.max)
        .EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c->Value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->Snapshot());
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  // Apply stale ring events first so they cannot land in the freshly zeroed
  // registry after this call returns.
  FlushEventRings();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    for (auto& cell : c->cells_) cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& shard : h->shards_) {
      for (auto& count : shard.counts) {
        count.store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0.0, std::memory_order_relaxed);
      shard.min.store(std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
      shard.max.store(-std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
    }
  }
}

PhaseScope::PhaseScope(std::string label) : saved_(std::move(tls_phase_scope)) {
  tls_phase_scope = std::move(label);
}

PhaseScope::~PhaseScope() { tls_phase_scope = std::move(saved_); }

const std::string& PhaseScope::Current() { return tls_phase_scope; }

ScopedPhase::ScopedPhase(const char* name)
    : name_(name),
      metrics_on_(MetricsEnabled()),
      trace_on_(SpanRecordingEnabled()) {
  if (trace_on_) {
    parent_span_id_ = CurrentSpanId();
    span_id_ = internal::BeginSpan();
  }
  if (metrics_on_ || trace_on_) start_ns_ = MonotonicNanos();
}

ScopedPhase::~ScopedPhase() {
  if (!metrics_on_ && !trace_on_) return;
  int64_t end_ns = MonotonicNanos();
  if (trace_on_) internal::RestoreCurrentSpan(parent_span_id_);
  const std::string& scope = PhaseScope::Current();
  // Counter increments and the span go through the lock-free event ring;
  // EmitPhase caches the interned ids per (thread, key), so steady state
  // composes one small string and never touches the registry mutex.
  std::string key = scope.empty() ? std::string(name_) : scope + ":" + name_;
  EmitPhase(key, start_ns_, end_ns, span_id_, parent_span_id_, metrics_on_,
            trace_on_);
}

}  // namespace telemetry
}  // namespace lce
