// Rolling-window q-error drift monitors (LCE_DRIFT_WINDOW=<n>).
//
// A WindowedQuantileSketch keeps the last `window` observations in a ring
// buffer and answers exact quantiles over that window (windows are small —
// tens to hundreds of queries — so exactness costs one sort per read). A
// DriftMonitor feeds each observed q-error into its sketch, publishes the
// windowed p50/p95 as gauges (`ce/<name>/qerr_p50_window`,
// `ce/<name>/qerr_p95_window`) in the MetricsRegistry, and emits an
// edge-triggered DriftAlert when the windowed p95 crosses its threshold
// upward with a full window — the signal the update/drift benches (R10/R14)
// use to report detection lag.
//
// The evaluation harness wires estimator q-errors into per-estimator global
// monitors when LCE_DRIFT_WINDOW is set (window size from the env,
// threshold from LCE_DRIFT_THRESHOLD, default 10). Monitors observe only;
// they never touch estimator state, so estimates are bit-identical with the
// monitor on or off (tested). Benches may also construct monitors directly
// with explicit options, independent of the env gate.

#ifndef LCE_UTIL_TELEMETRY_DRIFT_H_
#define LCE_UTIL_TELEMETRY_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lce {
namespace telemetry {

/// Exact quantiles over the trailing `window` observations.
class WindowedQuantileSketch {
 public:
  explicit WindowedQuantileSketch(size_t window);

  void Observe(double value);

  /// Quantile `q` in [0, 1] over the current window contents, with linear
  /// interpolation between order statistics. 0 when empty.
  double Quantile(double q) const;

  /// Observations currently in the window: min(count, window).
  size_t size() const;
  /// Total observations ever fed.
  uint64_t count() const { return count_; }
  bool full() const { return count_ >= window_; }
  size_t window() const { return window_; }

 private:
  size_t window_;
  std::vector<double> ring_;
  size_t next_ = 0;
  uint64_t count_ = 0;
};

/// One threshold crossing: at observation `observation` (1-based), the
/// windowed p95 moved from below `threshold` to `p95`.
struct DriftAlert {
  std::string monitor;
  uint64_t observation = 0;
  double p95 = 0;
  double threshold = 0;
};

class DriftMonitor {
 public:
  struct Options {
    size_t window = 64;
    double threshold_p95 = 10.0;
  };

  DriftMonitor(std::string name, Options options);

  /// Feeds one q-error: updates the sketch, republishes the window gauges,
  /// and fires an alert on an upward p95 threshold crossing (edge-triggered,
  /// armed only once the window is full). Thread-safe.
  void Observe(double qerror);

  double WindowP95() const;
  double WindowP50() const;
  uint64_t observations() const;

  /// Alerts accumulated since the last drain, oldest first.
  std::vector<DriftAlert> DrainAlerts();

  /// The last kAlertHistory alerts ever fired, oldest first — unlike
  /// DrainAlerts this never consumes, so run manifests and lce_report can
  /// show what fired even after a bench drained its queue.
  std::vector<DriftAlert> AlertHistory() const;

  const std::string& name() const { return name_; }
  const Options& options() const { return options_; }

  /// Bound on the retained (non-draining) alert history per monitor.
  static constexpr size_t kAlertHistory = 64;

 private:
  std::string name_;
  Options options_;
  mutable std::mutex mu_;
  WindowedQuantileSketch sketch_;
  bool above_ = false;
  std::vector<DriftAlert> alerts_;
  std::vector<DriftAlert> history_;  // bounded at kAlertHistory, never drained
};

/// True when the env-driven drift wiring is on: LCE_DRIFT_WINDOW set to a
/// positive integer, or a test override.
bool DriftEnabled();

/// The configured window (0 when disabled) and p95 threshold.
size_t DriftWindow();
double DriftThreshold();

/// Overrides LCE_DRIFT_WINDOW (tests). window < 0 restores the env value.
void SetDriftWindowForTesting(int window);

/// The process-wide monitor for `name` (usually an estimator name), created
/// on first use with the env-derived options. Valid for process lifetime.
DriftMonitor& GlobalDriftMonitor(const std::string& name);

/// Drains alerts from every global monitor, oldest first per monitor.
std::vector<DriftAlert> DrainAllDriftAlerts();

/// Non-draining alert history of every global monitor, oldest first per
/// monitor (run manifests, lce_report).
std::vector<DriftAlert> AllDriftAlertHistory();

/// Drops all global monitors (tests).
void ResetDriftForTesting();

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_DRIFT_H_
