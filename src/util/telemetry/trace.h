// Scoped trace spans with Chrome trace-event JSON export.
//
// Setting LCE_TRACE=<path> enables tracing: every TraceSpan (and every
// telemetry::ScopedPhase) records a complete event ("ph":"X") with wall-clock
// start, duration, and the recording thread's id into a per-thread buffer
// (one uncontended mutex acquisition per span; no allocation beyond the
// event itself). WriteTraceIfEnabled() — called by the bench harness and
// automatically at process exit — merges the buffers and writes a JSON file
// loadable by chrome://tracing or https://ui.perfetto.dev.
//
// Spans carry ids: each live TraceSpan pushes its id as the thread's
// "current span", so nested spans record their parent and the hierarchy
// survives into the export (span_id/parent_span_id args; cross-thread edges
// additionally get Chrome flow events so pool work draws arrows back to the
// submitting span). ThreadPool::Submit captures CurrentSpanId() at submit
// time and re-establishes it inside the worker via ScopedTraceParent, so
// parallel lanes nest under the span that spawned them instead of floating
// as orphans.
//
// Finished spans with at most two numeric args are pushed through the
// lock-free per-thread event ring (event_ring.h) instead of the buffer
// mutex; the background drainer lands them in the trace stream. Spans with
// more args take the legacy buffered path.
//
// With LCE_TRACE and LCE_PROFILE unset, constructing a TraceSpan is two
// relaxed atomic loads plus a branch; nothing is recorded and no clock is
// read.

#ifndef LCE_UTIL_TELEMETRY_TRACE_H_
#define LCE_UTIL_TELEMETRY_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace lce {
namespace telemetry {

/// True when trace collection is on (LCE_TRACE set, or a test override).
bool TraceEnabled();

/// True when spans must be recorded at all: tracing is on, or the profiler
/// (LCE_PROFILE) wants the span stream folded into a call tree. Everything
/// that records spans — TraceSpan, ScopedPhase, stage timers, and
/// ThreadPool::Submit's cross-thread parent adoption — gates on this, not on
/// TraceEnabled(), so profiles see the same hierarchy traces do.
bool SpanRecordingEnabled();

/// Overrides the trace destination (tests). Empty path disables tracing;
/// nullptr restores the LCE_TRACE-derived value.
void SetTracePathForTesting(const char* path);

/// The current trace output path ("" when tracing is off).
std::string TracePath();

/// Names the calling thread in trace output (thread_name metadata event).
void SetCurrentThreadName(std::string name);

/// One recorded span; exposed for tests via SnapshotTraceEventsForTesting.
struct TraceEvent {
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t tid = 0;
  uint64_t id = 0;         // unique per span, process-wide
  uint64_t parent_id = 0;  // enclosing span at construction (0 = root)
  std::vector<std::pair<std::string, double>> args;
};

/// Id of the innermost live span on this thread (0 when none, or when
/// tracing is off). Capture at task-submit time and adopt in the worker via
/// ScopedTraceParent to parent cross-thread work.
uint64_t CurrentSpanId();

/// RAII: makes `parent_id` the calling thread's current span for the scope,
/// so spans constructed inside attribute it as their parent. Restores the
/// previous value on destruction.
class ScopedTraceParent {
 public:
  explicit ScopedTraceParent(uint64_t parent_id);
  ~ScopedTraceParent();
  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span: records [construction, destruction) on the calling thread.
/// Use the string overload for dynamic names; it is only materialized when
/// tracing is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument shown in the trace viewer ("args" field).
  void AddArg(const char* key, double value);

 private:
  std::string name_;
  int64_t start_ns_ = 0;
  bool active_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

/// Minimum per-call work (fused multiply-adds, node visits, ...) for a
/// kernel to earn its own span. Below this a kernel runs in ~1µs and a
/// ~100ns span is distortion, not measurement — and batch-1 training loops
/// issue millions of them. Sub-threshold kernel time attributes to the
/// enclosing span (epoch, stage), which is where a profiler wants it.
inline constexpr int64_t kKernelSpanMinWork = 32 * 1024;

/// RAII span for dense kernels: records exactly like TraceSpan, but only
/// when `work` clears kKernelSpanMinWork. Construction with recording off or
/// work under the threshold is a relaxed load, a compare, and nothing else.
class KernelSpan {
 public:
  KernelSpan(const char* name, int64_t work) {
    if (work >= kKernelSpanMinWork && SpanRecordingEnabled()) {
      span_.emplace(name);
    }
  }

 private:
  std::optional<TraceSpan> span_;
};

/// Flushes all buffered events to TracePath() as Chrome trace-event JSON.
/// No-op when tracing is off. Safe to call more than once (rewrites the
/// file with everything recorded so far).
void WriteTraceIfEnabled();

/// WriteTraceIfEnabled with error reporting: OK when tracing is off or the
/// file was written; otherwise the write error (also logged, with the path,
/// and counted in the `telemetry.export_failures` metric). Parent
/// directories are created as needed.
Status WriteTraceNow();

/// All events recorded so far (tests). Pair with ClearTraceForTesting.
std::vector<TraceEvent> SnapshotTraceEventsForTesting();
void ClearTraceForTesting();

namespace internal {
/// Appends a finished span; used by TraceSpan and telemetry::ScopedPhase.
void AppendCompleteEvent(std::string name, int64_t start_ns, int64_t end_ns,
                         uint64_t id, uint64_t parent_id,
                         std::vector<std::pair<std::string, double>> args);

/// Appends a span drained from the event rings (event_ring.cpp only).
void AppendDrainedEvent(TraceEvent event);

/// The calling thread's trace id; ring events carry it so drained spans
/// attribute to the right thread lane.
uint32_t CurrentTraceTid();

/// Allocates a fresh span id and installs it as the thread's current span.
/// Returns the new id; the previous current span (the parent) is read with
/// CurrentSpanId() *before* calling. Pair with RestoreCurrentSpan.
uint64_t BeginSpan();

/// Restores `parent_id` as the thread's current span (span destruction).
void RestoreCurrentSpan(uint64_t parent_id);
}  // namespace internal

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_TRACE_H_
