// Scoped trace spans with Chrome trace-event JSON export.
//
// Setting LCE_TRACE=<path> enables tracing: every TraceSpan (and every
// telemetry::ScopedPhase) records a complete event ("ph":"X") with wall-clock
// start, duration, and the recording thread's id into a per-thread buffer
// (one uncontended mutex acquisition per span; no allocation beyond the
// event itself). WriteTraceIfEnabled() — called by the bench harness and
// automatically at process exit — merges the buffers and writes a JSON file
// loadable by chrome://tracing or https://ui.perfetto.dev.
//
// Spans carry ids: each live TraceSpan pushes its id as the thread's
// "current span", so nested spans record their parent and the hierarchy
// survives into the export (span_id/parent_span_id args; cross-thread edges
// additionally get Chrome flow events so pool work draws arrows back to the
// submitting span). ThreadPool::Submit captures CurrentSpanId() at submit
// time and re-establishes it inside the worker via ScopedTraceParent, so
// parallel lanes nest under the span that spawned them instead of floating
// as orphans.
//
// With LCE_TRACE unset, constructing a TraceSpan is a relaxed atomic load
// plus a branch; nothing is recorded and no clock is read.

#ifndef LCE_UTIL_TELEMETRY_TRACE_H_
#define LCE_UTIL_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace lce {
namespace telemetry {

/// True when trace collection is on (LCE_TRACE set, or a test override).
bool TraceEnabled();

/// Overrides the trace destination (tests). Empty path disables tracing;
/// nullptr restores the LCE_TRACE-derived value.
void SetTracePathForTesting(const char* path);

/// The current trace output path ("" when tracing is off).
std::string TracePath();

/// Names the calling thread in trace output (thread_name metadata event).
void SetCurrentThreadName(std::string name);

/// One recorded span; exposed for tests via SnapshotTraceEventsForTesting.
struct TraceEvent {
  std::string name;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t tid = 0;
  uint64_t id = 0;         // unique per span, process-wide
  uint64_t parent_id = 0;  // enclosing span at construction (0 = root)
  std::vector<std::pair<std::string, double>> args;
};

/// Id of the innermost live span on this thread (0 when none, or when
/// tracing is off). Capture at task-submit time and adopt in the worker via
/// ScopedTraceParent to parent cross-thread work.
uint64_t CurrentSpanId();

/// RAII: makes `parent_id` the calling thread's current span for the scope,
/// so spans constructed inside attribute it as their parent. Restores the
/// previous value on destruction.
class ScopedTraceParent {
 public:
  explicit ScopedTraceParent(uint64_t parent_id);
  ~ScopedTraceParent();
  ScopedTraceParent(const ScopedTraceParent&) = delete;
  ScopedTraceParent& operator=(const ScopedTraceParent&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span: records [construction, destruction) on the calling thread.
/// Use the string overload for dynamic names; it is only materialized when
/// tracing is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument shown in the trace viewer ("args" field).
  void AddArg(const char* key, double value);

 private:
  std::string name_;
  int64_t start_ns_ = 0;
  bool active_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

/// Flushes all buffered events to TracePath() as Chrome trace-event JSON.
/// No-op when tracing is off. Safe to call more than once (rewrites the
/// file with everything recorded so far).
void WriteTraceIfEnabled();

/// WriteTraceIfEnabled with error reporting: OK when tracing is off or the
/// file was written; otherwise the write error (also logged, with the path,
/// and counted in the `telemetry.export_failures` metric). Parent
/// directories are created as needed.
Status WriteTraceNow();

/// All events recorded so far (tests). Pair with ClearTraceForTesting.
std::vector<TraceEvent> SnapshotTraceEventsForTesting();
void ClearTraceForTesting();

namespace internal {
/// Appends a finished span; used by TraceSpan and telemetry::ScopedPhase.
void AppendCompleteEvent(std::string name, int64_t start_ns, int64_t end_ns,
                         uint64_t id, uint64_t parent_id,
                         std::vector<std::pair<std::string, double>> args);

/// Allocates a fresh span id and installs it as the thread's current span.
/// Returns the new id; the previous current span (the parent) is read with
/// CurrentSpanId() *before* calling. Pair with RestoreCurrentSpan.
uint64_t BeginSpan();

/// Restores `parent_id` as the thread's current span (span destruction).
void RestoreCurrentSpan(uint64_t parent_id);
}  // namespace internal

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_TRACE_H_
