#include "src/util/telemetry/train_log.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "src/util/json_writer.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

namespace {

std::string EnvTrainLogPath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_TRAIN_LOG");
    return std::string(e != nullptr ? e : "");
  }();
  return v;
}

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
// Fast-path flag mirroring "path is non-empty".
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvTrainLogPath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Tools and examples that never construct a BenchRun still get the tail.
    std::atexit([] { TrainLog::Global().Flush(); });
  }
}

void WriteOptionalDouble(JsonWriter& w, const char* key, double v) {
  w.Key(key);
  if (v == TrainingEvent::kUnset) {
    w.Null();
  } else {
    w.Value(v);
  }
}

}  // namespace

bool TrainLogEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

std::string TrainLogPath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvTrainLogPath();
}

void SetTrainLogPathForTesting(const char* path) {
  InitEnabledFlag();
  TrainLog::Global().Flush();
  TrainLog::Global().ResetForTesting();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvTrainLogPath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

std::string TrainingEvent::ToJsonLine() const {
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  w.BeginObject();
  w.Key("model").Value(model);
  w.Key("family").Value(family);
  w.Key("event").Value(event);
  w.Key("index").Value(index);
  WriteOptionalDouble(w, "loss", loss);
  WriteOptionalDouble(w, "grad_norm", grad_norm);
  WriteOptionalDouble(w, "lr", learning_rate);
  w.Key("examples");
  if (examples < 0) {
    w.Null();
  } else {
    w.Value(examples);
  }
  WriteOptionalDouble(w, "wall_s", wall_seconds);
  w.Key("rows_per_sec");
  if (examples >= 0 && wall_seconds > 0.0) {
    w.Value(static_cast<double>(examples) / wall_seconds);
  } else {
    w.Null();
  }
  w.Key("phase");
  if (phase.empty()) {
    w.Null();
  } else {
    w.Value(phase);
  }
  if (!extra.empty()) {
    w.Key("extra").BeginObject();
    for (const auto& [k, v] : extra) w.Key(k).Value(v);
    w.EndObject();
  }
  w.EndObject();
  return out;
}

TrainLog& TrainLog::Global() {
  static TrainLog* log = new TrainLog();
  return *log;
}

void TrainLog::Record(const TrainingEvent& event) {
  if (!TrainLogEnabled()) return;
  sink_.Append(event.ToJsonLine(), TrainLogPath());
}

Status TrainLog::Flush() {
  if (!TrainLogEnabled()) return Status::OK();
  return sink_.Flush(TrainLogPath());
}

uint64_t TrainLog::events_recorded() const { return sink_.lines_appended(); }

void TrainLog::ResetForTesting() { sink_.ResetForTesting(); }

void RecordTrainingEvent(TrainingEvent event) {
  if (!TrainLogEnabled()) return;
  if (event.model.empty()) {
    std::string scope = PhaseScope::Current();
    event.model = scope.empty() ? event.family : scope;
  }
  TrainLog::Global().Record(event);
}

}  // namespace telemetry
}  // namespace lce
