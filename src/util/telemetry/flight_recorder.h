// Always-on flight recorder: a bounded, lock-free ring of full-fidelity
// per-query forensic records, plus triggered postmortem bundles.
//
// The aggregate telemetry layers (metrics, traces, stage histograms) answer
// "how much" and "how fast" across a run; they cannot reconstruct *why one
// query* returned a 10^4 q-error after the fact. The flight recorder is the
// black box between the two: every measured estimate, every accuracy-scored
// query, and every ground-truth oracle call appends one fixed-size
// ForensicRecord — estimator, query IR + hash, per-predicate selectivity
// attribution, per-stage micros from the StageTimer, estimate/truth/q-error,
// latency, span context — into a process-wide ring of the last N records.
//
// Producers never block and never allocate: a record append is one
// fetch_add to claim a slot plus a seqlock-published struct store (the PR 8
// event-ring discipline, adapted: where the event ring drops the *newest*
// event under pressure, a flight recorder keeps the newest and overwrites
// the *oldest* — the recent past is exactly what a postmortem needs).
// Readers detect torn slots by re-checking the slot sequence and skip them.
//
// On a trigger the ring is snapshotted into a versioned bundle directory
// (`<root>/postmortem/<utc-ts>-<trigger>/`) together with a metrics-registry
// dump, counter deltas since the previous bundle, and — when span recording
// is on — the profiler call tree. Triggers:
//
//   qerr     a record's q-error crosses LCE_FR_QERR_TRIGGER
//   latency  a record's latency crosses LCE_FR_LAT_TRIGGER x the rolling
//            p99 (WindowedQuantileSketch over the last kLatencyWindow
//            recorded latencies, armed once the window fills)
//   drift    a drift monitor fires an alert edge (LCE_FR_DRIFT=1)
//   signal   a fatal signal / SIGTERM arrives (LCE_FR_SIGNAL=1); the
//            handler is async-signal-safe — it formats records with its own
//            integer/double writers and uses only mkdir/open/write
//   manual   TriggerManualBundle() (tests, tools)
//
// Recording defaults ON (LCE_FLIGHT_RECORDER=0 disables) and is cheap
// enough to leave on under the repo's 5% end-to-end telemetry bar
// (bench_telemetry_overhead gates it); triggers are individually opt-in via
// their env knobs so no run grows bundle directories unasked. Trigger
// firings count into `telemetry.fr.trigger.<kind>`; bundle paths land in
// the run manifest's `flight_recorder` section.
//
// Layering: like the rest of src/util/telemetry this header knows nothing
// of query IR or estimators — callers (src/eval, src/exec, benches) copy
// the fields they have into the POD record.

#ifndef LCE_UTIL_TELEMETRY_FLIGHT_RECORDER_H_
#define LCE_UTIL_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace lce {

class JsonWriter;

namespace telemetry {

/// True when the recorder accepts records: LCE_FLIGHT_RECORDER unset or
/// anything but "0", or a test override. A relaxed load; safe on hot paths.
bool FlightRecorderEnabled();

/// Overrides LCE_FLIGHT_RECORDER (tests). on < 0 restores the env value.
void SetFlightRecorderEnabledForTesting(int on);

/// The q-error bundle trigger threshold: LCE_FR_QERR_TRIGGER when set to a
/// finite value > 1, else 0 (disabled). Exposed so the evaluation harness
/// can enrich offending queries with full diagnostics before the trigger
/// record is appended.
double QerrTriggerThreshold();

inline constexpr int kFrMaxPredicates = 6;
inline constexpr int kFrMaxStages = 6;
inline constexpr int kFrMaxTables = 8;
inline constexpr int kFrNameLen = 24;      // estimator / scope names
inline constexpr int kFrStageNameLen = 16; // stage names ("encode", ...)
inline constexpr int kFrSiteLen = 40;      // first fallback site

/// One predicate of the recorded query: IR plus the estimator's attributed
/// selectivity (< 0 when the estimator models predicates jointly, or when
/// the record was captured without diagnostics).
struct ForensicPredicate {
  int16_t table = 0;
  int16_t column = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  double selectivity = -1.0;
};

/// One closed StageTimer stage of the recorded call (per-item micros).
struct ForensicStage {
  char name[kFrStageNameLen] = {};
  double micros = 0;
};

/// A fixed-size POD forensic record; ~600 bytes, no heap anywhere.
/// String fields are NUL-terminated, sanitized at copy time (SetFrName) so
/// the async-signal-safe formatter can emit them without JSON escaping.
struct ForensicRecord {
  uint64_t seq = 0;       // assigned by Append
  int64_t ts_ns = 0;      // MonotonicNanos; assigned by Append when 0
  uint64_t query_hash = 0;  // FNV-1a over the IR fields; Append fills when 0
  char kind = 'e';        // 'e' estimator estimate | 'x' exact oracle
  char estimator[kFrNameLen] = {};
  char scope[kFrNameLen] = {};  // PhaseScope::Current() at record time
  double estimate = 0;
  double truth = -1;      // < 0 = unknown
  double qerror = -1;     // < 0 = unknown
  double latency_us = -1; // < 0 = not measured
  uint16_t num_tables = 0;
  uint16_t num_joins = 0;
  uint16_t num_predicates = 0;  // in the query (preds[] may hold fewer)
  uint16_t num_fallbacks = 0;
  char fallback_site[kFrSiteLen] = {};  // first fallback site, if any
  uint8_t tables_recorded = 0;
  uint8_t preds_recorded = 0;
  uint8_t stages_recorded = 0;
  int16_t tables[kFrMaxTables] = {};
  ForensicPredicate preds[kFrMaxPredicates];
  ForensicStage stages[kFrMaxStages];

  /// FNV-1a over tables/predicate IR — stable identity for "same query seen
  /// elsewhere in the ring/logs", independent of estimator and timing.
  uint64_t IrHash() const;
};

/// Copies `src` into a fixed record field, truncating to cap-1 and replacing
/// JSON-hostile bytes (quotes, backslashes, control chars) with '_' so the
/// signal-path formatter needs no escaping.
void SetFrName(char* dst, size_t cap, std::string_view src);

/// Appends `rec` as one compact JSON object to `out` — the ring.jsonl line
/// format. Shared with the async-signal-safe path: FormatForensicRecord
/// writes the same bytes into a caller buffer with no allocation.
void AppendRecordJson(const ForensicRecord& rec, std::string* out);

/// Async-signal-safe formatter: writes the JSON object (no newline) into
/// `buf`, returns bytes written (truncates at cap; never writes a partial
/// JSON token past cap-1). Uses only local integer/double formatting.
size_t FormatForensicRecord(const ForensicRecord& rec, char* buf, size_t cap);

namespace internal {
/// Per-thread stage capture, fed by StageTimer while the recorder is on:
/// a top-level timer resets the thread's samples, each closed stage appends
/// one (name, per-item micros) pair up to kFrMaxStages.
void ResetThreadStageSamples();
void NoteThreadStageSample(const char* stage, double micros);
}  // namespace internal

/// Copies the stage samples captured on this thread since the last top-level
/// StageTimer activation into `rec->stages` (non-consuming). Callers invoke
/// this right after the estimate call whose stages they want.
void FillStagesFromThread(ForensicRecord* rec);

/// One written bundle, for the run manifest.
struct BundleInfo {
  std::string path;
  std::string trigger;
  uint64_t seq = 0;  // offending record's seq (0 for drift/signal/manual)
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Ring capacity in records: LCE_FR_RING when a positive integer (rounded
  /// up to a power of two), else 512.
  size_t RingSlots() const;

  /// Appends one record (no-op while the recorder is disabled). Fills
  /// seq/ts_ns/query_hash, stores the record wait-free, and — when
  /// `trigger_eligible` — checks the q-error and latency triggers against
  /// it. Callers appending low-fidelity context records (the accuracy scan,
  /// which separately appends an enriched record for offending queries)
  /// pass trigger_eligible=false so the bundle's offending record is always
  /// the full-fidelity one. Thread-safe; returns the assigned seq (0 when
  /// disabled).
  uint64_t Append(ForensicRecord rec, bool trigger_eligible = true);

  /// Records appended so far (process-wide).
  uint64_t RecordCount() const;

  /// Consistent snapshot of the ring, oldest first. Torn slots (overwritten
  /// mid-read) are skipped.
  std::vector<ForensicRecord> SnapshotRing() const;

  /// Drift-alert trigger edge (called by DriftMonitor). Writes a bundle when
  /// the recorder and LCE_FR_DRIFT are both on.
  void TriggerDriftAlert(const std::string& monitor, double window_p95,
                         double threshold);

  /// Writes a bundle unconditionally (subject to the max-bundles cap).
  /// `detail` lands in meta.json. Tools and tests.
  Status TriggerManualBundle(const std::string& detail);

  /// Bundles written so far (manifest section).
  std::vector<BundleInfo> Bundles() const;

  /// Writes the manifest's `flight_recorder` object value into `w`.
  void WriteJson(JsonWriter* w) const;

  /// Installs the fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
  /// SIGILL/SIGTERM) that snapshot the ring into a bundle before re-raising.
  /// Called automatically on the first Append when LCE_FR_SIGNAL is set
  /// non-"0"; idempotent.
  void InstallSignalHandlers();

  /// Test hooks. Root/threshold overrides pass nullptr to restore the
  /// env-derived value; ResetForTesting drops ring contents, bundle list,
  /// and the latency sketch (the ring allocation itself persists).
  void SetBundleRootForTesting(const char* dir);
  void SetQerrTriggerForTesting(double threshold_or_negative);
  void SetLatencyTriggerForTesting(double factor_or_negative);
  void SetDriftTriggerForTesting(int on);
  void SetMaxBundlesForTesting(int n);
  void ResetForTesting();

  /// Rolling latency window backing the latency trigger.
  static constexpr size_t kLatencyWindow = 256;
  /// Minimum records between two bundles of the same trigger kind (qerr /
  /// latency), so one bad estimator doesn't burn the bundle budget on its
  /// first handful of queries.
  static constexpr uint64_t kSameKindCooldownRecords = 64;

 private:
  FlightRecorder();
  Status MaybeTriggerBundle(int kind, const char* detail,
                            const ForensicRecord* offending);
  Status WriteBundleLocked(int kind, const char* detail,
                           const ForensicRecord* offending);
  struct Impl;
  Impl* impl_;  // leaked; the signal handler may outlive static destructors
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_FLIGHT_RECORDER_H_
