// Per-query stage decomposition for estimator inference paths.
//
// Every estimator's EstimateImpl/EstimateBatch constructs a StageTimer and
// marks stage boundaries (encode/featurize -> forward/traverse ->
// postprocess). Each closed stage feeds the
// `ce.<model>.stage.<stage>.micros` histogram through the lock-free event
// ring, and — when span recording is on — emits a `stage/<stage>` trace span
// nested under the enclosing span, so kernel spans (MatMul,
// FlatForest::PredictBatch) fold under their stage in the profiler.
//
// The timer also records the whole timed window into
// `ce.<model>.latency.micros`, so the lce_report stage breakdown can show
// what fraction of estimate latency the stages cover. Stage close and next
// stage open share one clock read: emission cost is attributed to the
// following stage, never lost between stages.
//
// With all telemetry gates off, constructing a StageTimer is two relaxed
// loads and a branch; Mark() is a thread-local load plus a branch. Estimator
// outputs are bit-identical either way.
//
// Marking from shared helpers (a virtual ForwardOne that doesn't see the
// timer) goes through the static Mark(), which targets the innermost live
// timer on the thread — nested estimators (Bounded wrapping two inner
// estimators) therefore attribute stages to the model actually executing.

#ifndef LCE_UTIL_TELEMETRY_STAGE_TIMER_H_
#define LCE_UTIL_TELEMETRY_STAGE_TIMER_H_

#include <cstdint>
#include <string>
#include <utility>

namespace lce {
namespace telemetry {

class StageTimer {
 public:
  /// `model_name_fn` is only invoked (and its result only materialized) when
  /// a telemetry gate is on. `batch` scales observations for batched
  /// estimates: stage and latency histograms record per-item microseconds
  /// with observation weight `batch`.
  template <typename NameFn>
  explicit StageTimer(NameFn&& model_name_fn, uint64_t batch = 1) {
    if (ShouldActivate()) Activate(model_name_fn(), batch);
  }
  ~StageTimer() {
    if (active_) Deactivate();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Closes the open stage (if any) and opens `stage`. `stage` must outlive
  /// the timer — use a string literal.
  void Stage(const char* stage);

  /// Stage() on the innermost live timer of this thread; no-op when none.
  static void Mark(const char* stage);

 private:
  static bool ShouldActivate();
  void Activate(std::string model, uint64_t batch);
  void Deactivate();
  // Closes the open stage with `now` as both its end and the emission
  // timestamp origin for the next stage.
  void CloseOpenStage(int64_t now_ns);

  bool active_ = false;
  bool metrics_on_ = false;
  bool spans_on_ = false;
  bool fr_on_ = false;  // flight recorder consuming per-stage samples
  uint64_t batch_ = 1;
  std::string model_;
  int64_t begin_ns_ = 0;
  const char* open_stage_ = nullptr;
  int64_t open_start_ns_ = 0;
  uint64_t open_span_id_ = 0;
  uint64_t open_parent_id_ = 0;
  StageTimer* prev_ = nullptr;  // enclosing timer on this thread
};

}  // namespace telemetry
}  // namespace lce

#endif  // LCE_UTIL_TELEMETRY_STAGE_TIMER_H_
