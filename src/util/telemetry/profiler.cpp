#include "src/util/telemetry/profiler.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "src/util/fs.h"
#include "src/util/logging.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

namespace {

std::string EnvProfilePath() {
  static std::string v = [] {
    const char* e = std::getenv("LCE_PROFILE");
    if (e == nullptr || *e == '\0' || std::strcmp(e, "0") == 0) {
      return std::string();
    }
    if (std::strcmp(e, "1") == 0) return std::string("lce_profile.collapsed");
    return std::string(e);
  }();
  return v;
}

std::mutex g_path_mu;
bool g_path_overridden = false;
std::string g_path_override;
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_enabled_initialized{false};

void InitEnabledFlag() {
  if (g_enabled_initialized.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (g_enabled_initialized.load(std::memory_order_relaxed)) return;
  bool on = !EnvProfilePath().empty();
  g_enabled.store(on, std::memory_order_relaxed);
  g_enabled_initialized.store(true, std::memory_order_release);
  if (on) {
    // Processes that never construct a BenchRun still get their profile.
    std::atexit([] { WriteProfileIfEnabled(); });
  }
}

}  // namespace

bool ProfileEnabled() {
  InitEnabledFlag();
  return g_enabled.load(std::memory_order_relaxed);
}

void SetProfilePathForTesting(const char* path) {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  if (path == nullptr) {
    g_path_overridden = false;
    g_enabled.store(!EnvProfilePath().empty(), std::memory_order_relaxed);
  } else {
    g_path_overridden = true;
    g_path_override = path;
    g_enabled.store(!g_path_override.empty(), std::memory_order_relaxed);
  }
}

std::string ProfilePath() {
  InitEnabledFlag();
  std::lock_guard<std::mutex> lock(g_path_mu);
  return g_path_overridden ? g_path_override : EnvProfilePath();
}

std::vector<ProfileNode> BuildProfile(const std::vector<TraceEvent>& events) {
  // Span id -> event index, for parent-chain walks across threads.
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].id != 0) by_id.emplace(events[i].id, i);
  }
  // Resolved ";"-joined path per event (memoized by event index).
  std::vector<std::string> paths(events.size());
  std::vector<char> done(events.size(), 0);
  // Iterative resolve: collect the ancestor chain, then fill top-down.
  std::vector<size_t> chain;
  for (size_t i = 0; i < events.size(); ++i) {
    if (done[i]) continue;
    chain.clear();
    size_t cur = i;
    while (!done[cur] && chain.size() <= events.size()) {
      chain.push_back(cur);
      auto it = by_id.find(events[cur].parent_id);
      if (events[cur].parent_id == 0 || it == by_id.end() ||
          it->second == cur) {
        break;
      }
      cur = it->second;
    }
    for (auto r = chain.rbegin(); r != chain.rend(); ++r) {
      size_t e = *r;
      if (done[e]) continue;
      std::string name = events[e].name;
      std::replace(name.begin(), name.end(), ';', ':');
      auto parent = by_id.find(events[e].parent_id);
      if (events[e].parent_id != 0 && parent != by_id.end() &&
          parent->second != e) {
        paths[e] = paths[parent->second] + ";" + name;
      } else {
        paths[e] = std::move(name);
      }
      done[e] = 1;
    }
  }
  // Aggregate by path; subtract each span's duration from its parent's self.
  struct Agg {
    int64_t total_ns = 0;
    int64_t self_ns = 0;
    uint64_t count = 0;
  };
  std::unordered_map<std::string, Agg> agg;
  for (size_t i = 0; i < events.size(); ++i) {
    Agg& a = agg[paths[i]];
    a.total_ns += events[i].dur_ns;
    a.self_ns += events[i].dur_ns;
    a.count += 1;
    auto parent = by_id.find(events[i].parent_id);
    if (events[i].parent_id != 0 && parent != by_id.end() &&
        parent->second != i) {
      agg[paths[parent->second]].self_ns -= events[i].dur_ns;
    }
  }
  std::vector<ProfileNode> nodes;
  nodes.reserve(agg.size());
  for (auto& [path, a] : agg) {
    ProfileNode n;
    n.path = path;
    size_t sep = path.rfind(';');
    n.name = sep == std::string::npos ? path : path.substr(sep + 1);
    n.depth = static_cast<int>(std::count(path.begin(), path.end(), ';'));
    n.total_ns = a.total_ns;
    n.self_ns = std::max<int64_t>(a.self_ns, 0);
    n.count = a.count;
    nodes.push_back(std::move(n));
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.path < b.path;
            });
  return nodes;
}

std::string ToCollapsed(const std::vector<ProfileNode>& nodes) {
  std::string out;
  char buf[32];
  for (const ProfileNode& n : nodes) {
    int64_t micros = n.self_ns / 1000;
    if (micros <= 0) continue;
    out += n.path;
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(micros));
    out += buf;
  }
  return out;
}

std::vector<ProfileNode> SnapshotProfileForTesting() {
  return BuildProfile(SnapshotTraceEventsForTesting());
}

Status WriteProfileNow() {
  std::string path = ProfilePath();
  if (path.empty()) return Status::OK();
  std::vector<ProfileNode> nodes =
      BuildProfile(SnapshotTraceEventsForTesting());
  Status written = fs::WriteStringToFile(path, ToCollapsed(nodes));
  if (!written.ok()) {
    MetricsRegistry::Global().counter("telemetry.export_failures").AddAlways(1);
    LCE_LOG(ERROR) << "cannot write profile output: " << written.ToString();
    return written;
  }
  LCE_LOG(INFO) << "wrote " << nodes.size() << " profile paths to " << path;
  return Status::OK();
}

void WriteProfileIfEnabled() { (void)WriteProfileNow(); }

}  // namespace telemetry
}  // namespace lce
