#include "src/util/telemetry/memory.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/json_writer.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {

uint64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:    123456 kB" — peak resident set size.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::Add(const std::string& name, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, b] : subsystems_) {
    if (n == name) {
      b += bytes;
      return;
    }
  }
  subsystems_.emplace_back(name, bytes);
}

void MemoryTracker::Set(const std::string& name, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, b] : subsystems_) {
    if (n == name) {
      b = bytes;
      return;
    }
  }
  subsystems_.emplace_back(name, bytes);
}

int64_t MemoryTracker::Bytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, b] : subsystems_) {
    if (n == name) return b;
  }
  return 0;
}

std::vector<std::pair<std::string, int64_t>> MemoryTracker::Snapshot() const {
  std::vector<std::pair<std::string, int64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = subsystems_;
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t MemoryTracker::SamplePeakRss() {
  uint64_t rss = PeakRssBytes();
  if (MetricsEnabled()) {
    MetricsRegistry::Global().gauge("mem.peak_rss_bytes").Set(
        static_cast<double>(rss));
    for (const auto& [name, bytes] : Snapshot()) {
      MetricsRegistry::Global().gauge("mem." + name + "_bytes").Set(
          static_cast<double>(bytes));
    }
  }
  return rss;
}

void MemoryTracker::WriteJson(JsonWriter& w) const {
  uint64_t rss = PeakRssBytes();
  w.BeginObject();
  w.Key("peak_rss_bytes");
  if (rss == 0) {
    w.Null();
  } else {
    w.Value(rss);
  }
  w.Key("subsystems").BeginObject();
  for (const auto& [name, bytes] : Snapshot()) {
    w.Key(name).Value(bytes);
  }
  w.EndObject();
  w.EndObject();
}

void MemoryTracker::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  subsystems_.clear();
}

}  // namespace telemetry
}  // namespace lce
