// Manifest diffing for perf/accuracy gating (tools/bench_diff).
//
// Two bench run manifests (BENCH_manifest_*.json) are flattened to
// path -> number maps and compared under a relative tolerance. Only *watched*
// keys (substring match, higher-is-worse — e.g. "qerr") can fail the diff:
// everything else is reported informationally, so volatile quantities like
// wall-clock never false-fail a CI gate. A watched key present in the
// baseline but missing from the current run is a regression too — silently
// dropping the metric must not pass the gate.

#ifndef LCE_UTIL_BENCH_DIFF_H_
#define LCE_UTIL_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "src/util/json_writer.h"
#include "src/util/status.h"

namespace lce {
namespace benchdiff {

struct Options {
  /// Relative change beyond which a key counts as moved. Watched keys moving
  /// up by more than this fail the diff.
  double rel_tol = 0.25;
  /// Absolute slack: a key only counts as moved when |current - baseline|
  /// also exceeds this. Zero (the default) keeps pure relative gating. Set it
  /// when watching quantities with tiny baselines — e.g. per-event
  /// nanoseconds, where a 3 ns jitter on a 5 ns baseline is a 60% relative
  /// change but means nothing.
  double abs_tol = 0.0;
  /// Substrings selecting the gated, higher-is-worse keys.
  std::vector<std::string> watch = {"qerr"};
  /// Substrings of keys skipped entirely (volatile by construction).
  std::vector<std::string> ignore = {"timestamp", "wall_seconds", "latency",
                                     "_ms", "_us", ".ns", "git_commit"};
};

enum class Verdict { kOk, kRegression, kImprovement, kAdded, kRemoved };

struct Entry {
  std::string key;       // flattened path, e.g. "metrics/gauges/ce/FCN/qerr_p95_window"
  Verdict verdict = Verdict::kOk;
  bool watched = false;
  double base = 0;
  double current = 0;
  double rel_change = 0;  // (current - base) / max(|base|, 1e-12)
};

struct DiffReport {
  std::vector<Entry> entries;  // notable rows only, regressions first
  int keys_compared = 0;       // keys present (and not ignored) in both docs
  int regressions = 0;
  int improvements = 0;

  bool has_regression() const { return regressions > 0; }
  /// Renders the report as a markdown document (tables per verdict class).
  std::string ToMarkdown() const;
};

/// Flattens `v` into "a/b/0/c" -> number pairs (objects by key, arrays by
/// index; non-numeric leaves skipped). Exposed for tests.
std::vector<std::pair<std::string, double>> FlattenNumbers(
    const json::JsonValue& v);

/// Diffs two parsed manifests under `options`.
DiffReport Diff(const json::JsonValue& baseline, const json::JsonValue& current,
                const Options& options);

/// Reads + parses both files, then Diff()s them. IO or parse problems come
/// back as a Status (distinct from a regression, which is in the report).
Result<DiffReport> DiffFiles(const std::string& baseline_path,
                             const std::string& current_path,
                             const Options& options);

}  // namespace benchdiff
}  // namespace lce

#endif  // LCE_UTIL_BENCH_DIFF_H_
