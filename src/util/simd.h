// Process-wide switches for the vectorized kernel layer (dense NN kernels in
// src/nn/matrix.*, batched GBDT traversal in src/gbdt/gbdt.*).
//
// Two env knobs, both following the LCE_ORACLE_INDEX A/B precedent:
//
//   LCE_SIMD      (default on)  — "0" restores the naive reference kernels.
//                 The two paths are bit-identical on every input by
//                 construction (see DESIGN.md §10): the fast kernels keep the
//                 per-element k-accumulation order of the sequential loops
//                 and only reorganize *which* independent elements make
//                 progress together.
//   LCE_FASTMATH  (default off) — "1" additionally allows multi-accumulator
//                 tile sums (vectorized reductions) in the dot-product
//                 kernels. Faster on reduction-shaped work, but the changed
//                 summation order breaks bit-exactness against the reference
//                 path; only enable it where approximate reproducibility is
//                 acceptable. Ignored when LCE_SIMD=0.

#ifndef LCE_UTIL_SIMD_H_
#define LCE_UTIL_SIMD_H_

namespace lce {
namespace simd {

/// True when the vectorized kernel layer is active: LCE_SIMD unset or != "0",
/// unless overridden by SetSimdEnabledForTesting.
bool SimdEnabled();

/// Overrides LCE_SIMD (tests, A/B benches). on >= 1 forces the vectorized
/// path, on == 0 forces the naive reference, on < 0 restores the env default.
void SetSimdEnabledForTesting(int on);

/// True when reordered (multi-accumulator) reductions are allowed:
/// LCE_FASTMATH set and != "0", unless overridden. Callers must also check
/// SimdEnabled(); fast-math has no naive counterpart.
bool FastMathEnabled();

/// Overrides LCE_FASTMATH the same way.
void SetFastMathEnabledForTesting(int on);

}  // namespace simd
}  // namespace lce

#endif  // LCE_UTIL_SIMD_H_
