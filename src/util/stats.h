// Descriptive statistics used throughout the evaluation harness.

#ifndef LCE_UTIL_STATS_H_
#define LCE_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lce {

/// Summary of a sample: mean, geometric mean, and the percentiles the study
/// reports (50/90/95/99/max).
struct SampleSummary {
  size_t count = 0;
  double mean = 0;
  double geo_mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double min = 0;
};

/// Percentile with linear interpolation; `p` in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& values);

/// Geometric mean; requires strictly positive values (0 for empty sample).
double GeometricMean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 when count < 2.
double StdDev(const std::vector<double>& values);

/// One-shot summary of a sample.
SampleSummary Summarize(const std::vector<double>& values);

/// Jensen–Shannon divergence between two discrete distributions given as
/// (possibly unnormalized) non-negative weight vectors of equal length.
/// Returned in nats; 0 means identical, log(2) is the maximum.
double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q);

/// Pearson correlation coefficient of two equal-length samples.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Renders a summary as "mean=… p50=… p95=… p99=… max=…" for logs.
std::string SummaryToString(const SampleSummary& s);

}  // namespace lce

#endif  // LCE_UTIL_STATS_H_
