#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace lce {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  LCE_CHECK(p >= 0 && p <= 100);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) {
    LCE_CHECK_MSG(v > 0, "GeometricMean needs positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  double mean = Mean(values);
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

SampleSummary Summarize(const std::vector<double>& values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = Mean(values);
  bool all_positive = true;
  for (double v : values) {
    if (v <= 0) {
      all_positive = false;
      break;
    }
  }
  s.geo_mean = all_positive ? GeometricMean(values) : 0;
  s.p50 = Percentile(values, 50);
  s.p90 = Percentile(values, 90);
  s.p95 = Percentile(values, 95);
  s.p99 = Percentile(values, 99);
  s.max = *std::max_element(values.begin(), values.end());
  s.min = *std::min_element(values.begin(), values.end());
  return s;
}

namespace {

// KL(p || m) restricted to the support of p; inputs already normalized.
double KlTerm(const std::vector<double>& p, const std::vector<double>& m) {
  double kl = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0 && m[i] > 0) kl += p[i] * std::log(p[i] / m[i]);
  }
  return kl;
}

std::vector<double> Normalize(const std::vector<double>& w) {
  double total = 0;
  for (double v : w) {
    LCE_CHECK_MSG(v >= 0, "distribution weights must be non-negative");
    total += v;
  }
  LCE_CHECK_MSG(total > 0, "distribution must have positive mass");
  std::vector<double> out(w.size());
  for (size_t i = 0; i < w.size(); ++i) out[i] = w[i] / total;
  return out;
}

}  // namespace

double JensenShannonDivergence(const std::vector<double>& p,
                               const std::vector<double>& q) {
  LCE_CHECK(p.size() == q.size());
  std::vector<double> pn = Normalize(p);
  std::vector<double> qn = Normalize(q);
  std::vector<double> m(pn.size());
  for (size_t i = 0; i < m.size(); ++i) m[i] = 0.5 * (pn[i] + qn[i]);
  return 0.5 * KlTerm(pn, m) + 0.5 * KlTerm(qn, m);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  LCE_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

std::string SummaryToString(const SampleSummary& s) {
  std::ostringstream oss;
  oss << "n=" << s.count << " mean=" << s.mean << " p50=" << s.p50
      << " p90=" << s.p90 << " p95=" << s.p95 << " p99=" << s.p99
      << " max=" << s.max;
  return oss.str();
}

}  // namespace lce
