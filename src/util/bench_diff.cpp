#include "src/util/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "src/util/fs.h"

namespace lce {
namespace benchdiff {

namespace {

bool MatchesAny(const std::string& key,
                const std::vector<std::string>& needles) {
  for (const std::string& n : needles) {
    if (!n.empty() && key.find(n) != std::string::npos) return true;
  }
  return false;
}

void FlattenInto(const json::JsonValue& v, const std::string& prefix,
                 std::vector<std::pair<std::string, double>>* out) {
  using Kind = json::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNumber:
      out->emplace_back(prefix, v.number);
      break;
    case Kind::kBool:
      out->emplace_back(prefix, v.boolean ? 1.0 : 0.0);
      break;
    case Kind::kObject:
      for (const auto& [key, child] : v.object) {
        FlattenInto(child, prefix.empty() ? key : prefix + "/" + key, out);
      }
      break;
    case Kind::kArray:
      for (size_t i = 0; i < v.array.size(); ++i) {
        FlattenInto(v.array[i], prefix + "/" + std::to_string(i), out);
      }
      break;
    default:  // null / string: not comparable, skip
      break;
  }
}

std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

const char* VerdictLabel(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kAdded: return "added";
    case Verdict::kRemoved: return "removed";
  }
  return "?";
}

}  // namespace

std::vector<std::pair<std::string, double>> FlattenNumbers(
    const json::JsonValue& v) {
  std::vector<std::pair<std::string, double>> out;
  FlattenInto(v, "", &out);
  return out;
}

DiffReport Diff(const json::JsonValue& baseline, const json::JsonValue& current,
                const Options& options) {
  std::map<std::string, double> base, cur;
  for (auto& [k, v] : FlattenNumbers(baseline)) base.emplace(k, v);
  for (auto& [k, v] : FlattenNumbers(current)) cur.emplace(k, v);

  DiffReport report;
  for (const auto& [key, bv] : base) {
    if (MatchesAny(key, options.ignore)) continue;
    bool watched = MatchesAny(key, options.watch);
    auto it = cur.find(key);
    if (it == cur.end()) {
      Entry e{key, watched ? Verdict::kRegression : Verdict::kRemoved, watched,
              bv, 0, 0};
      if (watched) ++report.regressions;
      report.entries.push_back(std::move(e));
      continue;
    }
    ++report.keys_compared;
    double cv = it->second;
    double rel = (cv - bv) / std::max(std::abs(bv), 1e-12);
    if (std::abs(rel) <= options.rel_tol) continue;  // within tolerance
    if (std::abs(cv - bv) <= options.abs_tol) continue;  // within abs slack
    Entry e{key, Verdict::kOk, watched, bv, cv, rel};
    if (watched) {
      e.verdict = rel > 0 ? Verdict::kRegression : Verdict::kImprovement;
      if (rel > 0) {
        ++report.regressions;
      } else {
        ++report.improvements;
      }
    }
    report.entries.push_back(std::move(e));
  }
  for (const auto& [key, cv] : cur) {
    if (base.count(key) != 0 || MatchesAny(key, options.ignore)) continue;
    report.entries.push_back(
        {key, Verdict::kAdded, MatchesAny(key, options.watch), 0, cv, 0});
  }
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return (a.verdict == Verdict::kRegression) >
                            (b.verdict == Verdict::kRegression);
                   });
  return report;
}

std::string DiffReport::ToMarkdown() const {
  std::string out;
  out += "# bench_diff\n\n";
  out += "- keys compared: " + std::to_string(keys_compared) + "\n";
  out += "- regressions: " + std::to_string(regressions) + "\n";
  out += "- improvements: " + std::to_string(improvements) + "\n\n";
  if (entries.empty()) {
    out += "No notable changes.\n";
    return out;
  }
  out += "| key | verdict | baseline | current | rel change |\n";
  out += "|---|---|---:|---:|---:|\n";
  for (const Entry& e : entries) {
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%+.1f%%", e.rel_change * 100.0);
    out += "| `" + e.key + "` | " + VerdictLabel(e.verdict) +
           (e.watched ? " (watched)" : "") + " | " + FormatNumber(e.base) +
           " | " + FormatNumber(e.current) + " | " +
           (e.verdict == Verdict::kAdded || e.verdict == Verdict::kRemoved
                ? std::string("—")
                : std::string(rel)) +
           " |\n";
  }
  return out;
}

Result<DiffReport> DiffFiles(const std::string& baseline_path,
                             const std::string& current_path,
                             const Options& options) {
  std::string base_text, cur_text;
  Status read = fs::ReadFileToString(baseline_path, &base_text);
  if (!read.ok()) return read;
  read = fs::ReadFileToString(current_path, &cur_text);
  if (!read.ok()) return read;
  json::JsonValue base, cur;
  std::string error;
  if (!json::Parse(base_text, &base, &error)) {
    return Status::Internal("cannot parse " + baseline_path + ": " + error);
  }
  if (!json::Parse(cur_text, &cur, &error)) {
    return Status::Internal("cannot parse " + current_path + ": " + error);
  }
  return Diff(base, cur, options);
}

}  // namespace benchdiff
}  // namespace lce
