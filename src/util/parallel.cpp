#include "src/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"

namespace lce {
namespace parallel {

namespace {

// Set inside pool workers so nested parallel regions run inline instead of
// fanning out again (which could otherwise livelock the fixed-size pool).
thread_local bool tls_in_pool_worker = false;

// Pool utilization metrics (LCE_METRICS): aggregate across workers via the
// counters' per-thread shards. Handles are cached once; the registry never
// invalidates them.
telemetry::Counter& PoolTasksExecuted() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("pool.tasks_executed");
  return c;
}

telemetry::Counter& PoolIdleNs() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("pool.idle_ns");
  return c;
}

telemetry::Counter& PoolRegions() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("pool.regions");
  return c;
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stop = false;
  std::vector<std::thread> workers;

  void WorkerLoop(int worker_index) {
    tls_in_pool_worker = true;
    telemetry::SetCurrentThreadName("pool/" + std::to_string(worker_index));
    for (;;) {
      std::function<void()> task;
      {
        // Idle time = wall clock spent waiting for work (metrics-gated so
        // the disabled path never reads a clock).
        bool measure_idle = telemetry::MetricsEnabled();
        int64_t idle_start =
            measure_idle ? telemetry::MonotonicNanos() : 0;
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (measure_idle) {
          PoolIdleNs().Add(
              static_cast<uint64_t>(telemetry::MonotonicNanos() - idle_start));
        }
        if (queue.empty()) {
          if (stop) return;
          continue;
        }
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
      PoolTasksExecuted().Increment();
    }
  }
};

ThreadPool::ThreadPool(int size) : size_(std::max(1, size)), impl_(nullptr) {
  if (size_ <= 1) return;
  impl_ = new Impl();
  impl_->workers.reserve(static_cast<size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (impl_ == nullptr) {
    task();
    return;
  }
  if (telemetry::SpanRecordingEnabled()) {
    // Parent pool work under the submitting span: capture the submitter's
    // innermost span id now and re-establish it inside the worker, so lane
    // spans nest in the trace instead of starting orphan roots.
    task = [parent = telemetry::CurrentSpanId(), inner = std::move(task)] {
      telemetry::ScopedTraceParent adopt(parent);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

namespace {

int DefaultThreadCount() {
  const char* env = std::getenv("LCE_THREADS");
  if (env != nullptr && *env != '\0') {
    int v = std::atoi(env);
    if (v > 0) return v;
    LCE_LOG(WARN) << "ignoring invalid LCE_THREADS=" << env
                  << "; using hardware concurrency";
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool_owner;          // guarded by g_pool_mu
std::atomic<ThreadPool*> g_pool{nullptr};          // fast path

}  // namespace

ThreadPool* GlobalPool() {
  ThreadPool* pool = g_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return pool;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool_owner == nullptr) {
    int size = DefaultThreadCount();
    LCE_LOG(DEBUG) << "thread pool: " << size << " lanes (LCE_THREADS="
                   << (std::getenv("LCE_THREADS") != nullptr
                           ? std::getenv("LCE_THREADS")
                           : "<unset>")
                   << ")";
    g_pool_owner = std::make_unique<ThreadPool>(size);
  }
  g_pool.store(g_pool_owner.get(), std::memory_order_release);
  return g_pool_owner.get();
}

int ThreadCount() { return GlobalPool()->size(); }

void SetThreadCountForTesting(int size) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool.store(nullptr, std::memory_order_release);
  g_pool_owner.reset();  // joins the old workers
  g_pool_owner =
      std::make_unique<ThreadPool>(size > 0 ? size : DefaultThreadCount());
  g_pool.store(g_pool_owner.get(), std::memory_order_release);
}

namespace internal {

bool ShouldParallelize(int64_t num_chunks) {
  return num_chunks > 1 && !tls_in_pool_worker && GlobalPool()->size() > 1;
}

void ParallelForChunksImpl(
    int64_t begin, int64_t end, int64_t grain, int64_t num_chunks,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  ThreadPool* pool = GlobalPool();
  // Shared by the caller lane and the submitted helper tasks. Helpers that
  // wake up after every chunk is claimed exit without touching `fn`, so the
  // state (not `fn`) is the only thing that must outlive this call.
  struct State {
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> chunks_done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  const auto* fn_ptr = &fn;
  PoolRegions().Increment();
  telemetry::TraceSpan region_span("parallel/region");
  region_span.AddArg("chunks", static_cast<double>(num_chunks));

  auto run_chunks = [state, fn_ptr, begin, end, grain, num_chunks] {
    telemetry::TraceSpan lane_span("parallel/lane");
    for (;;) {
      int64_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      int64_t b = begin + c * grain;
      try {
        (*fn_ptr)(c, b, std::min(end, b + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->chunks_done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const int64_t helpers =
      std::min<int64_t>(pool->size(), num_chunks) - 1;  // caller is a lane
  for (int64_t i = 0; i < helpers; ++i) pool->Submit(run_chunks);
  run_chunks();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->chunks_done.load(std::memory_order_acquire) >= num_chunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace internal

}  // namespace parallel
}  // namespace lce
