// Small filesystem helpers shared by every artifact writer (traces, run
// manifests, query logs, bench JSON). All return Status instead of silently
// dropping output: a bench run that cannot persist its manifest is a failed
// run, not a quiet one.

#ifndef LCE_UTIL_FS_H_
#define LCE_UTIL_FS_H_

#include <string>
#include <string_view>

#include "src/util/status.h"

namespace lce {
namespace fs {

/// Creates every missing directory on the parent path of `path` (mkdir -p of
/// dirname). A path with no directory component is trivially OK.
Status EnsureParentDirs(const std::string& path);

/// Writes `data` to `path`, creating parent directories first. Truncates any
/// existing file. On failure returns Internal with the path and errno text.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Reads the whole file into `*out`. NotFound / Internal on failure.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace fs
}  // namespace lce

#endif  // LCE_UTIL_FS_H_
