#include "src/util/logging.h"

#include <strings.h>

#include <cstring>

namespace lce {
namespace logging {

namespace {

Severity ParseSeverity(const char* s, Severity fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  auto eq = [s](const char* word) { return strcasecmp(s, word) == 0; };
  if (eq("debug") || eq("0")) return Severity::kDEBUG;
  if (eq("info") || eq("1")) return Severity::kINFO;
  if (eq("warn") || eq("warning") || eq("2")) return Severity::kWARN;
  if (eq("error") || eq("3")) return Severity::kERROR;
  if (eq("off") || eq("none")) return Severity::kOFF;
  std::fprintf(stderr, "[LCE W logging] unrecognized LCE_LOG_LEVEL=%s; using INFO\n", s);
  return fallback;
}

Severity EnvSeverity() {
  static Severity s =
      ParseSeverity(std::getenv("LCE_LOG_LEVEL"), Severity::kINFO);
  return s;
}

// -1 = follow env; otherwise an explicit test override.
std::atomic<int> g_override{-1};

}  // namespace

Severity MinSeverity() {
  int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Severity>(o);
  return EnvSeverity();
}

void SetMinSeverityForTesting(Severity s) {
  g_override.store(static_cast<int>(s), std::memory_order_relaxed);
}

void ResetMinSeverityForTesting() {
  g_override.store(-1, std::memory_order_relaxed);
}

LogMessage::LogMessage(const char* file, int line, Severity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  static const char kTags[] = {'D', 'I', 'W', 'E'};
  int idx = static_cast<int>(severity_);
  char tag = (idx >= 0 && idx < 4) ? kTags[idx] : '?';
  const char* base = std::strrchr(file_, '/');
  base = base != nullptr ? base + 1 : file_;
  // One fprintf per message keeps concurrent lines from interleaving.
  std::fprintf(stderr, "[LCE %c %s:%d] %s\n", tag, base, line_,
               stream_.str().c_str());
}

}  // namespace logging
}  // namespace lce
