#include "src/util/simd.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace lce {
namespace simd {

namespace {

std::atomic<int> g_simd_override{-1};
std::atomic<int> g_fastmath_override{-1};

bool SimdFromEnv() {
  const char* v = std::getenv("LCE_SIMD");
  return v == nullptr || std::string_view(v) != "0";
}

bool FastMathFromEnv() {
  const char* v = std::getenv("LCE_FASTMATH");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

}  // namespace

bool SimdEnabled() {
  int o = g_simd_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  // The env never changes mid-process; cache the parse.
  static const bool enabled = SimdFromEnv();
  return enabled;
}

void SetSimdEnabledForTesting(int on) {
  g_simd_override.store(on, std::memory_order_relaxed);
}

bool FastMathEnabled() {
  int o = g_fastmath_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool enabled = FastMathFromEnv();
  return enabled;
}

void SetFastMathEnabledForTesting(int on) {
  g_fastmath_override.store(on, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace lce
