#include "src/storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/logging.h"

namespace lce {
namespace storage {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  LCE_CHECK_MSG(!schema_.columns.empty(),
                "table " << schema_.name << " needs at least one column");
  columns_.resize(schema_.columns.size());
  stats_.resize(schema_.columns.size());
}

const std::vector<Value>& Table::column(int index) const {
  LCE_CHECK(index >= 0 && index < num_columns());
  return columns_[index];
}

Result<int> Table::ColumnIndex(const std::string& name) const {
  int idx = schema_.ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("column " + name + " in table " + schema_.name);
  }
  return idx;
}

void Table::AppendRow(const std::vector<Value>& row) {
  LCE_CHECK_MSG(row.size() == columns_.size(),
                "row width mismatch on table " << schema_.name);
  for (size_t c = 0; c < row.size(); ++c) columns_[c].push_back(row[c]);
  ++num_rows_;
  ++version_;
  finalized_ = false;
}

void Table::AppendColumns(const std::vector<std::vector<Value>>& columns) {
  LCE_CHECK_MSG(columns.size() == columns_.size(),
                "column count mismatch on table " << schema_.name);
  size_t added = columns.empty() ? 0 : columns[0].size();
  for (const auto& col : columns) {
    LCE_CHECK_MSG(col.size() == added, "ragged column append");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    columns_[c].insert(columns_[c].end(), columns[c].begin(), columns[c].end());
  }
  num_rows_ += added;
  ++version_;
  finalized_ = false;
}

void Table::Finalize() {
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnStats& s = stats_[c];
    s.rows = num_rows_;
    if (columns_[c].empty()) {
      s.min = s.max = 0;
      s.distinct = 0;
      continue;
    }
    auto [mn, mx] = std::minmax_element(columns_[c].begin(), columns_[c].end());
    s.min = *mn;
    s.max = *mx;
    std::unordered_set<Value> seen(columns_[c].begin(), columns_[c].end());
    s.distinct = seen.size();
  }
  finalized_ = true;
}

const ColumnStats& Table::stats(int column_index) const {
  LCE_CHECK_MSG(finalized_, "Finalize() table " << schema_.name
                                                << " before reading stats");
  LCE_CHECK(column_index >= 0 && column_index < num_columns());
  return stats_[column_index];
}

std::vector<Value> Table::Row(uint64_t row_index) const {
  LCE_CHECK(row_index < num_rows_);
  std::vector<Value> row(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) row[c] = columns_[c][row_index];
  return row;
}

uint64_t Table::SizeBytes() const {
  return num_rows_ * columns_.size() * sizeof(Value);
}

}  // namespace storage
}  // namespace lce
