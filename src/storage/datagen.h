// Synthetic dataset generation.
//
// The study sweeps cardinality-estimation difficulty along three data axes —
// skew, correlation, and domain size — and evaluates on one single-table and
// three multi-table databases. This module provides (a) a fully parameterized
// generator over those axes and (b) prebuilt specs that simulate the shape of
// the study's datasets (DMV-like single table; IMDb/JOB-like, TPC-H-like and
// STATS-like PK–FK snowflakes). See DESIGN.md §Substitutions for why these
// simulators preserve the behaviour the experiments measure.

#ifndef LCE_STORAGE_DATAGEN_H_
#define LCE_STORAGE_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/storage/database.h"

namespace lce {
namespace storage {
namespace datagen {

/// How one column's values are produced.
struct ColumnGenSpec {
  std::string name;

  /// Sequential primary key 0..rows-1 (ignores the other knobs).
  bool is_key = false;

  /// Foreign key: values are drawn from the referenced table's key range with
  /// Zipf(`zipf_theta`) fan-out skew. Empty string means "not a FK".
  std::string ref_table;

  /// Number of distinct values for plain attributes (values in [0, domain)).
  uint64_t domain = 100;

  /// Zipf skew of the marginal distribution (0 = uniform).
  double zipf_theta = 0.0;

  /// Name of an earlier column in the same table this one depends on
  /// (empty = independent). With probability `correlation` the value is a
  /// deterministic mixing function of the base column's value; otherwise it
  /// is drawn independently. correlation=1 yields a functional dependency.
  std::string correlate_with;
  double correlation = 0.0;

  /// Monotone function of the row index: value = floor(row * domain / rows).
  /// Models attributes like creation dates that grow with the primary key —
  /// and therefore correlate with Zipf FK fanout, which is keyed on row ids.
  bool monotone_of_key = false;
};

struct TableGenSpec {
  std::string name;
  uint64_t rows = 0;
  std::vector<ColumnGenSpec> columns;
};

/// A database spec: tables must be listed so that every FK references an
/// earlier table (dimension tables first).
struct DatabaseGenSpec {
  std::string name;
  std::vector<TableGenSpec> tables;
  std::vector<JoinEdge> joins;
};

/// Generates a database (tables finalized) deterministically from `seed`.
std::unique_ptr<Database> Generate(const DatabaseGenSpec& spec, uint64_t seed);

/// Appends `fraction * original_rows` new rows to every table, drawn from the
/// spec with every non-key column's skew increased by `theta_delta` and its
/// value range shifted by `domain_shift_frac * domain`. Models the data-drift
/// scenario of experiment R10. Tables are re-finalized.
void AppendShifted(Database* db, const DatabaseGenSpec& spec, double fraction,
                   double theta_delta, double domain_shift_frac, uint64_t seed);

// ---------------------------------------------------------------------------
// Prebuilt specs. `scale` multiplies row counts (1.0 = defaults sized so the
// whole experiment suite runs on a laptop in minutes).
// ---------------------------------------------------------------------------

/// Single 11-attribute vehicle-registration-style table with clustered
/// categorical correlations (DMV stand-in).
DatabaseGenSpec DmvLikeSpec(double scale = 1.0);

/// Six-table movie snowflake centered on `title` (IMDb/JOB stand-in).
DatabaseGenSpec ImdbLikeSpec(double scale = 1.0);

/// Five-table order-processing snowflake (TPC-H stand-in).
DatabaseGenSpec TpchLikeSpec(double scale = 1.0);

/// Five-table Q&A-forum snowflake (STATS/Stack-Exchange stand-in).
DatabaseGenSpec StatsLikeSpec(double scale = 1.0);

/// Two-attribute single table for the controlled sweeps R4–R6.
DatabaseGenSpec SyntheticPairSpec(uint64_t rows, uint64_t domain, double theta,
                                  double correlation);

/// All four study databases, in a fixed order.
std::vector<DatabaseGenSpec> AllStudyDatabases(double scale = 1.0);

}  // namespace datagen
}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_DATAGEN_H_
