// Logical schema metadata: tables, columns, and the PK–FK join graph.

#ifndef LCE_STORAGE_SCHEMA_H_
#define LCE_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lce {
namespace storage {

/// A column definition. `is_key` marks primary-key columns, which workload
/// generators never use in range predicates (matching common CE benchmarks).
struct ColumnDef {
  std::string name;
  bool is_key = false;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;

  /// Index of a column by name; -1 when absent.
  int ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// An equi-join edge `left.left_column = right.right_column`. By convention
/// the left side is the primary-key (dimension) side.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// Full logical schema of a database: tables plus join graph. Estimators use
/// this to size their encodings; workload generators use it to craft valid
/// join predicates.
struct DatabaseSchema {
  std::string name;
  std::vector<TableSchema> tables;
  std::vector<JoinEdge> joins;

  int TableIndex(const std::string& table_name) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].name == table_name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Total number of (table, column) pairs, the width basis of flat encodings.
  int TotalColumns() const {
    int n = 0;
    for (const auto& t : tables) n += static_cast<int>(t.columns.size());
    return n;
  }

  /// Flat index of a column across all tables (tables in schema order).
  int GlobalColumnIndex(const std::string& table_name,
                        const std::string& column_name) const {
    int offset = 0;
    for (const auto& t : tables) {
      if (t.name == table_name) {
        int c = t.ColumnIndex(column_name);
        return c < 0 ? -1 : offset + c;
      }
      offset += static_cast<int>(t.columns.size());
    }
    return -1;
  }
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_SCHEMA_H_
