#include "src/storage/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace lce {
namespace storage {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, delimiter)) cells.push_back(cell);
  if (!line.empty() && line.back() == delimiter) cells.push_back("");
  return cells;
}

bool ParseInt(const std::string& s, Value* out) {
  if (s.empty()) return false;
  size_t pos = 0;
  try {
    long long v = std::stoll(s, &pos);
    if (pos != s.size()) return false;
    *out = static_cast<Value>(v);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

Result<Table> ReadCsv(std::istream* in, const std::string& table_name,
                      const CsvOptions& options, Dictionary* dict) {
  std::string line;
  std::vector<std::string> names;
  if (options.has_header) {
    if (!std::getline(*in, line)) {
      return Status::InvalidArgument("empty CSV input");
    }
    names = SplitLine(line, options.delimiter);
    if (names.empty()) return Status::InvalidArgument("empty CSV header");
  }

  std::vector<std::vector<Value>> columns;
  size_t width = names.size();
  uint64_t row_number = options.has_header ? 1 : 0;
  while (std::getline(*in, line)) {
    ++row_number;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    if (width == 0) {
      width = cells.size();
      for (size_t c = 0; c < width; ++c) {
        names.push_back("col" + std::to_string(c));
      }
    }
    if (cells.size() != width) {
      return Status::InvalidArgument("ragged CSV row at line " +
                                     std::to_string(row_number));
    }
    if (columns.empty()) columns.resize(width);
    for (size_t c = 0; c < width; ++c) {
      Value v;
      if (!ParseInt(cells[c], &v)) v = dict->Encode(cells[c]);
      columns[c].push_back(v);
    }
  }
  if (columns.empty()) {
    return Status::InvalidArgument("CSV has no data rows");
  }

  TableSchema schema;
  schema.name = table_name;
  for (const std::string& name : names) {
    bool is_key = std::find(options.key_columns.begin(),
                            options.key_columns.end(),
                            name) != options.key_columns.end();
    schema.columns.push_back({name, is_key});
  }
  Table table(std::move(schema));
  table.AppendColumns(columns);
  table.Finalize();
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options, Dictionary* dict) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadCsv(&in, table_name, options, dict);
}

Status WriteCsv(const Table& table, std::ostream* out,
                const CsvOptions& options) {
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) *out << options.delimiter;
    *out << table.schema().columns[c].name;
  }
  *out << "\n";
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) *out << options.delimiter;
      *out << table.column(c)[r];
    }
    *out << "\n";
  }
  if (!*out) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  return WriteCsv(table, &out, options);
}

}  // namespace storage
}  // namespace lce
