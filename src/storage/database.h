// A Database bundles the tables of a schema with its join graph and exposes
// the navigation helpers the executor, workload generator, and estimators
// share (join-edge lookup, connected-subgraph checks).

#ifndef LCE_STORAGE_DATABASE_H_
#define LCE_STORAGE_DATABASE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace lce {
namespace storage {

class DatabaseIndex;

class Database {
 public:
  explicit Database(DatabaseSchema schema);
  ~Database();

  const DatabaseSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  Table& table(int index);
  const Table& table(int index) const;

  /// Table lookup by name; Status::NotFound if absent.
  Result<Table*> FindTable(const std::string& name);
  Result<const Table*> FindTable(const std::string& name) const;

  /// Finalizes all tables (recomputes statistics).
  void FinalizeAll();

  /// Join edges incident to `table_index` (as indexes into schema().joins).
  std::vector<int> IncidentJoins(int table_index) const;

  /// The join edge connecting two tables, or -1 if they are not adjacent.
  int JoinBetween(int table_a, int table_b) const;

  /// True if the given table set induces a connected subgraph of the join
  /// graph (a requirement for valid join queries).
  bool IsConnected(const std::vector<int>& table_indexes) const;

  /// Total data footprint across tables.
  uint64_t SizeBytes() const;

  /// The oracle acceleration indexes over this database (sorted columns,
  /// dense join-key remappings; see src/storage/column_index.h). Created on
  /// first use and shared by every executor, so the build cost is paid once
  /// per database no matter how many oracles replay against it.
  const DatabaseIndex& index() const;

 private:
  DatabaseSchema schema_;
  std::vector<std::unique_ptr<Table>> tables_;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<DatabaseIndex> index_;
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_DATABASE_H_
