// Core value and statistics types of the storage engine.
//
// Following the study's setup ("string-type attributes are encoded into
// numeric types using dictionaries"), every stored value is an int64. String
// columns pass through storage::Dictionary at load time.

#ifndef LCE_STORAGE_TYPES_H_
#define LCE_STORAGE_TYPES_H_

#include <cstdint>
#include <limits>

namespace lce {
namespace storage {

using Value = int64_t;

constexpr Value kValueMin = std::numeric_limits<Value>::min();
constexpr Value kValueMax = std::numeric_limits<Value>::max();

/// Per-column statistics maintained by Table::Finalize().
struct ColumnStats {
  Value min = 0;
  Value max = 0;
  uint64_t distinct = 0;  // exact count of distinct values
  uint64_t rows = 0;
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_TYPES_H_
