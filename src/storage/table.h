// In-memory columnar table.
//
// Storage is column-major (one contiguous vector per attribute) so the exact
// executor can scan with good locality; appends are supported to model data
// drift (experiment R10).

#ifndef LCE_STORAGE_TABLE_H_
#define LCE_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/types.h"
#include "src/util/status.h"

namespace lce {
namespace storage {

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  uint64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Data version, bumped by every append. Derived structures (sorted column
  /// indexes, join-key remappings) record the version they were built at and
  /// rebuild when it moves.
  uint64_t version() const { return version_; }

  /// Direct read access to a column's data.
  const std::vector<Value>& column(int index) const;

  /// Column lookup by name; Status::NotFound if absent.
  Result<int> ColumnIndex(const std::string& name) const;

  /// Appends one row (width must match the schema). Invalidates stats until
  /// the next Finalize().
  void AppendRow(const std::vector<Value>& row);

  /// Bulk-append whole columns (must all be the same length).
  void AppendColumns(const std::vector<std::vector<Value>>& columns);

  /// Recomputes per-column statistics. Must be called after loading/appending
  /// and before statistics-dependent consumers (histograms, encodings) run.
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Stats for a column; requires finalized().
  const ColumnStats& stats(int column_index) const;

  /// Materializes one row (for debugging and integration tests).
  std::vector<Value> Row(uint64_t row_index) const;

  /// Approximate in-memory footprint of the data.
  uint64_t SizeBytes() const;

 private:
  TableSchema schema_;
  std::vector<std::vector<Value>> columns_;
  std::vector<ColumnStats> stats_;
  uint64_t num_rows_ = 0;
  uint64_t version_ = 0;
  bool finalized_ = false;
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_TABLE_H_
