#include "src/storage/dictionary.h"

namespace lce {
namespace storage {

Value Dictionary::Encode(const std::string& s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  Value id = static_cast<Value>(strings_.size());
  ids_.emplace(s, id);
  strings_.push_back(s);
  return id;
}

Result<Value> Dictionary::Lookup(const std::string& s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return Status::NotFound("string not in dictionary: " + s);
  return it->second;
}

Result<std::string> Dictionary::Decode(Value id) const {
  if (id < 0 || static_cast<size_t>(id) >= strings_.size()) {
    return Status::OutOfRange("dictionary id " + std::to_string(id));
  }
  return strings_[static_cast<size_t>(id)];
}

}  // namespace storage
}  // namespace lce
