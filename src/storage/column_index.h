// Oracle acceleration indexes over a Database (see DESIGN.md §8).
//
// Two structures, both built lazily on first use and shared by every
// executor over the same Database:
//
//   SortedColumnIndex — one column's values in ascending order plus the row
//     id each value came from. A range predicate [lo, hi] becomes two binary
//     searches yielding a contiguous run of candidate rows, so selective
//     filters touch O(selected) rows instead of O(rows).
//
//   JoinKeyIndex — the distinct join-key values across both endpoint columns
//     of one join edge, remapped to contiguous uint32 ids, with per-row id
//     arrays for each endpoint. Join messages then become flat
//     std::vector<double> accumulators indexed by dense id instead of
//     per-query unordered_maps (no hashing, no rehash churn).
//
// Staleness: every index remembers the owning table's version at build time
// and is rebuilt transparently after appends (experiment R10's drift path).
// Accessors are serialized by a mutex; returned references stay valid until
// the underlying table data changes, which is already required to be
// quiescent while queries run.

#ifndef LCE_STORAGE_COLUMN_INDEX_H_
#define LCE_STORAGE_COLUMN_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/storage/types.h"

namespace lce {
namespace storage {

class Database;

/// Sorted view of one column: `values` ascending, `rows[i]` = the row id
/// `values[i]` came from.
struct SortedColumnIndex {
  std::vector<Value> values;
  std::vector<uint32_t> rows;
  uint64_t built_version = 0;

  /// Positions [first, last) of values in [lo, hi]; last - first is the
  /// exact number of rows satisfying the predicate.
  std::pair<uint64_t, uint64_t> EqualRange(Value lo, Value hi) const;
};

/// Dense remapping of one join edge's key domain. Ids cover the union of
/// distinct values on both endpoint columns, so every row on either side has
/// a valid id and equal values map to equal ids across sides.
struct JoinKeyIndex {
  uint32_t domain = 0;             // number of distinct key values
  std::vector<uint32_t> left_ids;  // per-row dense id, left endpoint column
  std::vector<uint32_t> right_ids; // per-row dense id, right endpoint column
  /// Rows per dense id on each side (exact integer counts stored as double).
  /// An unfiltered leaf table's join message IS its side's histogram, so the
  /// executor serves those messages from here without touching any row.
  std::vector<double> left_counts;
  std::vector<double> right_counts;
  uint64_t built_version_left = 0;
  uint64_t built_version_right = 0;
};

/// Lazily-built index collection for one Database. Thread-safe: concurrent
/// labeling workers share one instance (see Database::index()).
class DatabaseIndex {
 public:
  /// `db` must outlive the index.
  explicit DatabaseIndex(const Database* db);

  /// The sorted index of (table, column), building or rebuilding it if the
  /// table changed since the last build.
  const SortedColumnIndex& Column(int table, int column) const;

  /// The dense join-key index of schema join edge `edge`.
  const JoinKeyIndex& Edge(int edge) const;

  /// Eagerly builds every index a labeling run can touch — the sorted
  /// indexes of all non-key columns (key columns never carry predicates or
  /// quantile lookups) and, when `include_edges`, all join-key remaps —
  /// across the thread pool. Lazy first-touch builds serialize behind the
  /// index mutex inside query loops; call this once per database up front.
  void Prebuild(bool include_edges) const;

  /// Approximate footprint of all built indexes.
  uint64_t SizeBytes() const;

 private:
  const Database* db_;
  mutable std::mutex mu_;
  mutable std::vector<std::vector<std::unique_ptr<SortedColumnIndex>>> columns_;
  mutable std::vector<std::unique_ptr<JoinKeyIndex>> edges_;
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_COLUMN_INDEX_H_
