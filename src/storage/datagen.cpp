#include "src/storage/datagen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lce {
namespace storage {
namespace datagen {

namespace {

// Deterministic mixing of a base value into [0, domain): drives correlated
// columns. Multiplicative hashing keeps the induced joint distribution far
// from independence while remaining uniform-ish in the marginal.
Value Mix(Value base, uint64_t domain, uint64_t salt) {
  uint64_t h = static_cast<uint64_t>(base) * 2654435761ULL + salt * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<Value>(h % domain);
}

struct GenContext {
  // Row counts of already-generated tables, for FK domains.
  std::unordered_map<std::string, uint64_t> table_rows;
};

std::vector<std::vector<Value>> GenerateColumns(const TableGenSpec& spec,
                                                uint64_t rows,
                                                const GenContext& ctx,
                                                double theta_delta,
                                                double domain_shift_frac,
                                                Rng* rng) {
  std::vector<std::vector<Value>> cols(spec.columns.size());
  std::unordered_map<std::string, int> col_index;
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    col_index[spec.columns[c].name] = static_cast<int>(c);
  }

  for (size_t c = 0; c < spec.columns.size(); ++c) {
    const ColumnGenSpec& cs = spec.columns[c];
    cols[c].resize(rows);

    if (cs.is_key) {
      for (uint64_t r = 0; r < rows; ++r) cols[c][r] = static_cast<Value>(r);
      continue;
    }
    if (cs.monotone_of_key) {
      LCE_CHECK_MSG(cs.domain >= 1, "monotone column needs domain >= 1");
      for (uint64_t r = 0; r < rows; ++r) {
        cols[c][r] = static_cast<Value>(r * cs.domain / std::max<uint64_t>(rows, 1));
      }
      continue;
    }

    uint64_t domain = cs.domain;
    std::string ref = cs.ref_table;
    if (!ref.empty()) {
      auto it = ctx.table_rows.find(ref);
      LCE_CHECK_MSG(it != ctx.table_rows.end(),
                    "FK column " << cs.name << " references table " << ref
                                 << " that is not generated yet");
      domain = it->second;
    }
    LCE_CHECK_MSG(domain >= 1, "column " << cs.name << " needs domain >= 1");

    double theta = std::max(0.0, cs.zipf_theta + theta_delta);
    ZipfSampler zipf(domain, theta);
    Value shift = static_cast<Value>(domain_shift_frac * static_cast<double>(domain));

    const std::vector<Value>* base = nullptr;
    uint64_t salt = c + 1;
    if (!cs.correlate_with.empty()) {
      auto it = col_index.find(cs.correlate_with);
      LCE_CHECK_MSG(it != col_index.end() &&
                        static_cast<size_t>(it->second) < c,
                    "column " << cs.name << " must correlate with an earlier "
                              << "column in the same table");
      base = &cols[it->second];
    }

    for (uint64_t r = 0; r < rows; ++r) {
      Value v;
      if (base != nullptr && rng->Bernoulli(cs.correlation)) {
        v = Mix((*base)[r], domain, salt);
      } else {
        v = static_cast<Value>(zipf.Sample(rng));
      }
      // Drift shifts plain attributes, not FKs (referential integrity).
      if (ref.empty()) v += shift;
      cols[c][r] = v;
    }
  }
  return cols;
}

uint64_t Scaled(double scale, uint64_t rows) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(scale * static_cast<double>(rows)));
}

}  // namespace

std::unique_ptr<Database> Generate(const DatabaseGenSpec& spec, uint64_t seed) {
  DatabaseSchema schema;
  schema.name = spec.name;
  for (const auto& ts : spec.tables) {
    TableSchema t;
    t.name = ts.name;
    for (const auto& cs : ts.columns) {
      t.columns.push_back({cs.name, cs.is_key});
    }
    schema.tables.push_back(std::move(t));
  }
  schema.joins = spec.joins;

  auto db = std::make_unique<Database>(std::move(schema));
  Rng rng(seed);
  GenContext ctx;
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    Rng table_rng = rng.Fork();
    auto cols = GenerateColumns(spec.tables[t], spec.tables[t].rows, ctx,
                                /*theta_delta=*/0.0, /*domain_shift_frac=*/0.0,
                                &table_rng);
    db->table(static_cast<int>(t)).AppendColumns(cols);
    ctx.table_rows[spec.tables[t].name] = spec.tables[t].rows;
  }
  db->FinalizeAll();
  return db;
}

void AppendShifted(Database* db, const DatabaseGenSpec& spec, double fraction,
                   double theta_delta, double domain_shift_frac,
                   uint64_t seed) {
  LCE_CHECK(fraction >= 0);
  Rng rng(seed ^ 0xdead5eedULL);
  GenContext ctx;
  // FK domains must cover the *existing* referenced tables.
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    ctx.table_rows[spec.tables[t].name] = db->table(static_cast<int>(t)).num_rows();
  }
  for (size_t t = 0; t < spec.tables.size(); ++t) {
    uint64_t add = static_cast<uint64_t>(fraction * static_cast<double>(spec.tables[t].rows));
    if (add == 0) continue;
    Rng table_rng = rng.Fork();
    TableGenSpec shifted = spec.tables[t];
    // New keys continue after the existing range so PKs stay unique.
    uint64_t key_offset = db->table(static_cast<int>(t)).num_rows();
    auto cols = GenerateColumns(shifted, add, ctx, theta_delta,
                                domain_shift_frac, &table_rng);
    for (size_t c = 0; c < shifted.columns.size(); ++c) {
      if (shifted.columns[c].is_key) {
        for (auto& v : cols[c]) v += static_cast<Value>(key_offset);
      }
    }
    db->table(static_cast<int>(t)).AppendColumns(cols);
  }
  db->FinalizeAll();
}

DatabaseGenSpec DmvLikeSpec(double scale) {
  DatabaseGenSpec spec;
  spec.name = "dmv";
  TableGenSpec t;
  t.name = "dmv";
  t.rows = Scaled(scale, 60000);
  t.columns = {
      {.name = "record_type", .domain = 4, .zipf_theta = 0.8},
      {.name = "reg_class", .domain = 60, .zipf_theta = 1.1,
       .correlate_with = "record_type", .correlation = 0.7},
      {.name = "state", .domain = 56, .zipf_theta = 1.6},
      {.name = "county", .domain = 62, .zipf_theta = 0.9,
       .correlate_with = "state", .correlation = 0.85},
      {.name = "body_type", .domain = 35, .zipf_theta = 1.2,
       .correlate_with = "reg_class", .correlation = 0.6},
      {.name = "fuel_type", .domain = 9, .zipf_theta = 1.4,
       .correlate_with = "body_type", .correlation = 0.5},
      {.name = "model_year", .domain = 120, .zipf_theta = 0.6},
      {.name = "color", .domain = 20, .zipf_theta = 0.7},
      {.name = "scofflaw", .domain = 2, .zipf_theta = 1.8},
      {.name = "suspended", .domain = 2, .zipf_theta = 1.9,
       .correlate_with = "scofflaw", .correlation = 0.4},
      {.name = "revoked", .domain = 2, .zipf_theta = 2.0,
       .correlate_with = "suspended", .correlation = 0.5},
  };
  spec.tables.push_back(std::move(t));
  return spec;
}

DatabaseGenSpec ImdbLikeSpec(double scale) {
  DatabaseGenSpec spec;
  spec.name = "imdb";
  spec.tables = {
      {.name = "title",
       .rows = Scaled(scale, 30000),
       .columns = {{.name = "id", .is_key = true},
                   {.name = "kind_id", .domain = 7, .zipf_theta = 1.0},
                   {.name = "production_year", .domain = 130, .zipf_theta = 0.8},
                   {.name = "season_nr", .domain = 40, .zipf_theta = 1.5,
                    .correlate_with = "kind_id", .correlation = 0.6},
                   {.name = "episode_nr", .domain = 200, .zipf_theta = 1.3,
                    .correlate_with = "season_nr", .correlation = 0.7}}},
      {.name = "movie_companies",
       .rows = Scaled(scale, 45000),
       .columns = {{.name = "movie_id", .ref_table = "title", .zipf_theta = 0.9},
                   {.name = "company_id", .domain = 2000, .zipf_theta = 1.2},
                   {.name = "company_type_id", .domain = 4, .zipf_theta = 0.7,
                    .correlate_with = "company_id", .correlation = 0.5}}},
      {.name = "movie_info",
       .rows = Scaled(scale, 60000),
       .columns = {{.name = "movie_id", .ref_table = "title", .zipf_theta = 1.1},
                   {.name = "info_type_id", .domain = 110, .zipf_theta = 1.0}}},
      {.name = "movie_keyword",
       .rows = Scaled(scale, 50000),
       .columns = {{.name = "movie_id", .ref_table = "title", .zipf_theta = 1.3},
                   {.name = "keyword_id", .domain = 5000, .zipf_theta = 1.5}}},
      {.name = "cast_info",
       .rows = Scaled(scale, 70000),
       .columns = {{.name = "movie_id", .ref_table = "title", .zipf_theta = 0.8},
                   {.name = "person_id", .domain = 20000, .zipf_theta = 1.1},
                   {.name = "role_id", .domain = 11, .zipf_theta = 1.0}}},
      {.name = "movie_info_idx",
       .rows = Scaled(scale, 25000),
       .columns = {{.name = "movie_id", .ref_table = "title", .zipf_theta = 1.0},
                   {.name = "info_type_id", .domain = 5, .zipf_theta = 0.8}}},
  };
  spec.joins = {
      {"title", "id", "movie_companies", "movie_id"},
      {"title", "id", "movie_info", "movie_id"},
      {"title", "id", "movie_keyword", "movie_id"},
      {"title", "id", "cast_info", "movie_id"},
      {"title", "id", "movie_info_idx", "movie_id"},
  };
  return spec;
}

DatabaseGenSpec TpchLikeSpec(double scale) {
  DatabaseGenSpec spec;
  spec.name = "tpch";
  spec.tables = {
      {.name = "customer",
       .rows = Scaled(scale, 10000),
       .columns = {{.name = "c_custkey", .is_key = true},
                   {.name = "c_nationkey", .domain = 25, .zipf_theta = 0.4},
                   {.name = "c_mktsegment", .domain = 5, .zipf_theta = 0.2},
                   {.name = "c_acctbal", .domain = 10000, .zipf_theta = 0.0}}},
      {.name = "part",
       .rows = Scaled(scale, 8000),
       .columns = {{.name = "p_partkey", .is_key = true},
                   {.name = "p_brand", .domain = 25, .zipf_theta = 0.3},
                   {.name = "p_size", .domain = 50, .zipf_theta = 0.5},
                   {.name = "p_container", .domain = 40, .zipf_theta = 0.4,
                    .correlate_with = "p_size", .correlation = 0.5}}},
      {.name = "supplier",
       .rows = Scaled(scale, 1000),
       .columns = {{.name = "s_suppkey", .is_key = true},
                   {.name = "s_nationkey", .domain = 25, .zipf_theta = 0.4}}},
      {.name = "orders",
       .rows = Scaled(scale, 30000),
       .columns = {{.name = "o_orderkey", .is_key = true},
                   {.name = "o_custkey", .ref_table = "customer", .zipf_theta = 0.7},
                   {.name = "o_orderstatus", .domain = 3, .zipf_theta = 1.0},
                   {.name = "o_orderdate", .domain = 2400, .zipf_theta = 0.1},
                   {.name = "o_orderpriority", .domain = 5, .zipf_theta = 0.3}}},
      {.name = "lineitem",
       .rows = Scaled(scale, 80000),
       .columns = {{.name = "l_orderkey", .ref_table = "orders", .zipf_theta = 0.5},
                   {.name = "l_partkey", .ref_table = "part", .zipf_theta = 0.6},
                   {.name = "l_suppkey", .ref_table = "supplier", .zipf_theta = 0.6},
                   {.name = "l_quantity", .domain = 50, .zipf_theta = 0.0},
                   {.name = "l_discount", .domain = 11, .zipf_theta = 0.5},
                   {.name = "l_shipdate", .domain = 2500, .zipf_theta = 0.1,
                    .correlate_with = "l_quantity", .correlation = 0.2}}},
  };
  spec.joins = {
      {"customer", "c_custkey", "orders", "o_custkey"},
      {"orders", "o_orderkey", "lineitem", "l_orderkey"},
      {"part", "p_partkey", "lineitem", "l_partkey"},
      {"supplier", "s_suppkey", "lineitem", "l_suppkey"},
  };
  return spec;
}

DatabaseGenSpec StatsLikeSpec(double scale) {
  DatabaseGenSpec spec;
  spec.name = "stats";
  spec.tables = {
      {.name = "users",
       .rows = Scaled(scale, 15000),
       .columns = {{.name = "u_id", .is_key = true},
                   {.name = "u_reputation", .domain = 5000, .zipf_theta = 1.6},
                   {.name = "u_upvotes", .domain = 3000, .zipf_theta = 1.7,
                    .correlate_with = "u_reputation", .correlation = 0.8},
                   {.name = "u_creation_year", .domain = 15, .zipf_theta = 0.5}}},
      {.name = "posts",
       .rows = Scaled(scale, 40000),
       .columns = {{.name = "p_id", .is_key = true},
                   {.name = "p_owner_user_id", .ref_table = "users", .zipf_theta = 1.4},
                   {.name = "p_score", .domain = 300, .zipf_theta = 1.5},
                   {.name = "p_view_count", .domain = 8000, .zipf_theta = 1.6,
                    .correlate_with = "p_score", .correlation = 0.75},
                   {.name = "p_answer_count", .domain = 40, .zipf_theta = 1.3,
                    .correlate_with = "p_score", .correlation = 0.5}}},
      {.name = "comments",
       .rows = Scaled(scale, 60000),
       .columns = {{.name = "c_post_id", .ref_table = "posts", .zipf_theta = 1.2},
                   {.name = "c_user_id", .ref_table = "users", .zipf_theta = 1.5},
                   {.name = "c_score", .domain = 100, .zipf_theta = 1.8}}},
      {.name = "badges",
       .rows = Scaled(scale, 25000),
       .columns = {{.name = "b_user_id", .ref_table = "users", .zipf_theta = 1.3},
                   {.name = "b_class", .domain = 3, .zipf_theta = 1.1}}},
      {.name = "votes",
       .rows = Scaled(scale, 70000),
       .columns = {{.name = "v_post_id", .ref_table = "posts", .zipf_theta = 1.4},
                   {.name = "v_vote_type", .domain = 15, .zipf_theta = 1.6}}},
  };
  spec.joins = {
      {"users", "u_id", "posts", "p_owner_user_id"},
      {"posts", "p_id", "comments", "c_post_id"},
      {"users", "u_id", "badges", "b_user_id"},
      {"posts", "p_id", "votes", "v_post_id"},
  };
  return spec;
}

DatabaseGenSpec SyntheticPairSpec(uint64_t rows, uint64_t domain, double theta,
                                  double correlation) {
  DatabaseGenSpec spec;
  spec.name = "synthetic";
  TableGenSpec t;
  t.name = "synthetic";
  t.rows = rows;
  t.columns = {
      {.name = "a", .domain = domain, .zipf_theta = theta},
      {.name = "b", .domain = domain, .zipf_theta = theta,
       .correlate_with = "a", .correlation = correlation},
  };
  spec.tables.push_back(std::move(t));
  return spec;
}

std::vector<DatabaseGenSpec> AllStudyDatabases(double scale) {
  return {DmvLikeSpec(scale), ImdbLikeSpec(scale), TpchLikeSpec(scale),
          StatsLikeSpec(scale)};
}

}  // namespace datagen
}  // namespace storage
}  // namespace lce
