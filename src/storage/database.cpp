#include "src/storage/database.h"

#include <queue>

#include "src/storage/column_index.h"
#include "src/util/logging.h"

namespace lce {
namespace storage {

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  LCE_CHECK_MSG(!schema_.tables.empty(), "database needs at least one table");
  for (const auto& ts : schema_.tables) {
    tables_.push_back(std::make_unique<Table>(ts));
  }
  for (const auto& j : schema_.joins) {
    LCE_CHECK_MSG(schema_.TableIndex(j.left_table) >= 0,
                  "join references unknown table " << j.left_table);
    LCE_CHECK_MSG(schema_.TableIndex(j.right_table) >= 0,
                  "join references unknown table " << j.right_table);
  }
}

Database::~Database() = default;

const DatabaseIndex& Database::index() const {
  std::call_once(index_once_,
                 [this] { index_ = std::make_unique<DatabaseIndex>(this); });
  return *index_;
}

Table& Database::table(int index) {
  LCE_CHECK(index >= 0 && index < num_tables());
  return *tables_[index];
}

const Table& Database::table(int index) const {
  LCE_CHECK(index >= 0 && index < num_tables());
  return *tables_[index];
}

Result<Table*> Database::FindTable(const std::string& name) {
  int idx = schema_.TableIndex(name);
  if (idx < 0) return Status::NotFound("table " + name);
  return tables_[idx].get();
}

Result<const Table*> Database::FindTable(const std::string& name) const {
  int idx = schema_.TableIndex(name);
  if (idx < 0) return Status::NotFound("table " + name);
  return static_cast<const Table*>(tables_[idx].get());
}

void Database::FinalizeAll() {
  for (auto& t : tables_) t->Finalize();
}

std::vector<int> Database::IncidentJoins(int table_index) const {
  std::vector<int> out;
  const std::string& name = schema_.tables[table_index].name;
  for (size_t j = 0; j < schema_.joins.size(); ++j) {
    if (schema_.joins[j].left_table == name ||
        schema_.joins[j].right_table == name) {
      out.push_back(static_cast<int>(j));
    }
  }
  return out;
}

int Database::JoinBetween(int table_a, int table_b) const {
  const std::string& a = schema_.tables[table_a].name;
  const std::string& b = schema_.tables[table_b].name;
  for (size_t j = 0; j < schema_.joins.size(); ++j) {
    const JoinEdge& e = schema_.joins[j];
    if ((e.left_table == a && e.right_table == b) ||
        (e.left_table == b && e.right_table == a)) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

bool Database::IsConnected(const std::vector<int>& table_indexes) const {
  if (table_indexes.empty()) return false;
  if (table_indexes.size() == 1) return true;
  std::vector<bool> in_set(num_tables(), false);
  for (int t : table_indexes) in_set[t] = true;
  std::vector<bool> visited(num_tables(), false);
  std::queue<int> frontier;
  frontier.push(table_indexes[0]);
  visited[table_indexes[0]] = true;
  size_t reached = 1;
  while (!frontier.empty()) {
    int cur = frontier.front();
    frontier.pop();
    for (int t : table_indexes) {
      if (!visited[t] && JoinBetween(cur, t) >= 0) {
        visited[t] = true;
        ++reached;
        frontier.push(t);
      }
    }
  }
  return reached == table_indexes.size();
}

uint64_t Database::SizeBytes() const {
  uint64_t total = 0;
  for (const auto& t : tables_) total += t->SizeBytes();
  return total;
}

}  // namespace storage
}  // namespace lce
