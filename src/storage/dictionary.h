// Dictionary encoding of string attributes.
//
// The study's protocol encodes string-typed attributes into numeric ids; this
// class provides the bidirectional mapping. Ids are assigned densely in
// insertion order so dictionary-encoded columns have compact domains.

#ifndef LCE_STORAGE_DICTIONARY_H_
#define LCE_STORAGE_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/types.h"
#include "src/util/status.h"

namespace lce {
namespace storage {

class Dictionary {
 public:
  /// Returns the id for `s`, inserting it if new.
  Value Encode(const std::string& s);

  /// Id for `s` without inserting; NotFound if absent.
  Result<Value> Lookup(const std::string& s) const;

  /// String for an id; OutOfRange if the id was never assigned.
  Result<std::string> Decode(Value id) const;

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Value> ids_;
  std::vector<std::string> strings_;
};

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_DICTIONARY_H_
