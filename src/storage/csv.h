// CSV import/export for tables.
//
// Lets users load their own data: numeric cells are parsed as int64, any
// non-numeric cell is dictionary-encoded (one shared Dictionary per load, as
// in the study's preprocessing of string attributes).

#ifndef LCE_STORAGE_CSV_H_
#define LCE_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "src/storage/dictionary.h"
#include "src/storage/table.h"
#include "src/util/status.h"

namespace lce {
namespace storage {

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool has_header = true;
  /// Column names (by exact match) treated as primary keys.
  std::vector<std::string> key_columns;
};

/// Parses a CSV stream into a finalized Table named `table_name`. String
/// cells are encoded through `dict` (which the caller keeps to decode
/// results). Fails on ragged rows or an empty input.
Result<Table> ReadCsv(std::istream* in, const std::string& table_name,
                      const CsvOptions& options, Dictionary* dict);

/// File-path convenience wrapper.
Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options, Dictionary* dict);

/// Writes the table (numeric form) with a header row.
Status WriteCsv(const Table& table, std::ostream* out,
                const CsvOptions& options = {});

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace storage
}  // namespace lce

#endif  // LCE_STORAGE_CSV_H_
