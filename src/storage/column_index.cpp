#include "src/storage/column_index.h"

#include <algorithm>

#include "src/storage/database.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace lce {
namespace storage {

namespace {

std::unique_ptr<SortedColumnIndex> BuildColumnIndex(const Table& t,
                                                    int column) {
  auto index = std::make_unique<SortedColumnIndex>();
  const std::vector<Value>& col = t.column(column);
  index->rows.resize(col.size());
  for (uint64_t r = 0; r < col.size(); ++r) {
    index->rows[r] = static_cast<uint32_t>(r);
  }
  // Ties broken by row id so the built index is a deterministic function of
  // the column contents.
  std::sort(index->rows.begin(), index->rows.end(),
            [&col](uint32_t a, uint32_t b) {
              return col[a] != col[b] ? col[a] < col[b] : a < b;
            });
  index->values.resize(col.size());
  for (uint64_t i = 0; i < col.size(); ++i) {
    index->values[i] = col[index->rows[i]];
  }
  index->built_version = t.version();
  return index;
}

std::unique_ptr<JoinKeyIndex> BuildEdgeIndex(const std::vector<Value>& lcol,
                                             const std::vector<Value>& rcol,
                                             uint64_t left_version,
                                             uint64_t right_version) {
  // Dictionary over the union of both sides, so a key present on either side
  // has an id and equal values agree across sides.
  std::vector<Value> dict;
  dict.reserve(lcol.size() + rcol.size());
  dict.insert(dict.end(), lcol.begin(), lcol.end());
  dict.insert(dict.end(), rcol.begin(), rcol.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

  auto index = std::make_unique<JoinKeyIndex>();
  index->domain = static_cast<uint32_t>(dict.size());
  auto remap = [&dict](const std::vector<Value>& col,
                       std::vector<uint32_t>* ids) {
    ids->resize(col.size());
    for (uint64_t r = 0; r < col.size(); ++r) {
      (*ids)[r] = static_cast<uint32_t>(
          std::lower_bound(dict.begin(), dict.end(), col[r]) - dict.begin());
    }
  };
  remap(lcol, &index->left_ids);
  remap(rcol, &index->right_ids);
  index->left_counts.assign(index->domain, 0.0);
  for (uint32_t id : index->left_ids) index->left_counts[id] += 1.0;
  index->right_counts.assign(index->domain, 0.0);
  for (uint32_t id : index->right_ids) index->right_counts[id] += 1.0;
  index->built_version_left = left_version;
  index->built_version_right = right_version;
  return index;
}

}  // namespace

std::pair<uint64_t, uint64_t> SortedColumnIndex::EqualRange(Value lo,
                                                            Value hi) const {
  auto first = std::lower_bound(values.begin(), values.end(), lo);
  auto last = std::upper_bound(first, values.end(), hi);
  return {static_cast<uint64_t>(first - values.begin()),
          static_cast<uint64_t>(last - values.begin())};
}

DatabaseIndex::DatabaseIndex(const Database* db) : db_(db) {
  columns_.resize(db_->num_tables());
  for (int t = 0; t < db_->num_tables(); ++t) {
    columns_[t].resize(db_->table(t).num_columns());
  }
  edges_.resize(db_->schema().joins.size());
}

const SortedColumnIndex& DatabaseIndex::Column(int table, int column) const {
  const Table& t = db_->table(table);
  LCE_CHECK(column >= 0 && column < t.num_columns());
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<SortedColumnIndex>& slot = columns_[table][column];
    if (slot != nullptr && slot->built_version == t.version()) return *slot;
  }
  // Built outside the lock so Prebuild() can construct many indexes across
  // the pool. Concurrent duplicate builds are value-identical; the first
  // installed copy wins, so references already handed out stay valid.
  std::unique_ptr<SortedColumnIndex> index = BuildColumnIndex(t, column);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<SortedColumnIndex>& slot = columns_[table][column];
  if (slot == nullptr || slot->built_version != t.version()) {
    slot = std::move(index);
  }
  return *slot;
}

const JoinKeyIndex& DatabaseIndex::Edge(int edge) const {
  const DatabaseSchema& schema = db_->schema();
  LCE_CHECK(edge >= 0 && edge < static_cast<int>(schema.joins.size()));
  const JoinEdge& je = schema.joins[edge];
  int lt = schema.TableIndex(je.left_table);
  int rt = schema.TableIndex(je.right_table);
  const Table& left = db_->table(lt);
  const Table& right = db_->table(rt);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<JoinKeyIndex>& slot = edges_[edge];
    if (slot != nullptr && slot->built_version_left == left.version() &&
        slot->built_version_right == right.version()) {
      return *slot;
    }
  }
  int lc = schema.tables[lt].ColumnIndex(je.left_column);
  int rc = schema.tables[rt].ColumnIndex(je.right_column);
  LCE_CHECK(lc >= 0 && rc >= 0);
  std::unique_ptr<JoinKeyIndex> index = BuildEdgeIndex(
      left.column(lc), right.column(rc), left.version(), right.version());
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<JoinKeyIndex>& slot = edges_[edge];
  if (slot == nullptr || slot->built_version_left != left.version() ||
      slot->built_version_right != right.version()) {
    slot = std::move(index);
  }
  return *slot;
}

void DatabaseIndex::Prebuild(bool include_edges) const {
  const DatabaseSchema& schema = db_->schema();
  struct Item {
    int table;
    int column;
    int edge;  // >= 0: a join edge; otherwise a (table, column) pair
  };
  std::vector<Item> items;
  for (int t = 0; t < db_->num_tables(); ++t) {
    const TableSchema& ts = schema.tables[t];
    for (size_t c = 0; c < ts.columns.size(); ++c) {
      if (ts.columns[c].is_key) continue;
      items.push_back({t, static_cast<int>(c), -1});
    }
  }
  if (include_edges) {
    for (size_t e = 0; e < schema.joins.size(); ++e) {
      items.push_back({-1, -1, static_cast<int>(e)});
    }
  }
  parallel::ParallelFor(
      0, static_cast<int64_t>(items.size()), 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          const Item& item = items[static_cast<size_t>(i)];
          if (item.edge >= 0) {
            Edge(item.edge);
          } else {
            Column(item.table, item.column);
          }
        }
      });
}

uint64_t DatabaseIndex::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& per_table : columns_) {
    for (const auto& c : per_table) {
      if (c == nullptr) continue;
      total += c->values.size() * sizeof(Value) +
               c->rows.size() * sizeof(uint32_t);
    }
  }
  for (const auto& e : edges_) {
    if (e == nullptr) continue;
    total += (e->left_ids.size() + e->right_ids.size()) * sizeof(uint32_t) +
             (e->left_counts.size() + e->right_counts.size()) * sizeof(double);
  }
  return total;
}

}  // namespace storage
}  // namespace lce
