// SQL parser for the supported query class.
//
// Accepts the dialect this library emits (query::ToSql) plus common range
// spellings, so users can feed workloads as text:
//
//   SELECT COUNT(*) FROM t1, t2
//   WHERE t1.k = t2.fk AND t1.a BETWEEN 3 AND 17 AND t2.b = 5
//     AND t2.c >= 10 AND t2.c < 42;
//
// Join conditions must match a declared PK–FK edge of the database schema;
// open-ended comparisons are closed using column min/max statistics.

#ifndef LCE_QUERY_PARSER_H_
#define LCE_QUERY_PARSER_H_

#include <string>

#include "src/query/query.h"

namespace lce {
namespace query {

/// Parses one SQL statement into a validated Query. Errors carry a short
/// explanation ("unknown table x", "no join edge between a.k and b.fk", ...).
///
/// Safe on untrusted input (the serving front end feeds it raw request
/// strings): truncated statements, unknown identifiers, out-of-range integer
/// literals, byte soup, and over-long inputs (statement size, FROM list, and
/// WHERE term caps) all return InvalidArgument — never a throw or a crash.
Result<Query> ParseSql(const std::string& sql, const storage::Database& db);

}  // namespace query
}  // namespace lce

#endif  // LCE_QUERY_PARSER_H_
