#include "src/query/parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>

namespace lce {
namespace query {

namespace {

// The service front end feeds this parser untrusted strings, so every
// resource it consumes is capped: total input bytes, FROM-list entries, and
// WHERE terms. The caps are far above anything ToSql emits for a real
// schema; hitting one is always hostile or corrupt input.
constexpr size_t kMaxSqlBytes = 64 * 1024;
constexpr size_t kMaxFromTables = 1024;
constexpr size_t kMaxWhereTerms = 4096;

struct Token {
  // kBadNumber: a numeric literal that does not fit in int64 — surfaced as
  // a parse error instead of the std::stoll throw that used to crash here.
  enum class Kind { kIdent, kNumber, kSymbol, kBadNumber, kEnd } kind =
      Kind::kEnd;
  std::string text;   // identifiers uppercased for keyword checks? no: raw
  int64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Token Next() {
    while (pos_ < input_.size() && std::isspace(
               static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return Token{Token::Kind::kEnd, "", 0};
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::Kind::kIdent, input_.substr(start, pos_ - start), 0};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      Token t{Token::Kind::kNumber, input_.substr(start, pos_ - start), 0};
      const char* first = t.text.data();
      const char* last = first + t.text.size();
      auto [ptr, ec] = std::from_chars(first, last, t.number);
      if (ec != std::errc() || ptr != last) t.kind = Token::Kind::kBadNumber;
      return t;
    }
    // Multi-char comparison operators.
    if ((c == '<' || c == '>') && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] == '=') {
      pos_ += 2;
      return Token{Token::Kind::kSymbol, std::string(1, c) + "=", 0};
    }
    ++pos_;
    return Token{Token::Kind::kSymbol, std::string(1, c), 0};
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(
                        static_cast<unsigned char>(c)));
  return s;
}

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == Token::Kind::kIdent && Upper(t.text) == kw;
}

struct ColumnSite {
  int table = -1;
  int column = -1;
};

}  // namespace

Result<Query> ParseSql(const std::string& sql, const storage::Database& db) {
  if (sql.size() > kMaxSqlBytes) {
    return Status::InvalidArgument("statement exceeds " +
                                   std::to_string(kMaxSqlBytes) + " bytes");
  }
  const storage::DatabaseSchema& schema = db.schema();
  Lexer lexer(sql);
  Token tok = lexer.Next();

  // Out-of-range integer literals are lexed as kBadNumber and rejected
  // wherever a number is expected.
  auto number_error = [&](const std::string& context) -> Status {
    if (tok.kind == Token::Kind::kBadNumber) {
      return Status::InvalidArgument("integer literal out of range near '" +
                                     tok.text + "'");
    }
    return Status::InvalidArgument("expected number " + context + " near '" +
                                   tok.text + "'");
  };

  auto expect_keyword = [&](const char* kw) -> Status {
    if (!IsKeyword(tok, kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near '" + tok.text + "'");
    }
    tok = lexer.Next();
    return Status::OK();
  };
  auto expect_symbol = [&](const char* sym) -> Status {
    if (tok.kind != Token::Kind::kSymbol || tok.text != sym) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + tok.text + "'");
    }
    tok = lexer.Next();
    return Status::OK();
  };

  // SELECT COUNT ( * ) FROM
  if (Status s = expect_keyword("SELECT"); !s.ok()) return s;
  if (Status s = expect_keyword("COUNT"); !s.ok()) return s;
  if (Status s = expect_symbol("("); !s.ok()) return s;
  if (Status s = expect_symbol("*"); !s.ok()) return s;
  if (Status s = expect_symbol(")"); !s.ok()) return s;
  if (Status s = expect_keyword("FROM"); !s.ok()) return s;

  Query q;
  // Table list.
  for (;;) {
    if (tok.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected table name near '" + tok.text +
                                     "'");
    }
    int t = schema.TableIndex(tok.text);
    if (t < 0) return Status::InvalidArgument("unknown table " + tok.text);
    if (q.tables.size() >= kMaxFromTables) {
      return Status::InvalidArgument("FROM list exceeds " +
                                     std::to_string(kMaxFromTables) +
                                     " tables");
    }
    q.tables.push_back(t);
    tok = lexer.Next();
    if (tok.kind == Token::Kind::kSymbol && tok.text == ",") {
      tok = lexer.Next();
      continue;
    }
    break;
  }
  std::sort(q.tables.begin(), q.tables.end());
  q.tables.erase(std::unique(q.tables.begin(), q.tables.end()),
                 q.tables.end());

  // Column reference: table . column
  auto parse_column = [&]() -> Result<ColumnSite> {
    if (tok.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected column reference near '" +
                                     tok.text + "'");
    }
    std::string table_name = tok.text;
    tok = lexer.Next();
    if (Status s = expect_symbol("."); !s.ok()) return s;
    if (tok.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected column name after '" +
                                     table_name + ".'");
    }
    ColumnSite site;
    site.table = schema.TableIndex(table_name);
    if (site.table < 0) {
      return Status::InvalidArgument("unknown table " + table_name);
    }
    site.column = schema.tables[site.table].ColumnIndex(tok.text);
    if (site.column < 0) {
      return Status::InvalidArgument("unknown column " + table_name + "." +
                                     tok.text);
    }
    tok = lexer.Next();
    return site;
  };

  // Merges a half-open or closed constraint into per-column ranges.
  std::map<std::pair<int, int>, std::pair<storage::Value, storage::Value>>
      ranges;
  auto constrain = [&](const ColumnSite& site, storage::Value lo,
                       storage::Value hi) {
    const storage::ColumnStats& stats =
        db.table(site.table).stats(site.column);
    auto key = std::make_pair(site.table, site.column);
    auto it = ranges.find(key);
    if (it == ranges.end()) {
      ranges[key] = {std::max(lo, stats.min), std::min(hi, stats.max)};
    } else {
      it->second.first = std::max(it->second.first, lo);
      it->second.second = std::min(it->second.second, hi);
    }
  };

  if (IsKeyword(tok, "WHERE")) {
    tok = lexer.Next();
    size_t where_terms = 0;
    for (;;) {
      if (++where_terms > kMaxWhereTerms) {
        return Status::InvalidArgument("WHERE clause exceeds " +
                                       std::to_string(kMaxWhereTerms) +
                                       " terms");
      }
      Result<ColumnSite> left = parse_column();
      if (!left.ok()) return left.status();

      if (tok.kind == Token::Kind::kSymbol && tok.text == "=") {
        tok = lexer.Next();
        if (tok.kind == Token::Kind::kNumber) {
          constrain(left.value(), tok.number, tok.number);
          tok = lexer.Next();
        } else if (tok.kind == Token::Kind::kBadNumber) {
          return number_error("after '='");
        } else {
          // Join condition: col = col. Must match a declared edge.
          Result<ColumnSite> right = parse_column();
          if (!right.ok()) return right.status();
          int edge = -1;
          for (size_t j = 0; j < schema.joins.size(); ++j) {
            const storage::JoinEdge& e = schema.joins[j];
            int lt = schema.TableIndex(e.left_table);
            int rt = schema.TableIndex(e.right_table);
            int lc = schema.tables[lt].ColumnIndex(e.left_column);
            int rc = schema.tables[rt].ColumnIndex(e.right_column);
            bool forward = lt == left.value().table &&
                           lc == left.value().column &&
                           rt == right.value().table &&
                           rc == right.value().column;
            bool backward = rt == left.value().table &&
                            rc == left.value().column &&
                            lt == right.value().table &&
                            lc == right.value().column;
            if (forward || backward) {
              edge = static_cast<int>(j);
              break;
            }
          }
          if (edge < 0) {
            return Status::InvalidArgument(
                "no declared join edge matches the join condition");
          }
          q.join_edges.push_back(edge);
        }
      } else if (IsKeyword(tok, "BETWEEN")) {
        tok = lexer.Next();
        if (tok.kind != Token::Kind::kNumber) {
          return number_error("after BETWEEN");
        }
        storage::Value lo = tok.number;
        tok = lexer.Next();
        if (Status s = expect_keyword("AND"); !s.ok()) return s;
        if (tok.kind != Token::Kind::kNumber) {
          return number_error("after AND");
        }
        constrain(left.value(), lo, tok.number);
        tok = lexer.Next();
      } else if (tok.kind == Token::Kind::kSymbol &&
                 (tok.text == "<" || tok.text == "<=" || tok.text == ">" ||
                  tok.text == ">=")) {
        std::string op = tok.text;
        tok = lexer.Next();
        if (tok.kind != Token::Kind::kNumber) {
          return number_error("after '" + op + "'");
        }
        storage::Value v = tok.number;
        // Strict bounds at the int64 edge saturate instead of overflowing;
        // the range then collapses against the column stats and reports as
        // contradictory, which is the right answer for "< INT64_MIN".
        if (op == "<") {
          constrain(left.value(), storage::kValueMin,
                    v == storage::kValueMin ? v : v - 1);
        } else if (op == "<=") {
          constrain(left.value(), storage::kValueMin, v);
        } else if (op == ">") {
          constrain(left.value(), v == storage::kValueMax ? v : v + 1,
                    storage::kValueMax);
        } else {
          constrain(left.value(), v, storage::kValueMax);
        }
        tok = lexer.Next();
      } else {
        return Status::InvalidArgument("expected comparison near '" +
                                       tok.text + "'");
      }

      if (IsKeyword(tok, "AND")) {
        tok = lexer.Next();
        continue;
      }
      break;
    }
  }

  if (tok.kind == Token::Kind::kSymbol && tok.text == ";") tok = lexer.Next();
  if (tok.kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing input near '" + tok.text + "'");
  }

  // Deduplicate join edges and materialize predicates.
  std::sort(q.join_edges.begin(), q.join_edges.end());
  q.join_edges.erase(std::unique(q.join_edges.begin(), q.join_edges.end()),
                     q.join_edges.end());
  for (const auto& [key, range] : ranges) {
    if (range.first > range.second) {
      return Status::InvalidArgument("contradictory constraints on a column");
    }
    Predicate p;
    p.col = {key.first, key.second};
    p.lo = range.first;
    p.hi = range.second;
    q.predicates.push_back(p);
  }

  if (Status s = Validate(q, db); !s.ok()) return s;
  return q;
}

}  // namespace query
}  // namespace lce
