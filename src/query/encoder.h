// Query featurization for the learned estimators.
//
// Three encodings from the query-driven CE literature:
//  * Flat: [table one-hots | join one-hots | (lo, hi) per global column],
//    consumed by Linear / FCN / FCN+Pool (Dutt et al.'s range featurization).
//  * MSCN sets: {table tokens with sample bitmaps}, {join tokens},
//    {predicate tokens} (Kipf et al.).
//  * Sequence: one token per table/join/predicate item, consumed by the
//    RNN / LSTM estimators (Ortiz et al.).
//
// The encoder snapshots column statistics (for [0,1] range normalization) and
// per-table row samples (for MSCN bitmaps) at construction; estimators keep
// their snapshot when the underlying data drifts, exactly like a deployed
// model whose featurizer was fit at training time.

#ifndef LCE_QUERY_ENCODER_H_
#define LCE_QUERY_ENCODER_H_

#include <cstdint>
#include <vector>

#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace query {

/// The three MSCN input sets for one query. Empty sets are represented by a
/// single all-zero token so set pooling stays well-defined.
struct MscnSets {
  std::vector<std::vector<float>> tables;
  std::vector<std::vector<float>> joins;
  std::vector<std::vector<float>> predicates;
};

/// Variant knob for the encoding-ablation experiment (R12).
enum class FlatVariant {
  kFull,       // table one-hots + join one-hots + normalized ranges
  kRangeOnly,  // normalized ranges only (no structural context)
  kCoarse,     // full layout but ranges quantized to 10 bins
};

class QueryEncoder {
 public:
  struct Options {
    int mscn_sample_size = 64;  // bitmap width per table
  };

  QueryEncoder(const storage::Database* db, Options options, uint64_t seed);

  // -- Flat encoding ---------------------------------------------------------
  int flat_dim() const { return num_tables_ + num_joins_ + 2 * num_columns_; }
  std::vector<float> FlatEncode(const Query& q,
                                FlatVariant variant = FlatVariant::kFull) const;
  int flat_dim_for(FlatVariant variant) const;

  // -- MSCN set encoding -----------------------------------------------------
  int mscn_table_dim() const { return num_tables_ + options_.mscn_sample_size; }
  int mscn_join_dim() const { return std::max(num_joins_, 1); }
  int mscn_pred_dim() const { return num_columns_ + 2; }
  MscnSets MscnEncode(const Query& q) const;

  // -- Sequence encoding -----------------------------------------------------
  int seq_token_dim() const {
    return num_tables_ + num_joins_ + num_columns_ + 2;
  }
  std::vector<std::vector<float>> SequenceEncode(const Query& q) const;

  // -- Label transform -------------------------------------------------------
  /// log(1 + product of all table row counts): the normalizer that maps
  /// log-cardinalities into [0, 1] for sigmoid-output models.
  double max_log_card() const { return max_log_card_; }
  float NormalizeLog(double cardinality) const;
  double DenormalizeLog(float y) const;

  const storage::DatabaseSchema& schema() const { return *schema_; }

 private:
  struct ColumnRange {
    storage::Value min = 0;
    storage::Value max = 0;
  };

  float NormalizeValue(int global_col, storage::Value v) const;

  const storage::DatabaseSchema* schema_;
  const storage::Database* db_;
  Options options_;
  int num_tables_;
  int num_joins_;
  int num_columns_;
  std::vector<int> col_offset_;                // per table: first global column
  std::vector<ColumnRange> ranges_;            // per global column
  std::vector<std::vector<uint64_t>> samples_; // per table: sampled row ids
  double max_log_card_;
};

}  // namespace query
}  // namespace lce

#endif  // LCE_QUERY_ENCODER_H_
