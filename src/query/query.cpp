#include "src/query/query.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace lce {
namespace query {

std::string ToSql(const Query& q, const storage::DatabaseSchema& schema) {
  std::ostringstream oss;
  oss << "SELECT COUNT(*) FROM ";
  for (size_t i = 0; i < q.tables.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << schema.tables[q.tables[i]].name;
  }
  bool first = true;
  auto conj = [&]() -> std::ostream& {
    oss << (first ? " WHERE " : " AND ");
    first = false;
    return oss;
  };
  for (int j : q.join_edges) {
    const storage::JoinEdge& e = schema.joins[j];
    conj() << e.left_table << "." << e.left_column << " = " << e.right_table
           << "." << e.right_column;
  }
  for (const Predicate& p : q.predicates) {
    const auto& t = schema.tables[p.col.table];
    const std::string col = t.name + "." + t.columns[p.col.column].name;
    if (p.lo == p.hi) {
      conj() << col << " = " << p.lo;
    } else {
      conj() << col << " BETWEEN " << p.lo << " AND " << p.hi;
    }
  }
  oss << ";";
  return oss.str();
}

Status Validate(const Query& q, const storage::Database& db) {
  const storage::DatabaseSchema& schema = db.schema();
  if (q.tables.empty()) return Status::InvalidArgument("query has no tables");
  for (size_t i = 0; i < q.tables.size(); ++i) {
    if (q.tables[i] < 0 || q.tables[i] >= db.num_tables()) {
      return Status::InvalidArgument("table index out of range");
    }
    if (i > 0 && q.tables[i] <= q.tables[i - 1]) {
      return Status::InvalidArgument("tables must be sorted and unique");
    }
  }
  if (q.join_edges.size() != q.tables.size() - 1) {
    return Status::InvalidArgument("join edges must form a spanning tree");
  }
  for (int j : q.join_edges) {
    if (j < 0 || j >= static_cast<int>(schema.joins.size())) {
      return Status::InvalidArgument("join edge index out of range");
    }
    const storage::JoinEdge& e = schema.joins[j];
    int lt = schema.TableIndex(e.left_table);
    int rt = schema.TableIndex(e.right_table);
    if (!q.UsesTable(lt) || !q.UsesTable(rt)) {
      return Status::InvalidArgument("join edge touches a table not in query");
    }
  }
  if (!db.IsConnected(q.tables)) {
    return Status::InvalidArgument("query tables are not join-connected");
  }
  for (const Predicate& p : q.predicates) {
    if (!q.UsesTable(p.col.table)) {
      return Status::InvalidArgument("predicate on table not in query");
    }
    const auto& tschema = schema.tables[p.col.table];
    if (p.col.column < 0 ||
        p.col.column >= static_cast<int>(tschema.columns.size())) {
      return Status::InvalidArgument("predicate column out of range");
    }
    if (p.lo > p.hi) {
      return Status::InvalidArgument("predicate lo > hi");
    }
  }
  return Status::OK();
}

Query Restrict(const Query& q, const std::vector<int>& tables,
               const storage::DatabaseSchema& schema) {
  Query sub;
  sub.tables = tables;
  std::sort(sub.tables.begin(), sub.tables.end());
  auto in_subset = [&](int t) {
    return std::find(sub.tables.begin(), sub.tables.end(), t) !=
           sub.tables.end();
  };
  for (int e : q.join_edges) {
    const storage::JoinEdge& je = schema.joins[e];
    if (in_subset(schema.TableIndex(je.left_table)) &&
        in_subset(schema.TableIndex(je.right_table))) {
      sub.join_edges.push_back(e);
    }
  }
  for (const Predicate& p : q.predicates) {
    if (in_subset(p.col.table)) sub.predicates.push_back(p);
  }
  return sub;
}

std::string JoinTemplateKey(const Query& q) {
  std::vector<int> edges = q.join_edges;
  std::sort(edges.begin(), edges.end());
  std::ostringstream oss;
  oss << "t";
  for (int t : q.tables) oss << "_" << t;
  oss << ":j";
  for (int e : edges) oss << "_" << e;
  return oss.str();
}

}  // namespace query
}  // namespace lce
