// Query intermediate representation.
//
// The study targets the SPJ class every query-driven CE model supports:
// conjunctive equi-join queries with per-attribute range predicates. A Query
// is a connected set of tables, a spanning set of join edges, and inclusive
// range predicates [lo, hi] on non-key attributes.

#ifndef LCE_QUERY_QUERY_H_
#define LCE_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "src/storage/database.h"
#include "src/storage/types.h"

namespace lce {
namespace query {

/// A (table, column) reference; both are indexes into the DatabaseSchema.
struct ColumnRef {
  int table = 0;
  int column = 0;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
};

/// Inclusive range predicate `lo <= col <= hi`.
struct Predicate {
  ColumnRef col;
  storage::Value lo = 0;
  storage::Value hi = 0;
};

/// An SPJ query. `tables` is sorted ascending; `join_edges` index into
/// DatabaseSchema::joins and form a spanning tree over `tables`.
struct Query {
  std::vector<int> tables;
  std::vector<int> join_edges;
  std::vector<Predicate> predicates;

  int num_joins() const { return static_cast<int>(join_edges.size()); }

  bool UsesTable(int table_index) const {
    for (int t : tables) {
      if (t == table_index) return true;
    }
    return false;
  }
};

/// A query paired with its ground-truth cardinality (training/test example).
struct LabeledQuery {
  Query q;
  double cardinality = 0;
};

/// Renders the query as SQL text (SELECT COUNT(*) ... ) for logs and examples.
std::string ToSql(const Query& q, const storage::DatabaseSchema& schema);

/// Validates structural invariants: tables sorted & unique, join edges connect
/// only used tables and span them, predicates reference used non-key columns
/// with lo <= hi.
Status Validate(const Query& q, const storage::Database& db);

/// A canonical string key for the query's join template (sorted edge ids),
/// used by the generalization experiment (R8) to split seen/unseen templates.
std::string JoinTemplateKey(const Query& q);

/// The query restricted to a subset of its tables: keeps the predicates on
/// those tables and the induced join edges. `tables` must be a connected
/// subset of q.tables (as produced by the planner).
Query Restrict(const Query& q, const std::vector<int>& tables,
               const storage::DatabaseSchema& schema);

}  // namespace query
}  // namespace lce

#endif  // LCE_QUERY_QUERY_H_
