#include "src/query/encoder.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lce {
namespace query {

QueryEncoder::QueryEncoder(const storage::Database* db, Options options,
                           uint64_t seed)
    : schema_(&db->schema()),
      db_(db),
      options_(options),
      num_tables_(db->num_tables()),
      num_joins_(static_cast<int>(schema_->joins.size())),
      num_columns_(schema_->TotalColumns()) {
  LCE_CHECK(options_.mscn_sample_size >= 1);
  Rng rng(seed ^ 0xe2c0deULL);
  int offset = 0;
  double log_prod = 0;
  for (int t = 0; t < num_tables_; ++t) {
    col_offset_.push_back(offset);
    const storage::Table& table = db->table(t);
    LCE_CHECK_MSG(table.finalized(), "encoder needs finalized tables");
    for (int c = 0; c < table.num_columns(); ++c) {
      ranges_.push_back({table.stats(c).min, table.stats(c).max});
    }
    offset += table.num_columns();
    log_prod += std::log(static_cast<double>(table.num_rows()) + 1.0);
    // Reservoir-free sampling: rows are in no particular order, so uniform
    // index draws suffice for the MSCN bitmap sample.
    std::vector<uint64_t> sample;
    uint64_t n = table.num_rows();
    for (int s = 0; s < options_.mscn_sample_size && n > 0; ++s) {
      sample.push_back(static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
    }
    samples_.push_back(std::move(sample));
  }
  max_log_card_ = std::max(log_prod, 1.0);
}

float QueryEncoder::NormalizeValue(int global_col, storage::Value v) const {
  const ColumnRange& r = ranges_[global_col];
  if (r.max <= r.min) return 0.5f;
  double x = static_cast<double>(v - r.min) /
             static_cast<double>(r.max - r.min);
  return static_cast<float>(std::clamp(x, 0.0, 1.0));
}

int QueryEncoder::flat_dim_for(FlatVariant variant) const {
  switch (variant) {
    case FlatVariant::kFull:
    case FlatVariant::kCoarse:
      return flat_dim();
    case FlatVariant::kRangeOnly:
      return 2 * num_columns_;
  }
  return flat_dim();
}

std::vector<float> QueryEncoder::FlatEncode(const Query& q,
                                            FlatVariant variant) const {
  bool structural = variant != FlatVariant::kRangeOnly;
  std::vector<float> out(flat_dim_for(variant), 0.0f);
  int range_base = structural ? num_tables_ + num_joins_ : 0;
  // Default range for every column: [0, 1] (unconstrained).
  for (int c = 0; c < num_columns_; ++c) {
    out[range_base + 2 * c] = 0.0f;
    out[range_base + 2 * c + 1] = 1.0f;
  }
  if (structural) {
    for (int t : q.tables) out[t] = 1.0f;
    for (int j : q.join_edges) out[num_tables_ + j] = 1.0f;
  }
  for (const Predicate& p : q.predicates) {
    int gc = col_offset_[p.col.table] + p.col.column;
    float lo = NormalizeValue(gc, p.lo);
    float hi = NormalizeValue(gc, p.hi);
    if (variant == FlatVariant::kCoarse) {
      lo = std::floor(lo * 10.0f) / 10.0f;
      hi = std::ceil(hi * 10.0f) / 10.0f;
    }
    out[range_base + 2 * gc] = lo;
    out[range_base + 2 * gc + 1] = hi;
  }
  return out;
}

MscnSets QueryEncoder::MscnEncode(const Query& q) const {
  MscnSets sets;
  for (int t : q.tables) {
    std::vector<float> token(mscn_table_dim(), 0.0f);
    token[t] = 1.0f;
    // Bitmap: 1 when the sampled row satisfies every predicate on table t.
    const storage::Table& table = db_->table(t);
    for (size_t s = 0; s < samples_[t].size(); ++s) {
      uint64_t row = samples_[t][s];
      if (row >= table.num_rows()) continue;  // defensive vs. truncation
      bool pass = true;
      for (const Predicate& p : q.predicates) {
        if (p.col.table != t) continue;
        storage::Value v = table.column(p.col.column)[row];
        if (v < p.lo || v > p.hi) {
          pass = false;
          break;
        }
      }
      if (pass) token[num_tables_ + static_cast<int>(s)] = 1.0f;
    }
    sets.tables.push_back(std::move(token));
  }
  for (int j : q.join_edges) {
    std::vector<float> token(mscn_join_dim(), 0.0f);
    token[j] = 1.0f;
    sets.joins.push_back(std::move(token));
  }
  if (sets.joins.empty()) {
    sets.joins.push_back(std::vector<float>(mscn_join_dim(), 0.0f));
  }
  for (const Predicate& p : q.predicates) {
    std::vector<float> token(mscn_pred_dim(), 0.0f);
    int gc = col_offset_[p.col.table] + p.col.column;
    token[gc] = 1.0f;
    token[num_columns_] = NormalizeValue(gc, p.lo);
    token[num_columns_ + 1] = NormalizeValue(gc, p.hi);
    sets.predicates.push_back(std::move(token));
  }
  if (sets.predicates.empty()) {
    sets.predicates.push_back(std::vector<float>(mscn_pred_dim(), 0.0f));
  }
  return sets;
}

std::vector<std::vector<float>> QueryEncoder::SequenceEncode(
    const Query& q) const {
  // Token layout: [tables | joins | columns | lo, hi].
  int dim = seq_token_dim();
  int join_base = num_tables_;
  int col_base = num_tables_ + num_joins_;
  int range_base = col_base + num_columns_;
  std::vector<std::vector<float>> seq;
  for (int t : q.tables) {
    std::vector<float> token(dim, 0.0f);
    token[t] = 1.0f;
    seq.push_back(std::move(token));
  }
  for (int j : q.join_edges) {
    std::vector<float> token(dim, 0.0f);
    token[join_base + j] = 1.0f;
    seq.push_back(std::move(token));
  }
  for (const Predicate& p : q.predicates) {
    std::vector<float> token(dim, 0.0f);
    int gc = col_offset_[p.col.table] + p.col.column;
    token[col_base + gc] = 1.0f;
    token[range_base] = NormalizeValue(gc, p.lo);
    token[range_base + 1] = NormalizeValue(gc, p.hi);
    seq.push_back(std::move(token));
  }
  return seq;
}

float QueryEncoder::NormalizeLog(double cardinality) const {
  double c = std::max(cardinality, 1.0);
  return static_cast<float>(std::log(c) / max_log_card_);
}

double QueryEncoder::DenormalizeLog(float y) const {
  double log_card = static_cast<double>(y) * max_log_card_;
  return std::max(1.0, std::exp(log_card));
}

}  // namespace query
}  // namespace lce
