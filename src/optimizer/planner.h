// Cost-based join-order optimization (DPsize over connected subsets).
//
// The planner enumerates all connected sub-plans of a query's join tree,
// costs them with the configured cost model against a caller-provided
// cardinality source (an estimator or the true-count oracle), and returns the
// cheapest bushy hash-join plan. Replaying a plan under a different
// cardinality source (CostWithCards) is how the end-to-end experiment (R9)
// scores estimate-driven plans by their true cost.

#ifndef LCE_OPTIMIZER_PLANNER_H_
#define LCE_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/optimizer/cost_model.h"
#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace opt {

/// Cardinality source: exact/estimated COUNT(*) of the query restricted to
/// `tables` (a connected subset of the query's tables, with the query's
/// predicates and induced join edges).
using CardFn = std::function<double(const std::vector<int>& tables)>;

/// A node of a (bushy) hash-join plan. Leaves scan one table; inner nodes
/// build a hash table on `left` and probe with `right`.
struct PlanNode {
  uint32_t mask = 0;  // subset of query-table *positions* covered
  int table = -1;     // leaf: database table index
  int left = -1;      // inner: child node ids
  int right = -1;
  bool IsLeaf() const { return table >= 0; }
};

struct Plan {
  std::vector<PlanNode> nodes;
  int root = -1;
  double cost = 0;  // cost under the cardinalities used for planning
};

class Planner {
 public:
  Planner(const storage::Database* db, CostModel cost_model)
      : db_(db), cost_model_(cost_model) {}

  /// Optimal plan for `q` under `card`. Supports up to 20 tables nominally;
  /// exact DP, so keep queries below ~12 tables.
  Plan BestPlan(const query::Query& q, const CardFn& card) const;

  /// Greedy operator ordering (GOO): repeatedly joins the connected pair of
  /// subplans with the smallest estimated output. O(n^3) instead of the DP's
  /// exponential enumeration; the quality gap under misestimates is the
  /// planner-ablation experiment (R15).
  Plan GreedyPlan(const query::Query& q, const CardFn& card) const;

  /// Total cost of a fixed plan re-costed under a different cardinality
  /// source (e.g. true counts). Scan inputs use current table row counts.
  double CostWithCards(const query::Query& q, const Plan& plan,
                       const CardFn& card) const;

  /// Render a plan as a nested join expression for logs/examples.
  std::string ToString(const query::Query& q, const Plan& plan) const;

 private:
  std::vector<int> MaskToTables(const query::Query& q, uint32_t mask) const;

  const storage::Database* db_;
  CostModel cost_model_;
};

}  // namespace opt
}  // namespace lce

#endif  // LCE_OPTIMIZER_PLANNER_H_
