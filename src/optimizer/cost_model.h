// Cost model for hash-join plans.
//
// A C_out-flavoured model with explicit build/probe terms: scans pay per
// input tuple, each hash join pays to build on its left input, probe with its
// right input, and emit its output. Costs are deterministic functions of
// (intermediate) cardinalities, so replaying a fixed plan under *true*
// cardinalities yields a noise-free end-to-end latency proxy (DESIGN.md,
// substitution table).

#ifndef LCE_OPTIMIZER_COST_MODEL_H_
#define LCE_OPTIMIZER_COST_MODEL_H_

namespace lce {
namespace opt {

struct CostModel {
  double scan_per_tuple = 0.2;
  double build_per_tuple = 1.0;
  double probe_per_tuple = 1.0;
  double output_per_tuple = 0.3;

  double ScanCost(double input_rows) const {
    return scan_per_tuple * input_rows;
  }
  double JoinCost(double build_rows, double probe_rows,
                  double output_rows) const {
    return build_per_tuple * build_rows + probe_per_tuple * probe_rows +
           output_per_tuple * output_rows;
  }
};

}  // namespace opt
}  // namespace lce

#endif  // LCE_OPTIMIZER_COST_MODEL_H_
