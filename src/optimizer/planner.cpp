#include "src/optimizer/planner.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "src/util/logging.h"

namespace lce {
namespace opt {

namespace {

// Adjacency between query-table positions induced by the query's join edges.
std::vector<uint32_t> PositionAdjacency(const query::Query& q,
                                        const storage::DatabaseSchema& schema) {
  int k = static_cast<int>(q.tables.size());
  auto position_of = [&](int table) {
    for (int i = 0; i < k; ++i) {
      if (q.tables[i] == table) return i;
    }
    return -1;
  };
  std::vector<uint32_t> adj(k, 0);
  for (int e : q.join_edges) {
    const storage::JoinEdge& je = schema.joins[e];
    int a = position_of(schema.TableIndex(je.left_table));
    int b = position_of(schema.TableIndex(je.right_table));
    LCE_CHECK(a >= 0 && b >= 0);
    adj[a] |= (1u << b);
    adj[b] |= (1u << a);
  }
  return adj;
}

bool IsConnectedMask(uint32_t mask, const std::vector<uint32_t>& adj) {
  if (mask == 0) return false;
  uint32_t start = mask & (~mask + 1);  // lowest set bit
  uint32_t visited = start;
  uint32_t frontier = start;
  while (frontier != 0) {
    uint32_t next = 0;
    uint32_t f = frontier;
    while (f != 0) {
      int pos = __builtin_ctz(f);
      f &= f - 1;
      next |= adj[pos] & mask & ~visited;
    }
    visited |= next;
    frontier = next;
  }
  return visited == mask;
}

bool MasksJoinable(uint32_t a, uint32_t b, const std::vector<uint32_t>& adj) {
  uint32_t x = a;
  while (x != 0) {
    int pos = __builtin_ctz(x);
    x &= x - 1;
    if (adj[pos] & b) return true;
  }
  return false;
}

}  // namespace

std::vector<int> Planner::MaskToTables(const query::Query& q,
                                       uint32_t mask) const {
  std::vector<int> tables;
  uint32_t m = mask;
  while (m != 0) {
    int pos = __builtin_ctz(m);
    m &= m - 1;
    tables.push_back(q.tables[pos]);
  }
  return tables;
}

Plan Planner::BestPlan(const query::Query& q, const CardFn& card) const {
  int k = static_cast<int>(q.tables.size());
  LCE_CHECK_MSG(k >= 1 && k <= 20, "planner supports 1..20 tables");
  std::vector<uint32_t> adj = PositionAdjacency(q, db_->schema());
  uint32_t full = k == 32 ? ~0u : ((1u << k) - 1);

  Plan plan;
  // Per connected mask: cached cardinality, best cost, best node id.
  std::unordered_map<uint32_t, double> cards;
  std::unordered_map<uint32_t, double> best_cost;
  std::unordered_map<uint32_t, int> best_node;
  auto card_of = [&](uint32_t mask) {
    auto it = cards.find(mask);
    if (it != cards.end()) return it->second;
    double c = card(MaskToTables(q, mask));
    cards.emplace(mask, c);
    return c;
  };

  // Leaves.
  for (int i = 0; i < k; ++i) {
    uint32_t mask = 1u << i;
    PlanNode leaf;
    leaf.mask = mask;
    leaf.table = q.tables[i];
    plan.nodes.push_back(leaf);
    double rows = static_cast<double>(db_->table(q.tables[i]).num_rows());
    best_cost[mask] = cost_model_.ScanCost(rows);
    best_node[mask] = static_cast<int>(plan.nodes.size()) - 1;
  }

  // DPsize: grow connected subsets by increasing popcount.
  for (int size = 2; size <= k; ++size) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) != size) continue;
      if (!IsConnectedMask(mask, adj)) continue;
      double best = std::numeric_limits<double>::infinity();
      int best_l = -1, best_r = -1;
      // Enumerate proper sub-masks as the build side.
      for (uint32_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
        uint32_t s2 = mask ^ s1;
        auto it1 = best_cost.find(s1);
        auto it2 = best_cost.find(s2);
        if (it1 == best_cost.end() || it2 == best_cost.end()) continue;
        if (!MasksJoinable(s1, s2, adj)) continue;
        double out_rows = card_of(mask);
        double cost = it1->second + it2->second +
                      cost_model_.JoinCost(card_of(s1), card_of(s2), out_rows);
        if (cost < best) {
          best = cost;
          best_l = best_node[s1];
          best_r = best_node[s2];
        }
      }
      if (best_l < 0) continue;  // disconnected split space (shouldn't happen)
      PlanNode join;
      join.mask = mask;
      join.left = best_l;
      join.right = best_r;
      plan.nodes.push_back(join);
      best_cost[mask] = best;
      best_node[mask] = static_cast<int>(plan.nodes.size()) - 1;
    }
  }

  auto it = best_node.find(full);
  LCE_CHECK_MSG(it != best_node.end(), "no plan found: query not connected?");
  plan.root = it->second;
  plan.cost = best_cost[full];
  return plan;
}

Plan Planner::GreedyPlan(const query::Query& q, const CardFn& card) const {
  int k = static_cast<int>(q.tables.size());
  LCE_CHECK_MSG(k >= 1 && k <= 20, "planner supports 1..20 tables");
  std::vector<uint32_t> adj = PositionAdjacency(q, db_->schema());

  Plan plan;
  std::unordered_map<uint32_t, double> cards;
  auto card_of = [&](uint32_t mask) {
    auto it = cards.find(mask);
    if (it != cards.end()) return it->second;
    double c = card(MaskToTables(q, mask));
    cards.emplace(mask, c);
    return c;
  };

  // Active subplans: node id + accumulated cost, keyed by mask.
  struct Active {
    uint32_t mask;
    int node;
    double cost;
  };
  std::vector<Active> active;
  for (int i = 0; i < k; ++i) {
    PlanNode leaf;
    leaf.mask = 1u << i;
    leaf.table = q.tables[i];
    plan.nodes.push_back(leaf);
    double rows = static_cast<double>(db_->table(q.tables[i]).num_rows());
    active.push_back({leaf.mask, static_cast<int>(plan.nodes.size()) - 1,
                      cost_model_.ScanCost(rows)});
  }

  while (active.size() > 1) {
    double best_out = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 1;
    for (size_t a = 0; a < active.size(); ++a) {
      for (size_t b = a + 1; b < active.size(); ++b) {
        if (!MasksJoinable(active[a].mask, active[b].mask, adj)) continue;
        double out = card_of(active[a].mask | active[b].mask);
        if (out < best_out) {
          best_out = out;
          best_a = a;
          best_b = b;
        }
      }
    }
    LCE_CHECK_MSG(std::isfinite(best_out), "query not connected");
    // Build on the smaller side.
    Active lhs = active[best_a];
    Active rhs = active[best_b];
    if (card_of(rhs.mask) < card_of(lhs.mask)) std::swap(lhs, rhs);
    PlanNode join;
    join.mask = lhs.mask | rhs.mask;
    join.left = lhs.node;
    join.right = rhs.node;
    plan.nodes.push_back(join);
    double cost = lhs.cost + rhs.cost +
                  cost_model_.JoinCost(card_of(lhs.mask), card_of(rhs.mask),
                                       best_out);
    // Replace the two entries by the merged one.
    active.erase(active.begin() + static_cast<long>(best_b));
    active.erase(active.begin() + static_cast<long>(best_a));
    active.push_back({join.mask, static_cast<int>(plan.nodes.size()) - 1,
                      cost});
  }
  plan.root = active[0].node;
  plan.cost = active[0].cost;
  return plan;
}

double Planner::CostWithCards(const query::Query& q, const Plan& plan,
                              const CardFn& card) const {
  std::unordered_map<uint32_t, double> cards;
  auto card_of = [&](uint32_t mask) {
    auto it = cards.find(mask);
    if (it != cards.end()) return it->second;
    double c = card(MaskToTables(q, mask));
    cards.emplace(mask, c);
    return c;
  };
  // Recursive cost of the subtree rooted at `node`.
  std::function<double(int)> cost_of = [&](int node) -> double {
    const PlanNode& n = plan.nodes[node];
    if (n.IsLeaf()) {
      return cost_model_.ScanCost(
          static_cast<double>(db_->table(n.table).num_rows()));
    }
    double left_cost = cost_of(n.left);
    double right_cost = cost_of(n.right);
    return left_cost + right_cost +
           cost_model_.JoinCost(card_of(plan.nodes[n.left].mask),
                                card_of(plan.nodes[n.right].mask),
                                card_of(n.mask));
  };
  return cost_of(plan.root);
}

std::string Planner::ToString(const query::Query& q, const Plan& plan) const {
  (void)q;
  std::function<void(int, std::ostringstream&)> render =
      [&](int node, std::ostringstream& oss) {
        const PlanNode& n = plan.nodes[node];
        if (n.IsLeaf()) {
          oss << db_->schema().tables[n.table].name;
          return;
        }
        oss << "(";
        render(n.left, oss);
        oss << " ⋈ ";
        render(n.right, oss);
        oss << ")";
      };
  std::ostringstream oss;
  render(plan.root, oss);
  return oss.str();
}

}  // namespace opt
}  // namespace lce
