#include "src/serve/model_registry.h"

#include "src/util/logging.h"

namespace lce {
namespace serve {

uint64_t ModelRegistry::Register(const std::string& name,
                                 std::shared_ptr<ce::Estimator> estimator) {
  LCE_CHECK_MSG(estimator != nullptr, "Register(" << name << "): null model");
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Slot>& slot = slots_[name];
  if (slot == nullptr) slot = std::make_unique<Slot>();
  std::shared_ptr<const ModelEntry> prev =
      slot->entry.load(std::memory_order_acquire);
  auto next = std::make_shared<ModelEntry>();
  next->name = name;
  next->version = prev == nullptr ? 1 : prev->version + 1;
  next->estimator = std::move(estimator);
  slot->entry.store(std::move(next), std::memory_order_release);
  return slot->entry.load(std::memory_order_relaxed)->version;
}

std::shared_ptr<const ModelEntry> ModelRegistry::Get(
    const std::string& name) const {
  const Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) return nullptr;
    slot = it->second.get();
  }
  return slot->entry.load(std::memory_order_acquire);
}

std::vector<std::pair<std::string, uint64_t>> ModelRegistry::List() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    std::shared_ptr<const ModelEntry> entry =
        slot->entry.load(std::memory_order_acquire);
    if (entry != nullptr) out.emplace_back(name, entry->version);
  }
  return out;
}

}  // namespace serve
}  // namespace lce
