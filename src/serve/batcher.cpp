#include "src/serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace serve {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

}  // namespace

BatcherOptions BatcherOptions::FromEnv() {
  BatcherOptions o;
  const char* b = std::getenv("LCE_SERVE_BATCH");
  if (b != nullptr && std::string_view(b) == "0") o.enabled = false;
  o.max_batch = std::max(1, EnvInt("LCE_SERVE_MAX_BATCH", o.max_batch));
  o.deadline_us = std::max(0, EnvInt("LCE_SERVE_BATCH_US", o.deadline_us));
  return o;
}

MicroBatcher::MicroBatcher(const BatcherOptions& options, ExecFn exec)
    : options_(options), exec_(std::move(exec)) {
  LCE_CHECK(exec_ != nullptr);
}

MicroBatcher::Ticket MicroBatcher::Submit(const query::Query& q) {
  if (!options_.enabled || options_.max_batch <= 1) {
    // Coalescing off: a batch of one, no queueing.
    std::vector<query::Query> one{q};
    std::vector<double> est;
    Ticket t;
    exec_(one, &est, &t.model_version);
    LCE_CHECK(est.size() == 1);
    t.estimate = est[0];
    auto& reg = telemetry::MetricsRegistry::Global();
    reg.counter("serve.requests").Increment();
    reg.counter("serve.batches").Increment();
    reg.histogram("serve.batch_size").Observe(1.0);
    reg.histogram("serve.queue_wait_us").Observe(0.0);
    return t;
  }

  Request req;
  req.query = &q;
  req.enqueue_ns = telemetry::MonotonicNanos();

  std::unique_lock<std::mutex> lk(mu_);
  ++inflight_;
  window_peak_ = std::max(window_peak_, inflight_);
  queue_.push_back(&req);
  arrival_cv_.notify_one();  // at most the collecting leader is waiting here
  while (!req.done) {
    if (!leader_active_) {
      leader_active_ = true;
      RunLeader(&lk);
      leader_active_ = false;
      done_cv_.notify_all();  // wake this flush's followers + elect next leader
    } else {
      done_cv_.wait(lk);
    }
  }
  --inflight_;
  return req.ticket;
}

void MicroBatcher::RunLeader(std::unique_lock<std::mutex>* lk) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.deadline_us);
  for (;;) {
    // Adaptive flush target: the peak concurrency observed since the last
    // flush was taken. The instantaneous inflight_ is not enough — in steady
    // state the first re-arriving client becomes leader while its siblings
    // still look idle and would flush alone. Nor is the previous flush size:
    // if one flush goes out a straggler short, that size becomes the next
    // target and every flush thereafter strands the slowest resubmitter (a
    // stable one-short orbit that also loses the 4-row kernel panel). The
    // window peak sees the straggler that arrived mid-flush, so the next
    // flush waits for the full cohort. Once the queue reaches the target,
    // waiting can only add latency; when concurrency truly dropped, the
    // window reset below shrinks the target and the deadline caps the wait.
    const int target =
        std::min(options_.max_batch, std::max({1, inflight_, window_peak_}));
    if (static_cast<int>(queue_.size()) >= target) break;
    if (arrival_cv_.wait_until(*lk, deadline) == std::cv_status::timeout) {
      break;
    }
  }

  const int take =
      std::min<int>(static_cast<int>(queue_.size()), options_.max_batch);
  LCE_CHECK(take >= 1);  // the leader's own request is always queued
  // New demand window: everyone still inside Submit() (this batch's members
  // included — their peers will re-arrive before they finish draining) seeds
  // the next peak, so a client that left for good stops inflating it.
  window_peak_ = inflight_;
  std::vector<Request*> batch(queue_.begin(), queue_.begin() + take);
  queue_.erase(queue_.begin(), queue_.begin() + take);

  lk->unlock();
  const int64_t flush_ns = telemetry::MonotonicNanos();
  std::vector<query::Query> queries;
  queries.reserve(batch.size());
  for (const Request* r : batch) queries.push_back(*r->query);
  std::vector<double> estimates;
  uint64_t version = 0;
  exec_(queries, &estimates, &version);
  LCE_CHECK(estimates.size() == queries.size());

  auto& reg = telemetry::MetricsRegistry::Global();
  reg.counter("serve.requests").Add(static_cast<uint64_t>(take));
  reg.counter("serve.batches").Increment();
  reg.histogram("serve.batch_size").Observe(static_cast<double>(take));

  lk->lock();
  for (int i = 0; i < take; ++i) {
    Request* r = batch[static_cast<size_t>(i)];
    r->ticket.estimate = estimates[static_cast<size_t>(i)];
    r->ticket.model_version = version;
    r->ticket.batch_size = take;
    r->ticket.queue_wait_us =
        static_cast<double>(flush_ns - r->enqueue_ns) * 1e-3;
    reg.histogram("serve.queue_wait_us").Observe(r->ticket.queue_wait_us);
    r->done = true;
  }
}

}  // namespace serve
}  // namespace lce
