#include "src/serve/service.h"

#include "src/util/logging.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace serve {

EstimationService::EstimationService(const storage::Database* db,
                                     const BatcherOptions& options)
    : db_(db), options_(options) {
  LCE_CHECK(db_ != nullptr);
}

uint64_t EstimationService::RegisterModel(
    const std::string& name, std::shared_ptr<ce::Estimator> estimator) {
  // Create the runtime slot before publishing the model, so a request that
  // sees the registry entry always finds its batcher.
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<ModelState>& state = states_[name];
    if (state == nullptr) {
      state = std::make_unique<ModelState>();
      state->name = name;
      ModelState* raw = state.get();
      state->batcher = std::make_unique<MicroBatcher>(
          options_, [this, raw](const std::vector<query::Query>& queries,
                                std::vector<double>* estimates,
                                uint64_t* version) {
            // One registry resolve per flush: every request in the batch is
            // answered by the same model build.
            std::shared_ptr<const ModelEntry> entry =
                registry_.Get(raw->name);
            LCE_CHECK_MSG(entry != nullptr,
                          "flush for unregistered model " << raw->name);
            *version = entry->version;
            std::lock_guard<std::mutex> exec_lock(raw->exec_mu);
            *estimates = entry->estimator->EstimateBatch(queries);
          });
    }
  }
  return registry_.Register(name, std::move(estimator));
}

std::vector<std::pair<std::string, uint64_t>> EstimationService::ListModels()
    const {
  return registry_.List();
}

EstimationService::ModelState* EstimationService::FindState(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(model);
  return it == states_.end() ? nullptr : it->second.get();
}

Result<EstimateResponse> EstimationService::EstimateSql(
    const std::string& model, const std::string& sql) {
  Result<query::Query> parsed = query::ParseSql(sql, *db_);
  if (!parsed.ok()) return parsed.status();
  return Estimate(model, parsed.value());
}

Result<EstimateResponse> EstimationService::Estimate(const std::string& model,
                                                     const query::Query& q) {
  ModelState* state = FindState(model);
  if (state == nullptr) {
    return Status::NotFound("no model registered as '" + model + "'");
  }
  MicroBatcher::Ticket ticket = state->batcher->Submit(q);
  telemetry::MetricsRegistry::Global()
      .counter("serve." + model + ".requests")
      .Increment();
  EstimateResponse resp;
  resp.estimate = ticket.estimate;
  resp.model = model;
  resp.model_version = ticket.model_version;
  resp.batch_size = ticket.batch_size;
  resp.queue_wait_us = ticket.queue_wait_us;
  return resp;
}

Result<ExplainResponse> EstimationService::ExplainSql(const std::string& model,
                                                      const std::string& sql) {
  Result<query::Query> parsed = query::ParseSql(sql, *db_);
  if (!parsed.ok()) return parsed.status();
  ModelState* state = FindState(model);
  if (state == nullptr) {
    return Status::NotFound("no model registered as '" + model + "'");
  }
  std::shared_ptr<const ModelEntry> entry = registry_.Get(model);
  LCE_CHECK(entry != nullptr);
  ExplainResponse out;
  {
    std::lock_guard<std::mutex> exec_lock(state->exec_mu);
    out.response.estimate =
        entry->estimator->EstimateWithDiagnostics(parsed.value(), &out.record);
  }
  telemetry::MetricsRegistry::Global()
      .counter("serve." + model + ".explains")
      .Increment();
  out.response.model = model;
  out.response.model_version = entry->version;
  out.response.batch_size = 1;
  return out;
}

}  // namespace serve
}  // namespace lce
