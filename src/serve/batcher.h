// Cross-request micro-batching for the estimation service.
//
// Concurrent clients each submit one query and block for its answer; the
// batcher coalesces whatever is waiting into one EstimateBatch() call so the
// SIMD kernel layer sees N×d matrices instead of N separate 1×d forwards.
// Correctness rests on the kernel bit-identity contract (DESIGN.md §10): a
// batched forward is bit-identical per row to the per-query loop, so
// batching changes latency, never answers.
//
// Leader/follower protocol: the first waiter whose request is undone and
// sees no active leader becomes the leader. The leader collects requests
// until the batch is full, the adaptive target is met, or the deadline
// expires, then executes the flush outside the queue lock, publishes every
// result, and steps down; an unserved waiter promotes itself next. Clients
// must be plain threads — pool tasks must not block on pool tasks, and the
// flush itself fans out on the global pool inside the kernels.
//
// Adaptive target: the leader flushes as soon as the queue reaches the peak
// number of concurrently in-flight requests observed since the previous
// flush was taken, capped at max_batch — so a lone client never waits out
// the deadline, while at a steady concurrency of N the first re-arriving
// client (which would see an instantaneous in-flight count of 1) still
// holds the batch open for its N-1 peers. The peak is the right memory: a
// straggler that arrived mid-flush raises it, so the next flush waits for
// the full cohort instead of locking into a forever-one-short cycle (an
// instantaneous or last-flush-size target sustains that degenerate orbit).
// The window resets at each take, so the target tracks clients leaving
// within one flush; the deadline bounds the wait when concurrency dropped.
//
// Knobs (read by BatcherOptions::FromEnv):
//   LCE_SERVE_BATCH      "0" disables coalescing: every request executes
//                        alone (the bench's batch-off arm). Default on.
//   LCE_SERVE_BATCH_US   flush deadline in microseconds (default 200).
//   LCE_SERVE_MAX_BATCH  max requests per flush (default 64).

#ifndef LCE_SERVE_BATCHER_H_
#define LCE_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "src/query/query.h"

namespace lce {
namespace serve {

struct BatcherOptions {
  bool enabled = true;
  int max_batch = 64;
  int deadline_us = 200;

  /// Reads LCE_SERVE_BATCH / LCE_SERVE_MAX_BATCH / LCE_SERVE_BATCH_US;
  /// unset or unparsable values keep the defaults above.
  static BatcherOptions FromEnv();
};

class MicroBatcher {
 public:
  /// Executes one flush: estimates for `queries` in order, plus the model
  /// version the whole batch was answered by (resolved once per flush, so a
  /// concurrent re-register never splits a batch across versions). Called
  /// with no batcher lock held; the callee serializes model execution.
  using ExecFn = std::function<void(const std::vector<query::Query>& queries,
                                    std::vector<double>* estimates,
                                    uint64_t* version)>;

  /// What one request learns about the flush that answered it.
  struct Ticket {
    double estimate = 0;
    uint64_t model_version = 0;
    int batch_size = 1;        // requests in the flush, including this one
    double queue_wait_us = 0;  // enqueue -> flush start
  };

  MicroBatcher(const BatcherOptions& options, ExecFn exec);

  /// Blocks until a flush answers `q`. Safe to call from many threads; with
  /// batching disabled it executes immediately (batch of one).
  Ticket Submit(const query::Query& q);

 private:
  struct Request {
    const query::Query* query = nullptr;
    int64_t enqueue_ns = 0;
    bool done = false;
    Ticket ticket;
  };

  /// Collects and executes one flush. Entered with `lk` held and
  /// leader_active_ set; returns with `lk` re-held.
  void RunLeader(std::unique_lock<std::mutex>* lk);

  const BatcherOptions options_;
  const ExecFn exec_;

  std::mutex mu_;
  // Split wake channels so an arrival wakes at most the one collecting
  // leader, and a flush wakes followers once — a single condvar would
  // broadcast every waiter on every enqueue (O(n^2) wakes per batch cycle).
  std::condition_variable arrival_cv_;  // signaled once per enqueue
  std::condition_variable done_cv_;     // broadcast after each flush
  std::deque<Request*> queue_;  // requests live on their Submit() stacks
  int inflight_ = 0;            // Submit() calls entered and not returned
  int window_peak_ = 0;         // max inflight_ since the last flush take
  bool leader_active_ = false;
};

}  // namespace serve
}  // namespace lce

#endif  // LCE_SERVE_BATCHER_H_
