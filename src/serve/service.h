// Estimation-as-a-service: a long-running, in-process front end over the
// estimator zoo.
//
// The service accepts SQL strings (parsed and validated by query::ParseSql,
// which is hardened against hostile input), routes them to a named model
// from the ModelRegistry, and answers with the estimate plus the serving
// context (model version, batch size, queue wait). Each model gets its own
// MicroBatcher, so concurrent clients of the same model are coalesced into
// one vectorized EstimateBatch() flush while different models never wait on
// each other.
//
// Estimator execution is serialized per model with an exec mutex: neural
// forward passes reuse activation caches and are not thread-safe
// (Estimator::ThreadSafeEstimate), and the flush already fans out across
// the thread pool inside the kernels — cross-batch concurrency would only
// thrash it. Model versions resolve once per flush, so a Register() swap
// lands between batches, never inside one.

#ifndef LCE_SERVE_SERVICE_H_
#define LCE_SERVE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/ce/estimator.h"
#include "src/ce/explain.h"
#include "src/query/parser.h"
#include "src/serve/batcher.h"
#include "src/serve/model_registry.h"
#include "src/storage/database.h"
#include "src/util/status.h"

namespace lce {
namespace serve {

/// One answered request.
struct EstimateResponse {
  double estimate = 0;
  std::string model;
  uint64_t model_version = 0;
  int batch_size = 1;        // size of the flush that answered this request
  double queue_wait_us = 0;  // time spent coalescing before the flush
};

/// EstimateResponse plus the structured "why" (per-predicate selectivities,
/// fallbacks, model counters). Explain requests bypass the batcher: they
/// run EstimateWithDiagnostics under the model's exec mutex.
struct ExplainResponse {
  EstimateResponse response;
  ce::ExplainRecord record;
};

class EstimationService {
 public:
  /// `db` provides the schema for SQL parsing and must outlive the service.
  /// Batching knobs default to the LCE_SERVE_* environment.
  explicit EstimationService(const storage::Database* db)
      : EstimationService(db, BatcherOptions::FromEnv()) {}
  EstimationService(const storage::Database* db, const BatcherOptions& options);

  /// Publishes `estimator` (already built) as model `name`; re-registering
  /// swaps the model atomically between flushes. Returns the new version.
  uint64_t RegisterModel(const std::string& name,
                         std::shared_ptr<ce::Estimator> estimator);

  /// Sorted (name, version) pairs of every registered model.
  std::vector<std::pair<std::string, uint64_t>> ListModels() const;

  /// Parses `sql` against the service database and estimates it with
  /// `model`. Malformed SQL and unknown models return a Status — never a
  /// crash — making this safe as the untrusted-input entry point. Blocks
  /// until the micro-batcher flushes the request.
  Result<EstimateResponse> EstimateSql(const std::string& model,
                                       const std::string& sql);

  /// EstimateSql for an already-validated query (no parse step).
  Result<EstimateResponse> Estimate(const std::string& model,
                                    const query::Query& q);

  /// Estimate plus diagnostics. Bit-identical to Estimate() on the same
  /// model state but unbatched, so reserve it for debugging traffic.
  Result<ExplainResponse> ExplainSql(const std::string& model,
                                     const std::string& sql);

 private:
  // Per-model runtime state. Stable address once created (unique_ptr in the
  // map); the batcher's exec callback captures the slot pointer.
  struct ModelState {
    std::string name;
    std::mutex exec_mu;  // serializes estimator execution for this model
    std::unique_ptr<MicroBatcher> batcher;
  };

  /// Looks up (never creates) the runtime state for `model`.
  ModelState* FindState(const std::string& model) const;

  const storage::Database* const db_;
  const BatcherOptions options_;
  ModelRegistry registry_;
  mutable std::mutex mu_;  // guards the state map shape
  std::map<std::string, std::unique_ptr<ModelState>> states_;
};

}  // namespace serve
}  // namespace lce

#endif  // LCE_SERVE_SERVICE_H_
