// Named, versioned estimator registry for the estimation service.
//
// A registry slot holds the current build of one named model behind an
// atomic shared_ptr: Register() on an existing name publishes a new
// ModelEntry with a bumped version in one atomic swap, while requests that
// already resolved the previous entry keep estimating against it until their
// batch drains — no reader ever blocks on a writer, and no estimator is
// destroyed while a flush still uses it.
//
// The registry stores models only; per-model runtime state (execution
// serialization, the micro-batcher) lives in serve::EstimationService.

#ifndef LCE_SERVE_MODEL_REGISTRY_H_
#define LCE_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/ce/estimator.h"

namespace lce {
namespace serve {

/// One published build of a model. Immutable after Register(); readers hold
/// it via shared_ptr so a concurrent re-register never invalidates it.
struct ModelEntry {
  std::string name;
  uint64_t version = 0;  // 1 on first Register, +1 per swap
  std::shared_ptr<ce::Estimator> estimator;
};

class ModelRegistry {
 public:
  /// Publishes `estimator` as the current build of `name`, creating the slot
  /// on first use. Returns the new version (1, 2, ...). The estimator must
  /// already be Build()-complete; the registry never trains.
  uint64_t Register(const std::string& name,
                    std::shared_ptr<ce::Estimator> estimator);

  /// Current entry for `name`, or nullptr when the name was never
  /// registered. The returned entry stays valid (and its estimator alive)
  /// for as long as the caller holds the pointer, across any number of
  /// concurrent swaps.
  std::shared_ptr<const ModelEntry> Get(const std::string& name) const;

  /// Sorted (name, current version) pairs of every registered model.
  std::vector<std::pair<std::string, uint64_t>> List() const;

 private:
  // The slot object is heap-stable: the map only ever gains entries, so a
  // Get() that found a slot can load from it after dropping the map mutex.
  struct Slot {
    std::atomic<std::shared_ptr<const ModelEntry>> entry;
  };

  mutable std::mutex mu_;  // guards the map shape, not the entries
  std::map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace serve
}  // namespace lce

#endif  // LCE_SERVE_MODEL_REGISTRY_H_
