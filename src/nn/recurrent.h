// Recurrent sequence encoders: vanilla RNN and LSTM cells.
//
// Query-driven CE models that consume queries as token sequences (RNN, LSTM
// estimators) encode a variable-length sequence into its final hidden state.
// Backward-through-time is implemented for the final-state objective, which
// is all those models need.

#ifndef LCE_NN_RECURRENT_H_
#define LCE_NN_RECURRENT_H_

#include <vector>

#include "src/nn/param.h"

namespace lce {
namespace nn {

/// h_t = tanh(x_t Wx + h_{t-1} Wh + b); returns h_T.
class RnnCell {
 public:
  RnnCell(int in_dim, int hidden_dim, Rng* rng);

  /// `seq` is T x in_dim (T >= 1). Returns 1 x hidden_dim.
  Matrix ForwardSequence(const Matrix& seq);

  /// Inference-only batched forward: encodes every sequence and returns an
  /// N x hidden_dim matrix whose row i is the final hidden state of
  /// `seqs[i]`. Sequences are packed by descending length and advanced
  /// time-major, so each step is one batched matmul over the still-active
  /// rows instead of N GEMVs. Rows never interact inside the kernels (the
  /// ascending-k accumulation contract of matrix.h), so every row is
  /// bit-identical to ForwardSequence on that sequence alone. Leaves the
  /// BPTT caches untouched — do not follow with BackwardSequence.
  Matrix ForwardSequenceBatch(const std::vector<Matrix>& seqs) const;

  /// BPTT from dL/dh_T of the most recent ForwardSequence; accumulates
  /// parameter gradients.
  void BackwardSequence(const Matrix& dh_final);

  std::vector<Param*> Params() { return {&wx_, &wh_, &b_}; }
  int hidden_dim() const { return wh_.value.rows(); }
  size_t NumParams() const {
    return wx_.NumElements() + wh_.NumElements() + b_.NumElements();
  }

 private:
  Param wx_, wh_, b_;
  Matrix seq_;
  std::vector<Matrix> hs_;  // h_1..h_T (post-tanh)
};

/// Standard LSTM with a fused gate projection: [i f g o] = z W + b where
/// z = [x_t, h_{t-1}]. Returns h_T.
class LstmCell {
 public:
  LstmCell(int in_dim, int hidden_dim, Rng* rng);

  Matrix ForwardSequence(const Matrix& seq);

  /// Batched inference; same contract as RnnCell::ForwardSequenceBatch
  /// (bit-identical per row, BPTT caches untouched).
  Matrix ForwardSequenceBatch(const std::vector<Matrix>& seqs) const;

  void BackwardSequence(const Matrix& dh_final);

  std::vector<Param*> Params() { return {&w_, &b_}; }
  int hidden_dim() const { return hidden_dim_; }
  size_t NumParams() const { return w_.NumElements() + b_.NumElements(); }

 private:
  struct StepCache {
    Matrix z;      // 1 x (in+hidden)
    Matrix gates;  // 1 x 4*hidden, post-activation [i f g o]
    Matrix c;      // 1 x hidden, cell state after the step
    Matrix tanh_c; // 1 x hidden
  };

  int in_dim_;
  int hidden_dim_;
  Param w_, b_;
  std::vector<StepCache> cache_;
  std::vector<Matrix> c_prev_;  // cell state before each step
};

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_RECURRENT_H_
