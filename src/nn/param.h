// Trainable parameter: value, accumulated gradient, and Adam moments.

#ifndef LCE_NN_PARAM_H_
#define LCE_NN_PARAM_H_

#include "src/nn/matrix.h"

namespace lce {
namespace nn {

struct Param {
  Matrix value;
  Matrix grad;
  Matrix m;  // Adam first moment
  Matrix v;  // Adam second moment

  explicit Param(Matrix initial)
      : value(std::move(initial)),
        grad(value.rows(), value.cols()),
        m(value.rows(), value.cols()),
        v(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0f); }

  size_t NumElements() const { return value.size(); }
};

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_PARAM_H_
