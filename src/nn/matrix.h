// Dense row-major float matrix: the tensor type of the NN substrate.
//
// The multiply kernels are row-blocked over the global thread pool (see
// src/util/parallel.h): output rows are disjoint and every output element
// accumulates its terms in the same index order as the sequential loop, so
// results are bit-identical at any thread count.

#ifndef LCE_NN_MATRIX_H_
#define LCE_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lce {
namespace nn {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    LCE_CHECK(rows >= 0 && cols >= 0);
  }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0f); }

  /// He-style Gaussian init scaled by 1/sqrt(fan_in).
  static Matrix Randn(int rows, int cols, float scale, Rng* rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = static_cast<float>(rng->Gaussian()) * scale;
    return m;
  }

  /// Builds a 1 x n row from a float vector.
  static Matrix Row(const std::vector<float>& values) {
    Matrix m(1, static_cast<int>(values.size()));
    m.data_ = values;
    return m;
  }

  /// Stacks equal-width rows into an n x w matrix. Returns InvalidArgument
  /// on empty or ragged input (callers that cannot recover use Stack()).
  static Result<Matrix> TryStack(const std::vector<std::vector<float>>& rows);

  /// Stacks equal-width rows into an n x w matrix; aborts on invalid input.
  static Matrix Stack(const std::vector<std::vector<float>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  float* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// In-place element-wise operations.
  void Add(const Matrix& other);
  void Scale(float s);

  /// Returns the single element of a 1x1 matrix.
  float Scalar() const {
    LCE_CHECK(rows_ == 1 && cols_ == 1);
    return data_[0];
  }

  /// One row as a copy.
  std::vector<float> RowVector(int r) const {
    return std::vector<float>(RowPtr(r), RowPtr(r) + cols_);
  }

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

/// C = A * B. The abort-on-mismatch forms are for internally-guaranteed
/// shapes (layer wiring); the Try* forms return InvalidArgument with the
/// same diagnostic for callers that can recover.
Matrix MatMul(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMulTransB(const Matrix& a, const Matrix& b);

/// y = x + broadcast(bias row) for every row of x (in place).
void AddBiasRow(Matrix* x, const Matrix& bias);

/// Column-wise mean: 1 x cols.
Matrix ColMean(const Matrix& x);

/// Concatenates matrices with equal row counts along columns.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_MATRIX_H_
