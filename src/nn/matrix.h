// Dense row-major float matrix: the tensor type of the NN substrate.
//
// Storage is the kernel layer's contract (DESIGN.md §10): every row starts on
// a 64-byte boundary (one cache line, one full SSE/AVX/AVX-512 vector) and
// the leading dimension ld() is cols() rounded up to 16 floats, so the
// vectorized kernels can issue aligned full-width loads with no scalar tail
// handling across rows. The padding floats between cols() and ld() are an
// invariant zero: constructors zero them and every kernel writes only the
// logical region, so flat checksums over RowPtr(r)[0..cols) are stable and
// Add/Scale over whole padded rows cannot leak garbage.
//
// The multiply kernels dispatch on lce::simd::SimdEnabled() (LCE_SIMD,
// default on) between a blocked/vectorized path and the naive reference
// loops. Both paths accumulate every output element's k-terms in the same
// ascending order, so they are bit-identical to each other and at any thread
// count (output rows are disjoint across parallel chunks). LCE_FASTMATH=1
// additionally permits multi-accumulator reductions in the dot-product
// kernels — faster, but no longer bit-identical; see DESIGN.md §10 for the
// exactness contract.

#ifndef LCE_NN_MATRIX_H_
#define LCE_NN_MATRIX_H_

#include <cstddef>
#include <new>
#include <vector>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "src/util/status.h"

namespace lce {
namespace nn {

/// Allocator returning 64-byte-aligned blocks, so row 0 (and via the padded
/// leading dimension every later row) sits on a cache-line boundary.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

using AlignedFloats = std::vector<float, AlignedAllocator<float>>;

/// Element-wise activations; the functions live in activation.h, the enum
/// lives here so the fused matmul epilogue can name it.
enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

class Matrix {
 public:
  /// Floats per 64-byte cache line; ld() is cols() rounded up to this.
  static constexpr int kRowAlignFloats = 16;

  static int PaddedLd(int cols) {
    return (cols + kRowAlignFloats - 1) / kRowAlignFloats * kRowAlignFloats;
  }

  Matrix() : rows_(0), cols_(0), ld_(0) {}
  Matrix(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), ld_(PaddedLd(cols)),
        data_(static_cast<size_t>(rows) * ld_, 0.0f) {
    LCE_CHECK(rows >= 0 && cols >= 0);
    if (fill != 0.0f) Fill(fill);
  }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0f); }

  /// He-style Gaussian init scaled by 1/sqrt(fan_in). Draws one Gaussian per
  /// logical element in row-major order (padding is untouched), so the weight
  /// stream for a given seed is independent of the padded layout.
  static Matrix Randn(int rows, int cols, float scale, Rng* rng) {
    Matrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      float* row = m.RowPtr(r);
      for (int c = 0; c < cols; ++c) {
        row[c] = static_cast<float>(rng->Gaussian()) * scale;
      }
    }
    return m;
  }

  /// Builds a 1 x n row from a float vector.
  static Matrix Row(const std::vector<float>& values) {
    return FromFlat(1, static_cast<int>(values.size()), values);
  }

  /// Builds a rows x cols matrix from rows*cols values in row-major order.
  static Matrix FromFlat(int rows, int cols, const std::vector<float>& flat) {
    LCE_CHECK(flat.size() == static_cast<size_t>(rows) * cols);
    Matrix m(rows, cols);
    for (int r = 0; r < rows; ++r) {
      const float* src = flat.data() + static_cast<size_t>(r) * cols;
      float* dst = m.RowPtr(r);
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    return m;
  }

  /// Stacks equal-width rows into an n x w matrix. Returns InvalidArgument
  /// on empty or ragged input (callers that cannot recover use Stack()).
  static Result<Matrix> TryStack(const std::vector<std::vector<float>>& rows);

  /// Stacks equal-width rows into an n x w matrix; aborts on invalid input.
  static Matrix Stack(const std::vector<std::vector<float>>& rows);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Row stride in floats: cols() rounded up to a 64-byte multiple.
  int ld() const { return ld_; }
  /// Logical element count (excludes padding).
  size_t size() const { return static_cast<size_t>(rows_) * cols_; }
  /// Allocated element count (rows() * ld(), includes padding).
  size_t padded_size() const { return data_.size(); }
  bool empty() const { return size() == 0; }

  float& At(int r, int c) {
    return data_[static_cast<size_t>(r) * ld_ + c];
  }
  float At(int r, int c) const {
    return data_[static_cast<size_t>(r) * ld_ + c];
  }

  float* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * ld_; }
  const float* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * ld_;
  }

  /// The padded backing buffer (rows() * ld() floats, 64-byte aligned).
  /// Padding floats are zero by invariant; writers must keep them so.
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// Fills the logical region; padding stays zero.
  void Fill(float v) {
    for (int r = 0; r < rows_; ++r) {
      float* row = RowPtr(r);
      for (int c = 0; c < cols_; ++c) row[c] = v;
    }
  }

  /// In-place element-wise operations (vectorized over padded rows; the
  /// all-zero padding is add/scale-invariant, so the invariant holds).
  void Add(const Matrix& other);
  void Scale(float s);

  /// Returns the single element of a 1x1 matrix.
  float Scalar() const {
    LCE_CHECK(rows_ == 1 && cols_ == 1);
    return data_[0];
  }

  /// One row as a copy.
  std::vector<float> RowVector(int r) const {
    return std::vector<float>(RowPtr(r), RowPtr(r) + cols_);
  }

  /// All logical elements (row-major, padding excluded) as a copy. Inverse
  /// of FromFlat; for tests and whole-matrix inspection, not hot paths.
  std::vector<float> ToFlat() const {
    std::vector<float> flat;
    flat.reserve(size());
    for (int r = 0; r < rows_; ++r) {
      flat.insert(flat.end(), RowPtr(r), RowPtr(r) + cols_);
    }
    return flat;
  }

 private:
  int rows_;
  int cols_;
  int ld_;
  AlignedFloats data_;
};

/// C = A * B. The abort-on-mismatch forms are for internally-guaranteed
/// shapes (layer wiring); the Try* forms return InvalidArgument with the
/// same diagnostic for callers that can recover.
Matrix MatMul(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
Result<Matrix> TryMatMulTransB(const Matrix& a, const Matrix& b);

/// C = act(A * B + bias): the fused Dense forward. The bias row and the
/// activation are applied in the matmul epilogue while each output row is
/// still cache-hot, instead of two further passes over C. `bias` may be
/// empty (no bias). Bit-identical to MatMul + AddBiasRow + ApplyActivation:
/// per element, all k-terms accumulate first (ascending), then + bias, then
/// the activation — the same operation sequence the unfused calls perform.
Matrix MatMulBiasAct(const Matrix& a, const Matrix& b, const Matrix& bias,
                     Activation act);

/// y = x + broadcast(bias row) for every row of x (in place).
void AddBiasRow(Matrix* x, const Matrix& bias);

/// x = act(x + broadcast(bias row)) in one pass (the fused epilogue for
/// callers that already hold the matmul result, e.g. the RNN cell).
void AddBiasRowActivate(Matrix* x, const Matrix& bias, Activation act);

/// Column-wise mean: 1 x cols.
Matrix ColMean(const Matrix& x);

/// Concatenates matrices with equal row counts along columns.
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_MATRIX_H_
