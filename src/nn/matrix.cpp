#include "src/nn/matrix.h"

#include <algorithm>
#include <sstream>

#include "src/util/parallel.h"

namespace lce {
namespace nn {

namespace {

// Minimum multiply-add operations per parallel chunk; cheaper chunks are not
// worth a task dispatch.
constexpr int64_t kFlopsPerChunk = 1 << 15;

// Rows per chunk for a kernel whose output rows are independent. One lane
// gets a single chunk (the exact sequential loop); multiple lanes get ~4
// chunks per lane for load balance, floored so chunks stay coarse enough.
// Matmul results never depend on the chunking, so the lane-aware grain is
// safe (see the determinism notes on each kernel).
int64_t RowGrain(int64_t total_rows, int64_t flops_per_row) {
  int64_t lanes = parallel::ThreadCount();
  if (lanes <= 1 || total_rows <= 1) return std::max<int64_t>(1, total_rows);
  int64_t by_lanes = (total_rows + 4 * lanes - 1) / (4 * lanes);
  int64_t by_work = kFlopsPerChunk / std::max<int64_t>(1, flops_per_row);
  return std::max<int64_t>(1, std::max(by_lanes, by_work));
}

Status ShapeError(const char* op, const Matrix& a, const Matrix& b) {
  std::ostringstream oss;
  oss << op << " shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  return Status::InvalidArgument(oss.str());
}

// C = A * B over a row block of A. Per output element the k-accumulation
// order matches the sequential kernel, so blocking never changes the result.
Matrix MatMulImpl(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  parallel::ParallelFor(
      0, a.rows(),
      RowGrain(a.rows(), static_cast<int64_t>(a.cols()) * b.cols()),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a.RowPtr(static_cast<int>(i));
          float* crow = c.RowPtr(static_cast<int>(i));
          for (int k = 0; k < a.cols(); ++k) {
            float av = arow[k];
            if (av == 0.0f) continue;
            const float* brow = b.RowPtr(k);
            for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

// C = A^T * B blocked over output rows (columns of A). Inside a block the
// loop stays k-outer like the sequential kernel (streaming rows of A and B),
// and element (i, j) accumulates a(k, i) * b(k, j) in ascending k no matter
// how the i-range is blocked, so output is bit-identical at any thread count.
Matrix MatMulTransAImpl(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  parallel::ParallelFor(
      0, a.cols(),
      RowGrain(a.cols(), static_cast<int64_t>(a.rows()) * b.cols()),
      [&](int64_t i0, int64_t i1) {
        for (int k = 0; k < a.rows(); ++k) {
          const float* arow = a.RowPtr(k);
          const float* brow = b.RowPtr(k);
          for (int64_t i = i0; i < i1; ++i) {
            float av = arow[i];
            if (av == 0.0f) continue;
            float* crow = c.RowPtr(static_cast<int>(i));
            for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

// C = A * B^T over a row block of A; each element is an independent dot.
Matrix MatMulTransBImpl(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  parallel::ParallelFor(
      0, a.rows(),
      RowGrain(a.rows(), static_cast<int64_t>(b.rows()) * a.cols()),
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* arow = a.RowPtr(static_cast<int>(i));
          float* crow = c.RowPtr(static_cast<int>(i));
          for (int j = 0; j < b.rows(); ++j) {
            const float* brow = b.RowPtr(j);
            float dot = 0;
            for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
            crow[j] = dot;
          }
        }
      });
  return c;
}

}  // namespace

Result<Matrix> Matrix::TryStack(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("Matrix::Stack: no rows to stack");
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) {
      std::ostringstream oss;
      oss << "Matrix::Stack: ragged input: row " << r << " has "
          << rows[r].size() << " values, expected " << rows[0].size();
      return Status::InvalidArgument(oss.str());
    }
  }
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(static_cast<int>(r)));
  }
  return m;
}

Matrix Matrix::Stack(const std::vector<std::vector<float>>& rows) {
  Result<Matrix> result = TryStack(rows);
  LCE_CHECK_OK(result.status());
  return std::move(result).value();
}

void Matrix::Add(const Matrix& other) {
  LCE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& v : data_) v *= s;
}

Result<Matrix> TryMatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("MatMul", a, b);
  return MatMulImpl(a, b);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) LCE_CHECK_OK(ShapeError("MatMul", a, b));
  return MatMulImpl(a, b);
}

Result<Matrix> TryMatMulTransA(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) return ShapeError("MatMulTransA", a, b);
  return MatMulTransAImpl(a, b);
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) LCE_CHECK_OK(ShapeError("MatMulTransA", a, b));
  return MatMulTransAImpl(a, b);
}

Result<Matrix> TryMatMulTransB(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) return ShapeError("MatMulTransB", a, b);
  return MatMulTransBImpl(a, b);
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) LCE_CHECK_OK(ShapeError("MatMulTransB", a, b));
  return MatMulTransBImpl(a, b);
}

void AddBiasRow(Matrix* x, const Matrix& bias) {
  LCE_CHECK(bias.rows() == 1 && bias.cols() == x->cols());
  parallel::ParallelFor(
      0, x->rows(), RowGrain(x->rows(), x->cols()),
      [&](int64_t r0, int64_t r1) {
        const float* b = bias.RowPtr(0);
        for (int64_t r = r0; r < r1; ++r) {
          float* row = x->RowPtr(static_cast<int>(r));
          for (int c = 0; c < x->cols(); ++c) row[c] += b[c];
        }
      });
}

Matrix ColMean(const Matrix& x) {
  LCE_CHECK(x.rows() > 0);
  // Sequential on purpose: the row-accumulation order defines the floating
  // point result, and pooling matrices are small.
  Matrix m(1, x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.RowPtr(r);
    for (int c = 0; c < x.cols(); ++c) m.At(0, c) += row[c];
  }
  m.Scale(1.0f / static_cast<float>(x.rows()));
  return m;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  LCE_CHECK(!parts.empty());
  int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    LCE_CHECK(p->rows() == rows);
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    float* orow = out.RowPtr(r);
    int offset = 0;
    for (const Matrix* p : parts) {
      const float* prow = p->RowPtr(r);
      std::copy(prow, prow + p->cols(), orow + offset);
      offset += p->cols();
    }
  }
  return out;
}

}  // namespace nn
}  // namespace lce
