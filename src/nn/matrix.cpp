// Kernel layer for the dense math core (DESIGN.md §10).
//
// Two implementations live side by side and dispatch on
// lce::simd::SimdEnabled() (LCE_SIMD, default on):
//
//   * The vectorized path: 4-row register-blocked panels over a k-blocked
//     (cache-tiled) loop nest with `#pragma omp simd` inner loops on aligned,
//     padded rows, and a fused bias+activation epilogue applied while each
//     output row is still cache-hot.
//   * The naive reference path: the plain triple loops, kept as the
//     correctness oracle for the equivalence tests and A/B benches.
//
// Exactness contract: per output element, both paths accumulate the k-terms
// in the same ascending order into a single accumulator, so they are
// bit-identical on every input — the fast path only reorganizes which
// *independent* elements progress together (rows of a panel, lanes of a
// vector). The one sanctioned exception is LCE_FASTMATH=1, which lets the
// small-batch A*B^T dot kernel use a vectorized multi-accumulator reduction;
// that changes the summation order and is therefore off by default.
//
// Threading: all kernels are row-blocked over the global thread pool; output
// rows are disjoint and per-element accumulation order never depends on the
// chunking, so results are bit-identical at any thread count.

#include "src/nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/nn/activation.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/trace.h"

#define LCE_RESTRICT __restrict__

namespace lce {
namespace nn {

namespace {

// Minimum multiply-add operations per parallel chunk; cheaper chunks are not
// worth a task dispatch.
constexpr int64_t kFlopsPerChunk = 1 << 15;

// k-tile for the blocked MatMul: a tile of B (kKc x N floats) is streamed
// against each 4-row panel of A, so it stays resident in L2 while the panel's
// C rows stay in L1. Per output element the k-accumulation order is still
// globally ascending (tiles are visited in order with a single accumulator).
constexpr int kKc = 128;

// A*B^T calls with at least this many A rows transpose B once into a padded
// scratch matrix and reuse the blocked MatMul kernel; below it (e.g. the
// batch-1 backward passes) the packing traffic would rival the compute, so a
// 4-way-unrolled dot kernel runs directly on the unpacked rows.
constexpr int kPackMinRows = 8;

// Rows per chunk for a kernel whose output rows are independent. One lane
// gets a single chunk (the exact sequential loop); multiple lanes get ~4
// chunks per lane for load balance, floored so chunks stay coarse enough.
// Matmul results never depend on the chunking, so the lane-aware grain is
// safe (see the determinism notes on each kernel).
int64_t RowGrain(int64_t total_rows, int64_t flops_per_row) {
  int64_t lanes = parallel::ThreadCount();
  if (lanes <= 1 || total_rows <= 1) return std::max<int64_t>(1, total_rows);
  int64_t by_lanes = (total_rows + 4 * lanes - 1) / (4 * lanes);
  int64_t by_work = kFlopsPerChunk / std::max<int64_t>(1, flops_per_row);
  int64_t grain = std::max<int64_t>(1, std::max(by_lanes, by_work));
  // Round up to the 4-row SIMD panel height. Without this, a small multi-row
  // matmul (a serving micro-batch, an MSCN token block) shatters into 1-row
  // chunks that all take the GEMV tail and re-stream B once per row; whole
  // panels share each streamed B row 4 ways. Chunk boundaries never change
  // the results, so the rounding is determinism-safe.
  return (grain + 3) & ~int64_t{3};
}

Status ShapeError(const char* op, const Matrix& a, const Matrix& b) {
  std::ostringstream oss;
  oss << op << " shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  return Status::InvalidArgument(oss.str());
}

// Fused epilogue over one finished output row: add the bias (when present),
// then apply the activation — element-wise, so the result is bit-identical
// to separate AddBiasRow + ApplyActivation passes. The activation formulas
// must stay in sync with activation.h.
void EpilogueRow(float* LCE_RESTRICT row, const float* LCE_RESTRICT bias,
                 int n, Activation act) {
  if (bias != nullptr) {
#pragma omp simd
    for (int j = 0; j < n; ++j) row[j] += bias[j];
  }
  switch (act) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
#pragma omp simd
      for (int j = 0; j < n; ++j) row[j] = row[j] > 0 ? row[j] : 0.0f;
      break;
    case Activation::kSigmoid:
      for (int j = 0; j < n; ++j) row[j] = 1.0f / (1.0f + std::exp(-row[j]));
      break;
    case Activation::kTanh:
      for (int j = 0; j < n; ++j) row[j] = std::tanh(row[j]);
      break;
  }
}

// ---------------------------------------------------------------------------
// Naive reference kernels: the plain loops (zero-skip removed — the old
// `av == 0.0f` shortcut defeated vectorization on dense inputs and silently
// suppressed NaN/Inf propagation from the corresponding B row).
// ---------------------------------------------------------------------------

// C = A * B over a row block of A. Per output element the k-accumulation
// order matches the sequential kernel, so blocking never changes the result.
void MatMulRowsNaive(const Matrix& a, const Matrix& b, Matrix* c, int64_t r0,
                     int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.RowPtr(static_cast<int>(i));
    float* crow = c->RowPtr(static_cast<int>(i));
    for (int k = 0; k < a.cols(); ++k) {
      float av = arow[k];
      const float* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
}

// C = A^T * B over an output-row block (columns of A). The loop stays
// k-outer like the sequential kernel (streaming rows of A and B), and
// element (i, j) accumulates a(k, i) * b(k, j) in ascending k no matter how
// the i-range is blocked, so output is bit-identical at any thread count.
void MatMulTransARowsNaive(const Matrix& a, const Matrix& b, Matrix* c,
                           int64_t i0, int64_t i1) {
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.RowPtr(k);
    const float* brow = b.RowPtr(k);
    for (int64_t i = i0; i < i1; ++i) {
      float av = arow[i];
      float* crow = c->RowPtr(static_cast<int>(i));
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
}

// C = A * B^T over a row block of A; each element is an independent dot.
void MatMulTransBRowsNaive(const Matrix& a, const Matrix& b, Matrix* c,
                           int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a.RowPtr(static_cast<int>(i));
    float* crow = c->RowPtr(static_cast<int>(i));
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.RowPtr(j);
      float dot = 0;
      for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      crow[j] = dot;
    }
  }
}

// ---------------------------------------------------------------------------
// Vectorized kernels.
//
// LCE_KERNEL_CLONES compiles each kernel once per ISA level (baseline,
// AVX2, AVX-512) and picks the widest the CPU supports at load time via the
// resolver the compiler emits. The clones come from identical source with
// fp-contract pinned off (CMakeLists), so every lane executes the same
// mul-then-add sequence as the scalar reference — wider vectors change how
// many elements move per instruction, never a result bit. This matters most
// for the serving micro-batches: the 4-row panel is compute-bound at
// baseline vector width, so batching could never amortize the streamed B
// traffic without the wide clones.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define LCE_KERNEL_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef LCE_KERNEL_CLONES
#define LCE_KERNEL_CLONES
#endif

// C = A * B over a row block of A: 4-row panels share each streamed B row
// (one load, four multiply-adds per lane), the k loop is tiled by kKc so a B
// tile stays in L2 and unrolled by 4 inside the tile so each C vector makes
// one load/store round trip per four k-terms (the un-unrolled form is
// store-port-bound: one C store per k per row caps the panel at roughly a
// third of its ALU throughput). The unroll chains the four adds on the same
// accumulator in ascending k, so element values are unchanged — identical op
// sequence, fewer memory round trips. The j loop vectorizes over the aligned
// padded rows. Each C element keeps a single accumulator fed in ascending-k
// order, so the result is bit-identical to MatMulRowsNaive. The epilogue
// (bias + activation) runs once per finished row, while it is still
// cache-hot.
LCE_KERNEL_CLONES
void MatMulRowsSimd(const Matrix& a, const Matrix& b, const Matrix* bias,
                    Activation act, Matrix* c, int64_t r0, int64_t r1) {
  const int K = a.cols();
  const int N = b.cols();
  const int ldb = b.ld();
  const float* bp = b.raw();
  const float* bias_row = bias != nullptr ? bias->RowPtr(0) : nullptr;
  const bool epilogue = bias_row != nullptr || act != Activation::kIdentity;
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* LCE_RESTRICT a0 = a.RowPtr(static_cast<int>(i));
    const float* LCE_RESTRICT a1 = a.RowPtr(static_cast<int>(i) + 1);
    const float* LCE_RESTRICT a2 = a.RowPtr(static_cast<int>(i) + 2);
    const float* LCE_RESTRICT a3 = a.RowPtr(static_cast<int>(i) + 3);
    float* LCE_RESTRICT c0 = c->RowPtr(static_cast<int>(i));
    float* LCE_RESTRICT c1 = c->RowPtr(static_cast<int>(i) + 1);
    float* LCE_RESTRICT c2 = c->RowPtr(static_cast<int>(i) + 2);
    float* LCE_RESTRICT c3 = c->RowPtr(static_cast<int>(i) + 3);
    for (int kb = 0; kb < K; kb += kKc) {
      const int ke = std::min(K, kb + kKc);
      int k = kb;
      for (; k + 4 <= ke; k += 4) {
        const float* LCE_RESTRICT b0 = bp + static_cast<size_t>(k) * ldb;
        const float* LCE_RESTRICT b1 = b0 + ldb;
        const float* LCE_RESTRICT b2 = b1 + ldb;
        const float* LCE_RESTRICT b3 = b2 + ldb;
        const float a00 = a0[k], a01 = a0[k + 1], a02 = a0[k + 2],
                    a03 = a0[k + 3];
        const float a10 = a1[k], a11 = a1[k + 1], a12 = a1[k + 2],
                    a13 = a1[k + 3];
        const float a20 = a2[k], a21 = a2[k + 1], a22 = a2[k + 2],
                    a23 = a2[k + 3];
        const float a30 = a3[k], a31 = a3[k + 1], a32 = a3[k + 2],
                    a33 = a3[k + 3];
#pragma omp simd
        for (int j = 0; j < N; ++j) {
          const float b0j = b0[j], b1j = b1[j], b2j = b2[j], b3j = b3[j];
          c0[j] = (((c0[j] + a00 * b0j) + a01 * b1j) + a02 * b2j) + a03 * b3j;
          c1[j] = (((c1[j] + a10 * b0j) + a11 * b1j) + a12 * b2j) + a13 * b3j;
          c2[j] = (((c2[j] + a20 * b0j) + a21 * b1j) + a22 * b2j) + a23 * b3j;
          c3[j] = (((c3[j] + a30 * b0j) + a31 * b1j) + a32 * b2j) + a33 * b3j;
        }
      }
      for (; k < ke; ++k) {
        const float* LCE_RESTRICT brow = bp + static_cast<size_t>(k) * ldb;
        const float av0 = a0[k];
        const float av1 = a1[k];
        const float av2 = a2[k];
        const float av3 = a3[k];
#pragma omp simd
        for (int j = 0; j < N; ++j) {
          c0[j] += av0 * brow[j];
          c1[j] += av1 * brow[j];
          c2[j] += av2 * brow[j];
          c3[j] += av3 * brow[j];
        }
      }
    }
    if (epilogue) {
      EpilogueRow(c0, bias_row, N, act);
      EpilogueRow(c1, bias_row, N, act);
      EpilogueRow(c2, bias_row, N, act);
      EpilogueRow(c3, bias_row, N, act);
    }
  }
  // Tail rows (and the M=1 GEMV shape of per-query inference): one streamed
  // pass over B with a vectorized j loop.
  for (; i < r1; ++i) {
    const float* LCE_RESTRICT arow = a.RowPtr(static_cast<int>(i));
    float* LCE_RESTRICT crow = c->RowPtr(static_cast<int>(i));
    for (int k = 0; k < K; ++k) {
      const float* LCE_RESTRICT brow = bp + static_cast<size_t>(k) * ldb;
      const float av = arow[k];
#pragma omp simd
      for (int j = 0; j < N; ++j) crow[j] += av * brow[j];
    }
    if (epilogue) EpilogueRow(crow, bias_row, N, act);
  }
}

// C = A^T * B over an output-row block: k-outer like the naive kernel (B's
// row stays in L1 across the whole i-range), 4 output rows per step sharing
// it, vectorized over j. Ascending-k single accumulators — bit-identical to
// MatMulTransARowsNaive.
LCE_KERNEL_CLONES
void MatMulTransARowsSimd(const Matrix& a, const Matrix& b, Matrix* c,
                          int64_t i0, int64_t i1) {
  const int M = a.rows();
  const int N = b.cols();
  for (int k = 0; k < M; ++k) {
    const float* LCE_RESTRICT arow = a.RowPtr(k);
    const float* LCE_RESTRICT brow = b.RowPtr(k);
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float av0 = arow[i];
      const float av1 = arow[i + 1];
      const float av2 = arow[i + 2];
      const float av3 = arow[i + 3];
      float* LCE_RESTRICT c0 = c->RowPtr(static_cast<int>(i));
      float* LCE_RESTRICT c1 = c->RowPtr(static_cast<int>(i) + 1);
      float* LCE_RESTRICT c2 = c->RowPtr(static_cast<int>(i) + 2);
      float* LCE_RESTRICT c3 = c->RowPtr(static_cast<int>(i) + 3);
#pragma omp simd
      for (int j = 0; j < N; ++j) {
        c0[j] += av0 * brow[j];
        c1[j] += av1 * brow[j];
        c2[j] += av2 * brow[j];
        c3[j] += av3 * brow[j];
      }
    }
    for (; i < i1; ++i) {
      const float av = arow[i];
      float* LCE_RESTRICT crow = c->RowPtr(static_cast<int>(i));
#pragma omp simd
      for (int j = 0; j < N; ++j) crow[j] += av * brow[j];
    }
  }
}

// Small-M A * B^T: independent dot products, 4 B rows unrolled per step so
// four scalar accumulator chains run in parallel. Each chain sums ascending
// k — bit-identical to the naive dot loop.
LCE_KERNEL_CLONES
void MatMulTransBRowsDot(const Matrix& a, const Matrix& b, Matrix* c,
                         int64_t r0, int64_t r1) {
  const int K = a.cols();
  const int Nb = b.rows();
  const bool fast = simd::FastMathEnabled();
  for (int64_t i = r0; i < r1; ++i) {
    const float* LCE_RESTRICT arow = a.RowPtr(static_cast<int>(i));
    float* LCE_RESTRICT crow = c->RowPtr(static_cast<int>(i));
    int j = 0;
    if (fast) {
      // LCE_FASTMATH: vectorized reduction — multiple partial sums per dot,
      // combined by the horizontal add. NOT bit-identical to the reference
      // (summation order changes); gated off by default.
      for (; j < Nb; ++j) {
        const float* LCE_RESTRICT brow = b.RowPtr(j);
        float dot = 0;
#pragma omp simd reduction(+ : dot)
        for (int k = 0; k < K; ++k) dot += arow[k] * brow[k];
        crow[j] = dot;
      }
      continue;
    }
    for (; j + 4 <= Nb; j += 4) {
      const float* LCE_RESTRICT b0 = b.RowPtr(j);
      const float* LCE_RESTRICT b1 = b.RowPtr(j + 1);
      const float* LCE_RESTRICT b2 = b.RowPtr(j + 2);
      const float* LCE_RESTRICT b3 = b.RowPtr(j + 3);
      float d0 = 0, d1 = 0, d2 = 0, d3 = 0;
      for (int k = 0; k < K; ++k) {
        const float av = arow[k];
        d0 += av * b0[k];
        d1 += av * b1[k];
        d2 += av * b2[k];
        d3 += av * b3[k];
      }
      crow[j] = d0;
      crow[j + 1] = d1;
      crow[j + 2] = d2;
      crow[j + 3] = d3;
    }
    for (; j < Nb; ++j) {
      const float* LCE_RESTRICT brow = b.RowPtr(j);
      float dot = 0;
      for (int k = 0; k < K; ++k) dot += arow[k] * brow[k];
      crow[j] = dot;
    }
  }
}

// B transposed into a fresh padded matrix (16x16 tiles for cache-friendly
// strided reads). Lets large-M A * B^T reuse the blocked MatMul kernel.
Matrix TransposePacked(const Matrix& b) {
  Matrix bt(b.cols(), b.rows());
  constexpr int kTile = 16;
  parallel::ParallelFor(
      0, b.cols(), RowGrain(b.cols(), b.rows()),
      [&](int64_t i0, int64_t i1) {
        for (int64_t it = i0; it < i1; it += kTile) {
          const int ie = static_cast<int>(std::min<int64_t>(i1, it + kTile));
          for (int jt = 0; jt < b.rows(); jt += kTile) {
            const int je = std::min(b.rows(), jt + kTile);
            for (int i = static_cast<int>(it); i < ie; ++i) {
              float* btrow = bt.RowPtr(i);
              for (int j = jt; j < je; ++j) btrow[j] = b.At(j, i);
            }
          }
        }
      });
  return bt;
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

// C = act(A * B + bias); bias may be null, act may be identity.
Matrix MatMulImpl(const Matrix& a, const Matrix& b, const Matrix* bias,
                  Activation act) {
  Matrix c(a.rows(), b.cols());
  const int64_t grain =
      RowGrain(a.rows(), static_cast<int64_t>(a.cols()) * b.cols());
  if (simd::SimdEnabled()) {
    parallel::ParallelFor(0, a.rows(), grain, [&](int64_t r0, int64_t r1) {
      MatMulRowsSimd(a, b, bias, act, &c, r0, r1);
    });
    return c;
  }
  parallel::ParallelFor(0, a.rows(), grain, [&](int64_t r0, int64_t r1) {
    MatMulRowsNaive(a, b, &c, r0, r1);
  });
  // Reference path: the unfused two extra passes.
  if (bias != nullptr) AddBiasRow(&c, *bias);
  return ApplyActivation(act, std::move(c));
}

Matrix MatMulTransAImpl(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  const int64_t grain =
      RowGrain(a.cols(), static_cast<int64_t>(a.rows()) * b.cols());
  const bool simd = simd::SimdEnabled();
  parallel::ParallelFor(0, a.cols(), grain, [&](int64_t i0, int64_t i1) {
    if (simd) {
      MatMulTransARowsSimd(a, b, &c, i0, i1);
    } else {
      MatMulTransARowsNaive(a, b, &c, i0, i1);
    }
  });
  return c;
}

Matrix MatMulTransBImpl(const Matrix& a, const Matrix& b) {
  if (simd::SimdEnabled() && a.rows() >= kPackMinRows) {
    // Pack once, then run the blocked j-vectorized kernel: each element
    // still accumulates ascending k, so this matches the naive dot loop
    // bit for bit while streaming B contiguously.
    Matrix bt = TransposePacked(b);
    return MatMulImpl(a, bt, nullptr, Activation::kIdentity);
  }
  Matrix c(a.rows(), b.rows());
  const int64_t grain =
      RowGrain(a.rows(), static_cast<int64_t>(b.rows()) * a.cols());
  const bool simd = simd::SimdEnabled();
  parallel::ParallelFor(0, a.rows(), grain, [&](int64_t r0, int64_t r1) {
    if (simd) {
      MatMulTransBRowsDot(a, b, &c, r0, r1);
    } else {
      MatMulTransBRowsNaive(a, b, &c, r0, r1);
    }
  });
  return c;
}

}  // namespace

Result<Matrix> Matrix::TryStack(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("Matrix::Stack: no rows to stack");
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) {
      std::ostringstream oss;
      oss << "Matrix::Stack: ragged input: row " << r << " has "
          << rows[r].size() << " values, expected " << rows[0].size();
      return Status::InvalidArgument(oss.str());
    }
  }
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(static_cast<int>(r)));
  }
  return m;
}

Matrix Matrix::Stack(const std::vector<std::vector<float>>& rows) {
  Result<Matrix> result = TryStack(rows);
  LCE_CHECK_OK(result.status());
  return std::move(result).value();
}

void Matrix::Add(const Matrix& other) {
  LCE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  // Flat vectorized pass over the padded buffers (same ld by construction):
  // padding is zero on both sides, so 0 + 0 keeps the invariant.
  float* LCE_RESTRICT dst = data_.data();
  const float* LCE_RESTRICT src = other.data_.data();
  const int64_t n = static_cast<int64_t>(data_.size());
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Matrix::Scale(float s) {
  // Padding stays zero under scaling (0 * s == 0 for finite s).
  float* LCE_RESTRICT dst = data_.data();
  const int64_t n = static_cast<int64_t>(data_.size());
#pragma omp simd
  for (int64_t i = 0; i < n; ++i) dst[i] *= s;
}

Result<Matrix> TryMatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) return ShapeError("MatMul", a, b);
  return MatMulImpl(a, b, nullptr, Activation::kIdentity);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) LCE_CHECK_OK(ShapeError("MatMul", a, b));
  // Kernel span: with LCE_PROFILE on, the collapsed-stack hot paths name the
  // actual dense kernels under their stage/epoch spans. Work-thresholded so
  // batch-1 training micro-GEMMs don't drown in span overhead.
  telemetry::KernelSpan span(
      "MatMul", int64_t{a.rows()} * a.cols() * b.cols());
  return MatMulImpl(a, b, nullptr, Activation::kIdentity);
}

Matrix MatMulBiasAct(const Matrix& a, const Matrix& b, const Matrix& bias,
                     Activation act) {
  if (a.cols() != b.rows()) LCE_CHECK_OK(ShapeError("MatMulBiasAct", a, b));
  telemetry::KernelSpan span(
      "MatMulBiasAct", int64_t{a.rows()} * a.cols() * b.cols());
  if (bias.empty()) return MatMulImpl(a, b, nullptr, act);
  LCE_CHECK(bias.rows() == 1 && bias.cols() == b.cols());
  return MatMulImpl(a, b, &bias, act);
}

Result<Matrix> TryMatMulTransA(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) return ShapeError("MatMulTransA", a, b);
  return MatMulTransAImpl(a, b);
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) LCE_CHECK_OK(ShapeError("MatMulTransA", a, b));
  telemetry::KernelSpan span(
      "MatMulTransA", int64_t{a.cols()} * a.rows() * b.cols());
  return MatMulTransAImpl(a, b);
}

Result<Matrix> TryMatMulTransB(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) return ShapeError("MatMulTransB", a, b);
  return MatMulTransBImpl(a, b);
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) LCE_CHECK_OK(ShapeError("MatMulTransB", a, b));
  telemetry::KernelSpan span(
      "MatMulTransB", int64_t{a.rows()} * a.cols() * b.rows());
  return MatMulTransBImpl(a, b);
}

void AddBiasRow(Matrix* x, const Matrix& bias) {
  AddBiasRowActivate(x, bias, Activation::kIdentity);
}

void AddBiasRowActivate(Matrix* x, const Matrix& bias, Activation act) {
  LCE_CHECK(bias.rows() == 1 && bias.cols() == x->cols());
  // Element-wise: one fused pass is bit-identical to bias-then-activation
  // passes regardless of LCE_SIMD, so there is no reference variant.
  parallel::ParallelFor(
      0, x->rows(), RowGrain(x->rows(), x->cols()),
      [&](int64_t r0, int64_t r1) {
        const float* b = bias.RowPtr(0);
        for (int64_t r = r0; r < r1; ++r) {
          EpilogueRow(x->RowPtr(static_cast<int>(r)), b, x->cols(), act);
        }
      });
}

Matrix ColMean(const Matrix& x) {
  LCE_CHECK(x.rows() > 0);
  // Sequential on purpose: the row-accumulation order defines the floating
  // point result, and pooling matrices are small.
  Matrix m(1, x.cols());
  float* LCE_RESTRICT out = m.RowPtr(0);
  for (int r = 0; r < x.rows(); ++r) {
    const float* LCE_RESTRICT row = x.RowPtr(r);
#pragma omp simd
    for (int c = 0; c < x.cols(); ++c) out[c] += row[c];
  }
  m.Scale(1.0f / static_cast<float>(x.rows()));
  return m;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  LCE_CHECK(!parts.empty());
  int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    LCE_CHECK(p->rows() == rows);
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    float* orow = out.RowPtr(r);
    int offset = 0;
    for (const Matrix* p : parts) {
      const float* prow = p->RowPtr(r);
      std::copy(prow, prow + p->cols(), orow + offset);
      offset += p->cols();
    }
  }
  return out;
}

}  // namespace nn
}  // namespace lce
