#include "src/nn/matrix.h"

namespace lce {
namespace nn {

Matrix Matrix::Stack(const std::vector<std::vector<float>>& rows) {
  LCE_CHECK(!rows.empty());
  Matrix m(static_cast<int>(rows.size()), static_cast<int>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    LCE_CHECK_MSG(rows[r].size() == rows[0].size(), "ragged Stack input");
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(static_cast<int>(r)));
  }
  return m;
}

void Matrix::Add(const Matrix& other) {
  LCE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Scale(float s) {
  for (auto& v : data_) v *= s;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  LCE_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch: " << a.rows()
                << "x" << a.cols() << " * " << b.rows() << "x" << b.cols());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      float av = arow[k];
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  LCE_CHECK(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.RowPtr(k);
    const float* brow = b.RowPtr(k);
    for (int i = 0; i < a.cols(); ++i) {
      float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.RowPtr(i);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  LCE_CHECK(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.RowPtr(j);
      float dot = 0;
      for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      crow[j] = dot;
    }
  }
  return c;
}

void AddBiasRow(Matrix* x, const Matrix& bias) {
  LCE_CHECK(bias.rows() == 1 && bias.cols() == x->cols());
  for (int r = 0; r < x->rows(); ++r) {
    float* row = x->RowPtr(r);
    const float* b = bias.RowPtr(0);
    for (int c = 0; c < x->cols(); ++c) row[c] += b[c];
  }
}

Matrix ColMean(const Matrix& x) {
  LCE_CHECK(x.rows() > 0);
  Matrix m(1, x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    const float* row = x.RowPtr(r);
    for (int c = 0; c < x.cols(); ++c) m.At(0, c) += row[c];
  }
  m.Scale(1.0f / static_cast<float>(x.rows()));
  return m;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  LCE_CHECK(!parts.empty());
  int rows = parts[0]->rows();
  int cols = 0;
  for (const Matrix* p : parts) {
    LCE_CHECK(p->rows() == rows);
    cols += p->cols();
  }
  Matrix out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    float* orow = out.RowPtr(r);
    int offset = 0;
    for (const Matrix* p : parts) {
      const float* prow = p->RowPtr(r);
      std::copy(prow, prow + p->cols(), orow + offset);
      offset += p->cols();
    }
  }
  return out;
}

}  // namespace nn
}  // namespace lce
