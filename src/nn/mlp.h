// Multi-layer perceptron: the workhorse of every query-driven model.

#ifndef LCE_NN_MLP_H_
#define LCE_NN_MLP_H_

#include <memory>
#include <vector>

#include "src/nn/activation.h"
#include "src/nn/dense.h"

namespace lce {
namespace nn {

/// A stack of Dense layers with per-layer activations. Hidden layers use
/// `hidden_act`; the output layer uses `output_act`. Forward caches per-layer
/// outputs; Backward walks them in reverse. One outstanding Forward at a time.
class Mlp {
 public:
  /// `dims` = {in, h1, ..., out}; requires at least {in, out}.
  Mlp(const std::vector<int>& dims, Activation hidden_act,
      Activation output_act, Rng* rng);

  Matrix Forward(const Matrix& x);

  /// dL/dx of the most recent Forward; accumulates parameter gradients.
  Matrix Backward(const Matrix& dout);

  std::vector<Param*> Params();

  size_t NumParams() const;
  int in_dim() const { return layers_.front()->in_dim(); }
  int out_dim() const { return layers_.back()->out_dim(); }

 private:
  std::vector<std::unique_ptr<Dense>> layers_;
  std::vector<Activation> acts_;
  std::vector<Matrix> outputs_;  // post-activation output per layer
};

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_MLP_H_
