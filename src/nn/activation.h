// Element-wise activations with output-cached backward helpers.
//
// Applied in parallel row chunks: every element is an independent function of
// its input, so chunking never changes the result. Loops run per row over the
// logical cols() region (storage is padded — see matrix.h), vectorized with
// `#pragma omp simd`. The forward formulas here are the reference for the
// fused matmul epilogue in matrix.cpp and must stay in sync with it.
//
// The Activation enum itself lives in matrix.h so the fused epilogue can
// name it without a circular include.

#ifndef LCE_NN_ACTIVATION_H_
#define LCE_NN_ACTIVATION_H_

#include <cmath>
#include <cstdint>

#include "src/nn/matrix.h"
#include "src/util/parallel.h"

namespace lce {
namespace nn {

namespace internal {

// Elements per parallel chunk; batches below this run inline.
constexpr int64_t kActivationGrain = 1 << 14;

inline int64_t ActivationRowGrain(int cols) {
  return std::max<int64_t>(1, kActivationGrain / std::max(1, cols));
}

}  // namespace internal

/// Applies the activation in place and returns the result (the "output"),
/// which the matching backward uses.
inline Matrix ApplyActivation(Activation act, Matrix x) {
  if (act == Activation::kIdentity) return x;
  const int cols = x.cols();
  parallel::ParallelFor(
      0, x.rows(), internal::ActivationRowGrain(cols),
      [&x, act, cols](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          float* __restrict__ row = x.RowPtr(static_cast<int>(r));
          switch (act) {
            case Activation::kIdentity:
              break;
            case Activation::kRelu:
#pragma omp simd
              for (int c = 0; c < cols; ++c) {
                row[c] = row[c] > 0 ? row[c] : 0.0f;
              }
              break;
            case Activation::kSigmoid:
              for (int c = 0; c < cols; ++c) {
                row[c] = 1.0f / (1.0f + std::exp(-row[c]));
              }
              break;
            case Activation::kTanh:
              for (int c = 0; c < cols; ++c) row[c] = std::tanh(row[c]);
              break;
          }
        }
      });
  return x;
}

/// Given dL/d(output) and the cached output, returns dL/d(pre-activation).
inline Matrix ActivationBackward(Activation act, const Matrix& output,
                                 Matrix dout) {
  if (act == Activation::kIdentity) return dout;
  const int cols = dout.cols();
  parallel::ParallelFor(
      0, dout.rows(), internal::ActivationRowGrain(cols),
      [&output, &dout, act, cols](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* __restrict__ out = output.RowPtr(static_cast<int>(r));
          float* __restrict__ grad = dout.RowPtr(static_cast<int>(r));
          switch (act) {
            case Activation::kIdentity:
              break;
            case Activation::kRelu:
#pragma omp simd
              for (int c = 0; c < cols; ++c) {
                if (out[c] <= 0) grad[c] = 0;
              }
              break;
            case Activation::kSigmoid:
#pragma omp simd
              for (int c = 0; c < cols; ++c) {
                grad[c] *= out[c] * (1.0f - out[c]);
              }
              break;
            case Activation::kTanh:
#pragma omp simd
              for (int c = 0; c < cols; ++c) {
                grad[c] *= 1.0f - out[c] * out[c];
              }
              break;
          }
        }
      });
  return dout;
}

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_ACTIVATION_H_
