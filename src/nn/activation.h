// Element-wise activations with output-cached backward helpers.

#ifndef LCE_NN_ACTIVATION_H_
#define LCE_NN_ACTIVATION_H_

#include <cmath>

#include "src/nn/matrix.h"

namespace lce {
namespace nn {

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

/// Applies the activation in place and returns the result (the "output"),
/// which the matching backward uses.
inline Matrix ApplyActivation(Activation act, Matrix x) {
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      for (auto& v : x.data()) v = v > 0 ? v : 0.0f;
      return x;
    case Activation::kSigmoid:
      for (auto& v : x.data()) v = 1.0f / (1.0f + std::exp(-v));
      return x;
    case Activation::kTanh:
      for (auto& v : x.data()) v = std::tanh(v);
      return x;
  }
  return x;
}

/// Given dL/d(output) and the cached output, returns dL/d(pre-activation).
inline Matrix ActivationBackward(Activation act, const Matrix& output,
                                 Matrix dout) {
  switch (act) {
    case Activation::kIdentity:
      return dout;
    case Activation::kRelu:
      for (size_t i = 0; i < dout.size(); ++i) {
        if (output.data()[i] <= 0) dout.data()[i] = 0;
      }
      return dout;
    case Activation::kSigmoid:
      for (size_t i = 0; i < dout.size(); ++i) {
        float o = output.data()[i];
        dout.data()[i] *= o * (1.0f - o);
      }
      return dout;
    case Activation::kTanh:
      for (size_t i = 0; i < dout.size(); ++i) {
        float o = output.data()[i];
        dout.data()[i] *= 1.0f - o * o;
      }
      return dout;
  }
  return dout;
}

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_ACTIVATION_H_
