// Element-wise activations with output-cached backward helpers.
//
// Applied in parallel chunks over the flat buffer: every element is an
// independent function of its input, so chunking never changes the result.

#ifndef LCE_NN_ACTIVATION_H_
#define LCE_NN_ACTIVATION_H_

#include <cmath>
#include <cstdint>

#include "src/nn/matrix.h"
#include "src/util/parallel.h"

namespace lce {
namespace nn {

enum class Activation { kIdentity, kRelu, kSigmoid, kTanh };

namespace internal {

// Elements per parallel chunk; batches below this run inline.
constexpr int64_t kActivationGrain = 1 << 14;

}  // namespace internal

/// Applies the activation in place and returns the result (the "output"),
/// which the matching backward uses.
inline Matrix ApplyActivation(Activation act, Matrix x) {
  float* data = x.data().data();
  switch (act) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      parallel::ParallelFor(0, static_cast<int64_t>(x.size()),
                            internal::kActivationGrain,
                            [data](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                data[i] = data[i] > 0 ? data[i] : 0.0f;
                              }
                            });
      return x;
    case Activation::kSigmoid:
      parallel::ParallelFor(0, static_cast<int64_t>(x.size()),
                            internal::kActivationGrain,
                            [data](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                data[i] = 1.0f / (1.0f + std::exp(-data[i]));
                              }
                            });
      return x;
    case Activation::kTanh:
      parallel::ParallelFor(0, static_cast<int64_t>(x.size()),
                            internal::kActivationGrain,
                            [data](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                data[i] = std::tanh(data[i]);
                              }
                            });
      return x;
  }
  return x;
}

/// Given dL/d(output) and the cached output, returns dL/d(pre-activation).
inline Matrix ActivationBackward(Activation act, const Matrix& output,
                                 Matrix dout) {
  const float* out = output.data().data();
  float* grad = dout.data().data();
  switch (act) {
    case Activation::kIdentity:
      return dout;
    case Activation::kRelu:
      parallel::ParallelFor(0, static_cast<int64_t>(dout.size()),
                            internal::kActivationGrain,
                            [out, grad](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                if (out[i] <= 0) grad[i] = 0;
                              }
                            });
      return dout;
    case Activation::kSigmoid:
      parallel::ParallelFor(0, static_cast<int64_t>(dout.size()),
                            internal::kActivationGrain,
                            [out, grad](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                grad[i] *= out[i] * (1.0f - out[i]);
                              }
                            });
      return dout;
    case Activation::kTanh:
      parallel::ParallelFor(0, static_cast<int64_t>(dout.size()),
                            internal::kActivationGrain,
                            [out, grad](int64_t b, int64_t e) {
                              for (int64_t i = b; i < e; ++i) {
                                grad[i] *= 1.0f - out[i] * out[i];
                              }
                            });
      return dout;
  }
  return dout;
}

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_ACTIVATION_H_
