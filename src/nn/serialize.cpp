#include "src/nn/serialize.h"

#include <cstdint>

namespace lce {
namespace nn {

void SaveParams(const std::vector<Param*>& params, std::ostream* os) {
  for (const Param* p : params) {
    int32_t rows = p->value.rows();
    int32_t cols = p->value.cols();
    os->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    os->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    // Per logical row: storage is padded (matrix.h), the byte stream is not —
    // the on-disk format is unchanged from the flat-storage era.
    for (int32_t r = 0; r < rows; ++r) {
      os->write(reinterpret_cast<const char*>(p->value.RowPtr(r)),
                static_cast<std::streamsize>(cols * sizeof(float)));
    }
  }
}

Status LoadParams(const std::vector<Param*>& params, std::istream* is) {
  for (Param* p : params) {
    int32_t rows = 0, cols = 0;
    is->read(reinterpret_cast<char*>(&rows), sizeof(rows));
    is->read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!*is) return Status::InvalidArgument("truncated parameter stream");
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    for (int32_t r = 0; r < rows; ++r) {
      is->read(reinterpret_cast<char*>(p->value.RowPtr(r)),
               static_cast<std::streamsize>(cols * sizeof(float)));
    }
    if (!*is) return Status::InvalidArgument("truncated parameter stream");
  }
  return Status::OK();
}

size_t ParamBytes(const std::vector<Param*>& params) {
  size_t bytes = 0;
  for (const Param* p : params) bytes += p->NumElements() * sizeof(float);
  return bytes;
}

}  // namespace nn
}  // namespace lce
