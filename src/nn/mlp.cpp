#include "src/nn/mlp.h"

namespace lce {
namespace nn {

Mlp::Mlp(const std::vector<int>& dims, Activation hidden_act,
         Activation output_act, Rng* rng) {
  LCE_CHECK_MSG(dims.size() >= 2, "Mlp needs at least {in, out} dims");
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Dense>(dims[i], dims[i + 1], rng));
    acts_.push_back(i + 2 < dims.size() ? hidden_act : output_act);
  }
}

Matrix Mlp::Forward(const Matrix& x) {
  outputs_.clear();
  Matrix cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    cur = layers_[i]->Forward(cur, acts_[i]);
    outputs_.push_back(cur);
  }
  return cur;
}

Matrix Mlp::Backward(const Matrix& dout) {
  LCE_CHECK_MSG(outputs_.size() == layers_.size(),
                "Backward without a matching Forward");
  Matrix grad = dout;
  for (size_t i = layers_.size(); i-- > 0;) {
    grad = ActivationBackward(acts_[i], outputs_[i], std::move(grad));
    grad = layers_[i]->Backward(grad);
  }
  return grad;
}

std::vector<Param*> Mlp::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

size_t Mlp::NumParams() const {
  size_t n = 0;
  for (const auto& layer : layers_) {
    n += static_cast<size_t>(layer->in_dim()) * layer->out_dim() +
         layer->out_dim();
  }
  return n;
}

}  // namespace nn
}  // namespace lce
