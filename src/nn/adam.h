// Adam optimizer (Kingma & Ba, 2014) over a set of Params.

#ifndef LCE_NN_ADAM_H_
#define LCE_NN_ADAM_H_

#include <cmath>
#include <vector>

#include "src/nn/param.h"

namespace lce {
namespace nn {

class Adam {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// One update step; consumes accumulated gradients and zeroes them.
  void Step(const std::vector<Param*>& params) {
    ++t_;
    float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (Param* p : params) {
      // Per logical row: the four state matrices share one padded layout,
      // and the update must not touch padding (sqrt(0)/eps drift would
      // break the padding-zero invariant).
      const int cols = p->value.cols();
      for (int r = 0; r < p->value.rows(); ++r) {
        float* __restrict__ value = p->value.RowPtr(r);
        float* __restrict__ grad = p->grad.RowPtr(r);
        float* __restrict__ m = p->m.RowPtr(r);
        float* __restrict__ v = p->v.RowPtr(r);
#pragma omp simd
        for (int i = 0; i < cols; ++i) {
          m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
          v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
          float mhat = m[i] / bc1;
          float vhat = v[i] / bc2;
          value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
          grad[i] = 0.0f;
        }
      }
    }
  }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int t_ = 0;
};

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_ADAM_H_
