// Fully-connected layer with cached-input backward pass.

#ifndef LCE_NN_DENSE_H_
#define LCE_NN_DENSE_H_

#include <cmath>
#include <vector>

#include "src/nn/param.h"

namespace lce {
namespace nn {

/// y = x * W + b, operating on a batch matrix (rows = examples).
///
/// Forward caches its input; Backward must be called with the gradient of the
/// most recent Forward. Parameter gradients accumulate until ZeroGrad().
class Dense {
 public:
  Dense(int in_dim, int out_dim, Rng* rng)
      : weight_(Matrix::Randn(in_dim, out_dim,
                              std::sqrt(2.0f / static_cast<float>(in_dim)),
                              rng)),
        bias_(Matrix::Zeros(1, out_dim)) {}

  Matrix Forward(const Matrix& x) { return Forward(x, Activation::kIdentity); }

  /// y = act(x * W + b) via the fused kernel epilogue (matrix.cpp): bias and
  /// activation apply while each output row is cache-hot instead of in two
  /// further passes. Bit-identical to Forward + ApplyActivation.
  Matrix Forward(const Matrix& x, Activation act) {
    input_ = x;
    return MatMulBiasAct(x, weight_.value, bias_.value, act);
  }

  /// Returns dL/dx; accumulates dL/dW and dL/db.
  Matrix Backward(const Matrix& dy) {
    weight_.grad.Add(MatMulTransA(input_, dy));
    for (int r = 0; r < dy.rows(); ++r) {
      const float* row = dy.RowPtr(r);
      for (int c = 0; c < dy.cols(); ++c) bias_.grad.At(0, c) += row[c];
    }
    return MatMulTransB(dy, weight_.value);
  }

  std::vector<Param*> Params() { return {&weight_, &bias_}; }

  int in_dim() const { return weight_.value.rows(); }
  int out_dim() const { return weight_.value.cols(); }

 private:
  Param weight_;
  Param bias_;
  Matrix input_;
};

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_DENSE_H_
