// Binary (de)serialization of model parameters.
//
// Format: for each param, int32 rows, int32 cols, then rows*cols float32.
// Loading checks shapes against the already-constructed model, so a model is
// always rebuilt from its hyperparameters first and then restored.

#ifndef LCE_NN_SERIALIZE_H_
#define LCE_NN_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <vector>

#include "src/nn/param.h"
#include "src/util/status.h"

namespace lce {
namespace nn {

void SaveParams(const std::vector<Param*>& params, std::ostream* os);

/// Restores values (not optimizer moments). Fails on shape mismatch or a
/// truncated stream.
Status LoadParams(const std::vector<Param*>& params, std::istream* is);

/// Total parameter footprint in bytes (float32 values only), the model-size
/// figure reported by experiment R2.
size_t ParamBytes(const std::vector<Param*>& params);

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_SERIALIZE_H_
