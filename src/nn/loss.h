// Regression losses on log-cardinality targets.
//
// All models in the study regress y = log(card). Two losses are compared in
// the loss-ablation experiment (R11):
//   * MSE on log targets: (ŷ - y)^2 — the generic regression choice.
//   * Log-Q loss: |ŷ - y| = log(q-error) — directly optimizes the study's
//     accuracy metric, since q-error = exp(|ŷ - y|) in log space.

#ifndef LCE_NN_LOSS_H_
#define LCE_NN_LOSS_H_

#include <vector>

#include "src/nn/matrix.h"

namespace lce {
namespace nn {

enum class LossKind { kMse, kLogQ };

/// Mean loss over a batch and the gradient dL/dpred (same shape as pred,
/// which must be B x 1). `targets` holds the B log-cardinality labels.
struct LossResult {
  double loss = 0;
  Matrix grad;
};

LossResult ComputeLoss(LossKind kind, const Matrix& pred,
                       const std::vector<float>& targets);

}  // namespace nn
}  // namespace lce

#endif  // LCE_NN_LOSS_H_
