#include "src/nn/loss.h"

#include <cmath>

#include "src/util/logging.h"

namespace lce {
namespace nn {

LossResult ComputeLoss(LossKind kind, const Matrix& pred,
                       const std::vector<float>& targets) {
  LCE_CHECK(pred.cols() == 1);
  LCE_CHECK(static_cast<size_t>(pred.rows()) == targets.size());
  int n = pred.rows();
  LCE_CHECK(n > 0);
  LossResult out;
  out.grad = Matrix(n, 1);
  double total = 0;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    float diff = pred.At(i, 0) - targets[i];
    switch (kind) {
      case LossKind::kMse:
        total += static_cast<double>(diff) * diff;
        out.grad.At(i, 0) = 2.0f * diff * inv_n;
        break;
      case LossKind::kLogQ:
        total += std::abs(static_cast<double>(diff));
        // Subgradient 0 at the kink.
        out.grad.At(i, 0) = (diff > 0 ? 1.0f : (diff < 0 ? -1.0f : 0.0f)) * inv_n;
        break;
    }
  }
  out.loss = total / n;
  return out;
}

}  // namespace nn
}  // namespace lce
