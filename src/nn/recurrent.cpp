#include "src/nn/recurrent.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/nn/activation.h"

namespace lce {
namespace nn {

namespace {

// Batched sequence bookkeeping shared by both cells: indices sorted by
// descending length (stable, so equal-length sequences keep input order —
// ordering only affects row placement, never row values).
std::vector<int> SortByLengthDesc(const std::vector<Matrix>& seqs) {
  std::vector<int> order(seqs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&seqs](int a, int b) {
    return seqs[a].rows() > seqs[b].rows();
  });
  return order;
}

// Copies the leading `rows` rows of `m` into a fresh rows x cols matrix.
Matrix ShrinkRows(const Matrix& m, int rows) {
  Matrix out(rows, m.cols());
  for (int r = 0; r < rows; ++r) {
    const float* src = m.RowPtr(r);
    std::copy(src, src + m.cols(), out.RowPtr(r));
  }
  return out;
}

}  // namespace

RnnCell::RnnCell(int in_dim, int hidden_dim, Rng* rng)
    : wx_(Matrix::Randn(in_dim, hidden_dim,
                        std::sqrt(1.0f / static_cast<float>(in_dim)), rng)),
      wh_(Matrix::Randn(hidden_dim, hidden_dim,
                        std::sqrt(1.0f / static_cast<float>(hidden_dim)), rng)),
      b_(Matrix::Zeros(1, hidden_dim)) {}

Matrix RnnCell::ForwardSequence(const Matrix& seq) {
  LCE_CHECK(seq.rows() >= 1);
  seq_ = seq;
  hs_.clear();
  Matrix h = Matrix::Zeros(1, hidden_dim());
  for (int t = 0; t < seq.rows(); ++t) {
    Matrix x = Matrix::Row(seq.RowVector(t));
    Matrix pre = MatMul(x, wx_.value);
    pre.Add(MatMul(h, wh_.value));
    AddBiasRowActivate(&pre, b_.value, Activation::kTanh);
    h = std::move(pre);
    hs_.push_back(h);
  }
  return h;
}

Matrix RnnCell::ForwardSequenceBatch(const std::vector<Matrix>& seqs) const {
  const int n = static_cast<int>(seqs.size());
  LCE_CHECK(n > 0);
  const int in = wx_.value.rows();
  const int h = wh_.value.rows();
  for (const Matrix& s : seqs) {
    LCE_CHECK(s.rows() >= 1);
    LCE_CHECK(s.cols() == in);
  }
  std::vector<int> order = SortByLengthDesc(seqs);
  Matrix out(n, h);
  Matrix hcur = Matrix::Zeros(n, h);  // rows follow `order`
  int active = n;
  const int max_len = seqs[order[0]].rows();
  for (int t = 0; t < max_len; ++t) {
    // Sequences shorter than t+1 steps finished last step; sorted descending
    // they occupy the tail rows, whose hidden states are already final.
    int still = active;
    while (still > 0 && seqs[order[still - 1]].rows() <= t) --still;
    if (still < active) {
      for (int r = still; r < active; ++r) {
        const float* src = hcur.RowPtr(r);
        std::copy(src, src + h, out.RowPtr(order[r]));
      }
      hcur = ShrinkRows(hcur, still);
      active = still;
    }
    Matrix xt(active, in);
    for (int r = 0; r < active; ++r) {
      const float* src = seqs[order[r]].RowPtr(t);
      std::copy(src, src + in, xt.RowPtr(r));
    }
    // Same step arithmetic as ForwardSequence, over `active` rows at once.
    Matrix pre = MatMul(xt, wx_.value);
    pre.Add(MatMul(hcur, wh_.value));
    AddBiasRowActivate(&pre, b_.value, Activation::kTanh);
    hcur = std::move(pre);
  }
  for (int r = 0; r < active; ++r) {
    const float* src = hcur.RowPtr(r);
    std::copy(src, src + h, out.RowPtr(order[r]));
  }
  return out;
}

void RnnCell::BackwardSequence(const Matrix& dh_final) {
  LCE_CHECK_MSG(!hs_.empty(), "BackwardSequence without ForwardSequence");
  Matrix dh = dh_final;
  for (int t = static_cast<int>(hs_.size()) - 1; t >= 0; --t) {
    // Through tanh.
    Matrix dpre = ActivationBackward(Activation::kTanh, hs_[t], std::move(dh));
    Matrix x = Matrix::Row(seq_.RowVector(t));
    wx_.grad.Add(MatMulTransA(x, dpre));
    Matrix h_prev =
        t > 0 ? hs_[t - 1] : Matrix::Zeros(1, hidden_dim());
    wh_.grad.Add(MatMulTransA(h_prev, dpre));
    b_.grad.Add(dpre);
    dh = MatMulTransB(dpre, wh_.value);
  }
}

LstmCell::LstmCell(int in_dim, int hidden_dim, Rng* rng)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      w_(Matrix::Randn(in_dim + hidden_dim, 4 * hidden_dim,
                       std::sqrt(1.0f / static_cast<float>(in_dim + hidden_dim)),
                       rng)),
      b_(Matrix::Zeros(1, 4 * hidden_dim)) {
  // Forget-gate bias starts positive: standard trick for gradient flow.
  for (int j = hidden_dim_; j < 2 * hidden_dim_; ++j) b_.value.At(0, j) = 1.0f;
}

Matrix LstmCell::ForwardSequence(const Matrix& seq) {
  LCE_CHECK(seq.rows() >= 1);
  LCE_CHECK(seq.cols() == in_dim_);
  cache_.clear();
  c_prev_.clear();
  Matrix h = Matrix::Zeros(1, hidden_dim_);
  Matrix c = Matrix::Zeros(1, hidden_dim_);
  for (int t = 0; t < seq.rows(); ++t) {
    StepCache step;
    c_prev_.push_back(c);
    // z = [x_t, h_{t-1}]
    step.z = Matrix(1, in_dim_ + hidden_dim_);
    for (int j = 0; j < in_dim_; ++j) step.z.At(0, j) = seq.At(t, j);
    for (int j = 0; j < hidden_dim_; ++j) {
      step.z.At(0, in_dim_ + j) = h.At(0, j);
    }
    Matrix pre =
        MatMulBiasAct(step.z, w_.value, b_.value, Activation::kIdentity);
    step.gates = Matrix(1, 4 * hidden_dim_);
    for (int j = 0; j < 4 * hidden_dim_; ++j) {
      float v = pre.At(0, j);
      // i, f, o gates: sigmoid; g (cell candidate): tanh.
      bool is_g = j >= 2 * hidden_dim_ && j < 3 * hidden_dim_;
      step.gates.At(0, j) =
          is_g ? std::tanh(v) : 1.0f / (1.0f + std::exp(-v));
    }
    step.c = Matrix(1, hidden_dim_);
    step.tanh_c = Matrix(1, hidden_dim_);
    Matrix h_next(1, hidden_dim_);
    for (int j = 0; j < hidden_dim_; ++j) {
      float i = step.gates.At(0, j);
      float f = step.gates.At(0, hidden_dim_ + j);
      float g = step.gates.At(0, 2 * hidden_dim_ + j);
      float o = step.gates.At(0, 3 * hidden_dim_ + j);
      float cv = f * c.At(0, j) + i * g;
      step.c.At(0, j) = cv;
      float tc = std::tanh(cv);
      step.tanh_c.At(0, j) = tc;
      h_next.At(0, j) = o * tc;
    }
    c = step.c;
    h = h_next;
    cache_.push_back(std::move(step));
  }
  return h;
}

Matrix LstmCell::ForwardSequenceBatch(const std::vector<Matrix>& seqs) const {
  const int n = static_cast<int>(seqs.size());
  LCE_CHECK(n > 0);
  for (const Matrix& s : seqs) {
    LCE_CHECK(s.rows() >= 1);
    LCE_CHECK(s.cols() == in_dim_);
  }
  std::vector<int> order = SortByLengthDesc(seqs);
  Matrix out(n, hidden_dim_);
  Matrix hcur = Matrix::Zeros(n, hidden_dim_);
  Matrix ccur = Matrix::Zeros(n, hidden_dim_);
  int active = n;
  const int max_len = seqs[order[0]].rows();
  for (int t = 0; t < max_len; ++t) {
    int still = active;
    while (still > 0 && seqs[order[still - 1]].rows() <= t) --still;
    if (still < active) {
      for (int r = still; r < active; ++r) {
        const float* src = hcur.RowPtr(r);
        std::copy(src, src + hidden_dim_, out.RowPtr(order[r]));
      }
      hcur = ShrinkRows(hcur, still);
      ccur = ShrinkRows(ccur, still);
      active = still;
    }
    // z = [x_t, h_{t-1}] per active row, one fused gate projection.
    Matrix z(active, in_dim_ + hidden_dim_);
    for (int r = 0; r < active; ++r) {
      float* zrow = z.RowPtr(r);
      const float* src = seqs[order[r]].RowPtr(t);
      std::copy(src, src + in_dim_, zrow);
      const float* hrow = hcur.RowPtr(r);
      std::copy(hrow, hrow + hidden_dim_, zrow + in_dim_);
    }
    Matrix pre = MatMulBiasAct(z, w_.value, b_.value, Activation::kIdentity);
    Matrix h_next(active, hidden_dim_);
    Matrix c_next(active, hidden_dim_);
    for (int r = 0; r < active; ++r) {
      const float* g = pre.RowPtr(r);
      const float* cp = ccur.RowPtr(r);
      float* hn = h_next.RowPtr(r);
      float* cn = c_next.RowPtr(r);
      // Gate arithmetic matches ForwardSequence term for term.
      for (int j = 0; j < hidden_dim_; ++j) {
        float i = 1.0f / (1.0f + std::exp(-g[j]));
        float f = 1.0f / (1.0f + std::exp(-g[hidden_dim_ + j]));
        float gg = std::tanh(g[2 * hidden_dim_ + j]);
        float o = 1.0f / (1.0f + std::exp(-g[3 * hidden_dim_ + j]));
        float cv = f * cp[j] + i * gg;
        cn[j] = cv;
        hn[j] = o * std::tanh(cv);
      }
    }
    hcur = std::move(h_next);
    ccur = std::move(c_next);
  }
  for (int r = 0; r < active; ++r) {
    const float* src = hcur.RowPtr(r);
    std::copy(src, src + hidden_dim_, out.RowPtr(order[r]));
  }
  return out;
}

void LstmCell::BackwardSequence(const Matrix& dh_final) {
  LCE_CHECK_MSG(!cache_.empty(), "BackwardSequence without ForwardSequence");
  Matrix dh = dh_final;
  Matrix dc = Matrix::Zeros(1, hidden_dim_);
  for (int t = static_cast<int>(cache_.size()) - 1; t >= 0; --t) {
    const StepCache& step = cache_[t];
    Matrix dgates(1, 4 * hidden_dim_);
    Matrix dc_prev(1, hidden_dim_);
    for (int j = 0; j < hidden_dim_; ++j) {
      float i = step.gates.At(0, j);
      float f = step.gates.At(0, hidden_dim_ + j);
      float g = step.gates.At(0, 2 * hidden_dim_ + j);
      float o = step.gates.At(0, 3 * hidden_dim_ + j);
      float tc = step.tanh_c.At(0, j);
      float dhj = dh.At(0, j);
      // h = o * tanh(c)
      float do_ = dhj * tc;
      float dcj = dc.At(0, j) + dhj * o * (1.0f - tc * tc);
      // c = f * c_prev + i * g
      float di = dcj * g;
      float df = dcj * c_prev_[t].At(0, j);
      float dg = dcj * i;
      dc_prev.At(0, j) = dcj * f;
      // Through the gate nonlinearities.
      dgates.At(0, j) = di * i * (1.0f - i);
      dgates.At(0, hidden_dim_ + j) = df * f * (1.0f - f);
      dgates.At(0, 2 * hidden_dim_ + j) = dg * (1.0f - g * g);
      dgates.At(0, 3 * hidden_dim_ + j) = do_ * o * (1.0f - o);
    }
    w_.grad.Add(MatMulTransA(step.z, dgates));
    b_.grad.Add(dgates);
    Matrix dz = MatMulTransB(dgates, w_.value);
    // Split dz into dx (discarded) and dh_prev.
    Matrix dh_prev(1, hidden_dim_);
    for (int j = 0; j < hidden_dim_; ++j) {
      dh_prev.At(0, j) = dz.At(0, in_dim_ + j);
    }
    dh = dh_prev;
    dc = dc_prev;
  }
}

}  // namespace nn
}  // namespace lce
