// Exact query execution for ground truth.
//
// Cardinalities of acyclic equi-join queries are computed without
// materializing intermediate results: each query's join edges form a spanning
// tree, so a bottom-up weighted count (message passing over join keys) yields
// the exact COUNT(*) in O(rows) per table. This is the oracle every estimator
// is scored against, and the engine behind the optimizer's true-cost replay.

#ifndef LCE_EXEC_EXECUTOR_H_
#define LCE_EXEC_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/exec/oracle_index.h"
#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace exec {

/// Bitmap (1 byte per row) of rows in `table_index` satisfying the query's
/// predicates on that table. Rows of tables without predicates are all 1.
std::vector<uint8_t> FilterBitmap(const storage::Database& db,
                                  const query::Query& q, int table_index);

/// Number of set bits. Bytes must be 0 or 1 (the FilterBitmap contract);
/// counts eight bytes per step via a word-wide byte sum.
uint64_t CountSet(const std::vector<uint8_t>& bitmap);

class Executor {
 public:
  /// `db` must outlive the executor.
  explicit Executor(const storage::Database* db)
      : db_(db), accel_(std::make_unique<OracleIndex>(db)) {}

  /// Opts this executor into the LCE_QUERY_LOG sink: every Cardinality call
  /// appends a kind="exec" record (exact count + latency). Off by default so
  /// auxiliary executors — the sampling estimator's sample-level executor,
  /// the workload generator's bulk labeler — don't flood the log; bench
  /// harnesses enable it on their ground-truth executor.
  void EnableQueryLog(bool on = true) { log_queries_ = on; }

  /// Exact COUNT(*) of the query. Returned as double: exact for counts below
  /// 2^53, which covers every configuration in the study.
  double Cardinality(const query::Query& q) const;

  /// Exact COUNT(*) restricted to a connected subset of the query's tables
  /// (with the query's predicates and the induced join edges). Used by the
  /// optimizer to cost intermediate results under true cardinalities.
  double SubsetCardinality(const query::Query& q,
                           const std::vector<int>& tables) const;

  const storage::Database& db() const { return *db_; }

 private:
  /// One TreeCount over `tables`/`edges`, dispatched to the indexed path
  /// (LCE_ORACLE_INDEX, default) or the naive row-by-row scan. The two are
  /// exact-integer-identical (asserted by tests/oracle_equivalence_test.cpp).
  double Count(const query::Query& q, const std::vector<int>& tables,
               const std::vector<int>& edges) const;

  const storage::Database* db_;
  std::unique_ptr<OracleIndex> accel_;
  bool log_queries_ = false;
};

}  // namespace exec
}  // namespace lce

#endif  // LCE_EXEC_EXECUTOR_H_
