#include "src/exec/executor.h"

#include <unordered_map>

#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace lce {
namespace exec {

namespace {

// Work counters (LCE_METRICS). Bulk-added once per loop, never per row, so
// the enabled overhead stays negligible next to the scans themselves.
telemetry::Counter& RowsScanned() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.rows_scanned");
  return c;
}

telemetry::Counter& FilterBitmaps() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.filter_bitmaps");
  return c;
}

telemetry::Counter& JoinRowsVisited() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.join_rows_visited");
  return c;
}

telemetry::Counter& CardinalityQueries() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.cardinality_queries");
  return c;
}

}  // namespace

std::vector<uint8_t> FilterBitmap(const storage::Database& db,
                                  const query::Query& q, int table_index) {
  const storage::Table& table = db.table(table_index);
  std::vector<uint8_t> bitmap(table.num_rows(), 1);
  FilterBitmaps().Increment();
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table != table_index) continue;
    const std::vector<storage::Value>& col = table.column(p.col.column);
    for (uint64_t r = 0; r < col.size(); ++r) {
      if (col[r] < p.lo || col[r] > p.hi) bitmap[r] = 0;
    }
    RowsScanned().Add(col.size());
  }
  return bitmap;
}

uint64_t CountSet(const std::vector<uint8_t>& bitmap) {
  uint64_t n = 0;
  for (uint8_t b : bitmap) n += b;
  return n;
}

namespace {

// The column of `table` participating in join edge `e`.
int EdgeColumn(const storage::DatabaseSchema& schema,
               const storage::JoinEdge& e, int table) {
  if (schema.TableIndex(e.left_table) == table) {
    return schema.tables[table].ColumnIndex(e.left_column);
  }
  LCE_CHECK(schema.TableIndex(e.right_table) == table);
  return schema.tables[table].ColumnIndex(e.right_column);
}

// Weighted-count message passing over the query's join tree restricted to
// `tables` with join edges `edges` (which must span `tables`).
double TreeCount(const storage::Database& db, const query::Query& q,
                 const std::vector<int>& tables,
                 const std::vector<int>& edges) {
  const storage::DatabaseSchema& schema = db.schema();
  if (tables.size() == 1) {
    return static_cast<double>(CountSet(FilterBitmap(db, q, tables[0])));
  }

  // Adjacency over the induced tree.
  std::unordered_map<int, std::vector<std::pair<int, int>>> adj;  // t -> (nbr, edge)
  for (int e : edges) {
    const storage::JoinEdge& je = schema.joins[e];
    int lt = schema.TableIndex(je.left_table);
    int rt = schema.TableIndex(je.right_table);
    adj[lt].push_back({rt, e});
    adj[rt].push_back({lt, e});
  }

  // Iterative post-order DFS from the first table.
  int root = tables[0];
  struct Frame {
    int table;
    int parent;
    int parent_edge;  // -1 for root
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root, -1, -1, 0});

  // Messages: for a non-root table t with parent edge e, W[t] maps each join-
  // key value of t's side of e to the weighted count of t's subtree.
  std::unordered_map<int, std::unordered_map<storage::Value, double>> messages;
  double result = 0;

  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& neighbors = adj[f.table];
    if (f.next_child < neighbors.size()) {
      auto [nbr, edge] = neighbors[f.next_child++];
      if (nbr != f.parent) stack.push_back({nbr, f.table, edge, 0});
      continue;
    }

    // All children processed: compute this table's message (or the result).
    const storage::Table& table = db.table(f.table);
    std::vector<uint8_t> bitmap = FilterBitmap(db, q, f.table);

    // Child edges and their key columns in this table.
    std::vector<std::pair<const std::unordered_map<storage::Value, double>*,
                          const std::vector<storage::Value>*>>
        child_inputs;
    for (auto [nbr, edge] : neighbors) {
      if (nbr == f.parent) continue;
      int col = EdgeColumn(schema, schema.joins[edge], f.table);
      LCE_CHECK(col >= 0);
      child_inputs.push_back({&messages[nbr], &table.column(col)});
    }

    JoinRowsVisited().Add(table.num_rows());
    if (f.parent < 0) {
      double total = 0;
      for (uint64_t r = 0; r < table.num_rows(); ++r) {
        if (!bitmap[r]) continue;
        double w = 1;
        for (auto& [msg, col] : child_inputs) {
          auto it = msg->find((*col)[r]);
          if (it == msg->end()) {
            w = 0;
            break;
          }
          w *= it->second;
        }
        total += w;
      }
      result = total;
    } else {
      int pcol = EdgeColumn(schema, schema.joins[f.parent_edge], f.table);
      LCE_CHECK(pcol >= 0);
      const std::vector<storage::Value>& parent_keys = table.column(pcol);
      std::unordered_map<storage::Value, double>& out = messages[f.table];
      for (uint64_t r = 0; r < table.num_rows(); ++r) {
        if (!bitmap[r]) continue;
        double w = 1;
        for (auto& [msg, col] : child_inputs) {
          auto it = msg->find((*col)[r]);
          if (it == msg->end()) {
            w = 0;
            break;
          }
          w *= it->second;
        }
        if (w > 0) out[parent_keys[r]] += w;
      }
    }
    // Free child messages no longer needed.
    for (auto [nbr, edge] : neighbors) {
      (void)edge;
      if (nbr != f.parent) messages.erase(nbr);
    }
    stack.pop_back();
  }
  return result;
}

}  // namespace

double Executor::Cardinality(const query::Query& q) const {
  CardinalityQueries().Increment();
  if (log_queries_ && telemetry::QueryLogEnabled()) {
    Timer timer;
    double card = TreeCount(*db_, q, q.tables, q.join_edges);
    double micros = timer.ElapsedMicros();
    // Same top-level keys as ce::ExplainRecord::ToJsonLine so one parser
    // reads the whole log; estimate == truth for the oracle by definition.
    std::string line;
    JsonWriter w(&line, JsonWriter::Style::kCompact);
    w.BeginObject()
        .Key("estimator").Value("exec.oracle")
        .Key("kind").Value("exec")
        .Key("estimate").Value(card)
        .Key("truth").Value(card)
        .Key("qerror").Value(1.0)
        .Key("latency_us").Value(micros)
        .Key("query")
        .BeginObject()
        .Key("tables").Value(uint64_t{q.tables.size()})
        .Key("joins").Value(static_cast<uint64_t>(q.num_joins()))
        .Key("predicates").Value(uint64_t{q.predicates.size()})
        .EndObject()
        .EndObject();
    telemetry::QueryLog::Global().Append(line);
    return card;
  }
  return TreeCount(*db_, q, q.tables, q.join_edges);
}

double Executor::SubsetCardinality(const query::Query& q,
                                   const std::vector<int>& tables) const {
  // Induced edges: those of q with both endpoints inside `tables`.
  const storage::DatabaseSchema& schema = db_->schema();
  std::vector<int> edges;
  auto in_subset = [&](int t) {
    for (int x : tables) {
      if (x == t) return true;
    }
    return false;
  };
  for (int e : q.join_edges) {
    const storage::JoinEdge& je = schema.joins[e];
    if (in_subset(schema.TableIndex(je.left_table)) &&
        in_subset(schema.TableIndex(je.right_table))) {
      edges.push_back(e);
    }
  }
  LCE_CHECK_MSG(edges.size() == tables.size() - 1,
                "SubsetCardinality requires a connected subset of the query");
  return TreeCount(*db_, q, tables, edges);
}

}  // namespace exec
}  // namespace lce
