#include "src/exec/executor.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "src/storage/column_index.h"
#include "src/util/json_writer.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace lce {
namespace exec {

namespace {

// Work counters (LCE_METRICS). Bulk-added once per loop, never per row, so
// the enabled overhead stays negligible next to the scans themselves.
telemetry::Counter& RowsScanned() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.rows_scanned");
  return c;
}

telemetry::Counter& FilterBitmaps() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.filter_bitmaps");
  return c;
}

telemetry::Counter& JoinRowsVisited() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.join_rows_visited");
  return c;
}

telemetry::Counter& CardinalityQueries() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.cardinality_queries");
  return c;
}

}  // namespace

std::vector<uint8_t> FilterBitmap(const storage::Database& db,
                                  const query::Query& q, int table_index) {
  const storage::Table& table = db.table(table_index);
  std::vector<uint8_t> bitmap(table.num_rows(), 1);
  FilterBitmaps().Increment();
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table != table_index) continue;
    const std::vector<storage::Value>& col = table.column(p.col.column);
    for (uint64_t r = 0; r < col.size(); ++r) {
      if (col[r] < p.lo || col[r] > p.hi) bitmap[r] = 0;
    }
    RowsScanned().Add(col.size());
  }
  return bitmap;
}

uint64_t CountSet(const std::vector<uint8_t>& bitmap) {
  // Bytes are 0/1, so a word's byte sum fits in one byte and
  // (word * 0x0101...01) >> 56 adds all eight lanes without carrying out.
  uint64_t n = 0;
  const uint8_t* data = bitmap.data();
  size_t i = 0;
  for (; i + 8 <= bitmap.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    n += (word * 0x0101010101010101ULL) >> 56;
  }
  for (; i < bitmap.size(); ++i) n += data[i];
  return n;
}

namespace {

// The column of `table` participating in join edge `e`.
int EdgeColumn(const storage::DatabaseSchema& schema,
               const storage::JoinEdge& e, int table) {
  if (schema.TableIndex(e.left_table) == table) {
    return schema.tables[table].ColumnIndex(e.left_column);
  }
  LCE_CHECK(schema.TableIndex(e.right_table) == table);
  return schema.tables[table].ColumnIndex(e.right_column);
}

// Weighted-count message passing over the query's join tree restricted to
// `tables` with join edges `edges` (which must span `tables`).
double TreeCount(const storage::Database& db, const query::Query& q,
                 const std::vector<int>& tables,
                 const std::vector<int>& edges) {
  const storage::DatabaseSchema& schema = db.schema();
  if (tables.size() == 1) {
    return static_cast<double>(CountSet(FilterBitmap(db, q, tables[0])));
  }

  // Adjacency over the induced tree.
  std::unordered_map<int, std::vector<std::pair<int, int>>> adj;  // t -> (nbr, edge)
  for (int e : edges) {
    const storage::JoinEdge& je = schema.joins[e];
    int lt = schema.TableIndex(je.left_table);
    int rt = schema.TableIndex(je.right_table);
    adj[lt].push_back({rt, e});
    adj[rt].push_back({lt, e});
  }

  // Iterative post-order DFS from the first table.
  int root = tables[0];
  struct Frame {
    int table;
    int parent;
    int parent_edge;  // -1 for root
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root, -1, -1, 0});

  // Messages: for a non-root table t with parent edge e, W[t] maps each join-
  // key value of t's side of e to the weighted count of t's subtree.
  std::unordered_map<int, std::unordered_map<storage::Value, double>> messages;
  double result = 0;

  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& neighbors = adj[f.table];
    if (f.next_child < neighbors.size()) {
      auto [nbr, edge] = neighbors[f.next_child++];
      if (nbr != f.parent) stack.push_back({nbr, f.table, edge, 0});
      continue;
    }

    // All children processed: compute this table's message (or the result).
    const storage::Table& table = db.table(f.table);
    std::vector<uint8_t> bitmap = FilterBitmap(db, q, f.table);

    // Child edges and their key columns in this table.
    std::vector<std::pair<const std::unordered_map<storage::Value, double>*,
                          const std::vector<storage::Value>*>>
        child_inputs;
    for (auto [nbr, edge] : neighbors) {
      if (nbr == f.parent) continue;
      int col = EdgeColumn(schema, schema.joins[edge], f.table);
      LCE_CHECK(col >= 0);
      child_inputs.push_back({&messages[nbr], &table.column(col)});
    }

    JoinRowsVisited().Add(table.num_rows());
    if (f.parent < 0) {
      double total = 0;
      for (uint64_t r = 0; r < table.num_rows(); ++r) {
        if (!bitmap[r]) continue;
        double w = 1;
        for (auto& [msg, col] : child_inputs) {
          auto it = msg->find((*col)[r]);
          if (it == msg->end()) {
            w = 0;
            break;
          }
          w *= it->second;
        }
        total += w;
      }
      result = total;
    } else {
      int pcol = EdgeColumn(schema, schema.joins[f.parent_edge], f.table);
      LCE_CHECK(pcol >= 0);
      const std::vector<storage::Value>& parent_keys = table.column(pcol);
      std::unordered_map<storage::Value, double>& out = messages[f.table];
      for (uint64_t r = 0; r < table.num_rows(); ++r) {
        if (!bitmap[r]) continue;
        double w = 1;
        for (auto& [msg, col] : child_inputs) {
          auto it = msg->find((*col)[r]);
          if (it == msg->end()) {
            w = 0;
            break;
          }
          w *= it->second;
        }
        if (w > 0) out[parent_keys[r]] += w;
      }
    }
    // Free child messages no longer needed.
    for (auto [nbr, edge] : neighbors) {
      (void)edge;
      if (nbr != f.parent) messages.erase(nbr);
    }
    stack.pop_back();
  }
  return result;
}

// Message buffers reused across TreeCountIndexed calls on each thread:
// capacity is retained, so a query pays a memset of warm pages instead of a
// fresh multi-hundred-KB allocation per message (edge domains run to ~10^5
// dense ids). Deque keeps references stable while the pool grows; calls on
// one thread never nest, so per-call slot numbering starting at 0 is safe.
std::vector<double>* AcquireMessageBuffer(size_t slot, size_t domain) {
  thread_local std::deque<std::vector<double>> pool;
  while (slot >= pool.size()) pool.emplace_back();
  pool[slot].assign(domain, 0.0);
  return &pool[slot];
}

// Indexed analogue of TreeCount (LCE_ORACLE_INDEX, default on). Three
// changes, each exact-integer-identical to the naive path:
//   * per-table row sets come from OracleIndex::Filter — binary-searched
//     candidate ranges on the sorted column indexes, LRU-cached across
//     queries — instead of full-column scans;
//   * join messages are flat std::vector<double> accumulators indexed by the
//     edge's dense join-key ids (storage::JoinKeyIndex) instead of per-query
//     unordered_maps. The dense domain covers both endpoint columns, so an
//     id is always valid and a 0 entry means exactly "key absent below";
//   * unfiltered tables skip row iteration where the message is known in
//     closed form: a leaf's message is its side's precomputed per-id
//     histogram, and a one-child root total is the histogram/message dot
//     product over the dense domain;
//   * the root table's total is a block-parallel ParallelReduce with chunk
//     partial sums combined in index order. All weights are nonnegative
//     integers bounded by the final count, so every partial sum is exactly
//     representable and the summation order cannot change the result (the
//     determinism argument of DESIGN.md §8).
double TreeCountIndexed(const storage::Database& db, OracleIndex* accel,
                        const query::Query& q, const std::vector<int>& tables,
                        const std::vector<int>& edges) {
  const storage::DatabaseSchema& schema = db.schema();
  if (tables.size() == 1) {
    FilterBitmaps().Increment();
    return static_cast<double>(accel->CountFiltered(q, tables[0]));
  }
  const storage::DatabaseIndex& dbi = db.index();

  std::unordered_map<int, std::vector<std::pair<int, int>>> adj;  // t -> (nbr, edge)
  for (int e : edges) {
    const storage::JoinEdge& je = schema.joins[e];
    int lt = schema.TableIndex(je.left_table);
    int rt = schema.TableIndex(je.right_table);
    adj[lt].push_back({rt, e});
    adj[rt].push_back({lt, e});
  }

  int root = tables[0];
  struct Frame {
    int table;
    int parent;
    int parent_edge;  // -1 for root
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root, -1, -1, 0});

  // The dense-id side of a table in one of its edges, and that side's
  // precomputed per-id row histogram.
  auto edge_ids = [&](int edge, int table) -> const std::vector<uint32_t>& {
    const storage::JoinKeyIndex& jk = dbi.Edge(edge);
    const storage::JoinEdge& je = schema.joins[edge];
    return schema.TableIndex(je.left_table) == table ? jk.left_ids
                                                     : jk.right_ids;
  };
  auto edge_counts = [&](int edge, int table) -> const std::vector<double>& {
    const storage::JoinKeyIndex& jk = dbi.Edge(edge);
    const storage::JoinEdge& je = schema.joins[edge];
    return schema.TableIndex(je.left_table) == table ? jk.left_counts
                                                     : jk.right_counts;
  };

  // Messages: for a non-root table t with parent edge e, (*messages[t])[id]
  // is the weighted count of t's subtree for dense key id of e's domain. The
  // pointee is either a pooled accumulation buffer or, for an unfiltered
  // leaf, the edge's precomputed histogram itself (never copied).
  std::unordered_map<int, const std::vector<double>*> messages;
  size_t pool_slots = 0;
  double result = 0;

  constexpr int64_t kRootGrain = 4096;
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& neighbors = adj[f.table];
    if (f.next_child < neighbors.size()) {
      auto [nbr, edge] = neighbors[f.next_child++];
      if (nbr != f.parent) stack.push_back({nbr, f.table, edge, 0});
      continue;
    }

    const storage::Table& table = db.table(f.table);
    std::shared_ptr<const FilteredTable> filtered = accel->Filter(q, f.table);

    std::vector<std::pair<const std::vector<double>*, const uint32_t*>>
        child_inputs;
    std::vector<int> child_edges;
    for (auto [nbr, edge] : neighbors) {
      if (nbr == f.parent) continue;
      child_inputs.push_back({messages[nbr], edge_ids(edge, f.table).data()});
      child_edges.push_back(edge);
    }

    // Product of child message entries at row r; 0 as soon as any child
    // subtree has no match (the dense analogue of a failed map lookup).
    auto weight = [&child_inputs](uint64_t r) {
      double w = 1;
      for (auto& [msg, ids] : child_inputs) {
        double m = (*msg)[ids[r]];
        if (m == 0) return 0.0;
        w *= m;
      }
      return w;
    };

    // Unfiltered tables can skip row iteration entirely in two shapes. Both
    // substitutions are sums/products of the same nonnegative integers the
    // row loop would produce (all < 2^53), so the results are bit-identical;
    // exec.join_rows_visited counts only rows actually iterated.
    if (f.parent < 0) {
      if (filtered->all_rows && child_inputs.size() == 1) {
        // Root with one child and no predicates: the total is the dot product
        // of the root side's per-id histogram with the child message —
        // O(domain) instead of O(rows). (More than one child needs the joint
        // per-row id combination, so it stays a row loop.)
        const std::vector<double>& hist =
            edge_counts(child_edges[0], f.table);
        const std::vector<double>& msg = *child_inputs[0].first;
        result = parallel::ParallelReduce<double>(
            0, static_cast<int64_t>(hist.size()), kRootGrain, 0.0,
            [&](int64_t b, int64_t e) {
              double s = 0;
              for (int64_t i = b; i < e; ++i) {
                s += hist[static_cast<uint64_t>(i)] *
                     msg[static_cast<uint64_t>(i)];
              }
              return s;
            },
            [](double a, double b) { return a + b; });
      } else {
        auto sum_rows = [&](int64_t b, int64_t e) {
          double s = 0;
          if (filtered->all_rows) {
            for (int64_t r = b; r < e; ++r) {
              s += weight(static_cast<uint64_t>(r));
            }
          } else {
            for (int64_t i = b; i < e; ++i) {
              s += weight(filtered->rows[static_cast<uint64_t>(i)]);
            }
          }
          return s;
        };
        int64_t n = filtered->all_rows ? static_cast<int64_t>(table.num_rows())
                                       : static_cast<int64_t>(filtered->count);
        JoinRowsVisited().Add(static_cast<uint64_t>(n));
        result = parallel::ParallelReduce<double>(
            0, n, kRootGrain, 0.0, sum_rows,
            [](double a, double b) { return a + b; });
      }
    } else if (filtered->all_rows && child_inputs.empty()) {
      // Unfiltered leaf: its message is exactly its side's per-id histogram,
      // already built with the edge index — no rows to visit, no copy.
      messages[f.table] = &edge_counts(f.parent_edge, f.table);
    } else {
      const std::vector<uint32_t>& parent_ids =
          edge_ids(f.parent_edge, f.table);
      std::vector<double>& out = *AcquireMessageBuffer(
          pool_slots++, dbi.Edge(f.parent_edge).domain);
      messages[f.table] = &out;
      auto accumulate = [&](uint64_t r) {
        double w = weight(r);
        if (w > 0) out[parent_ids[r]] += w;
      };
      if (filtered->all_rows) {
        JoinRowsVisited().Add(table.num_rows());
        for (uint64_t r = 0; r < table.num_rows(); ++r) accumulate(r);
      } else if (child_inputs.empty()) {
        // Filtered leaf: every weight is 1.
        JoinRowsVisited().Add(filtered->count);
        for (uint32_t r : filtered->rows) out[parent_ids[r]] += 1.0;
      } else {
        JoinRowsVisited().Add(filtered->count);
        for (uint32_t r : filtered->rows) accumulate(r);
      }
    }
    for (auto [nbr, edge] : neighbors) {
      (void)edge;
      if (nbr != f.parent) messages.erase(nbr);
    }
    stack.pop_back();
  }
  return result;
}

}  // namespace

double Executor::Count(const query::Query& q, const std::vector<int>& tables,
                       const std::vector<int>& edges) const {
  if (OracleIndexEnabled()) {
    return TreeCountIndexed(*db_, accel_.get(), q, tables, edges);
  }
  return TreeCount(*db_, q, tables, edges);
}

double Executor::Cardinality(const query::Query& q) const {
  CardinalityQueries().Increment();
  const bool log = log_queries_ && telemetry::QueryLogEnabled();
  const bool fr_on = log_queries_ && telemetry::FlightRecorderEnabled();
  if (log || fr_on) {
    Timer timer;
    double card = Count(q, q.tables, q.join_edges);
    double micros = timer.ElapsedMicros();
    if (fr_on) {
      // Oracle records give postmortems the ground-truth context around an
      // estimator's bad estimate: kind 'x', estimate == truth by definition.
      telemetry::ForensicRecord fr;
      fr.kind = 'x';
      telemetry::SetFrName(fr.estimator, sizeof(fr.estimator), "exec.oracle");
      telemetry::SetFrName(fr.scope, sizeof(fr.scope),
                           telemetry::PhaseScope::Current());
      fr.estimate = card;
      fr.truth = card;
      fr.qerror = 1.0;
      fr.latency_us = micros;
      fr.num_tables = static_cast<uint16_t>(q.tables.size());
      fr.num_joins = static_cast<uint16_t>(q.num_joins());
      fr.num_predicates = static_cast<uint16_t>(q.predicates.size());
      int nt = std::min<int>(telemetry::kFrMaxTables,
                             static_cast<int>(q.tables.size()));
      for (int i = 0; i < nt; ++i) {
        fr.tables[i] = static_cast<int16_t>(q.tables[static_cast<size_t>(i)]);
      }
      fr.tables_recorded = static_cast<uint8_t>(nt);
      int np = std::min<int>(telemetry::kFrMaxPredicates,
                             static_cast<int>(q.predicates.size()));
      for (int i = 0; i < np; ++i) {
        const query::Predicate& p = q.predicates[static_cast<size_t>(i)];
        fr.preds[i].table = static_cast<int16_t>(p.col.table);
        fr.preds[i].column = static_cast<int16_t>(p.col.column);
        fr.preds[i].lo = p.lo;
        fr.preds[i].hi = p.hi;
      }
      fr.preds_recorded = static_cast<uint8_t>(np);
      // Oracle latency is a different population from estimator latency;
      // keep these records out of the latency trigger's rolling window.
      telemetry::FlightRecorder::Global().Append(fr,
                                                 /*trigger_eligible=*/false);
    }
    if (!log) return card;
    // Same top-level keys as ce::ExplainRecord::ToJsonLine so one parser
    // reads the whole log; estimate == truth for the oracle by definition.
    std::string line;
    JsonWriter w(&line, JsonWriter::Style::kCompact);
    w.BeginObject()
        .Key("estimator").Value("exec.oracle")
        .Key("kind").Value("exec")
        .Key("estimate").Value(card)
        .Key("truth").Value(card)
        .Key("qerror").Value(1.0)
        .Key("latency_us").Value(micros)
        .Key("query")
        .BeginObject()
        .Key("tables").Value(uint64_t{q.tables.size()})
        .Key("joins").Value(static_cast<uint64_t>(q.num_joins()))
        .Key("predicates").Value(uint64_t{q.predicates.size()})
        .EndObject()
        .EndObject();
    telemetry::QueryLog::Global().Append(line);
    return card;
  }
  return Count(q, q.tables, q.join_edges);
}

double Executor::SubsetCardinality(const query::Query& q,
                                   const std::vector<int>& tables) const {
  // Checked before the tables.size() - 1 below: an empty subset would
  // underflow the unsigned size and read as a huge edge requirement.
  LCE_CHECK_MSG(!tables.empty(),
                "SubsetCardinality requires a non-empty table subset");
  // Induced edges: those of q with both endpoints inside `tables`.
  const storage::DatabaseSchema& schema = db_->schema();
  std::vector<int> edges;
  auto in_subset = [&](int t) {
    for (int x : tables) {
      if (x == t) return true;
    }
    return false;
  };
  for (int e : q.join_edges) {
    const storage::JoinEdge& je = schema.joins[e];
    if (in_subset(schema.TableIndex(je.left_table)) &&
        in_subset(schema.TableIndex(je.right_table))) {
      edges.push_back(e);
    }
  }
  LCE_CHECK_MSG(edges.size() == tables.size() - 1,
                "SubsetCardinality requires a connected subset of the query");
  return Count(q, tables, edges);
}

}  // namespace exec
}  // namespace lce
