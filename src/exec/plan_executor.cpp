#include "src/exec/plan_executor.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/executor.h"
#include "src/util/logging.h"

namespace lce {
namespace exec {

namespace {

// Join edges of `q` with one endpoint in `left` and the other in `right`.
struct ConnectingEdge {
  int left_table;
  int left_column;
  int right_table;
  int right_column;
};

std::vector<ConnectingEdge> ConnectingEdges(
    const query::Query& q, const storage::DatabaseSchema& schema,
    const std::vector<int>& left, const std::vector<int>& right) {
  auto contains = [](const std::vector<int>& v, int x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  std::vector<ConnectingEdge> out;
  for (int e : q.join_edges) {
    const storage::JoinEdge& je = schema.joins[e];
    int lt = schema.TableIndex(je.left_table);
    int rt = schema.TableIndex(je.right_table);
    int lc = schema.tables[lt].ColumnIndex(je.left_column);
    int rc = schema.tables[rt].ColumnIndex(je.right_column);
    if (contains(left, lt) && contains(right, rt)) {
      out.push_back({lt, lc, rt, rc});
    } else if (contains(left, rt) && contains(right, lt)) {
      out.push_back({rt, rc, lt, lc});
    }
  }
  return out;
}

int IndexOfTable(const std::vector<int>& tables, int table) {
  auto it = std::find(tables.begin(), tables.end(), table);
  LCE_CHECK(it != tables.end());
  return static_cast<int>(it - tables.begin());
}

}  // namespace

Result<PlanExecutor::Intermediate> PlanExecutor::ExecuteNode(
    const query::Query& q, const opt::Plan& plan, int node,
    ExecStats* stats) const {
  const opt::PlanNode& n = plan.nodes[node];
  if (n.IsLeaf()) {
    Intermediate out;
    out.tables = {n.table};
    out.rows.resize(1);
    std::vector<uint8_t> bitmap = FilterBitmap(*db_, q, n.table);
    stats->tuples_scanned += bitmap.size();
    for (uint64_t r = 0; r < bitmap.size(); ++r) {
      if (bitmap[r]) out.rows[0].push_back(static_cast<uint32_t>(r));
    }
    stats->peak_intermediate = std::max(stats->peak_intermediate, out.size());
    return out;
  }

  Result<Intermediate> left_result = ExecuteNode(q, plan, n.left, stats);
  if (!left_result.ok()) return left_result.status();
  Result<Intermediate> right_result = ExecuteNode(q, plan, n.right, stats);
  if (!right_result.ok()) return right_result.status();
  Intermediate left = std::move(left_result).value();
  Intermediate right = std::move(right_result).value();

  std::vector<ConnectingEdge> edges =
      ConnectingEdges(q, db_->schema(), left.tables, right.tables);
  LCE_CHECK_MSG(!edges.empty(), "plan joins disconnected subplans");

  // Hash join: build on the smaller input using the first connecting edge;
  // any further connecting edges become post-join filters.
  bool build_left = left.size() <= right.size();
  Intermediate& build = build_left ? left : right;
  Intermediate& probe = build_left ? right : left;
  // Orient the edges build-side-first.
  std::vector<ConnectingEdge> oriented;
  for (const ConnectingEdge& e : edges) {
    if (build_left) {
      oriented.push_back(e);
    } else {
      oriented.push_back({e.right_table, e.right_column, e.left_table,
                          e.left_column});
    }
  }
  const ConnectingEdge& key_edge = oriented[0];

  int build_pos = IndexOfTable(build.tables, key_edge.left_table);
  const std::vector<storage::Value>& build_keys =
      db_->table(key_edge.left_table).column(key_edge.left_column);
  std::unordered_map<storage::Value, std::vector<uint64_t>> hash_table;
  hash_table.reserve(build.size());
  for (uint64_t i = 0; i < build.size(); ++i) {
    hash_table[build_keys[build.rows[build_pos][i]]].push_back(i);
  }
  stats->tuples_built += build.size();

  Intermediate out;
  out.tables = build.tables;
  out.tables.insert(out.tables.end(), probe.tables.begin(),
                    probe.tables.end());
  out.rows.resize(out.tables.size());

  int probe_pos = IndexOfTable(probe.tables, key_edge.right_table);
  const std::vector<storage::Value>& probe_keys =
      db_->table(key_edge.right_table).column(key_edge.right_column);

  // Extra-edge filters: (build tuple, probe tuple) must also match here.
  struct ExtraFilter {
    int build_pos;
    const std::vector<storage::Value>* build_col;
    int probe_pos;
    const std::vector<storage::Value>* probe_col;
  };
  std::vector<ExtraFilter> extra;
  for (size_t e = 1; e < oriented.size(); ++e) {
    extra.push_back(
        {IndexOfTable(build.tables, oriented[e].left_table),
         &db_->table(oriented[e].left_table).column(oriented[e].left_column),
         IndexOfTable(probe.tables, oriented[e].right_table),
         &db_->table(oriented[e].right_table).column(oriented[e].right_column)});
  }

  for (uint64_t j = 0; j < probe.size(); ++j) {
    ++stats->tuples_probed;
    auto it = hash_table.find(probe_keys[probe.rows[probe_pos][j]]);
    if (it == hash_table.end()) continue;
    for (uint64_t i : it->second) {
      bool pass = true;
      for (const ExtraFilter& f : extra) {
        if ((*f.build_col)[build.rows[f.build_pos][i]] !=
            (*f.probe_col)[probe.rows[f.probe_pos][j]]) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      for (size_t c = 0; c < build.tables.size(); ++c) {
        out.rows[c].push_back(build.rows[c][i]);
      }
      for (size_t c = 0; c < probe.tables.size(); ++c) {
        out.rows[build.tables.size() + c].push_back(probe.rows[c][j]);
      }
      if (out.size() > options_.max_intermediate_tuples) {
        return Status::Internal(
            "intermediate result exceeded the execution budget (" +
            std::to_string(options_.max_intermediate_tuples) + " tuples)");
      }
    }
  }
  stats->tuples_output += out.size();
  stats->peak_intermediate = std::max(stats->peak_intermediate, out.size());
  return out;
}

Result<ExecStats> PlanExecutor::Execute(const query::Query& q,
                                        const opt::Plan& plan) const {
  LCE_CHECK_MSG(plan.root >= 0, "empty plan");
  ExecStats stats;
  Result<Intermediate> root = ExecuteNode(q, plan, plan.root, &stats);
  if (!root.ok()) return root.status();
  stats.result = static_cast<double>(root.value().size());
  return stats;
}

}  // namespace exec
}  // namespace lce
