#include "src/exec/oracle_index.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "src/storage/column_index.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/memory.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace exec {

namespace {

std::atomic<int> g_enabled_override{-1};
std::atomic<int> g_capacity_override{-1};

bool EnabledFromEnv() {
  const char* v = std::getenv("LCE_ORACLE_INDEX");
  return v == nullptr || std::string_view(v) != "0";
}

int CapacityFromEnv() {
  const char* v = std::getenv("LCE_BITMAP_CACHE_SIZE");
  if (v == nullptr || *v == '\0') return 64;
  int n = std::atoi(v);
  return n < 0 ? 0 : n;
}

telemetry::Counter& IndexProbes() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.index_probes");
  return c;
}

telemetry::Counter& CacheHits() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.bitmap_cache_hit");
  return c;
}

telemetry::Counter& CacheMisses() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.bitmap_cache_miss");
  return c;
}

telemetry::Counter& CandidateRowsScanned() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.rows_scanned");
  return c;
}

// Same counter name the naive FilterBitmap path bumps, so "filter sets
// built" reads continuously across LCE_ORACLE_INDEX settings.
telemetry::Counter& FilterSetsBuilt() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().counter("exec.filter_bitmaps");
  return c;
}

/// One predicate resolved against the sorted column index: the candidate
/// positions [first, last) plus the column data for membership re-checks.
struct ResolvedPredicate {
  const storage::SortedColumnIndex* index = nullptr;
  const std::vector<storage::Value>* column = nullptr;
  storage::Value lo = 0;
  storage::Value hi = 0;
  uint64_t first = 0;
  uint64_t last = 0;

  uint64_t width() const { return last - first; }
  bool Test(uint32_t row) const {
    storage::Value v = (*column)[row];
    return v >= lo && v <= hi;
  }
};

/// Binary-searches every predicate of `q` on `table`; returns them with the
/// shortest candidate range first (stable on ties, so the choice is a
/// deterministic function of the query).
std::vector<ResolvedPredicate> Resolve(const storage::Database& db,
                                       const query::Query& q, int table) {
  std::vector<ResolvedPredicate> out;
  const storage::DatabaseIndex& dbi = db.index();
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table != table) continue;
    ResolvedPredicate r;
    r.index = &dbi.Column(table, p.col.column);
    r.column = &db.table(table).column(p.col.column);
    r.lo = p.lo;
    r.hi = p.hi;
    auto [first, last] = r.index->EqualRange(p.lo, p.hi);
    r.first = first;
    r.last = last;
    IndexProbes().Increment();
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ResolvedPredicate& a, const ResolvedPredicate& b) {
                     return a.width() < b.width();
                   });
  return out;
}

constexpr int64_t kScanGrain = 8192;

// A candidate-range scan touches rows in value order (random access); a full
// sequential scan touches every row but streams each column. The random scan
// only wins while the lead range is a small fraction of the table, so wide
// filters take the sequential path. The choice is a deterministic function
// of the query and data, and both paths produce identical exact counts.
bool PreferSequentialScan(uint64_t lead_width, uint64_t num_rows) {
  return lead_width * 4 > num_rows;
}

// Streams every predicate column over [b, e), writing 0/1 bytes into `pass`
// (length e - b). Column-major and branch-free, so the compiler vectorizes
// each predicate sweep.
void EvalPredicatesChunk(const std::vector<ResolvedPredicate>& preds,
                         int64_t b, int64_t e, uint8_t* pass) {
  std::fill(pass, pass + (e - b), uint8_t{1});
  for (const ResolvedPredicate& p : preds) {
    const storage::Value* col = p.column->data();
    for (int64_t r = b; r < e; ++r) {
      pass[r - b] = static_cast<uint8_t>(
          pass[r - b] & static_cast<uint8_t>(col[r] >= p.lo) &
          static_cast<uint8_t>(col[r] <= p.hi));
    }
  }
}

// Byte sum of a 0/1 buffer, eight lanes per multiply (see exec::CountSet).
uint64_t WordSum(const uint8_t* data, int64_t len) {
  uint64_t n = 0;
  int64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, data + i, sizeof(word));
    n += (word * 0x0101010101010101ULL) >> 56;
  }
  for (; i < len; ++i) n += data[i];
  return n;
}

}  // namespace

bool OracleIndexEnabled() {
  int o = g_enabled_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static bool env = EnabledFromEnv();
  return env;
}

void SetOracleIndexEnabledForTesting(int on) {
  g_enabled_override.store(on, std::memory_order_relaxed);
}

int BitmapCacheCapacity() {
  int o = g_capacity_override.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static int env = CapacityFromEnv();
  return env;
}

void SetBitmapCacheCapacityForTesting(int capacity) {
  g_capacity_override.store(capacity, std::memory_order_relaxed);
}

namespace {

// Approximate heap footprint of one cache entry: the key string, the row-id
// vector, and the bookkeeping structs. Feeds the MemoryTracker "cache"
// subsystem so manifests show how much the LRU actually holds.
int64_t CacheEntryBytes(const std::string& key, const FilteredTable& f) {
  return static_cast<int64_t>(sizeof(FilteredTable) + key.size() +
                              f.rows.capacity() * sizeof(uint32_t));
}

}  // namespace

OracleIndex::OracleIndex(const storage::Database* db) : db_(db) {}

OracleIndex::~OracleIndex() {
  // Return this executor's cached bytes to the global accounting; entries
  // die with the LRU list.
  std::lock_guard<std::mutex> lock(mu_);
  for (const CacheEntry& e : lru_) {
    telemetry::MemoryTracker::Global().Add(
        "cache", -CacheEntryBytes(e.key, *e.filtered));
  }
}

uint64_t OracleIndex::CountFiltered(const query::Query& q, int table) {
  std::vector<ResolvedPredicate> preds = Resolve(*db_, q, table);
  const uint64_t num_rows = db_->table(table).num_rows();
  if (preds.empty()) return num_rows;
  const ResolvedPredicate& lead = preds[0];
  if (preds.size() == 1) return lead.width();
  if (PreferSequentialScan(lead.width(), num_rows)) {
    CandidateRowsScanned().Add(num_rows);
    return parallel::ParallelReduce<uint64_t>(
        0, static_cast<int64_t>(num_rows), kScanGrain, 0,
        [&](int64_t b, int64_t e) {
          thread_local std::vector<uint8_t> pass;
          pass.resize(static_cast<size_t>(e - b));
          EvalPredicatesChunk(preds, b, e, pass.data());
          return WordSum(pass.data(), e - b);
        },
        [](uint64_t a, uint64_t b) { return a + b; });
  }
  CandidateRowsScanned().Add(lead.width());
  return parallel::ParallelReduce<uint64_t>(
      static_cast<int64_t>(lead.first), static_cast<int64_t>(lead.last),
      kScanGrain, 0,
      [&](int64_t b, int64_t e) {
        uint64_t n = 0;
        for (int64_t i = b; i < e; ++i) {
          uint32_t row = lead.index->rows[static_cast<uint64_t>(i)];
          bool pass = true;
          for (size_t p = 1; p < preds.size(); ++p) {
            if (!preds[p].Test(row)) {
              pass = false;
              break;
            }
          }
          n += pass ? 1 : 0;
        }
        return n;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

std::shared_ptr<const FilteredTable> OracleIndex::Build(const query::Query& q,
                                                        int table) {
  auto out = std::make_shared<FilteredTable>();
  FilterSetsBuilt().Increment();
  std::vector<ResolvedPredicate> preds = Resolve(*db_, q, table);
  if (preds.empty()) {
    out->all_rows = true;
    out->count = db_->table(table).num_rows();
    return out;
  }
  const ResolvedPredicate& lead = preds[0];
  const uint64_t num_rows = db_->table(table).num_rows();
  if (PreferSequentialScan(lead.width(), num_rows)) {
    // Wide filter: stream every row through all predicates. Chunks partition
    // [0, rows) in order, so the concatenation is ascending row ids.
    CandidateRowsScanned().Add(num_rows);
    const int64_t num_chunks =
        (static_cast<int64_t>(num_rows) + kScanGrain - 1) / kScanGrain;
    std::vector<std::vector<uint32_t>> parts(static_cast<size_t>(num_chunks));
    parallel::ParallelForChunks(
        0, static_cast<int64_t>(num_rows), kScanGrain,
        [&](int64_t chunk, int64_t b, int64_t e) {
          thread_local std::vector<uint8_t> pass;
          pass.resize(static_cast<size_t>(e - b));
          EvalPredicatesChunk(preds, b, e, pass.data());
          std::vector<uint32_t>& rows = parts[static_cast<size_t>(chunk)];
          for (int64_t r = b; r < e; ++r) {
            if (pass[r - b]) rows.push_back(static_cast<uint32_t>(r));
          }
        });
    for (const std::vector<uint32_t>& part : parts) {
      out->rows.insert(out->rows.end(), part.begin(), part.end());
    }
  } else if (preds.size() == 1) {
    out->rows.assign(lead.index->rows.begin() + lead.first,
                     lead.index->rows.begin() + lead.last);
  } else {
    CandidateRowsScanned().Add(lead.width());
    // Per-chunk row collection reassembled in chunk order. Chunks partition
    // the candidate range in order, so the concatenation is exactly the
    // sequential scan order (deterministic at every thread count) and no
    // sort is needed.
    const int64_t begin = static_cast<int64_t>(lead.first);
    const int64_t end = static_cast<int64_t>(lead.last);
    const int64_t num_chunks = (end - begin + kScanGrain - 1) / kScanGrain;
    std::vector<std::vector<uint32_t>> parts(static_cast<size_t>(num_chunks));
    parallel::ParallelForChunks(
        begin, end, kScanGrain, [&](int64_t chunk, int64_t b, int64_t e) {
          std::vector<uint32_t>& rows = parts[static_cast<size_t>(chunk)];
          for (int64_t i = b; i < e; ++i) {
            uint32_t row = lead.index->rows[static_cast<uint64_t>(i)];
            bool pass = true;
            for (size_t p = 1; p < preds.size(); ++p) {
              if (!preds[p].Test(row)) {
                pass = false;
                break;
              }
            }
            if (pass) rows.push_back(row);
          }
        });
    for (const std::vector<uint32_t>& part : parts) {
      out->rows.insert(out->rows.end(), part.begin(), part.end());
    }
  }
  out->count = out->rows.size();
  return out;
}

std::shared_ptr<const FilteredTable> OracleIndex::Filter(const query::Query& q,
                                                         int table) {
  // Canonical key: table, data version, and the predicate list sorted by
  // (column, lo, hi) — the same filter reached through differently ordered
  // predicate lists shares one entry, and appends invalidate implicitly.
  std::vector<std::tuple<int, storage::Value, storage::Value>> preds;
  for (const query::Predicate& p : q.predicates) {
    if (p.col.table == table) preds.push_back({p.col.column, p.lo, p.hi});
  }
  if (preds.empty() || BitmapCacheCapacity() == 0) return Build(q, table);
  std::sort(preds.begin(), preds.end());
  std::string key = std::to_string(table) + '@' +
                    std::to_string(db_->table(table).version());
  for (const auto& [col, lo, hi] : preds) {
    key += '|';
    key += std::to_string(col);
    key += ':';
    key += std::to_string(lo);
    key += ':';
    key += std::to_string(hi);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      CacheHits().Increment();
      return it->second->filtered;
    }
  }
  CacheMisses().Increment();
  // Built outside the lock: concurrent misses on one key build twice and the
  // last insert wins — value-identical, so correctness is unaffected.
  std::shared_ptr<const FilteredTable> filtered = Build(q, table);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->filtered;
  }
  telemetry::MemoryTracker::Global().Add("cache",
                                         CacheEntryBytes(key, *filtered));
  lru_.push_front({key, filtered});
  by_key_[key] = lru_.begin();
  int capacity = BitmapCacheCapacity();
  while (static_cast<int>(lru_.size()) > capacity) {
    const CacheEntry& victim = lru_.back();
    telemetry::MemoryTracker::Global().Add(
        "cache", -CacheEntryBytes(victim.key, *victim.filtered));
    by_key_.erase(victim.key);
    lru_.pop_back();
  }
  return filtered;
}

}  // namespace exec
}  // namespace lce
