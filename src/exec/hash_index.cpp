#include "src/exec/hash_index.h"

#include "src/util/logging.h"

namespace lce {
namespace exec {

void HashIndex::Build(const storage::Table& table, int column) {
  LCE_CHECK(column >= 0 && column < table.num_columns());
  buckets_.clear();
  const std::vector<storage::Value>& col = table.column(column);
  buckets_.reserve(table.stats(column).distinct);
  for (uint64_t r = 0; r < col.size(); ++r) {
    buckets_[col[r]].push_back(static_cast<uint32_t>(r));
  }
  built_ = true;
}

uint64_t HashIndex::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& [key, rows] : buckets_) {
    bytes += sizeof(key) + rows.size() * sizeof(uint32_t) + 16;
  }
  return bytes;
}

}  // namespace exec
}  // namespace lce
