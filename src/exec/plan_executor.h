// Physical plan execution.
//
// Interprets an optimizer plan (opt::Plan) against the stored data: leaf
// scans filter base tables into row-id sets, inner nodes perform hash joins
// over row-id tuples, and the root's output size is the exact COUNT(*).
// Alongside the answer it reports operator-level work statistics — the
// "actually executed" end-to-end numbers (experiment R17), complementing the
// noise-free cost replay of eval::EvaluatePlanQuality.

#ifndef LCE_EXEC_PLAN_EXECUTOR_H_
#define LCE_EXEC_PLAN_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "src/optimizer/planner.h"
#include "src/query/query.h"
#include "src/storage/database.h"
#include "src/util/status.h"

namespace lce {
namespace exec {

/// Work performed by one plan execution.
struct ExecStats {
  uint64_t tuples_scanned = 0;   // base rows read by leaf scans
  uint64_t tuples_built = 0;     // rows inserted into join hash tables
  uint64_t tuples_probed = 0;    // rows probing join hash tables
  uint64_t tuples_output = 0;    // rows emitted by all joins
  uint64_t peak_intermediate = 0;
  double result = 0;             // final COUNT(*)

  /// Total work in tuple operations — the executed-latency proxy.
  uint64_t TotalWork() const {
    return tuples_scanned + tuples_built + tuples_probed + tuples_output;
  }
};

class PlanExecutor {
 public:
  struct Options {
    /// Execution aborts (ResourceExhausted-style) when any intermediate
    /// exceeds this many tuples — a bad plan's blowup is the finding, not a
    /// reason to hang the harness.
    uint64_t max_intermediate_tuples = 20'000'000;
  };

  PlanExecutor(const storage::Database* db, Options options)
      : db_(db), options_(options) {}
  explicit PlanExecutor(const storage::Database* db)
      : PlanExecutor(db, Options{}) {}

  /// Executes `plan` for `q`; the returned stats' `result` equals the exact
  /// COUNT(*) of the query (verified against the analytic executor in tests).
  Result<ExecStats> Execute(const query::Query& q,
                            const opt::Plan& plan) const;

 private:
  /// Row-id tuples over a set of base tables (columnar, parallel arrays).
  struct Intermediate {
    std::vector<int> tables;                  // base table ids, sorted
    std::vector<std::vector<uint32_t>> rows;  // rows[i] for tables[i]
    uint64_t size() const { return rows.empty() ? 0 : rows[0].size(); }
  };

  Result<Intermediate> ExecuteNode(const query::Query& q,
                                   const opt::Plan& plan, int node,
                                   ExecStats* stats) const;

  const storage::Database* db_;
  Options options_;
};

}  // namespace exec
}  // namespace lce

#endif  // LCE_EXEC_PLAN_EXECUTOR_H_
