// Oracle acceleration layer for the exact executor (see DESIGN.md §8).
//
// Wraps the Database-level indexes (src/storage/column_index.h) with the
// query-facing machinery the oracle hot path needs:
//
//   * indexed filter evaluation — a table's per-query predicate list becomes
//     binary-searched candidate ranges on the sorted column indexes; only
//     the shortest range is scanned, against the remaining predicates, so
//     selective filters cost O(selected) instead of O(rows x predicates);
//   * an LRU cache of filtered row sets keyed on (table, data version,
//     canonical predicate list) — the workload generator's rejection loop and
//     the optimizer's subset replay re-filter the same per-table predicate
//     lists many times per labeling run;
//   * block-parallel candidate scans on the src/util/parallel.h pool with
//     chunk-order reassembly, so results are bit-identical at any thread
//     count (LCE_THREADS=1 included).
//
// The whole layer is toggled by LCE_ORACLE_INDEX (default on; "0" restores
// the naive row-by-row oracle for A/B verification) and instrumented with
// exec.index_probes / exec.bitmap_cache_{hit,miss} counters.

#ifndef LCE_EXEC_ORACLE_INDEX_H_
#define LCE_EXEC_ORACLE_INDEX_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/query/query.h"
#include "src/storage/database.h"

namespace lce {
namespace exec {

/// True when the oracle acceleration layer is active: LCE_ORACLE_INDEX unset
/// or set to anything but "0".
bool OracleIndexEnabled();

/// Overrides LCE_ORACLE_INDEX (tests, A/B benches). on < 0 restores the
/// env-derived value.
void SetOracleIndexEnabledForTesting(int on);

/// Capacity (entries) of each executor's filtered-set cache, from
/// LCE_BITMAP_CACHE_SIZE (default 64; 0 disables caching).
int BitmapCacheCapacity();

/// Overrides LCE_BITMAP_CACHE_SIZE; capacity < 0 restores the env value.
void SetBitmapCacheCapacityForTesting(int capacity);

/// The rows of one table passing a query's predicates on that table.
struct FilteredTable {
  uint64_t count = 0;
  /// True when the table has no predicates in the query: every row passes
  /// and `rows` is left empty rather than materializing 0..n-1.
  bool all_rows = false;
  /// Passing row ids in the deterministic order of the leading predicate's
  /// sorted-column index (value-ascending, row-id tiebreak) — NOT ascending
  /// by row. Consumers only sum exact integers per row, so iteration order
  /// never affects results, and skipping the sort keeps Build() linear.
  std::vector<uint32_t> rows;  // unused when all_rows
};

/// Per-executor acceleration state. Thread-safe: parallel labeling workers
/// share the executor's instance. The heavyweight structures (sorted columns,
/// join-key remaps) live on the Database and are shared across executors.
class OracleIndex {
 public:
  /// `db` must outlive the index.
  explicit OracleIndex(const storage::Database* db);

  /// Releases the cache's MemoryTracker bytes along with the entries.
  ~OracleIndex();

  /// Exact number of rows of `table` passing q's predicates on it, without
  /// materializing the row set: two binary searches for a single predicate,
  /// a shortest-candidate-range scan otherwise.
  uint64_t CountFiltered(const query::Query& q, int table);

  /// The passing row set of `table`, served from the LRU cache when the same
  /// (table, predicate list) was filtered before.
  std::shared_ptr<const FilteredTable> Filter(const query::Query& q,
                                              int table);

 private:
  std::shared_ptr<const FilteredTable> Build(const query::Query& q, int table);

  const storage::Database* db_;
  // LRU over canonical filter keys, most recent at the front.
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const FilteredTable> filtered;
  };
  std::mutex mu_;
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> by_key_;
};

}  // namespace exec
}  // namespace lce

#endif  // LCE_EXEC_ORACLE_INDEX_H_
