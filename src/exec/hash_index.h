// Hash index: join-key value -> row ids. The substrate behind the Wander
// Join estimator's random walks (and usable by any index-assisted operator).

#ifndef LCE_EXEC_HASH_INDEX_H_
#define LCE_EXEC_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/storage/table.h"

namespace lce {
namespace exec {

class HashIndex {
 public:
  /// Indexes `column` of `table`.
  void Build(const storage::Table& table, int column);

  /// Row ids holding `key`; nullptr when the key is absent.
  const std::vector<uint32_t>* Lookup(storage::Value key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

  uint64_t SizeBytes() const;
  bool built() const { return built_; }

 private:
  std::unordered_map<storage::Value, std::vector<uint32_t>> buckets_;
  bool built_ = false;
};

}  // namespace exec
}  // namespace lce

#endif  // LCE_EXEC_HASH_INDEX_H_
