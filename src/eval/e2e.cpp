#include "src/eval/e2e.h"

#include <algorithm>

namespace lce {
namespace eval {

PlanQuality EvaluatePlanQuality(const storage::Database& db,
                                const exec::Executor& executor,
                                const opt::Planner& planner,
                                ce::Estimator* estimator,
                                const query::Query& q) {
  opt::CardFn est_cards = [&](const std::vector<int>& tables) {
    return estimator->EstimateCardinality(
        query::Restrict(q, tables, db.schema()));
  };
  opt::CardFn true_cards = [&](const std::vector<int>& tables) {
    return executor.SubsetCardinality(q, tables);
  };

  PlanQuality out;
  opt::Plan est_plan = planner.BestPlan(q, est_cards);
  opt::Plan opt_plan = planner.BestPlan(q, true_cards);
  out.est_plan_true_cost = planner.CostWithCards(q, est_plan, true_cards);
  out.opt_plan_true_cost = opt_plan.cost;  // already true-cost
  out.p_error = out.opt_plan_true_cost > 0
                    ? out.est_plan_true_cost / out.opt_plan_true_cost
                    : 1.0;
  out.p_error = std::max(1.0, out.p_error);
  return out;
}

WorkloadPlanQuality EvaluateWorkloadPlanQuality(
    const storage::Database& db, const exec::Executor& executor,
    const opt::Planner& planner, ce::Estimator* estimator,
    const std::vector<query::LabeledQuery>& workload) {
  WorkloadPlanQuality agg;
  double p_sum = 0;
  size_t n = 0;
  for (const auto& lq : workload) {
    if (lq.q.tables.size() < 2) continue;  // join queries only
    PlanQuality pq =
        EvaluatePlanQuality(db, executor, planner, estimator, lq.q);
    agg.total_est_cost += pq.est_plan_true_cost;
    agg.total_opt_cost += pq.opt_plan_true_cost;
    p_sum += pq.p_error;
    agg.max_p_error = std::max(agg.max_p_error, pq.p_error);
    ++n;
  }
  agg.mean_p_error = n > 0 ? p_sum / static_cast<double>(n) : 1.0;
  return agg;
}

}  // namespace eval
}  // namespace lce
