// Accuracy metrics and estimator evaluation.

#ifndef LCE_EVAL_METRICS_H_
#define LCE_EVAL_METRICS_H_

#include <vector>

#include "src/ce/estimator.h"
#include "src/query/query.h"
#include "src/util/stats.h"

namespace lce {
namespace eval {

/// Q-error (Moerkotte et al.): max(est/true, true/est), both sides clamped at
/// one tuple. Always >= 1.
double QError(double estimate, double truth);

struct AccuracyReport {
  std::vector<double> qerrors;  // per test query
  SampleSummary summary;        // of the q-errors
};

/// Estimates every test query and summarizes the q-errors.
AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test);

/// Per-query inference latency distribution. Latency sampling stops at a cap
/// (queries are i.i.d. draws; 200 is plenty for a stable mean) — the report
/// says so explicitly instead of silently averaging over an invisible subset.
struct LatencyReport {
  SampleSummary micros;  // per-query latency distribution (mean, p50/p95/p99)
  size_t measured = 0;   // queries actually timed
  size_t total = 0;      // queries available
  bool capped = false;   // measured < total
};

/// Default latency sample cap when neither the caller nor
/// LCE_BENCH_LATENCY_SAMPLES picks one.
inline constexpr size_t kDefaultLatencySampleCap = 200;

/// The effective latency sample cap: LCE_BENCH_LATENCY_SAMPLES when set to a
/// positive integer (re-read on every call so tests can setenv), else
/// kDefaultLatencySampleCap. Recorded in run manifests as
/// `latency_sample_cap`.
size_t LatencySampleCap();

/// Times `estimator` on the first min(cap, test.size()) test queries, one
/// clock read per query, and feeds each sample into the
/// eval.estimate_latency_us histogram (when LCE_METRICS is on). The default
/// cap = 0 means "use LatencySampleCap()".
LatencyReport MeasureEstimateLatency(
    ce::Estimator* estimator, const std::vector<query::LabeledQuery>& test,
    size_t cap = 0);

}  // namespace eval
}  // namespace lce

#endif  // LCE_EVAL_METRICS_H_
