// Accuracy metrics and estimator evaluation.

#ifndef LCE_EVAL_METRICS_H_
#define LCE_EVAL_METRICS_H_

#include <vector>

#include "src/ce/estimator.h"
#include "src/query/query.h"
#include "src/util/stats.h"

namespace lce {
namespace eval {

/// Q-error (Moerkotte et al.): max(est/true, true/est), both sides clamped at
/// one tuple. Always >= 1.
double QError(double estimate, double truth);

struct AccuracyReport {
  std::vector<double> qerrors;  // per test query
  SampleSummary summary;        // of the q-errors
};

/// Estimates every test query and summarizes the q-errors.
AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test);

/// Mean inference latency in microseconds over (at most `cap`) test queries.
double MeanEstimateLatencyMicros(ce::Estimator* estimator,
                                 const std::vector<query::LabeledQuery>& test,
                                 size_t cap = 200);

}  // namespace eval
}  // namespace lce

#endif  // LCE_EVAL_METRICS_H_
