#include "src/eval/metrics.h"

#include <algorithm>

#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace lce {
namespace eval {

double QError(double estimate, double truth) {
  double e = std::max(1.0, estimate);
  double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test) {
  AccuracyReport report;
  report.qerrors.resize(test.size());
  // Queries score independently, so estimators that declare a thread-safe
  // inference path are evaluated in parallel chunks (per-index writes); the
  // q-error vector is identical to the sequential scan either way.
  if (estimator->ThreadSafeEstimate() && parallel::ThreadCount() > 1) {
    parallel::ParallelFor(
        0, static_cast<int64_t>(test.size()), /*grain=*/8,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            const query::LabeledQuery& lq = test[static_cast<size_t>(i)];
            report.qerrors[static_cast<size_t>(i)] =
                QError(estimator->EstimateCardinality(lq.q), lq.cardinality);
          }
        });
  } else {
    for (size_t i = 0; i < test.size(); ++i) {
      report.qerrors[i] = QError(estimator->EstimateCardinality(test[i].q),
                                 test[i].cardinality);
    }
  }
  report.summary = Summarize(report.qerrors);
  return report;
}

double MeanEstimateLatencyMicros(ce::Estimator* estimator,
                                 const std::vector<query::LabeledQuery>& test,
                                 size_t cap) {
  size_t n = std::min(cap, test.size());
  if (n == 0) return 0;
  Timer timer;
  for (size_t i = 0; i < n; ++i) {
    estimator->EstimateCardinality(test[i].q);
  }
  return timer.ElapsedMicros() / static_cast<double>(n);
}

}  // namespace eval
}  // namespace lce
