#include "src/eval/metrics.h"

#include <algorithm>

#include "src/util/timer.h"

namespace lce {
namespace eval {

double QError(double estimate, double truth) {
  double e = std::max(1.0, estimate);
  double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test) {
  AccuracyReport report;
  report.qerrors.reserve(test.size());
  for (const auto& lq : test) {
    double est = estimator->EstimateCardinality(lq.q);
    report.qerrors.push_back(QError(est, lq.cardinality));
  }
  report.summary = Summarize(report.qerrors);
  return report;
}

double MeanEstimateLatencyMicros(ce::Estimator* estimator,
                                 const std::vector<query::LabeledQuery>& test,
                                 size_t cap) {
  size_t n = std::min(cap, test.size());
  if (n == 0) return 0;
  Timer timer;
  for (size_t i = 0; i < n; ++i) {
    estimator->EstimateCardinality(test[i].q);
  }
  return timer.ElapsedMicros() / static_cast<double>(n);
}

}  // namespace eval
}  // namespace lce
