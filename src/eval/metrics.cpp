#include "src/eval/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "src/ce/explain.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/drift.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace lce {
namespace eval {

double QError(double estimate, double truth) {
  double e = std::max(1.0, estimate);
  double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test) {
  telemetry::ScopedPhase phase("eval/accuracy");
  AccuracyReport report;
  report.qerrors.resize(test.size());
  // Queries score independently. A vectorized EstimateBatch() override wins
  // over per-query parallelism (it amortizes encoding and traverses the
  // model batched, parallelizing internally); otherwise estimators that
  // declare a thread-safe inference path are evaluated in parallel chunks
  // (per-index writes). Overrides are bit-identical to the per-query calls
  // by contract, so the q-error vector is the same on every path.
  if (estimator->HasBatchEstimate()) {
    std::vector<query::Query> queries;
    queries.reserve(test.size());
    for (const query::LabeledQuery& lq : test) queries.push_back(lq.q);
    std::vector<double> ests = estimator->EstimateBatch(queries);
    LCE_CHECK(ests.size() == test.size());
    for (size_t i = 0; i < test.size(); ++i) {
      report.qerrors[i] = QError(ests[i], test[i].cardinality);
    }
  } else if (estimator->ThreadSafeEstimate() && parallel::ThreadCount() > 1) {
    parallel::ParallelFor(
        0, static_cast<int64_t>(test.size()), /*grain=*/8,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            const query::LabeledQuery& lq = test[static_cast<size_t>(i)];
            report.qerrors[static_cast<size_t>(i)] =
                QError(estimator->EstimateCardinality(lq.q), lq.cardinality);
          }
        });
  } else {
    for (size_t i = 0; i < test.size(); ++i) {
      report.qerrors[i] = QError(estimator->EstimateCardinality(test[i].q),
                                 test[i].cardinality);
    }
  }
  // Drift wiring (LCE_DRIFT_WINDOW): feed q-errors into the estimator's
  // global monitor in index order, after estimation — deterministic at every
  // thread count and invisible to the estimator, so estimates stay
  // bit-identical with the monitor on or off.
  if (telemetry::DriftEnabled()) {
    telemetry::DriftMonitor& monitor =
        telemetry::GlobalDriftMonitor(estimator->Name());
    for (double qe : report.qerrors) monitor.Observe(qe);
  }
  report.summary = Summarize(report.qerrors);
  return report;
}

size_t LatencySampleCap() {
  const char* env = std::getenv("LCE_BENCH_LATENCY_SAMPLES");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<size_t>(v);
    LCE_LOG(WARN) << "ignoring invalid LCE_BENCH_LATENCY_SAMPLES=" << env
                  << "; using default " << kDefaultLatencySampleCap;
  }
  return kDefaultLatencySampleCap;
}

LatencyReport MeasureEstimateLatency(
    ce::Estimator* estimator, const std::vector<query::LabeledQuery>& test,
    size_t cap) {
  telemetry::ScopedPhase phase("eval/latency");
  if (cap == 0) cap = LatencySampleCap();
  static telemetry::Histogram& latency_hist =
      telemetry::MetricsRegistry::Global().histogram("eval.estimate_latency_us");
  LatencyReport report;
  report.total = test.size();
  report.measured = std::min(cap, test.size());
  report.capped = report.measured < report.total;
  if (report.measured == 0) return report;
  std::vector<double> samples(report.measured);
  Timer timer;
  // With LCE_QUERY_LOG set, every timed query also streams an explain record
  // (per-predicate breakdown, fallbacks, model counters, latency, q-error).
  // Diagnostics share the estimate's arithmetic, so the estimates themselves
  // are bit-identical to the plain path.
  const bool log = telemetry::QueryLogEnabled();
  for (size_t i = 0; i < report.measured; ++i) {
    if (log) {
      ce::ExplainRecord rec;
      timer.Reset();
      double est = estimator->EstimateWithDiagnostics(test[i].q, &rec);
      samples[i] = timer.ElapsedMicros();
      rec.latency_us = samples[i];
      rec.truth = test[i].cardinality;
      rec.qerror = QError(est, test[i].cardinality);
      telemetry::QueryLog::Global().Append(rec.ToJsonLine());
    } else {
      timer.Reset();
      estimator->EstimateCardinality(test[i].q);
      samples[i] = timer.ElapsedMicros();
    }
    latency_hist.Observe(samples[i]);
  }
  report.micros = Summarize(samples);
  return report;
}

}  // namespace eval
}  // namespace lce
