#include "src/eval/metrics.h"

#include <algorithm>
#include <cstdlib>

#include "src/ce/explain.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/drift.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace lce {
namespace eval {

double QError(double estimate, double truth) {
  double e = std::max(1.0, estimate);
  double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

namespace {

// Copies query IR (and, when available, the diagnostics' per-predicate
// selectivity attribution and fallbacks) into a fixed-size forensic record
// for the flight recorder. Pure reads; never touches estimator state.
telemetry::ForensicRecord MakeForensicRecord(const std::string& estimator,
                                             const query::Query& q,
                                             double estimate, double truth,
                                             double qerror, double latency_us,
                                             const ce::ExplainRecord* diag) {
  telemetry::ForensicRecord fr;
  telemetry::SetFrName(fr.estimator, sizeof(fr.estimator), estimator);
  telemetry::SetFrName(fr.scope, sizeof(fr.scope),
                       telemetry::PhaseScope::Current());
  fr.estimate = estimate;
  fr.truth = truth;
  fr.qerror = qerror;
  fr.latency_us = latency_us;
  fr.num_tables = static_cast<uint16_t>(q.tables.size());
  fr.num_joins = static_cast<uint16_t>(q.num_joins());
  fr.num_predicates = static_cast<uint16_t>(q.predicates.size());
  int nt = std::min<int>(telemetry::kFrMaxTables,
                         static_cast<int>(q.tables.size()));
  for (int i = 0; i < nt; ++i) {
    fr.tables[i] = static_cast<int16_t>(q.tables[static_cast<size_t>(i)]);
  }
  fr.tables_recorded = static_cast<uint8_t>(nt);
  int np = std::min<int>(telemetry::kFrMaxPredicates,
                         static_cast<int>(q.predicates.size()));
  for (int i = 0; i < np; ++i) {
    const query::Predicate& p = q.predicates[static_cast<size_t>(i)];
    fr.preds[i].table = static_cast<int16_t>(p.col.table);
    fr.preds[i].column = static_cast<int16_t>(p.col.column);
    fr.preds[i].lo = p.lo;
    fr.preds[i].hi = p.hi;
    // Diagnostics list predicates in query order; attribute by index.
    if (diag != nullptr &&
        diag->predicates.size() == q.predicates.size()) {
      fr.preds[i].selectivity =
          diag->predicates[static_cast<size_t>(i)].selectivity;
    }
  }
  fr.preds_recorded = static_cast<uint8_t>(np);
  if (diag != nullptr) {
    fr.num_fallbacks = static_cast<uint16_t>(diag->fallbacks.size());
    if (!diag->fallbacks.empty()) {
      telemetry::SetFrName(fr.fallback_site, sizeof(fr.fallback_site),
                           diag->fallbacks.front().site);
    }
  }
  return fr;
}

}  // namespace

AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test) {
  telemetry::ScopedPhase phase("eval/accuracy");
  AccuracyReport report;
  report.qerrors.resize(test.size());
  // Queries score independently. A vectorized EstimateBatch() override wins
  // over per-query parallelism (it amortizes encoding and traverses the
  // model batched, parallelizing internally); otherwise estimators that
  // declare a thread-safe inference path are evaluated in parallel chunks
  // (per-index writes). Overrides are bit-identical to the per-query calls
  // by contract, so the q-error vector is the same on every path.
  std::vector<double> ests(test.size());
  if (estimator->HasBatchEstimate()) {
    std::vector<query::Query> queries;
    queries.reserve(test.size());
    for (const query::LabeledQuery& lq : test) queries.push_back(lq.q);
    ests = estimator->EstimateBatch(queries);
    LCE_CHECK(ests.size() == test.size());
    for (size_t i = 0; i < test.size(); ++i) {
      report.qerrors[i] = QError(ests[i], test[i].cardinality);
    }
  } else if (estimator->ThreadSafeEstimate() && parallel::ThreadCount() > 1) {
    parallel::ParallelFor(
        0, static_cast<int64_t>(test.size()), /*grain=*/8,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            const query::LabeledQuery& lq = test[static_cast<size_t>(i)];
            ests[static_cast<size_t>(i)] = estimator->EstimateCardinality(lq.q);
            report.qerrors[static_cast<size_t>(i)] =
                QError(ests[static_cast<size_t>(i)], lq.cardinality);
          }
        });
  } else {
    for (size_t i = 0; i < test.size(); ++i) {
      ests[i] = estimator->EstimateCardinality(test[i].q);
      report.qerrors[i] = QError(ests[i], test[i].cardinality);
    }
  }
  // Flight-recorder feed: one low-fidelity context record per scored query
  // (kept trigger-ineligible), and — for queries at or above the q-error
  // bundle trigger — an enriched full-fidelity record from a diagnostics
  // re-estimate (bit-identical by contract), so the bundle's offending
  // record always carries per-predicate selectivities and stage micros.
  if (telemetry::FlightRecorderEnabled()) {
    telemetry::FlightRecorder& recorder = telemetry::FlightRecorder::Global();
    const double trigger = telemetry::QerrTriggerThreshold();
    for (size_t i = 0; i < test.size(); ++i) {
      const query::LabeledQuery& lq = test[i];
      if (trigger > 0 && report.qerrors[i] >= trigger) {
        ce::ExplainRecord diag;
        Timer timer;
        double est = estimator->EstimateWithDiagnostics(lq.q, &diag);
        double latency_us = timer.ElapsedMicros();
        telemetry::ForensicRecord fr =
            MakeForensicRecord(estimator->Name(), lq.q, est, lq.cardinality,
                               QError(est, lq.cardinality), latency_us, &diag);
        telemetry::FillStagesFromThread(&fr);
        recorder.Append(fr, /*trigger_eligible=*/true);
      } else {
        recorder.Append(
            MakeForensicRecord(estimator->Name(), lq.q, ests[i],
                               lq.cardinality, report.qerrors[i],
                               /*latency_us=*/-1, nullptr),
            /*trigger_eligible=*/false);
      }
    }
  }
  // Drift wiring (LCE_DRIFT_WINDOW): feed q-errors into the estimator's
  // global monitor in index order, after estimation — deterministic at every
  // thread count and invisible to the estimator, so estimates stay
  // bit-identical with the monitor on or off.
  if (telemetry::DriftEnabled()) {
    telemetry::DriftMonitor& monitor =
        telemetry::GlobalDriftMonitor(estimator->Name());
    for (double qe : report.qerrors) monitor.Observe(qe);
  }
  report.summary = Summarize(report.qerrors);
  return report;
}

size_t LatencySampleCap() {
  const char* env = std::getenv("LCE_BENCH_LATENCY_SAMPLES");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) return static_cast<size_t>(v);
    LCE_LOG(WARN) << "ignoring invalid LCE_BENCH_LATENCY_SAMPLES=" << env
                  << "; using default " << kDefaultLatencySampleCap;
  }
  return kDefaultLatencySampleCap;
}

LatencyReport MeasureEstimateLatency(
    ce::Estimator* estimator, const std::vector<query::LabeledQuery>& test,
    size_t cap) {
  telemetry::ScopedPhase phase("eval/latency");
  if (cap == 0) cap = LatencySampleCap();
  static telemetry::Histogram& latency_hist =
      telemetry::MetricsRegistry::Global().histogram("eval.estimate_latency_us");
  LatencyReport report;
  report.total = test.size();
  report.measured = std::min(cap, test.size());
  report.capped = report.measured < report.total;
  if (report.measured == 0) return report;
  std::vector<double> samples(report.measured);
  Timer timer;
  // With LCE_QUERY_LOG set, every timed query also streams an explain record
  // (per-predicate breakdown, fallbacks, model counters, latency, q-error).
  // Diagnostics share the estimate's arithmetic, so the estimates themselves
  // are bit-identical to the plain path.
  const bool log = telemetry::QueryLogEnabled();
  const bool fr_on = telemetry::FlightRecorderEnabled();
  for (size_t i = 0; i < report.measured; ++i) {
    if (log || fr_on) {
      ce::ExplainRecord rec;
      timer.Reset();
      double est = estimator->EstimateWithDiagnostics(test[i].q, &rec);
      samples[i] = timer.ElapsedMicros();
      rec.latency_us = samples[i];
      rec.truth = test[i].cardinality;
      rec.qerror = QError(est, test[i].cardinality);
      if (log) telemetry::QueryLog::Global().Append(rec.ToJsonLine());
      if (fr_on) {
        telemetry::ForensicRecord fr = MakeForensicRecord(
            estimator->Name(), test[i].q, est, rec.truth, rec.qerror,
            samples[i], &rec);
        telemetry::FillStagesFromThread(&fr);
        telemetry::FlightRecorder::Global().Append(fr);
      }
    } else {
      timer.Reset();
      estimator->EstimateCardinality(test[i].q);
      samples[i] = timer.ElapsedMicros();
    }
    latency_hist.Observe(samples[i]);
  }
  report.micros = Summarize(samples);
  return report;
}

}  // namespace eval
}  // namespace lce
