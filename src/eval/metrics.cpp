#include "src/eval/metrics.h"

#include <algorithm>

#include "src/util/parallel.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace lce {
namespace eval {

double QError(double estimate, double truth) {
  double e = std::max(1.0, estimate);
  double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

AccuracyReport EvaluateAccuracy(ce::Estimator* estimator,
                                const std::vector<query::LabeledQuery>& test) {
  telemetry::ScopedPhase phase("eval/accuracy");
  AccuracyReport report;
  report.qerrors.resize(test.size());
  // Queries score independently, so estimators that declare a thread-safe
  // inference path are evaluated in parallel chunks (per-index writes); the
  // q-error vector is identical to the sequential scan either way.
  if (estimator->ThreadSafeEstimate() && parallel::ThreadCount() > 1) {
    parallel::ParallelFor(
        0, static_cast<int64_t>(test.size()), /*grain=*/8,
        [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            const query::LabeledQuery& lq = test[static_cast<size_t>(i)];
            report.qerrors[static_cast<size_t>(i)] =
                QError(estimator->EstimateCardinality(lq.q), lq.cardinality);
          }
        });
  } else {
    for (size_t i = 0; i < test.size(); ++i) {
      report.qerrors[i] = QError(estimator->EstimateCardinality(test[i].q),
                                 test[i].cardinality);
    }
  }
  report.summary = Summarize(report.qerrors);
  return report;
}

LatencyReport MeasureEstimateLatency(
    ce::Estimator* estimator, const std::vector<query::LabeledQuery>& test,
    size_t cap) {
  telemetry::ScopedPhase phase("eval/latency");
  static telemetry::Histogram& latency_hist =
      telemetry::MetricsRegistry::Global().histogram("eval.estimate_latency_us");
  LatencyReport report;
  report.total = test.size();
  report.measured = std::min(cap, test.size());
  report.capped = report.measured < report.total;
  if (report.measured == 0) return report;
  std::vector<double> samples(report.measured);
  Timer timer;
  for (size_t i = 0; i < report.measured; ++i) {
    timer.Reset();
    estimator->EstimateCardinality(test[i].q);
    samples[i] = timer.ElapsedMicros();
    latency_hist.Observe(samples[i]);
  }
  report.micros = Summarize(samples);
  return report;
}

}  // namespace eval
}  // namespace lce
