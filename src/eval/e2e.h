// End-to-end plan quality (experiment R9).
//
// For each query: plan once with the estimator's cardinalities, plan once
// with true cardinalities, then score BOTH plans by their true cost. The
// ratio (P-error, Yu et al.) isolates exactly the damage the estimator's
// errors do to optimization, free of execution noise.

#ifndef LCE_EVAL_E2E_H_
#define LCE_EVAL_E2E_H_

#include <vector>

#include "src/ce/estimator.h"
#include "src/exec/executor.h"
#include "src/optimizer/planner.h"

namespace lce {
namespace eval {

struct PlanQuality {
  double est_plan_true_cost = 0;  // estimate-chosen plan, true-cost replay
  double opt_plan_true_cost = 0;  // true-cardinality plan, true cost
  double p_error = 1.0;           // est_plan_true_cost / opt_plan_true_cost
};

/// Plan quality of one query under `estimator`.
PlanQuality EvaluatePlanQuality(const storage::Database& db,
                                const exec::Executor& executor,
                                const opt::Planner& planner,
                                ce::Estimator* estimator,
                                const query::Query& q);

struct WorkloadPlanQuality {
  double total_est_cost = 0;  // summed true cost of estimate-chosen plans
  double total_opt_cost = 0;  // summed true cost of optimal plans
  double mean_p_error = 0;
  double max_p_error = 0;
};

/// Aggregates plan quality over a workload (the study's "E2E latency" rows).
WorkloadPlanQuality EvaluateWorkloadPlanQuality(
    const storage::Database& db, const exec::Executor& executor,
    const opt::Planner& planner, ce::Estimator* estimator,
    const std::vector<query::LabeledQuery>& workload);

}  // namespace eval
}  // namespace lce

#endif  // LCE_EVAL_E2E_H_
