// Scenario: a deployed estimator facing data drift.
//
// A DMV-like registration table receives a batch of new rows with a shifted
// value distribution (new model years, new counties). The example shows the
// stale learned model degrading, recovering via incremental training on
// fresh query feedback, and the statistics baseline recovering via a simple
// re-ANALYZE.

#include <cstdio>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

int main() {
  using namespace lce;

  storage::datagen::DatabaseGenSpec spec = storage::datagen::DmvLikeSpec(0.4);
  auto db = storage::datagen::Generate(spec, 11);
  std::printf("day 0: %llu registrations\n",
              static_cast<unsigned long long>(db->table(0).num_rows()));

  workload::WorkloadOptions wopts;
  wopts.max_joins = 0;
  Rng rng(12);
  auto train = workload::WorkloadGenerator(db.get(), wopts)
                   .GenerateLabeled(2000, &rng);

  auto fcn = ce::MakeEstimator("FCN");
  auto hist = ce::MakeEstimator("Histogram");
  LCE_CHECK_OK(fcn->Build(*db, train));
  LCE_CHECK_OK(hist->Build(*db, train));

  auto report = [&](const char* phase,
                    const std::vector<query::LabeledQuery>& test) {
    std::printf("%-34s FCN geo q-err %-8.3g Histogram geo q-err %.3g\n", phase,
                eval::EvaluateAccuracy(fcn.get(), test).summary.geo_mean,
                eval::EvaluateAccuracy(hist.get(), test).summary.geo_mean);
  };

  auto pre_test = workload::WorkloadGenerator(db.get(), wopts)
                      .GenerateLabeled(200, &rng);
  report("before drift:", pre_test);

  // 50% new rows, heavier skew, shifted domains.
  storage::datagen::AppendShifted(db.get(), spec, 0.5, 0.5, 0.2, 13);
  std::printf("\nafter drift: %llu registrations (+50%%, shifted)\n",
              static_cast<unsigned long long>(db->table(0).num_rows()));
  workload::WorkloadGenerator post_gen(db.get(), wopts);
  auto post_test = post_gen.GenerateLabeled(200, &rng);
  report("stale models on new workload:", post_test);

  // Recovery: the DBA re-analyzes; the learned model trains on feedback.
  LCE_CHECK_OK(hist->UpdateWithData(*db));
  auto feedback = post_gen.GenerateLabeled(400, &rng);
  LCE_CHECK_OK(fcn->UpdateWithQueries(feedback));
  report("after ANALYZE / feedback update:", post_test);
  return 0;
}
