// Scenario: an interactive estimation shell.
//
// Generates (or loads) a database, trains a small panel of estimators, then
// reads SQL COUNT(*) queries from stdin and prints each estimator's guess
// next to the true count. Run it and paste queries, e.g.:
//
//   SELECT COUNT(*) FROM customer, orders
//   WHERE customer.c_custkey = orders.o_custkey
//     AND customer.c_mktsegment = 2;
//
// With no stdin (a terminal-less harness run), it demos three canned queries.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/query/parser.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

int main() {
  using namespace lce;

  auto db = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.08), 7);
  exec::Executor executor(db.get());
  workload::WorkloadOptions wopts;
  wopts.max_joins = 3;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(8);
  auto train = gen.GenerateLabeled(1000, &rng);

  std::vector<std::unique_ptr<ce::Estimator>> panel;
  for (const std::string& name :
       {std::string("Histogram"), std::string("FCN"), std::string("LW-XGB")}) {
    auto est = ce::MakeEstimator(name);
    LCE_CHECK_OK(est->Build(*db, train));
    panel.push_back(std::move(est));
  }
  std::printf("schema: ");
  for (const auto& t : db->schema().tables) std::printf("%s ", t.name.c_str());
  std::printf("\nenter SQL COUNT(*) queries, one per line (empty line quits)\n");

  auto answer = [&](const std::string& sql) {
    auto parsed = query::ParseSql(sql, *db);
    if (!parsed.ok()) {
      std::printf("  parse error: %s\n", parsed.status().ToString().c_str());
      return;
    }
    double truth = executor.Cardinality(parsed.value());
    std::printf("  true count: %.0f\n", truth);
    for (auto& est : panel) {
      double guess = est->EstimateCardinality(parsed.value());
      std::printf("  %-10s -> %-12.0f (q-error %.2f)\n", est->Name().c_str(),
                  guess, eval::QError(guess, truth));
    }
  };

  bool interactive = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) break;
    interactive = true;
    answer(line);
  }
  if (!interactive) {
    for (const char* sql :
         {"SELECT COUNT(*) FROM customer WHERE customer.c_mktsegment = 2;",
          "SELECT COUNT(*) FROM customer, orders WHERE customer.c_custkey = "
          "orders.o_custkey AND orders.o_orderpriority = 1;",
          "SELECT COUNT(*) FROM orders, lineitem WHERE orders.o_orderkey = "
          "lineitem.l_orderkey AND lineitem.l_quantity BETWEEN 10 AND 20 AND "
          "orders.o_orderstatus = 0;"}) {
      std::printf("\n> %s\n", sql);
      answer(sql);
    }
  }
  return 0;
}
