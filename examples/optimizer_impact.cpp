// Scenario: how a cardinality estimator changes the optimizer's join order.
//
// Builds a TPC-H-like database, trains a learned estimator and a classical
// histogram, and for a few multi-join queries shows the plan each estimator
// leads the optimizer to choose — and what those plans actually cost when
// replayed under true cardinalities.

#include <cstdio>

#include "src/ce/factory.h"
#include "src/eval/e2e.h"
#include "src/exec/executor.h"
#include "src/optimizer/planner.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

int main() {
  using namespace lce;

  auto db = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.1), 3);
  exec::Executor executor(db.get());
  opt::Planner planner(db.get(), opt::CostModel{});

  workload::WorkloadOptions wopts;
  wopts.max_joins = 3;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(4);
  auto train = gen.GenerateLabeled(1200, &rng);

  std::printf("training FCN on %zu labeled queries...\n", train.size());
  auto fcn = ce::MakeEstimator("FCN");
  LCE_CHECK_OK(fcn->Build(*db, train));
  auto hist = ce::MakeEstimator("Histogram");
  LCE_CHECK_OK(hist->Build(*db, train));

  // A few 4-table join queries.
  int shown = 0;
  while (shown < 3) {
    auto batch = gen.GenerateLabeled(10, &rng);
    for (const auto& lq : batch) {
      if (lq.q.tables.size() < 4 || shown >= 3) continue;
      ++shown;
      std::printf("\nquery %d: %s\n", shown,
                  query::ToSql(lq.q, db->schema()).c_str());
      std::printf("  true cardinality: %.0f\n", lq.cardinality);

      opt::CardFn true_cards = [&](const std::vector<int>& tables) {
        return executor.SubsetCardinality(lq.q, tables);
      };
      opt::Plan optimal = planner.BestPlan(lq.q, true_cards);
      std::printf("  optimal plan      : %-28s true cost %.0f\n",
                  planner.ToString(lq.q, optimal).c_str(), optimal.cost);

      for (ce::Estimator* est : {hist.get(), fcn.get()}) {
        opt::CardFn est_cards = [&](const std::vector<int>& tables) {
          return est->EstimateCardinality(
              query::Restrict(lq.q, tables, db->schema()));
        };
        opt::Plan plan = planner.BestPlan(lq.q, est_cards);
        double true_cost = planner.CostWithCards(lq.q, plan, true_cards);
        std::printf("  %-10s chooses : %-28s true cost %.0f (%.2fx optimal)\n",
                    est->Name().c_str(), planner.ToString(lq.q, plan).c_str(),
                    true_cost, true_cost / optimal.cost);
      }
    }
  }
  return 0;
}
