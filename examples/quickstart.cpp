// Quickstart: generate a database, label a workload, train two estimators,
// and compare their accuracy — the 60-second tour of the library.

#include <cstdio>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"
#include "src/workload/generator.h"

int main() {
  using namespace lce;

  // 1. A single-table database with correlated, skewed attributes.
  storage::datagen::DatabaseGenSpec spec = storage::datagen::DmvLikeSpec(0.5);
  std::unique_ptr<storage::Database> db = storage::datagen::Generate(spec, 1);
  std::printf("database '%s': %llu rows\n", db->name().c_str(),
              static_cast<unsigned long long>(db->table(0).num_rows()));

  // 2. A labeled workload (true cardinalities from the exact executor).
  workload::WorkloadOptions wopts;
  wopts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(7);
  auto training = gen.GenerateLabeled(2000, &rng);
  auto test = gen.GenerateLabeled(300, &rng);
  std::printf("labeled %zu training / %zu test queries\n", training.size(),
              test.size());
  std::printf("example query: %s  (true count %.0f)\n",
              query::ToSql(test[0].q, db->schema()).c_str(),
              test[0].cardinality);

  // 3. Train a learned estimator and build a traditional baseline.
  TablePrinter table({"estimator", "build_s", "median q-err", "p95 q-err",
                      "max q-err"});
  for (const std::string& name : {std::string("Histogram"),
                                  std::string("FCN")}) {
    auto est = ce::MakeEstimator(name);
    Timer timer;
    Status s = est->Build(*db, training);
    if (!s.ok()) {
      std::printf("build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    double build_s = timer.ElapsedSeconds();
    eval::AccuracyReport report = eval::EvaluateAccuracy(est.get(), test);
    table.AddRow({name, TablePrinter::Fixed(build_s, 2),
                  TablePrinter::Num(report.summary.p50),
                  TablePrinter::Num(report.summary.p95),
                  TablePrinter::Num(report.summary.max)});
  }
  table.Print();
  return 0;
}
