// Scenario: choosing an estimator for a workload.
//
// Builds every estimator in the zoo on a STATS-like forum database, measures
// accuracy / build time / footprint, and prints a recommendation the way a
// model advisor would.

#include <cstdio>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"
#include "src/workload/generator.h"

int main() {
  using namespace lce;

  auto db = storage::datagen::Generate(storage::datagen::StatsLikeSpec(0.08),
                                       21);
  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), wopts);
  Rng rng(22);
  auto train = gen.GenerateLabeled(1000, &rng);
  auto test = gen.GenerateLabeled(200, &rng);

  ce::NeuralOptions neural;
  neural.epochs = 15;
  neural.hidden_dim = 48;

  TablePrinter table({"estimator", "geo-mean q-err", "p95 q-err", "build_s",
                      "size_KiB"});
  std::string best_name;
  double best_score = 1e300;
  for (const std::string& name : ce::AllEstimatorNames()) {
    auto est = ce::MakeEstimator(name, neural);
    Timer timer;
    if (!est->Build(*db, train).ok()) continue;
    double build_s = timer.ElapsedSeconds();
    auto report = eval::EvaluateAccuracy(est.get(), test);
    table.AddRow({name, TablePrinter::Num(report.summary.geo_mean),
                  TablePrinter::Num(report.summary.p95),
                  TablePrinter::Fixed(build_s, 2),
                  TablePrinter::Fixed(est->SizeBytes() / 1024.0, 1)});
    // Simple advisor score: tail-weighted accuracy.
    double score = report.summary.geo_mean * std::sqrt(report.summary.p95);
    if (score < best_score) {
      best_score = score;
      best_name = name;
    }
  }
  table.Print();
  std::printf("\nadvisor pick for this workload: %s\n", best_name.c_str());
  return 0;
}
