// R11 — Loss-function ablation: MSE-on-log vs log-Q loss for FCN and MSCN.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r11_loss");

  PrintHeader("R11", "loss ablation: MSE vs log-Q (FCN, MSCN)",
              "the q-error-aligned loss improves geo-mean and median; tail "
              "effects are mixed (MSE's squared penalty also fights "
              "outliers)");

  BenchConfig cfg = BenchConfig::FromEnv();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));

  for (BenchDb& bench : dbs) {
    std::printf("\n-- database: %s --\n", bench.name.c_str());
    TablePrinter table({"estimator", "loss", "geo-mean", "p50", "p95", "max"});
    for (const std::string& name : {std::string("FCN"), std::string("MSCN")}) {
      for (nn::LossKind loss : {nn::LossKind::kMse, nn::LossKind::kLogQ}) {
        ce::NeuralOptions neural = BenchNeuralOptions();
        neural.loss = loss;
        EstimatorRun run = RunEstimator(name, bench, neural);
        if (!run.ok) continue;
        const SampleSummary& s = run.accuracy.summary;
        table.AddRow({name, loss == nn::LossKind::kMse ? "MSE" : "log-Q",
                      TablePrinter::Num(s.geo_mean), TablePrinter::Num(s.p50),
                      TablePrinter::Num(s.p95), TablePrinter::Num(s.max)});
      }
    }
    table.Print();
  }
  return 0;
}
