// R4 — Accuracy vs attribute correlation: two-column synthetic sweep with
// conjunctive predicates on both columns.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r4_correlation");

  PrintHeader("R4", "q-error vs correlation (synthetic pair, 2 predicates)",
              "independence-based Histogram degrades sharply as correlation "
              "grows; data-driven models and MultiHist stay flat; learned "
              "query-driven models degrade mildly");

  const std::vector<double> correlations = {0.0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<std::string> models = {"Histogram", "MultiHist", "FCN",
                                           "MSCN",      "LW-XGB",    "Naru",
                                           "DeepDB-SPN", "BayesNet"};
  ce::NeuralOptions neural = BenchNeuralOptions();

  // model -> one geo-mean per correlation level.
  std::vector<std::vector<std::string>> rows(models.size());
  for (size_t m = 0; m < models.size(); ++m) rows[m].push_back(models[m]);

  for (double corr : correlations) {
    BenchConfig cfg = BenchConfig::FromEnv();
    cfg.train_queries = 1200;
    cfg.test_queries = 200;
    storage::datagen::DatabaseGenSpec spec =
        storage::datagen::SyntheticPairSpec(30000, 64, 0.8, corr);
    // Conjunctive two-column predicates stress the independence assumption.
    BenchDb bench;
    bench.name = spec.name;
    bench.spec = spec;
    bench.db = storage::datagen::Generate(spec, 5);
    bench.executor = std::make_unique<exec::Executor>(bench.db.get());
    workload::WorkloadOptions wopts;
    wopts.max_joins = 0;
    wopts.min_predicates = 2;
    wopts.max_predicates = 2;
    wopts.equality_prob = 0.4;
    workload::WorkloadGenerator gen(bench.db.get(), wopts);
    Rng rng(6);
    bench.train = gen.GenerateLabeled(cfg.train_queries, &rng);
    bench.test = gen.GenerateLabeled(cfg.test_queries, &rng);

    for (size_t m = 0; m < models.size(); ++m) {
      EstimatorRun run = RunEstimator(models[m], bench, neural);
      rows[m].push_back(run.ok ? TablePrinter::Num(run.accuracy.summary.geo_mean)
                               : "-");
    }
  }

  TablePrinter table({"estimator", "corr=0", "corr=0.25", "corr=0.5",
                      "corr=0.75", "corr=1"});
  for (auto& row : rows) table.AddRow(row);
  table.Print();
  return 0;
}
