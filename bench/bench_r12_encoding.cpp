// R12 — Encoding ablation for the flat-encoding family (FCN, LW-XGB):
// full structural encoding vs range-only vs coarsely quantized ranges.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r12_encoding");

  PrintHeader("R12", "encoding ablation: full vs range-only vs coarse",
              "dropping table/join one-hots hurts on multi-table schemas "
              "(structure becomes invisible); quantizing ranges hurts "
              "selective predicates everywhere");

  BenchConfig cfg = BenchConfig::FromEnv();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));

  struct Variant {
    query::FlatVariant variant;
    const char* label;
  };
  const std::vector<Variant> variants = {
      {query::FlatVariant::kFull, "full"},
      {query::FlatVariant::kRangeOnly, "range-only"},
      {query::FlatVariant::kCoarse, "coarse(10 bins)"},
  };

  for (BenchDb& bench : dbs) {
    std::printf("\n-- database: %s --\n", bench.name.c_str());
    TablePrinter table({"estimator", "encoding", "geo-mean", "p95", "max"});
    for (const std::string& name :
         {std::string("FCN"), std::string("LW-XGB")}) {
      for (const Variant& v : variants) {
        ce::NeuralOptions neural = BenchNeuralOptions();
        neural.flat_variant = v.variant;
        EstimatorRun run = RunEstimator(name, bench, neural);
        if (!run.ok) continue;
        const SampleSummary& s = run.accuracy.summary;
        table.AddRow({name, v.label, TablePrinter::Num(s.geo_mean),
                      TablePrinter::Num(s.p95), TablePrinter::Num(s.max)});
      }
    }
    table.Print();
  }
  return 0;
}
