// R7 — Accuracy vs training-set size for the query-driven models.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r7_trainsize");

  PrintHeader("R7", "q-error vs number of training queries (DMV-like)",
              "accuracy improves steeply up to ~1-2k queries then plateaus; "
              "tree ensembles need fewer queries than deep models");

  BenchConfig cfg = BenchConfig::FromEnv();
  cfg.train_queries = 4000;  // superset; prefixes form the sweep
  cfg.test_queries = 250;
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  const std::vector<int> sizes = {250, 500, 1000, 2000, 4000};
  const std::vector<std::string> models = {"Linear", "FCN", "MSCN", "LSTM",
                                           "LW-XGB"};
  TablePrinter table({"estimator", "n=250", "n=500", "n=1000", "n=2000",
                      "n=4000"});
  for (const std::string& name : models) {
    std::vector<std::string> row = {name};
    for (int n : sizes) {
      std::vector<query::LabeledQuery> subset(bench.train.begin(),
                                              bench.train.begin() + n);
      auto est = ce::MakeEstimator(name, neural);
      if (!est->Build(*bench.db, subset).ok()) {
        row.push_back("-");
        continue;
      }
      auto report = eval::EvaluateAccuracy(est.get(), bench.test);
      row.push_back(TablePrinter::Num(report.summary.geo_mean));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
