// R7 — Accuracy vs training-set size for the query-driven models.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r7_trainsize");

  PrintHeader("R7", "q-error vs number of training queries (DMV-like)",
              "accuracy improves steeply up to ~1-2k queries then plateaus; "
              "tree ensembles need fewer queries than deep models");

  BenchConfig cfg = BenchConfig::FromEnv();
  // The labeled superset; prefixes form the sweep. LCE_BENCH_TRAIN_QUERIES
  // (when set) scales the whole sweep down, so CI can run a small config.
  if (std::getenv("LCE_BENCH_TRAIN_QUERIES") == nullptr) {
    cfg.train_queries = 4000;
  }
  if (std::getenv("LCE_BENCH_TEST_QUERIES") == nullptr) {
    cfg.test_queries = 250;
  }
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // Sweep sizes are fixed fractions of the superset (N/16 .. N), so the
  // qualitative shape survives env resizing.
  std::vector<int> sizes;
  for (int divisor : {16, 8, 4, 2, 1}) {
    int n = cfg.train_queries / divisor;
    if (n >= 1 && (sizes.empty() || n > sizes.back())) sizes.push_back(n);
  }
  const std::vector<std::string> models = {"Linear", "FCN", "MSCN", "LSTM",
                                           "LW-XGB"};
  std::vector<std::string> header = {"estimator"};
  for (int n : sizes) header.push_back("n=" + std::to_string(n));
  TablePrinter table(header);
  for (const std::string& name : models) {
    std::vector<std::string> row = {name};
    for (int n : sizes) {
      std::vector<query::LabeledQuery> subset(bench.train.begin(),
                                              bench.train.begin() + n);
      auto est = ce::MakeEstimator(name, neural);
      if (!est->Build(*bench.db, subset).ok()) {
        row.push_back("-");
        continue;
      }
      auto report = eval::EvaluateAccuracy(est.get(), bench.test);
      row.push_back(TablePrinter::Num(report.summary.geo_mean));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
