// R3 — Accuracy vs number of joins: train on a mixed workload, evaluate on
// query sets with exactly k join edges (k = 0..4), IMDb-like schema.

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r3_joins");

  PrintHeader("R3", "q-error vs join count (IMDb-like, k = 0..4 joins)",
              "every estimator degrades as joins grow; set-based models "
              "(MSCN) degrade least among query-driven; per-table models "
              "with the distinct-count formula degrade most");

  BenchConfig cfg = BenchConfig::FromEnv();
  cfg.max_joins = 4;
  cfg.train_queries = 2000;
  BenchDb bench = MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // Per-k test sets via template whitelists.
  workload::WorkloadOptions base;
  base.max_joins = 4;
  std::vector<std::vector<query::LabeledQuery>> per_k(5);
  {
    workload::WorkloadGenerator all_gen(bench.db.get(), base);
    auto templates = all_gen.EnumerateTemplates();
    Rng rng(99);
    for (int k = 0; k <= 4; ++k) {
      workload::WorkloadOptions opts = base;
      opts.template_whitelist.clear();
      for (const auto& tmpl : templates) {
        if (static_cast<int>(tmpl.size()) == k + 1) {
          opts.template_whitelist.push_back(tmpl);
        }
      }
      if (opts.template_whitelist.empty()) continue;
      workload::WorkloadGenerator k_gen(bench.db.get(), opts);
      per_k[k] = k_gen.GenerateLabeled(120, &rng);
    }
  }

  const std::vector<std::string> models = {"Histogram", "Sampling", "FCN",
                                           "MSCN",      "LSTM",     "LW-XGB"};
  TablePrinter table({"estimator", "k=0", "k=1", "k=2", "k=3", "k=4"});
  for (const std::string& name : models) {
    auto est = ce::MakeEstimator(name, neural);
    if (!est->Build(*bench.db, bench.train).ok()) continue;
    std::vector<std::string> row = {name};
    for (int k = 0; k <= 4; ++k) {
      if (per_k[k].empty()) {
        row.push_back("-");
        continue;
      }
      auto report = eval::EvaluateAccuracy(est.get(), per_k[k]);
      row.push_back(TablePrinter::Num(report.summary.geo_mean));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
