// bench_telemetry_overhead: what does always-on telemetry cost?
//
// Two layers of measurement, both recorded as telemetry.overhead.* gauges in
// BENCH_manifest_telemetry_overhead.json so tools/bench_diff can gate them
// against bench/baselines/:
//
//   1. Primitive ns/event: each recording primitive (counter add, histogram
//      observe, ScopedPhase, TraceSpan, StageTimer) timed in a tight loop
//      with its gate off and on. The "off" numbers are the price every
//      production call site pays unconditionally; they must stay at a few
//      nanoseconds (a relaxed load and a branch). The "on" numbers are the
//      lock-free event-ring push path.
//
//   2. End-to-end ratio: a small build+evaluate workload (the bench_r2
//      shape: generate, label, build three estimator families, evaluate)
//      run per gate combination — all off; metrics; metrics+query log;
//      metrics+trace+query log; flight recorder alone; everything plus the
//      flight recorder — and wall-clock ratios recorded as
//      telemetry.overhead.e2e_ratio{,_fr,_full_fr}. The repo's acceptance
//      bar is every ratio within 5% of off.
//
// Gates are toggled in-process through the *ForTesting overrides, so one
// binary measures both sides with identical code and data.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/telemetry/event_ring.h"
#include "src/util/telemetry/flight_recorder.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"
#include "src/workload/generator.h"

namespace {

using namespace lce;

// Keeps the compiler from eliding the measured loop body.
template <typename T>
inline void Consume(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

// Best-of-reps ns per iteration of `body(iters)`. `between` runs untimed
// between reps (ring flush / trace clear, so "on" reps don't accumulate
// unbounded drained events).
double TimeNsPerOp(int reps, int iters, const std::function<void(int)>& body,
                   const std::function<void()>& between = {}) {
  body(iters / 10 + 1);  // warm-up: interning caches, ring registration
  if (between) between();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    body(iters);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(t1 - t0).count() * 1e9 /
                        iters);
    if (between) between();
  }
  return best;
}

struct PrimitiveCost {
  const char* name;
  double off_ns = 0;
  double on_ns = 0;
};

// All gates off for the "off" side; LCE_METRICS (and, for span primitives,
// LCE_TRACE) forced on for the "on" side.
std::vector<PrimitiveCost> MeasurePrimitives(const std::string& trace_path) {
  using telemetry::MetricsRegistry;
  std::vector<PrimitiveCost> costs;
  // The flight recorder defaults on; pin it off so the other primitives'
  // "off" sides measure the pure gate cost. Its own row toggles it back.
  telemetry::SetFlightRecorderEnabledForTesting(0);
  auto& registry = MetricsRegistry::Global();
  telemetry::Counter& counter = registry.counter("bench.overhead.counter");
  telemetry::Histogram& hist = registry.histogram("bench.overhead.hist");

  auto flush = [] {
    telemetry::FlushEventRings();
    telemetry::ClearTraceForTesting();
  };
  auto measure = [&](const char* name, const std::function<void(int)>& body,
                     bool needs_trace) {
    PrimitiveCost c;
    c.name = name;
    telemetry::SetMetricsEnabledForTesting(0);
    telemetry::SetTracePathForTesting("");
    c.off_ns = TimeNsPerOp(5, 200000, body, flush);
    telemetry::SetMetricsEnabledForTesting(1);
    if (needs_trace) telemetry::SetTracePathForTesting(trace_path.c_str());
    c.on_ns = TimeNsPerOp(5, 200000, body, flush);
    telemetry::SetMetricsEnabledForTesting(-1);
    telemetry::SetTracePathForTesting(nullptr);
    flush();
    costs.push_back(c);
  };

  measure("counter_add", [&](int n) {
    for (int i = 0; i < n; ++i) counter.Increment();
  }, false);
  measure("hist_observe", [&](int n) {
    for (int i = 0; i < n; ++i) hist.Observe(static_cast<double>(i & 1023));
  }, false);
  measure("scoped_phase", [&](int n) {
    for (int i = 0; i < n; ++i) {
      telemetry::ScopedPhase phase("bench/overhead");
      Consume(i);
    }
  }, false);
  measure("trace_span", [&](int n) {
    for (int i = 0; i < n; ++i) {
      telemetry::TraceSpan span("bench/overhead_span");
      Consume(i);
    }
  }, true);
  measure("stage_timer", [&](int n) {
    for (int i = 0; i < n; ++i) {
      telemetry::StageTimer stages([] { return std::string("BenchModel"); });
      stages.Stage("encode");
      Consume(i);
      stages.Stage("forward");
      Consume(i);
    }
  }, false);

  // fr_record: a realistic ForensicRecord (two tables, two predicates with
  // attributed selectivities) through FlightRecorder::Append — the full copy,
  // hash fill, seqlock publish, and trigger checks. Gated by the recorder's
  // own knob rather than LCE_METRICS, so this row toggles that instead.
  {
    telemetry::ForensicRecord proto;
    telemetry::SetFrName(proto.estimator, sizeof(proto.estimator),
                         "BenchModel");
    telemetry::SetFrName(proto.scope, sizeof(proto.scope), "bench");
    proto.estimate = 123.0;
    proto.truth = 120.0;
    proto.qerror = 1.025;
    proto.latency_us = 42.0;
    proto.num_tables = 2;
    proto.tables_recorded = 2;
    proto.tables[0] = 0;
    proto.tables[1] = 1;
    proto.num_joins = 1;
    proto.num_predicates = 2;
    proto.preds_recorded = 2;
    for (int16_t p = 0; p < 2; ++p) {
      proto.preds[p] = {p, 3, 10, 1000, 0.25};
    }
    PrimitiveCost c;
    c.name = "fr_record";
    auto body = [&](int n) {
      for (int i = 0; i < n; ++i) {
        telemetry::ForensicRecord rec = proto;  // callers build fresh records
        Consume(telemetry::FlightRecorder::Global().Append(rec));
      }
    };
    c.off_ns = TimeNsPerOp(5, 200000, body, flush);
    telemetry::SetFlightRecorderEnabledForTesting(1);
    c.on_ns = TimeNsPerOp(5, 200000, body, flush);
    telemetry::SetFlightRecorderEnabledForTesting(0);
    costs.push_back(c);
  }
  return costs;
}

// One pass of the end-to-end shape: build and evaluate one estimator per
// family, mirroring bench_r2's composition (traditional, sampling, flat NN,
// set NN, GBDT, autoregressive) so the measured ratio stands in for the
// full run. Returns seconds.
double RunE2eOnce(const bench::BenchDb& db, const ce::NeuralOptions& neural) {
  auto t0 = std::chrono::steady_clock::now();
  for (const char* name :
       {"Histogram", "Sampling", "FCN", "MSCN", "LW-XGB", "Naru"}) {
    bench::EstimatorRun run = bench::RunEstimator(name, db, neural);
    LCE_CHECK_MSG(run.ok, std::string(name) + " failed in overhead bench");
    Consume(run.accuracy.summary.p95);
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::BenchRun harness("telemetry_overhead");
  bench::PrintHeader(
      "telemetry_overhead", "cost of always-on telemetry",
      "off-path primitives a few ns; full-telemetry e2e ratio near 1.0");

  const std::string scratch_trace =
      bench::BenchOutPath("telemetry_overhead_scratch_trace.json");
  const std::string scratch_qlog =
      bench::BenchOutPath("telemetry_overhead_scratch_queries.jsonl");

  std::vector<PrimitiveCost> costs = MeasurePrimitives(scratch_trace);

  // --- end-to-end: identical workload, gates off vs all on ----------------
  bench::BenchConfig cfg;
  cfg.train_queries = 250;
  cfg.test_queries = 160;  // eval is where per-query telemetry bites
  cfg.max_joins = 2;
  ce::NeuralOptions neural = bench::BenchNeuralOptions();
  neural.epochs = 6;
  bench::BenchDb db =
      bench::MakeBenchDb(storage::datagen::ImdbLikeSpec(0.04), cfg);

  // Gate combinations measured end to end, cheapest to priciest: metrics
  // alone, metrics + query log, everything including span tracing, the
  // flight recorder alone, and everything plus the flight recorder. The
  // recorder defaults on, so the off baseline pins it off explicitly.
  auto set_gates = [&](bool metrics, bool trace, bool qlog, bool fr) {
    telemetry::SetMetricsEnabledForTesting(metrics ? 1 : 0);
    telemetry::SetTracePathForTesting(trace ? scratch_trace.c_str() : "");
    telemetry::SetQueryLogPathForTesting(qlog ? scratch_qlog.c_str() : "");
    telemetry::SetFlightRecorderEnabledForTesting(fr ? 1 : 0);
  };
  auto restore_gates = [] {
    telemetry::FlushEventRings();
    telemetry::ClearTraceForTesting();
    telemetry::SetMetricsEnabledForTesting(-1);
    telemetry::SetTracePathForTesting(nullptr);
    telemetry::SetQueryLogPathForTesting(nullptr);
    telemetry::SetFlightRecorderEnabledForTesting(-1);
  };

  // Alternate the configurations and keep the best of each: OS noise is
  // strictly additive, so per-config minima converge to the true floors,
  // and interleaving keeps one-time costs (allocator growth, column sort
  // caches) from inflating whichever side runs first.
  double off_seconds = 1e300, metrics_seconds = 1e300, qlog_seconds = 1e300,
         on_seconds = 1e300, fr_seconds = 1e300, full_fr_seconds = 1e300;
  for (int round = 0; round < 6; ++round) {
    set_gates(false, false, false, false);
    off_seconds = std::min(off_seconds, RunE2eOnce(db, neural));
    set_gates(true, false, false, false);
    metrics_seconds = std::min(metrics_seconds, RunE2eOnce(db, neural));
    set_gates(true, false, true, false);
    qlog_seconds = std::min(qlog_seconds, RunE2eOnce(db, neural));
    set_gates(true, true, true, false);
    on_seconds = std::min(on_seconds, RunE2eOnce(db, neural));
    set_gates(false, false, false, true);
    fr_seconds = std::min(fr_seconds, RunE2eOnce(db, neural));
    set_gates(true, true, true, true);
    full_fr_seconds = std::min(full_fr_seconds, RunE2eOnce(db, neural));
    telemetry::FlushEventRings();
    telemetry::ClearTraceForTesting();
  }
  restore_gates();
  double ratio = off_seconds > 0 ? on_seconds / off_seconds : 0.0;
  double ratio_fr = off_seconds > 0 ? fr_seconds / off_seconds : 0.0;
  double ratio_full_fr =
      off_seconds > 0 ? full_fr_seconds / off_seconds : 0.0;

  // --- report -------------------------------------------------------------
  auto& registry = telemetry::MetricsRegistry::Global();
  std::printf("\n%-16s %12s %12s\n", "primitive", "off ns/op", "on ns/op");
  for (const PrimitiveCost& c : costs) {
    std::printf("%-16s %12.1f %12.1f\n", c.name, c.off_ns, c.on_ns);
    std::string prefix = std::string("telemetry.overhead.") + c.name;
    registry.gauge(prefix + "_off").SetAlways(c.off_ns);
    registry.gauge(prefix + "_on").SetAlways(c.on_ns);
  }
  std::printf(
      "\ne2e: off %.3fs, +metrics %.3fs, +query log %.3fs, "
      "+trace %.3fs, recorder-only %.3fs, full+recorder %.3fs\n"
      "     full/off %.3f, recorder/off %.3f, full+recorder/off %.3f\n",
      off_seconds, metrics_seconds, qlog_seconds, on_seconds, fr_seconds,
      full_fr_seconds, ratio, ratio_fr, ratio_full_fr);
  registry.gauge("telemetry.overhead.e2e_off_seconds").SetAlways(off_seconds);
  registry.gauge("telemetry.overhead.e2e_metrics_seconds")
      .SetAlways(metrics_seconds);
  registry.gauge("telemetry.overhead.e2e_qlog_seconds")
      .SetAlways(qlog_seconds);
  registry.gauge("telemetry.overhead.e2e_on_seconds").SetAlways(on_seconds);
  registry.gauge("telemetry.overhead.e2e_fr_seconds").SetAlways(fr_seconds);
  registry.gauge("telemetry.overhead.e2e_full_fr_seconds")
      .SetAlways(full_fr_seconds);
  registry.gauge("telemetry.overhead.e2e_ratio").SetAlways(ratio);
  registry.gauge("telemetry.overhead.e2e_ratio_fr").SetAlways(ratio_fr);
  registry.gauge("telemetry.overhead.e2e_ratio_full_fr")
      .SetAlways(ratio_full_fr);
  // Informational, deliberately outside the "overhead" watch prefix: the
  // primitive loops push events far faster than the drainer and the drop
  // count swings run to run by design.
  registry.gauge("telemetry.ring.bench_dropped_events")
      .SetAlways(static_cast<double>(telemetry::DroppedEventCount()));
  if (ratio > 1.05) {
    LCE_LOG(WARN) << "full telemetry overhead ratio " << ratio
                  << " exceeds the 1.05 target";
  }
  if (ratio_full_fr > 1.05) {
    LCE_LOG(WARN) << "full telemetry + flight recorder overhead ratio "
                  << ratio_full_fr << " exceeds the 1.05 target";
  }
  return 0;
}
