// R9 — End-to-end plan quality: estimate-driven plans replayed under true
// cardinalities versus the true-cardinality-optimal plans (P-error), on the
// three multi-table databases — the study's "does q-error translate into
// worse plans?" experiment.

#include "bench/bench_common.h"
#include "src/eval/e2e.h"
#include "src/optimizer/planner.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r9_e2e");

  PrintHeader("R9", "end-to-end plan quality (simulated latency & P-error)",
              "bad estimates inflate true plan cost sub-linearly in q-error; "
              "estimators with better tail q-errors pick better join orders; "
              "the oracle lower bound is the Clean row");

  BenchConfig cfg = BenchConfig::FromEnv();
  cfg.train_queries = 1500;
  ce::NeuralOptions neural = BenchNeuralOptions();
  const std::vector<std::string> models = {"Histogram", "Sampling", "Linear",
                                           "FCN",       "MSCN",     "LW-XGB",
                                           "DeepDB-SPN"};

  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::TpchLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::StatsLikeSpec(cfg.scale), cfg));

  for (BenchDb& bench : dbs) {
    // 20 multi-join queries, as in the study's E2E workload.
    workload::WorkloadOptions opts;
    opts.max_joins = 3;
    workload::WorkloadGenerator gen(bench.db.get(), opts);
    Rng rng(17);
    std::vector<query::LabeledQuery> e2e;
    while (e2e.size() < 20) {
      auto batch = gen.GenerateLabeled(10, &rng);
      for (auto& lq : batch) {
        if (lq.q.tables.size() >= 3 && e2e.size() < 20) {
          e2e.push_back(std::move(lq));
        }
      }
    }

    opt::Planner planner(bench.db.get(), opt::CostModel{});
    std::printf("\n-- database: %s (20 multi-join queries) --\n",
                bench.name.c_str());
    TablePrinter table({"estimator", "total true cost", "vs optimal",
                        "mean P-err", "max P-err"});
    // Oracle lower bound.
    double optimal_total = 0;
    for (const auto& lq : e2e) {
      opt::CardFn true_cards = [&](const std::vector<int>& tables) {
        return bench.executor->SubsetCardinality(lq.q, tables);
      };
      optimal_total += planner.BestPlan(lq.q, true_cards).cost;
    }
    table.AddRow({"Clean (oracle)", TablePrinter::Num(optimal_total), "1.00",
                  "1.00", "1.00"});

    for (const std::string& name : models) {
      auto est = ce::MakeEstimator(name, neural);
      if (!est->Build(*bench.db, bench.train).ok()) continue;
      eval::WorkloadPlanQuality agg = eval::EvaluateWorkloadPlanQuality(
          *bench.db, *bench.executor, planner, est.get(), e2e);
      table.AddRow({name, TablePrinter::Num(agg.total_est_cost),
                    TablePrinter::Fixed(
                        agg.total_est_cost / std::max(1.0, agg.total_opt_cost),
                        2),
                    TablePrinter::Fixed(agg.mean_p_error, 2),
                    TablePrinter::Fixed(agg.max_p_error, 2)});
    }
    table.Print();
  }
  return 0;
}
