// Serving throughput: closed-loop multi-threaded clients against the
// in-process estimation service, sweeping micro-batching off vs on and the
// client count, for one model per inference family (FCN flat MLP, MSCN
// set-based, LW-XGB GBDT).
//
// Each client thread is a plain std::thread (never a pool task — the flush
// fans out on the pool inside the kernels) that round-robins pre-rendered
// SQL strings through EstimationService::EstimateSql, so every request pays
// the full serve path: parse -> route -> coalesce -> vectorized flush. The
// headline quantity is the batched-over-unbatched QPS ratio at 4 clients —
// the ISSUE's acceptance gate is >= 3x for FCN or MSCN.
//
// Published gauges (into BENCH_manifest_serve_throughput.json, gated by
// tools/bench_diff --watch qps --watch p99):
//   serve.<model>.c<N>.<off|on>.inv_qps            us per request  (watched)
//   serve.<model>.c<N>.<off|on>.throughput_rps     requests/s      (report)
//   serve.<model>.c<N>.<off|on>.lat_p{50,95,99}_micros  (p99 watched)
//   serve.<model>.c<N>.<off|on>.mean_batch
//   serve.<model>.c<N>.<off|on>.queue_wait_mean_micros
//   serve.<model>.c4.batch_speedup_x               on/off QPS ratio
//
// Env knobs: LCE_SERVE_BENCH_SECONDS (per-config duration, default 1),
// LCE_SERVE_BENCH_CLIENTS (comma list, default "1,4,16"),
// LCE_SERVE_BENCH_HIDDEN / LCE_SERVE_BENCH_LAYERS / LCE_SERVE_BENCH_EPOCHS
// (served model size), plus the usual LCE_BENCH_* sizing and LCE_SERVE_*
// batching knobs for the "on" arm.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/service.h"
#include "src/util/stats.h"

namespace lce {
namespace bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atof(v) : fallback;
}

std::vector<int> ClientCounts() {
  std::vector<int> counts;
  const char* v = std::getenv("LCE_SERVE_BENCH_CLIENTS");
  std::string spec = (v != nullptr && *v != '\0') ? v : "1,4,16";
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    int n = std::atoi(spec.substr(pos, comma - pos).c_str());
    if (n > 0) counts.push_back(n);
    pos = comma + 1;
  }
  if (counts.empty()) counts = {1, 4, 16};
  return counts;
}

/// Serving-realistic model size. The study's accuracy benches train small
/// nets (hidden 48) whose single-query forward costs a few microseconds —
/// there, coalescing overhead would drown the kernel win. Serving targets
/// production-sized models whose per-layer weights exceed L2, so a
/// single-row forward is bound by streaming the weight matrices and a
/// 4-row panel amortizes that traffic nearly 4x; depth multiplies the
/// amortizable work relative to the fixed per-flush coordination cost.
/// Epochs stay low because throughput, not accuracy, is measured here. All
/// three are env knobs so CI can shrink the build cost.
ce::NeuralOptions ServeNeuralOptions() {
  ce::NeuralOptions o;
  o.hidden_dim = static_cast<int>(EnvDouble("LCE_SERVE_BENCH_HIDDEN", 1024));
  o.num_hidden_layers =
      static_cast<int>(EnvDouble("LCE_SERVE_BENCH_LAYERS", 3));
  o.epochs = static_cast<int>(EnvDouble("LCE_SERVE_BENCH_EPOCHS", 2));
  return o;
}

std::string GaugeModelName(const std::string& model) {
  std::string out;
  for (char c : model) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)))
                      : '_');
  }
  return out;
}

struct ConfigResult {
  double qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double mean_batch = 0;
  double mean_queue_wait_us = 0;
  uint64_t requests = 0;
};

/// One closed-loop measurement: `clients` threads hammer `model` through
/// `service` for ~`seconds`, each recording per-request latency and the
/// serving context off the response.
ConfigResult RunConfig(serve::EstimationService* service,
                       const std::string& model,
                       const std::vector<std::string>& sqls, int clients,
                       double seconds) {
  struct ClientStats {
    std::vector<double> latency_us;
    double batch_sum = 0;
    double wait_sum_us = 0;
    uint64_t requests = 0;
  };
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};

  // Warm-up outside the timed window: faults SQL strings and model state in.
  for (size_t i = 0; i < 4 && i < sqls.size(); ++i) {
    auto resp = service->EstimateSql(model, sqls[i]);
    LCE_CHECK_MSG(resp.ok(), "warm-up: " << resp.status().ToString());
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientStats& my = stats[static_cast<size_t>(c)];
      // Stagger starting offsets so concurrent clients request a mix of
      // query shapes in every flush.
      size_t i = static_cast<size_t>(c) * 17 % sqls.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto q0 = std::chrono::steady_clock::now();
        auto resp = service->EstimateSql(model, sqls[i]);
        const auto q1 = std::chrono::steady_clock::now();
        if (!resp.ok()) {
          failed.store(true);
          return;
        }
        my.latency_us.push_back(
            std::chrono::duration<double, std::micro>(q1 - q0).count());
        my.batch_sum += resp.value().batch_size;
        my.wait_sum_us += resp.value().queue_wait_us;
        ++my.requests;
        i = (i + 1) % sqls.size();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  LCE_CHECK_MSG(!failed.load(), "a serve client got an error response");

  ConfigResult r;
  std::vector<double> latencies;
  double batch_sum = 0, wait_sum = 0;
  for (const ClientStats& s : stats) {
    r.requests += s.requests;
    batch_sum += s.batch_sum;
    wait_sum += s.wait_sum_us;
    latencies.insert(latencies.end(), s.latency_us.begin(),
                     s.latency_us.end());
  }
  LCE_CHECK(r.requests > 0);
  r.qps = static_cast<double>(r.requests) / elapsed;
  SampleSummary lat = Summarize(latencies);
  r.p50_us = lat.p50;
  r.p95_us = lat.p95;
  r.p99_us = lat.p99;
  r.mean_batch = batch_sum / static_cast<double>(r.requests);
  r.mean_queue_wait_us = wait_sum / static_cast<double>(r.requests);
  return r;
}

void PublishGauges(const std::string& model, int clients, bool batching,
                   const ConfigResult& r) {
  auto& reg = telemetry::MetricsRegistry::Global();
  const std::string prefix = "serve." + GaugeModelName(model) + ".c" +
                             std::to_string(clients) + "." +
                             (batching ? "on" : "off") + ".";
  // SetAlways: these gauges are the bench's output and must reach the
  // manifest whether or not LCE_METRICS is on. inv_qps (us/request) is the
  // watched, higher-is-worse form of throughput.
  reg.gauge(prefix + "inv_qps").SetAlways(r.qps > 0 ? 1e6 / r.qps : 0.0);
  reg.gauge(prefix + "throughput_rps").SetAlways(r.qps);
  reg.gauge(prefix + "lat_p50_micros").SetAlways(r.p50_us);
  reg.gauge(prefix + "lat_p95_micros").SetAlways(r.p95_us);
  reg.gauge(prefix + "lat_p99_micros").SetAlways(r.p99_us);
  reg.gauge(prefix + "mean_batch").SetAlways(r.mean_batch);
  reg.gauge(prefix + "queue_wait_mean_micros")
      .SetAlways(r.mean_queue_wait_us);
}

}  // namespace
}  // namespace bench
}  // namespace lce

int main() {
  using namespace lce;
  using namespace lce::bench;

  BenchRun run("serve_throughput");
  PrintHeader("serve_throughput",
              "cross-request micro-batching over the SIMD kernel layer",
              "batched serving >= 3x QPS over batch-size-1 at 4 clients "
              "(FCN/MSCN)");

  BenchConfig cfg = BenchConfig::FromEnv();
  const double seconds = EnvDouble("LCE_SERVE_BENCH_SECONDS", 1.0);
  const std::vector<int> client_counts = ClientCounts();

  BenchDb bench = MakeBenchDb(storage::datagen::TpchLikeSpec(cfg.scale), cfg);

  // The request stream: the test workload rendered to SQL, so every request
  // exercises the hardened parser exactly as an external client would.
  std::vector<std::string> sqls;
  sqls.reserve(bench.test.size());
  for (const auto& lq : bench.test) {
    sqls.push_back(query::ToSql(lq.q, bench.db->schema()));
  }
  LCE_CHECK(!sqls.empty());

  // One model per inference family. Built once, shared by both sweep arms —
  // inference mutates only scratch state, serialized by the service.
  const std::vector<std::string> models = {"FCN", "MSCN", "LW-XGB"};
  std::vector<std::shared_ptr<ce::Estimator>> built;
  for (const std::string& name : models) {
    telemetry::PhaseScope scope(name);
    std::shared_ptr<ce::Estimator> est =
        ce::MakeEstimator(name, ServeNeuralOptions(), cfg.seed);
    Timer timer;
    LCE_CHECK_OK(est->Build(*bench.db, bench.train));
    LCE_LOG(INFO) << name << " built in " << timer.ElapsedSeconds() << "s";
    built.push_back(std::move(est));
  }

  serve::BatcherOptions batch_on = serve::BatcherOptions::FromEnv();
  batch_on.enabled = true;
  serve::BatcherOptions batch_off;
  batch_off.enabled = false;

  TablePrinter table({"model", "clients", "batching", "qps", "p50_us",
                      "p95_us", "p99_us", "mean_batch", "wait_us"});
  for (size_t m = 0; m < models.size(); ++m) {
    double qps_on_4 = 0, qps_off_4 = 0;
    for (int clients : client_counts) {
      for (bool batching : {false, true}) {
        // A fresh service per arm keeps batcher state and registry version
        // counters independent across configs.
        serve::EstimationService service(
            bench.db.get(), batching ? batch_on : batch_off);
        service.RegisterModel(models[m], built[m]);
        ConfigResult r =
            RunConfig(&service, models[m], sqls, clients, seconds);
        PublishGauges(models[m], clients, batching, r);
        table.AddRow({models[m], std::to_string(clients),
                      batching ? "on" : "off", TablePrinter::Fixed(r.qps, 0),
                      TablePrinter::Fixed(r.p50_us, 1),
                      TablePrinter::Fixed(r.p95_us, 1),
                      TablePrinter::Fixed(r.p99_us, 1),
                      TablePrinter::Fixed(r.mean_batch, 2),
                      TablePrinter::Fixed(r.mean_queue_wait_us, 1)});
        if (clients == 4) {
          (batching ? qps_on_4 : qps_off_4) = r.qps;
        }
      }
    }
    if (qps_off_4 > 0) {
      const double speedup = qps_on_4 / qps_off_4;
      telemetry::MetricsRegistry::Global()
          .gauge("serve." + GaugeModelName(models[m]) + ".c4.batch_speedup_x")
          .SetAlways(speedup);
      std::printf("%s: batched/unbatched QPS at 4 clients = %.2fx\n",
                  models[m].c_str(), speedup);
      if (speedup < 3.0 && models[m] != "LW-XGB") {
        LCE_LOG(WARN) << models[m] << ": batch speedup " << speedup
                      << "x below the 3x acceptance target";
      }
    }
  }
  table.Print();
  return 0;
}
