// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// estimators: matrix multiply, exact executor counting, filter scans, hash
// index probes, and per-model inference.
//
// The custom main() additionally sweeps the thread-pool size over the
// parallel kernels (MatMul and workload labeling) and writes the wall-clock
// results to BENCH_parallel.json in the bench output directory, so CI and the
// experiment scripts can chart threads-vs-speedup without parsing
// human-oriented benchmark output.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cmath>

#include "src/ce/factory.h"
#include "src/exec/executor.h"
#include "src/exec/hash_index.h"
#include "src/gbdt/gbdt.h"
#include "src/nn/matrix.h"
#include "src/util/telemetry/telemetry.h"
#include "src/storage/datagen.h"
#include "bench/bench_common.h"
#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/simd.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry/run_manifest.h"
#include "src/util/telemetry/trace.h"
#include "src/util/timer.h"
#include "src/workload/generator.h"

namespace {

using namespace lce;

void BM_MatMul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Matrix a = nn::Matrix::Randn(n, n, 1.0f, &rng);
  nn::Matrix b = nn::Matrix::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// Kernel-path A/B: Args are {n, simd} with simd 0 = naive reference,
// 1 = blocked/vectorized. items_per_second is FLOP/s.
void BM_MatMulKernel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  simd::SetSimdEnabledForTesting(state.range(1) != 0 ? 1 : 0);
  Rng rng(1);
  nn::Matrix a = nn::Matrix::Randn(n, n, 1.0f, &rng);
  nn::Matrix b = nn::Matrix::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
  simd::SetSimdEnabledForTesting(-1);
}
BENCHMARK(BM_MatMulKernel)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({384, 0})
    ->Args({384, 1});

// Batched GBDT traversal vs per-row prediction over the same fitted
// ensemble. Args: {num_rows, simd}. items_per_second is rows/s.
void BM_GbdtPredictBatch(benchmark::State& state) {
  int num_rows = static_cast<int>(state.range(0));
  simd::SetSimdEnabledForTesting(state.range(1) != 0 ? 1 : 0);
  static std::unique_ptr<gbdt::GradientBoosting> model = [] {
    Rng rng(11);
    std::vector<std::vector<float>> rows;
    std::vector<float> targets;
    for (int i = 0; i < 4000; ++i) {
      float a = static_cast<float>(rng.Uniform());
      float b = static_cast<float>(rng.Uniform(-2, 2));
      float c = static_cast<float>(rng.Gaussian());
      float d = static_cast<float>(rng.Uniform(0, 10));
      rows.push_back({a, b, c, d});
      targets.push_back(std::sin(5 * a) + 0.3f * b * c + 0.05f * d);
    }
    auto m = std::make_unique<gbdt::GradientBoosting>();
    m->Fit(rows, targets);
    return m;
  }();
  Rng rng(12);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < num_rows; ++i) {
    rows.push_back({static_cast<float>(rng.Uniform()),
                    static_cast<float>(rng.Uniform(-2, 2)),
                    static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Uniform(0, 10))});
  }
  for (auto _ : state) {
    std::vector<float> preds = model->PredictBatch(rows);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(state.iterations() * num_rows);
  simd::SetSimdEnabledForTesting(-1);
}
BENCHMARK(BM_GbdtPredictBatch)->Args({2048, 0})->Args({2048, 1});

// Same kernel swept over pool sizes: Args are {n, threads}.
void BM_MatMulThreads(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  parallel::SetThreadCountForTesting(threads);
  Rng rng(1);
  nn::Matrix a = nn::Matrix::Randn(n, n, 1.0f, &rng);
  nn::Matrix b = nn::Matrix::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
  parallel::SetThreadCountForTesting(0);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

// Ground-truth labeling (the dominant workload-prep cost) swept over pool
// sizes: Arg is the thread count.
void BM_LabelingThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  static std::unique_ptr<storage::Database> db =
      storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.05), 1);
  parallel::SetThreadCountForTesting(threads);
  workload::WorkloadOptions opts;
  opts.max_joins = 2;
  workload::WorkloadGenerator gen(db.get(), opts);
  for (auto _ : state) {
    Rng rng(9);
    auto queries = gen.GenerateLabeled(40, &rng);
    benchmark::DoNotOptimize(queries.data());
  }
  state.SetItemsProcessed(state.iterations() * 40);
  parallel::SetThreadCountForTesting(0);
}
BENCHMARK(BM_LabelingThreads)->Arg(1)->Arg(2)->Arg(4);

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<exec::Executor> executor;
  std::vector<query::LabeledQuery> queries;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.1),
                                          1);
      fx->executor = std::make_unique<exec::Executor>(fx->db.get());
      workload::WorkloadOptions opts;
      opts.max_joins = 3;
      workload::WorkloadGenerator gen(fx->db.get(), opts);
      Rng rng(2);
      fx->queries = gen.GenerateLabeled(50, &rng);
      return fx;
    }();
    return *f;
  }
};

void BM_FilterScan(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  const query::Query& q = fx.queries[0].q;
  int table = q.tables[0];
  for (auto _ : state) {
    auto bitmap = exec::FilterBitmap(*fx.db, q, table);
    benchmark::DoNotOptimize(bitmap.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.db->table(table).num_rows()));
}
BENCHMARK(BM_FilterScan);

// The same multi-predicate single-table count through both oracle paths.
// Arg: 0 = naive full-column bitmap + popcount, 1 = sorted-index candidate
// scan. Both return the identical integer.
void BM_FilterCount(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  bool indexed = state.range(0) != 0;
  // Correlated predicates on title: season_nr narrow, episode_nr wide.
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 3}, 0, 4}, {{0, 4}, 0, 60}, {{0, 2}, 0, 90}};
  exec::OracleIndex accel(fx.db.get());
  accel.CountFiltered(q, 0);  // warm-up: index build outside the timed loop
  for (auto _ : state) {
    uint64_t n = indexed
                     ? accel.CountFiltered(q, 0)
                     : exec::CountSet(exec::FilterBitmap(*fx.db, q, 0));
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.db->table(0).num_rows()));
}
BENCHMARK(BM_FilterCount)->Arg(0)->Arg(1);

// Single-predicate count: two binary searches on the sorted column index
// versus a full column scan.
void BM_IndexedRangeCount(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  bool indexed = state.range(0) != 0;
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 2}, 10, 55}};
  exec::OracleIndex accel(fx.db.get());
  accel.CountFiltered(q, 0);
  for (auto _ : state) {
    uint64_t n = indexed
                     ? accel.CountFiltered(q, 0)
                     : exec::CountSet(exec::FilterBitmap(*fx.db, q, 0));
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_IndexedRangeCount)->Arg(0)->Arg(1);

// Full TreeCount message pass over a 4-table star join, hash-map messages
// (Arg 0) versus dense join-key-id vectors (Arg 1).
void BM_JoinMessagePass(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  exec::SetOracleIndexEnabledForTesting(state.range(0) != 0 ? 1 : 0);
  query::Query q;
  q.tables = {0, 1, 2, 3};
  q.join_edges = {0, 1, 2};
  q.predicates = {{{0, 1}, 0, 2}, {{1, 2}, 0, 1}};
  fx.executor->Cardinality(q);  // warm-up: index build / column touch
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.executor->Cardinality(q));
  }
  exec::SetOracleIndexEnabledForTesting(-1);
}
BENCHMARK(BM_JoinMessagePass)->Arg(0)->Arg(1);

void BM_ExactJoinCount(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const query::Query& q = fx.queries[i++ % fx.queries.size()].q;
    benchmark::DoNotOptimize(fx.executor->Cardinality(q));
  }
}
BENCHMARK(BM_ExactJoinCount);

void BM_HashIndexProbe(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  exec::HashIndex index;
  const storage::Table& mc = *fx.db->FindTable("movie_companies").value();
  index.Build(mc, 0);
  Rng rng(3);
  int64_t max_key =
      static_cast<int64_t>(fx.db->FindTable("title").value()->num_rows()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(rng.UniformInt(0, max_key)));
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_EstimatorInference(benchmark::State& state,
                           const std::string& name) {
  Fixture& fx = Fixture::Get();
  static std::map<std::string, std::unique_ptr<ce::Estimator>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    ce::NeuralOptions neural;
    neural.epochs = 8;
    auto est = ce::MakeEstimator(name, neural);
    LCE_CHECK_OK(est->Build(*fx.db, fx.queries));
    it = cache.emplace(name, std::move(est)).first;
  }
  size_t i = 0;
  for (auto _ : state) {
    const query::Query& q = fx.queries[i++ % fx.queries.size()].q;
    benchmark::DoNotOptimize(it->second->EstimateCardinality(q));
  }
}
BENCHMARK_CAPTURE(BM_EstimatorInference, histogram, std::string("Histogram"));
BENCHMARK_CAPTURE(BM_EstimatorInference, fcn, std::string("FCN"));
BENCHMARK_CAPTURE(BM_EstimatorInference, mscn, std::string("MSCN"));
BENCHMARK_CAPTURE(BM_EstimatorInference, lwxgb, std::string("LW-XGB"));
BENCHMARK_CAPTURE(BM_EstimatorInference, spn, std::string("DeepDB-SPN"));

// One timed sample of a parallel workload at a given pool size.
double TimeSeconds(int threads, const std::function<void()>& body) {
  parallel::SetThreadCountForTesting(threads);
  body();  // warm-up: pool spin-up, allocator, column-sort caches
  auto start = std::chrono::steady_clock::now();
  body();
  auto end = std::chrono::steady_clock::now();
  parallel::SetThreadCountForTesting(0);
  return std::chrono::duration<double>(end - start).count();
}

struct SweepResult {
  std::string kernel;
  int threads;
  double seconds;
};

// Sweeps the two headline parallel paths (dense MatMul, ground-truth workload
// labeling) over pool sizes and writes BENCH_parallel.json.
void WriteParallelSweepJson(const std::string& path) {
  std::vector<int> thread_counts = {1, 2, 4};
  std::vector<SweepResult> results;

  {
    Rng rng(1);
    nn::Matrix a = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    nn::Matrix b = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    for (int t : thread_counts) {
      double s = TimeSeconds(t, [&] {
        for (int rep = 0; rep < 8; ++rep) {
          nn::Matrix c = nn::MatMul(a, b);
          benchmark::DoNotOptimize(c.raw());
        }
      });
      results.push_back({"matmul_384", t, s});
    }
  }

  {
    auto db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.05), 1);
    workload::WorkloadOptions opts;
    opts.max_joins = 2;
    workload::WorkloadGenerator gen(db.get(), opts);
    for (int t : thread_counts) {
      double s = TimeSeconds(t, [&] {
        Rng rng(9);
        auto queries = gen.GenerateLabeled(60, &rng);
        benchmark::DoNotOptimize(queries.data());
      });
      results.push_back({"workload_labeling_60q", t, s});
    }
  }

  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("hardware_threads")
      .Value(uint64_t{std::thread::hardware_concurrency()});
  w.Key("results").BeginArray();
  for (const SweepResult& r : results) {
    double base = r.seconds;
    for (const SweepResult& other : results) {
      if (other.kernel == r.kernel && other.threads == 1) base = other.seconds;
    }
    w.BeginObject()
        .Key("kernel").Value(r.kernel)
        .Key("threads").Value(r.threads)
        .Key("seconds").Value(r.seconds)
        .Key("speedup_vs_1").Value(r.seconds > 0 ? base / r.seconds : 0.0)
        .EndObject();
  }
  w.EndArray().EndObject();

  out.push_back('\n');
  lce::Status written = lce::fs::WriteStringToFile(path, out);
  if (!written.ok()) {
    LCE_LOG(ERROR) << "cannot write parallel sweep: " << written.ToString();
    return;
  }
  LCE_LOG(INFO) << "wrote " << path;
}

// ---------------------------------------------------------------------------
// Kernel GFLOP/s + checksum report: every dense kernel and the batched GBDT
// traversal, timed on the naive reference path and the vectorized path,
// single-threaded (plus a matmul thread sweep). Results go three places:
// BENCH_kernels.json (human/script inspection), kernel.* telemetry gauges
// (into the run manifest, so tools/bench_diff can gate `inv_gflops` — the
// higher-is-worse inverse of throughput — and `checksum_drift`, which must
// stay 0 while the default build is bit-identical to the reference), and the
// log.
// ---------------------------------------------------------------------------

// Order-independent-enough checksum over logical elements; the two kernel
// paths are bit-identical, so the drift of this sum must be exactly 0.
double LogicalChecksum(const nn::Matrix& m) {
  double s = 0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) s += m.At(r, c);
  }
  return s;
}

// Min-of-reps seconds for one call of `body` (body runs inner times per rep).
double TimeOpSeconds(int inner, const std::function<void()>& body) {
  body();  // warm-up
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) body();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double>(t1 - t0).count() / inner);
  }
  return best;
}

struct KernelSample {
  std::string name;
  double flops_per_op;        // 0 when the op is row-oriented (gbdt)
  double rows_per_op;         // 0 when the op is flop-oriented
  double naive_seconds;
  double simd_seconds;
  double checksum_drift;      // |simd checksum - naive checksum|, expect 0
};

// Times `op` (which must return a checksum) on both kernel paths.
KernelSample SampleKernel(const std::string& name, double flops_per_op,
                          double rows_per_op, int inner,
                          const std::function<double()>& op) {
  KernelSample s;
  s.name = name;
  s.flops_per_op = flops_per_op;
  s.rows_per_op = rows_per_op;
  simd::SetSimdEnabledForTesting(0);
  double naive_checksum = op();
  s.naive_seconds = TimeOpSeconds(inner, [&] { op(); });
  simd::SetSimdEnabledForTesting(1);
  double simd_checksum = op();
  s.simd_seconds = TimeOpSeconds(inner, [&] { op(); });
  simd::SetSimdEnabledForTesting(-1);
  s.checksum_drift = std::abs(simd_checksum - naive_checksum);
  return s;
}

void WriteKernelReportJson(const std::string& path) {
  using telemetry::MetricsRegistry;
  std::vector<KernelSample> samples;
  parallel::SetThreadCountForTesting(1);  // per-kernel numbers: one thread

  {
    Rng rng(1);
    nn::Matrix a = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    nn::Matrix b = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    double flops = 2.0 * 384 * 384 * 384;
    samples.push_back(SampleKernel("matmul_384", flops, 0, 2, [&] {
      return LogicalChecksum(nn::MatMul(a, b));
    }));
    samples.push_back(SampleKernel("matmul_transa_384", flops, 0, 2, [&] {
      return LogicalChecksum(nn::MatMulTransA(a, b));
    }));
    samples.push_back(SampleKernel("matmul_transb_384", flops, 0, 2, [&] {
      return LogicalChecksum(nn::MatMulTransB(a, b));
    }));
    nn::Matrix bias = nn::Matrix::Randn(1, 384, 1.0f, &rng);
    samples.push_back(SampleKernel("matmul_fused_relu_384", flops, 0, 2, [&] {
      return LogicalChecksum(
          nn::MatMulBiasAct(a, b, bias, nn::Activation::kRelu));
    }));
    // The per-query inference shape: one row against a dense layer.
    nn::Matrix x = nn::Matrix::Randn(1, 384, 1.0f, &rng);
    samples.push_back(
        SampleKernel("gemv_1x384", 2.0 * 384 * 384, 0, 200, [&] {
          return LogicalChecksum(nn::MatMul(x, b));
        }));
    // Small-M A*B^T (the backward dx shape that uses the dot kernel).
    nn::Matrix dy = nn::Matrix::Randn(4, 384, 1.0f, &rng);
    samples.push_back(
        SampleKernel("transb_dot_4x384", 2.0 * 4 * 384 * 384, 0, 50, [&] {
          return LogicalChecksum(nn::MatMulTransB(dy, b));
        }));
  }

  {
    Rng rng(11);
    std::vector<std::vector<float>> train_rows;
    std::vector<float> targets;
    for (int i = 0; i < 4000; ++i) {
      float a = static_cast<float>(rng.Uniform());
      float b = static_cast<float>(rng.Uniform(-2, 2));
      float c = static_cast<float>(rng.Gaussian());
      float d = static_cast<float>(rng.Uniform(0, 10));
      train_rows.push_back({a, b, c, d});
      targets.push_back(std::sin(5 * a) + 0.3f * b * c + 0.05f * d);
    }
    gbdt::GradientBoosting model;
    model.Fit(train_rows, targets);
    std::vector<std::vector<float>> rows(train_rows.begin(),
                                         train_rows.begin() + 2048);
    samples.push_back(SampleKernel("gbdt_batch_2048", 0, 2048, 5, [&] {
      std::vector<float> preds = model.PredictBatch(rows);
      double s = 0;
      for (float p : preds) s += p;
      return s;
    }));
  }

  // Thread sweep on the vectorized matmul: the ISSUE's ~0.95x -> >=2x
  // criterion. Honest on any machine — hardware_threads is recorded next to
  // it, so a 1-core container reporting ~1x is interpretable.
  double sweep_1t = 0, sweep_4t = 0;
  {
    Rng rng(1);
    nn::Matrix a = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    nn::Matrix b = nn::Matrix::Randn(384, 384, 1.0f, &rng);
    simd::SetSimdEnabledForTesting(1);
    auto op = [&] { benchmark::DoNotOptimize(nn::MatMul(a, b).raw()); };
    parallel::SetThreadCountForTesting(1);
    sweep_1t = TimeOpSeconds(2, op);
    parallel::SetThreadCountForTesting(4);
    sweep_4t = TimeOpSeconds(2, op);
    simd::SetSimdEnabledForTesting(-1);
  }
  parallel::SetThreadCountForTesting(0);
  double thread4_speedup = sweep_4t > 0 ? sweep_1t / sweep_4t : 0.0;

  auto& registry = MetricsRegistry::Global();
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("hardware_threads")
      .Value(uint64_t{std::thread::hardware_concurrency()});
  w.Key("kernels").BeginArray();
  for (const KernelSample& s : samples) {
    double naive_thru = 0, simd_thru = 0;
    const char* unit = "";
    if (s.flops_per_op > 0) {
      naive_thru = s.flops_per_op / s.naive_seconds / 1e9;
      simd_thru = s.flops_per_op / s.simd_seconds / 1e9;
      unit = "gflops";
    } else {
      naive_thru = s.rows_per_op / s.naive_seconds / 1e6;
      simd_thru = s.rows_per_op / s.simd_seconds / 1e6;
      unit = "mrows_per_sec";
    }
    double speedup = s.naive_seconds / s.simd_seconds;
    w.BeginObject()
        .Key("kernel").Value(s.name)
        .Key("unit").Value(unit)
        .Key("naive").Value(naive_thru)
        .Key("simd").Value(simd_thru)
        .Key("speedup_vs_naive").Value(speedup)
        .Key("checksum_drift").Value(s.checksum_drift)
        .EndObject();
    // Gauges for the manifest: inverse throughput is the gated key (higher
    // = worse, matching bench_diff's direction), drift must stay at 0.
    std::string prefix = "kernel." + s.name + ".";
    registry.gauge(prefix + "inv_" + unit).Set(1.0 / simd_thru);
    registry.gauge(prefix + unit).Set(simd_thru);
    registry.gauge(prefix + "naive_" + unit).Set(naive_thru);
    registry.gauge(prefix + "speedup_vs_naive").Set(speedup);
    registry.gauge(prefix + "checksum_drift").Set(s.checksum_drift);
    LCE_LOG(INFO) << "kernel " << s.name << ": naive " << naive_thru << " "
                  << unit << ", simd " << simd_thru << " (" << speedup
                  << "x), checksum drift " << s.checksum_drift;
  }
  w.EndArray();
  w.Key("matmul_384_threads4_speedup").Value(thread4_speedup);
  w.EndObject();
  registry.gauge("kernel.matmul_384.threads4_speedup").Set(thread4_speedup);
  registry.gauge("kernel.matmul_384.threads4_inv_speedup")
      .Set(thread4_speedup > 0 ? 1.0 / thread4_speedup : 0.0);

  out.push_back('\n');
  lce::Status written = lce::fs::WriteStringToFile(path, out);
  if (!written.ok()) {
    LCE_LOG(ERROR) << "cannot write kernel report: " << written.ToString();
    return;
  }
  LCE_LOG(INFO) << "wrote " << path;
}

}  // namespace

int main(int argc, char** argv) {
  lce::Timer wall;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteParallelSweepJson(lce::bench::BenchOutPath("BENCH_parallel.json"));
  WriteKernelReportJson(lce::bench::BenchOutPath("BENCH_kernels.json"));
  lce::telemetry::WriteRunManifest(
      lce::bench::BenchOutPath("BENCH_manifest_micro_kernels.json"),
      "micro_kernels", wall.ElapsedSeconds());
  lce::telemetry::WriteTraceIfEnabled();
  return 0;
}
