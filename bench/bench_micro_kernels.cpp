// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// estimators: matrix multiply, exact executor counting, filter scans, hash
// index probes, and per-model inference.

#include <benchmark/benchmark.h>

#include "src/ce/factory.h"
#include "src/exec/executor.h"
#include "src/exec/hash_index.h"
#include "src/nn/matrix.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace {

using namespace lce;

void BM_MatMul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Matrix a = nn::Matrix::Randn(n, n, 1.0f, &rng);
  nn::Matrix b = nn::Matrix::Randn(n, n, 1.0f, &rng);
  for (auto _ : state) {
    nn::Matrix c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<exec::Executor> executor;
  std::vector<query::LabeledQuery> queries;

  static Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      fx->db = storage::datagen::Generate(storage::datagen::ImdbLikeSpec(0.1),
                                          1);
      fx->executor = std::make_unique<exec::Executor>(fx->db.get());
      workload::WorkloadOptions opts;
      opts.max_joins = 3;
      workload::WorkloadGenerator gen(fx->db.get(), opts);
      Rng rng(2);
      fx->queries = gen.GenerateLabeled(50, &rng);
      return fx;
    }();
    return *f;
  }
};

void BM_FilterScan(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  const query::Query& q = fx.queries[0].q;
  int table = q.tables[0];
  for (auto _ : state) {
    auto bitmap = exec::FilterBitmap(*fx.db, q, table);
    benchmark::DoNotOptimize(bitmap.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.db->table(table).num_rows()));
}
BENCHMARK(BM_FilterScan);

void BM_ExactJoinCount(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const query::Query& q = fx.queries[i++ % fx.queries.size()].q;
    benchmark::DoNotOptimize(fx.executor->Cardinality(q));
  }
}
BENCHMARK(BM_ExactJoinCount);

void BM_HashIndexProbe(benchmark::State& state) {
  Fixture& fx = Fixture::Get();
  exec::HashIndex index;
  const storage::Table& mc = *fx.db->FindTable("movie_companies").value();
  index.Build(mc, 0);
  Rng rng(3);
  int64_t max_key =
      static_cast<int64_t>(fx.db->FindTable("title").value()->num_rows()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(rng.UniformInt(0, max_key)));
  }
}
BENCHMARK(BM_HashIndexProbe);

void BM_EstimatorInference(benchmark::State& state,
                           const std::string& name) {
  Fixture& fx = Fixture::Get();
  static std::map<std::string, std::unique_ptr<ce::Estimator>> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    ce::NeuralOptions neural;
    neural.epochs = 8;
    auto est = ce::MakeEstimator(name, neural);
    LCE_CHECK_OK(est->Build(*fx.db, fx.queries));
    it = cache.emplace(name, std::move(est)).first;
  }
  size_t i = 0;
  for (auto _ : state) {
    const query::Query& q = fx.queries[i++ % fx.queries.size()].q;
    benchmark::DoNotOptimize(it->second->EstimateCardinality(q));
  }
}
BENCHMARK_CAPTURE(BM_EstimatorInference, histogram, std::string("Histogram"));
BENCHMARK_CAPTURE(BM_EstimatorInference, fcn, std::string("FCN"));
BENCHMARK_CAPTURE(BM_EstimatorInference, mscn, std::string("MSCN"));
BENCHMARK_CAPTURE(BM_EstimatorInference, lwxgb, std::string("LW-XGB"));
BENCHMARK_CAPTURE(BM_EstimatorInference, spn, std::string("DeepDB-SPN"));

}  // namespace

BENCHMARK_MAIN();
