// R16 (ablation) — MSCN's materialized-sample bitmaps: accuracy vs bitmap
// width (0 disables bitmaps, reducing MSCN to FCN+Pool).

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r16_mscn_samples");

  PrintHeader("R16", "MSCN sample-bitmap width ablation",
              "bitmaps carry per-table selectivity evidence: accuracy "
              "improves with width and saturates; width 0 (= FCN+Pool) is "
              "clearly worse on selective predicates");

  BenchConfig cfg = BenchConfig::FromEnv();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));

  const std::vector<int> widths = {0, 16, 64, 256};
  for (BenchDb& bench : dbs) {
    std::printf("\n-- database: %s --\n", bench.name.c_str());
    TablePrinter table({"bitmap width", "geo-mean", "p50", "p95", "max",
                        "build_s"});
    for (int width : widths) {
      ce::NeuralOptions neural = BenchNeuralOptions();
      EstimatorRun run;
      if (width == 0) {
        run = RunEstimator("FCN+Pool", bench, neural);
        run.name = "0 (FCN+Pool)";
      } else {
        neural.mscn_sample_size = width;
        run = RunEstimator("MSCN", bench, neural);
        run.name = std::to_string(width);
      }
      if (!run.ok) continue;
      const SampleSummary& s = run.accuracy.summary;
      table.AddRow({run.name, TablePrinter::Num(s.geo_mean),
                    TablePrinter::Num(s.p50), TablePrinter::Num(s.p95),
                    TablePrinter::Num(s.max),
                    TablePrinter::Fixed(run.build_seconds, 2)});
    }
    table.Print();
  }
  return 0;
}
