// R10 — Data updates / drift: append distribution-shifted rows, then compare
// (a) the stale model, (b) the incrementally updated model, (c) a full
// rebuild, all scored on post-drift test queries. A per-model drift monitor
// (threshold = 4x the pre-drift windowed p95) watches the stale model's
// q-error stream and reports how many post-drift queries it takes to alert.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/util/telemetry/drift.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r10_updates");

  PrintHeader("R10", "stale vs updated vs rebuilt after data drift",
              "stale models degrade after drift; statistics refresh "
              "(ANALYZE) and data-driven refits recover nearly all accuracy; "
              "query-driven incremental training recovers most of it");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  const std::vector<std::string> models = {"Histogram", "FCN",  "MSCN",
                                           "LW-XGB",    "Naru", "DeepDB-SPN"};

  std::vector<storage::datagen::DatabaseGenSpec> specs = {
      storage::datagen::DmvLikeSpec(cfg.dmv_scale),
      storage::datagen::ImdbLikeSpec(cfg.scale)};

  for (const auto& spec : specs) {
    BenchDb bench = MakeBenchDb(spec, cfg);
    std::printf("\n-- database: %s (append 40%% shifted rows) --\n",
                bench.name.c_str());

    // Build all models on the pre-drift state.
    std::vector<std::unique_ptr<ce::Estimator>> built;
    for (const std::string& name : models) {
      auto est = ce::MakeEstimator(name, neural);
      if (est->Build(*bench.db, bench.train).ok()) {
        built.push_back(std::move(est));
      } else {
        built.push_back(nullptr);
      }
    }

    // Drift: 40% new rows, more skew, shifted value region. Test queries are
    // regenerated and relabeled against the drifted data.
    storage::datagen::AppendShifted(bench.db.get(), spec, 0.4, 0.4, 0.15, 71);
    workload::WorkloadOptions wopts;
    wopts.max_joins = bench.db->num_tables() > 1 ? cfg.max_joins : 0;
    workload::WorkloadGenerator gen(bench.db.get(), wopts);
    Rng rng(72);
    auto post_test = gen.GenerateLabeled(200, &rng);
    auto post_train = gen.GenerateLabeled(400, &rng);

    TablePrinter table(
        {"estimator", "stale", "detect lag", "updated", "rebuilt"});
    for (size_t m = 0; m < models.size(); ++m) {
      if (built[m] == nullptr) continue;
      std::vector<std::string> row = {models[m]};

      // Arm a drift monitor on the model's pre-drift error profile: window
      // p95 over the original test set sets the alert threshold at 4x (floor
      // 2), so the alert fires only on a genuine post-drift degradation.
      eval::AccuracyReport pre =
          eval::EvaluateAccuracy(built[m].get(), bench.test);
      telemetry::WindowedQuantileSketch pre_sketch(
          std::max<size_t>(1, pre.qerrors.size()));
      for (double qe : pre.qerrors) pre_sketch.Observe(qe);
      telemetry::DriftMonitor::Options mopts;
      mopts.window = std::min<size_t>(
          64, std::max<size_t>(8, pre.qerrors.size() / 2));
      mopts.threshold_p95 = std::max(4.0 * pre_sketch.Quantile(0.95), 2.0);
      telemetry::DriftMonitor monitor(models[m] + "@" + bench.name, mopts);
      for (double qe : pre.qerrors) monitor.Observe(qe);
      monitor.DrainAlerts();  // discard any arming-phase crossings
      uint64_t drift_start = monitor.observations();

      eval::AccuracyReport stale =
          eval::EvaluateAccuracy(built[m].get(), post_test);
      row.push_back(TablePrinter::Num(stale.summary.geo_mean));
      for (double qe : stale.qerrors) monitor.Observe(qe);
      std::vector<telemetry::DriftAlert> alerts = monitor.DrainAlerts();
      row.push_back(alerts.empty()
                        ? std::string("-")
                        : std::to_string(alerts.front().observation -
                                         drift_start) +
                              " q");

      // Incremental update: data refresh when supported, otherwise feedback
      // queries from the post-drift workload.
      Status updated = built[m]->UpdateWithData(*bench.db);
      if (!updated.ok()) updated = built[m]->UpdateWithQueries(post_train);
      row.push_back(updated.ok()
                        ? TablePrinter::Num(
                              eval::EvaluateAccuracy(built[m].get(), post_test)
                                  .summary.geo_mean)
                        : std::string("-"));

      auto rebuilt = ce::MakeEstimator(models[m], neural);
      auto full_train = gen.GenerateLabeled(cfg.train_queries, &rng);
      if (rebuilt->Build(*bench.db, full_train).ok()) {
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(rebuilt.get(), post_test).summary.geo_mean));
      } else {
        row.push_back("-");
      }
      table.AddRow(row);
    }
    table.Print();
  }
  return 0;
}
