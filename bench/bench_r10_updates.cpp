// R10 — Data updates / drift: append distribution-shifted rows, then compare
// (a) the stale model, (b) the incrementally updated model, (c) a full
// rebuild, all scored on post-drift test queries.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r10_updates");

  PrintHeader("R10", "stale vs updated vs rebuilt after data drift",
              "stale models degrade after drift; statistics refresh "
              "(ANALYZE) and data-driven refits recover nearly all accuracy; "
              "query-driven incremental training recovers most of it");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  const std::vector<std::string> models = {"Histogram", "FCN",  "MSCN",
                                           "LW-XGB",    "Naru", "DeepDB-SPN"};

  std::vector<storage::datagen::DatabaseGenSpec> specs = {
      storage::datagen::DmvLikeSpec(cfg.dmv_scale),
      storage::datagen::ImdbLikeSpec(cfg.scale)};

  for (const auto& spec : specs) {
    BenchDb bench = MakeBenchDb(spec, cfg);
    std::printf("\n-- database: %s (append 40%% shifted rows) --\n",
                bench.name.c_str());

    // Build all models on the pre-drift state.
    std::vector<std::unique_ptr<ce::Estimator>> built;
    for (const std::string& name : models) {
      auto est = ce::MakeEstimator(name, neural);
      if (est->Build(*bench.db, bench.train).ok()) {
        built.push_back(std::move(est));
      } else {
        built.push_back(nullptr);
      }
    }

    // Drift: 40% new rows, more skew, shifted value region. Test queries are
    // regenerated and relabeled against the drifted data.
    storage::datagen::AppendShifted(bench.db.get(), spec, 0.4, 0.4, 0.15, 71);
    workload::WorkloadOptions wopts;
    wopts.max_joins = bench.db->num_tables() > 1 ? cfg.max_joins : 0;
    workload::WorkloadGenerator gen(bench.db.get(), wopts);
    Rng rng(72);
    auto post_test = gen.GenerateLabeled(200, &rng);
    auto post_train = gen.GenerateLabeled(400, &rng);

    TablePrinter table({"estimator", "stale", "updated", "rebuilt"});
    for (size_t m = 0; m < models.size(); ++m) {
      if (built[m] == nullptr) continue;
      std::vector<std::string> row = {models[m]};
      row.push_back(TablePrinter::Num(
          eval::EvaluateAccuracy(built[m].get(), post_test).summary.geo_mean));

      // Incremental update: data refresh when supported, otherwise feedback
      // queries from the post-drift workload.
      Status updated = built[m]->UpdateWithData(*bench.db);
      if (!updated.ok()) updated = built[m]->UpdateWithQueries(post_train);
      row.push_back(updated.ok()
                        ? TablePrinter::Num(
                              eval::EvaluateAccuracy(built[m].get(), post_test)
                                  .summary.geo_mean)
                        : std::string("-"));

      auto rebuilt = ce::MakeEstimator(models[m], neural);
      auto full_train = gen.GenerateLabeled(cfg.train_queries, &rng);
      if (rebuilt->Build(*bench.db, full_train).ok()) {
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(rebuilt.get(), post_test).summary.geo_mean));
      } else {
        row.push_back("-");
      }
      table.AddRow(row);
    }
    table.Print();
  }
  return 0;
}
