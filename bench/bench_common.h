// Shared setup for the experiment benchmarks (R1..R14).
//
// Each bench binary regenerates one table/figure of the reconstructed study
// (see DESIGN.md §2). Sizes are tuned so the full suite runs in minutes on a
// laptop while preserving the qualitative shapes the study reports.

#ifndef LCE_BENCH_BENCH_COMMON_H_
#define LCE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/table_printer.h"
#include "src/util/telemetry/memory.h"
#include "src/util/telemetry/metrics_snapshot.h"
#include "src/util/telemetry/model_card.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/query_log.h"
#include "src/util/telemetry/run_manifest.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/telemetry/trace.h"
#include "src/util/telemetry/train_log.h"
#include "src/util/timer.h"
#include "src/workload/generator.h"

namespace lce {
namespace bench {

/// Directory for bench artifacts (manifests, JSON outputs), relative to the
/// working directory. Override with LCE_BENCH_OUT_DIR; writers create it on
/// demand, so a fresh checkout needs no setup.
inline std::string BenchOutDir() {
  const char* v = std::getenv("LCE_BENCH_OUT_DIR");
  return (v != nullptr && *v != '\0') ? std::string(v)
                                      : std::string("bench/out");
}

/// `BenchOutDir()/name` — the canonical path for one bench artifact.
inline std::string BenchOutPath(const std::string& name) {
  return BenchOutDir() + "/" + name;
}

/// A database with labeled train/test workloads, ready for estimators.
struct BenchDb {
  std::string name;
  storage::datagen::DatabaseGenSpec spec;
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<exec::Executor> executor;
  std::vector<query::LabeledQuery> train;
  std::vector<query::LabeledQuery> test;
};

struct BenchConfig {
  double scale = 0.12;       // row-count multiplier for multi-table schemas
  double dmv_scale = 0.3;    // single-table schema is cheap
  int train_queries = 1500;
  int test_queries = 300;
  int max_joins = 3;
  uint64_t seed = 7;

  /// Defaults overridden by LCE_BENCH_{SCALE,DMV_SCALE,TRAIN_QUERIES,
  /// TEST_QUERIES,MAX_JOINS,SEED} — CI runs the suite at a fraction of the
  /// default size without a rebuild.
  static BenchConfig FromEnv() {
    BenchConfig cfg;
    auto env_double = [](const char* name, double* out) {
      const char* v = std::getenv(name);
      if (v != nullptr && *v != '\0') *out = std::atof(v);
    };
    auto env_int = [](const char* name, int* out) {
      const char* v = std::getenv(name);
      if (v != nullptr && *v != '\0') *out = std::atoi(v);
    };
    env_double("LCE_BENCH_SCALE", &cfg.scale);
    env_double("LCE_BENCH_DMV_SCALE", &cfg.dmv_scale);
    env_int("LCE_BENCH_TRAIN_QUERIES", &cfg.train_queries);
    env_int("LCE_BENCH_TEST_QUERIES", &cfg.test_queries);
    env_int("LCE_BENCH_MAX_JOINS", &cfg.max_joins);
    if (const char* v = std::getenv("LCE_BENCH_SEED");
        v != nullptr && *v != '\0') {
      cfg.seed = static_cast<uint64_t>(std::atoll(v));
    }
    return cfg;
  }
};

inline BenchDb MakeBenchDb(const storage::datagen::DatabaseGenSpec& spec,
                           const BenchConfig& cfg) {
  BenchDb out;
  out.name = spec.name;
  out.spec = spec;
  out.db = storage::datagen::Generate(spec, cfg.seed);
  out.executor = std::make_unique<exec::Executor>(out.db.get());
  // This is the ground-truth oracle the benches replay plans against; its
  // calls go to the query log (LCE_QUERY_LOG). The generator's bulk labeler
  // and the sampling estimator's internal executor stay un-logged.
  out.executor->EnableQueryLog();
  workload::WorkloadOptions wopts;
  wopts.max_joins = out.db->num_tables() > 1 ? cfg.max_joins : 0;
  workload::WorkloadGenerator gen(out.db.get(), wopts);
  Rng rng(cfg.seed * 977 + 13);
  Timer label_timer;
  telemetry::TraceSpan span("label/" + out.name);
  out.train = gen.GenerateLabeled(cfg.train_queries, &rng);
  out.test = gen.GenerateLabeled(cfg.test_queries, &rng);
  LCE_LOG(INFO) << out.name << ": labeled "
                << cfg.train_queries + cfg.test_queries << " queries in "
                << label_timer.ElapsedSeconds() << "s ("
                << parallel::ThreadCount() << " threads)";
  return out;
}

/// The four study databases at bench scale.
inline std::vector<BenchDb> MakeStudyDbs(const BenchConfig& cfg) {
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::TpchLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::StatsLikeSpec(cfg.scale), cfg));
  return dbs;
}

/// Neural settings shared by the benches: sized for minutes-long runs.
inline ce::NeuralOptions BenchNeuralOptions() {
  ce::NeuralOptions o;
  o.hidden_dim = 48;
  o.epochs = 20;
  return o;
}

/// Builds (timing it) and evaluates one estimator.
struct EstimatorRun {
  std::string name;
  double build_seconds = 0;
  uint64_t size_bytes = 0;
  eval::AccuracyReport accuracy;
  eval::LatencyReport latency;
  bool ok = false;
};

inline EstimatorRun RunEstimator(const std::string& name, const BenchDb& bench,
                                 const ce::NeuralOptions& neural,
                                 uint64_t seed = 42) {
  EstimatorRun run;
  run.name = name;
  // Scope the phase counters and the build span to this estimator, so the
  // manifest reads "FCN:nn/epoch" rather than a cross-estimator pot.
  telemetry::PhaseScope phase_scope(name);
  auto est = ce::MakeEstimator(name, neural, seed);
  Timer timer;
  Status s;
  {
    telemetry::TraceSpan span("build/" + name + "@" + bench.name);
    s = est->Build(*bench.db, bench.train);
  }
  run.build_seconds = timer.ElapsedSeconds();
  if (!s.ok()) {
    LCE_LOG(ERROR) << "build of " << name << " on " << bench.name
                   << " failed: " << s.ToString();
    return run;
  }
  telemetry::TraceSpan eval_span("eval/" + name + "@" + bench.name);
  run.accuracy = eval::EvaluateAccuracy(est.get(), bench.test);
  run.latency = eval::MeasureEstimateLatency(est.get(), bench.test);
  run.size_bytes = est->SizeBytes();
  run.ok = true;
  // Model card: the estimator fills what it tracks (family, parameters,
  // epochs, losses); the harness owns the run-level context.
  {
    telemetry::ModelCard card;
    est->DescribeModel(&card);
    card.dataset = bench.name;
    card.build_seconds = run.build_seconds;
    card.extra.emplace_back("qerr_p50", run.accuracy.summary.p50);
    card.extra.emplace_back("qerr_p95", run.accuracy.summary.p95);
    telemetry::ModelCardRegistry::Global().Add(std::move(card));
  }
  return run;
}

/// RAII per-binary harness: times the whole run and, on destruction, flushes
/// the query log and writes BenchOutDir()/BENCH_manifest_<name>.json plus the
/// LCE_TRACE file (if enabled).
class BenchRun {
 public:
  explicit BenchRun(std::string name) : name_(std::move(name)) {
    telemetry::SetCurrentThreadName("main");
    LCE_LOG(INFO) << "bench " << name_ << " starting (commit "
                  << telemetry::BuildGitCommit() << ", "
                  << parallel::ThreadCount() << " threads)";
  }
  ~BenchRun() {
    telemetry::QueryLog::Global().Flush();
    telemetry::TrainLog::Global().Flush();
    telemetry::WriteRunManifest(
        BenchOutPath("BENCH_manifest_" + name_ + ".json"), name_,
        timer_.ElapsedSeconds());
    telemetry::WriteTraceIfEnabled();
    telemetry::WriteProfileIfEnabled();
    telemetry::WriteMetricsSnapshotIfEnabled();
  }
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

 private:
  std::string name_;
  Timer timer_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& what,
                        const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace lce

#endif  // LCE_BENCH_BENCH_COMMON_H_
