// R2 — Cost profile: build (training) time, mean inference latency, and
// estimator footprint, on one single-table and one multi-table database.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r2_costs");

  PrintHeader("R2", "build time / inference latency / model size",
              "traditional estimators build orders of magnitude faster and "
              "are smaller; recurrent models have the slowest inference; "
              "sampling trades size for accuracy");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));

  for (BenchDb& bench : dbs) {
    std::printf("\n-- database: %s --\n", bench.name.c_str());
    TablePrinter table({"estimator", "build_s", "infer_us", "infer_p95_us",
                        "size_KiB", "geo-mean q-err"});
    size_t measured = 0, total = 0;
    bool capped = false;
    for (const std::string& name : ce::AllEstimatorNames()) {
      EstimatorRun run = RunEstimator(name, bench, neural);
      if (!run.ok) continue;
      measured = run.latency.measured;
      total = run.latency.total;
      capped = capped || run.latency.capped;
      table.AddRow({name, TablePrinter::Fixed(run.build_seconds, 3),
                    TablePrinter::Fixed(run.latency.micros.mean, 1),
                    TablePrinter::Fixed(run.latency.micros.p95, 1),
                    TablePrinter::Fixed(
                        static_cast<double>(run.size_bytes) / 1024.0, 1),
                    TablePrinter::Num(run.accuracy.summary.geo_mean)});
    }
    table.Print();
    if (capped) {
      std::printf("latency measured on the first %zu of %zu test queries\n",
                  measured, total);
    }
  }
  return 0;
}
