// R13 — Training variance across random seeds (stability of learned models).

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r13_variance");

  PrintHeader("R13", "q-error variance across 8 training seeds (DMV-like)",
              "neural models show non-trivial seed variance; the "
              "deterministic tree ensemble has none; the under-capacity "
              "Linear model swings the most between seeds");

  BenchConfig cfg = BenchConfig::FromEnv();
  cfg.train_queries = 1200;
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();
  neural.epochs = 15;

  const std::vector<std::string> models = {"Linear", "FCN", "MSCN", "LSTM",
                                           "LW-XGB"};
  TablePrinter table({"estimator", "mean geo-q", "stddev", "min", "max",
                      "rel spread"});
  for (const std::string& name : models) {
    std::vector<double> geo_means;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      EstimatorRun run = RunEstimator(name, bench, neural, seed);
      if (run.ok) geo_means.push_back(run.accuracy.summary.geo_mean);
    }
    if (geo_means.empty()) continue;
    SampleSummary s = Summarize(geo_means);
    table.AddRow({name, TablePrinter::Num(s.mean),
                  TablePrinter::Num(StdDev(geo_means)),
                  TablePrinter::Num(s.min), TablePrinter::Num(s.max),
                  TablePrinter::Fixed((s.max - s.min) / s.mean, 2)});
  }
  table.Print();
  return 0;
}
