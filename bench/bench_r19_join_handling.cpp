// R19 (ablation) — join handling for per-table (data-driven) estimators:
// the classic distinct-count denominator vs measured per-edge join
// selectivities, on the two skewed-fanout multi-table databases.

#include "bench/bench_common.h"
#include "src/ce/data_driven/bayesnet.h"
#include "src/ce/data_driven/naru.h"
#include "src/ce/data_driven/spn.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r19_join_handling");

  PrintHeader("R19", "data-driven join handling: distinct-count vs measured "
                     "edge selectivities",
              "on clean PK-FK schemas measured edge selectivities coincide "
              "with the distinct-count formula (rho = 1/|PK|): those rows "
              "are identical by design. The fanout correction helps only "
              "where predicates correlate with join-key fanout (web(corr)); "
              "where they are independent (imdb/stats) it adds sampling "
              "noise — the residual error there is fanout VARIANCE, which "
              "only join-aware methods address");

  BenchConfig cfg = BenchConfig::FromEnv();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::StatsLikeSpec(cfg.scale), cfg));
  {
    // A schema with explicit predicate-fanout correlation: u_signup_day is
    // monotone in the user id, and event fanout is Zipf over user ids —
    // range predicates on signup day directly select fanout regimes.
    storage::datagen::DatabaseGenSpec web;
    web.name = "web(corr)";
    web.tables = {
        {.name = "users",
         .rows = 8000,
         .columns = {{.name = "u_id", .is_key = true},
                     {.name = "u_signup_day", .domain = 400,
                      .monotone_of_key = true},
                     {.name = "u_country", .domain = 30, .zipf_theta = 0.8}}},
        {.name = "events",
         .rows = 80000,
         .columns = {{.name = "e_user_id", .ref_table = "users",
                      .zipf_theta = 1.4},
                     {.name = "e_type", .domain = 12, .zipf_theta = 0.6}}},
    };
    web.joins = {{"users", "u_id", "events", "e_user_id"}};
    BenchConfig web_cfg = cfg;
    web_cfg.max_joins = 1;
    dbs.push_back(MakeBenchDb(web, web_cfg));
  }

  for (BenchDb& bench : dbs) {
    std::printf("\n-- database: %s --\n", bench.name.c_str());
    TablePrinter table({"estimator", "join combiner", "geo-mean", "p90",
                        "p99", "max"});
    auto add = [&](const std::string& name, const char* mode,
                   ce::Estimator* est) {
      if (!est->Build(*bench.db, bench.train).ok()) return;
      auto report = eval::EvaluateAccuracy(est, bench.test);
      const SampleSummary& s = report.summary;
      table.AddRow({name, mode, TablePrinter::Num(s.geo_mean),
                    TablePrinter::Num(s.p90), TablePrinter::Num(s.p99),
                    TablePrinter::Num(s.max)});
    };
    struct Mode {
      const char* label;
      bool edge;
      bool fanout;
    };
    for (Mode mode : {Mode{"distinct-count", false, false},
                      Mode{"edge-selectivity", true, false},
                      Mode{"fanout-corrected", false, true}}) {
      {
        ce::NaruTableModel::Options o;
        o.use_edge_selectivity = mode.edge;
        o.use_fanout_correction = mode.fanout;
        ce::NaruEstimator est(o);
        add("Naru", mode.label, &est);
      }
      {
        ce::SpnTableModel::Options o;
        o.use_edge_selectivity = mode.edge;
        o.use_fanout_correction = mode.fanout;
        ce::SpnEstimator est(o);
        add("DeepDB-SPN", mode.label, &est);
      }
      {
        ce::BayesNetTableModel::Options o;
        o.use_edge_selectivity = mode.edge;
        o.use_fanout_correction = mode.fanout;
        ce::BayesNetEstimator est(o);
        add("BayesNet", mode.label, &est);
      }
    }
    table.Print();
  }
  return 0;
}
