// R5 — Accuracy vs skew: Zipf-θ sweep on the synthetic pair.

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r5_skew");

  PrintHeader("R5", "q-error vs Zipf skew θ (synthetic pair)",
              "histograms with MCVs absorb moderate skew; estimators without "
              "value-frequency information (flat-encoding NNs) degrade as θ "
              "grows; data-driven models track skew well");

  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5, 2.0};
  const std::vector<std::string> models = {"Histogram", "Sampling", "FCN",
                                           "MSCN",      "LW-XGB",   "Naru",
                                           "DeepDB-SPN"};
  ce::NeuralOptions neural = BenchNeuralOptions();

  std::vector<std::vector<std::string>> rows(models.size());
  for (size_t m = 0; m < models.size(); ++m) rows[m].push_back(models[m]);

  for (double theta : thetas) {
    storage::datagen::DatabaseGenSpec spec =
        storage::datagen::SyntheticPairSpec(30000, 64, theta, 0.5);
    BenchDb bench;
    bench.name = spec.name;
    bench.spec = spec;
    bench.db = storage::datagen::Generate(spec, 7);
    bench.executor = std::make_unique<exec::Executor>(bench.db.get());
    workload::WorkloadOptions wopts;
    wopts.max_joins = 0;
    wopts.min_predicates = 1;
    wopts.max_predicates = 2;
    wopts.equality_prob = 0.4;
    workload::WorkloadGenerator gen(bench.db.get(), wopts);
    Rng rng(8);
    bench.train = gen.GenerateLabeled(1200, &rng);
    bench.test = gen.GenerateLabeled(200, &rng);

    for (size_t m = 0; m < models.size(); ++m) {
      EstimatorRun run = RunEstimator(models[m], bench, neural);
      rows[m].push_back(run.ok ? TablePrinter::Num(run.accuracy.summary.geo_mean)
                               : "-");
    }
  }

  TablePrinter table({"estimator", "θ=0", "θ=0.5", "θ=1", "θ=1.5", "θ=2"});
  for (auto& row : rows) table.AddRow(row);
  table.Print();
  return 0;
}
