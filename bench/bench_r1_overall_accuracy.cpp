// R1 — Overall accuracy: q-error percentiles of the full estimator zoo on
// the four study databases (the study's headline accuracy table).

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r1_overall_accuracy");

  PrintHeader("R1", "overall q-error of all estimators on 4 databases",
              "learned models beat Histogram/Sampling on correlated data; "
              "MSCN strongest among query-driven on joins; Linear weakest "
              "learned model");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  for (BenchDb& bench : MakeStudyDbs(cfg)) {
    std::printf("\n-- database: %s (%d tables) --\n", bench.name.c_str(),
                bench.db->num_tables());
    TablePrinter table({"estimator", "geo-mean", "p50", "p90", "p95", "p99",
                        "max"});
    for (const std::string& name : ce::AllEstimatorNames()) {
      EstimatorRun run = RunEstimator(name, bench, neural);
      if (!run.ok) continue;
      const SampleSummary& s = run.accuracy.summary;
      table.AddRow({name, TablePrinter::Num(s.geo_mean),
                    TablePrinter::Num(s.p50), TablePrinter::Num(s.p90),
                    TablePrinter::Num(s.p95), TablePrinter::Num(s.p99),
                    TablePrinter::Num(s.max)});
    }
    table.Print();
  }
  return 0;
}
