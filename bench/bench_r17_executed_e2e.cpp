// R17 — Executed end-to-end: plans chosen under each estimator's
// cardinalities are PHYSICALLY EXECUTED (hash joins over the stored data),
// and the work each plan performs (tuple operations) is reported. This is
// the "real execution" counterpart of R9's noise-free cost replay.

#include "bench/bench_common.h"
#include "src/exec/plan_executor.h"
#include "src/optimizer/planner.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r17_executed_e2e");

  PrintHeader("R17", "executed plans: tuple work per estimator's plans",
              "plans from better estimators perform less physical work; all "
              "plans return identical (correct) counts; hostile estimates "
              "can blow the intermediate-size budget");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  const std::vector<std::string> models = {"Histogram", "Sampling",
                                           "WanderJoin", "Linear", "FCN",
                                           "MSCN", "LW-XGB"};

  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::StatsLikeSpec(cfg.scale), cfg));

  for (BenchDb& bench : dbs) {
    opt::Planner planner(bench.db.get(), opt::CostModel{});
    exec::PlanExecutor physical(bench.db.get());

    // Query set: multi-join queries whose OPTIMAL plan fits the execution
    // budget (unboundedly large true results are uninteresting for plan
    // comparison — every plan materializes the same giant output).
    workload::WorkloadOptions opts;
    opts.max_joins = 3;
    workload::WorkloadGenerator gen(bench.db.get(), opts);
    Rng rng(31);
    std::vector<query::LabeledQuery> queries;
    int attempts = 0;
    while (queries.size() < 15 && attempts < 30) {
      ++attempts;
      auto batch = gen.GenerateLabeled(10, &rng);
      for (auto& lq : batch) {
        if (lq.q.tables.size() < 3 || queries.size() >= 15) continue;
        opt::CardFn true_cards = [&](const std::vector<int>& tables) {
          return bench.executor->SubsetCardinality(lq.q, tables);
        };
        if (physical.Execute(lq.q, planner.BestPlan(lq.q, true_cards)).ok()) {
          queries.push_back(std::move(lq));
        }
      }
    }

    std::printf("\n-- database: %s (15 multi-join queries, physically "
                "executed) --\n",
                bench.name.c_str());
    TablePrinter table({"estimator", "total tuple work", "vs oracle",
                        "peak intermediate", "aborted"});

    // Oracle row.
    uint64_t oracle_work = 0, oracle_peak = 0;
    for (const auto& lq : queries) {
      opt::CardFn true_cards = [&](const std::vector<int>& tables) {
        return bench.executor->SubsetCardinality(lq.q, tables);
      };
      auto stats =
          physical.Execute(lq.q, planner.BestPlan(lq.q, true_cards));
      LCE_CHECK(stats.ok());
      LCE_CHECK(stats.value().result == lq.cardinality);
      oracle_work += stats.value().TotalWork();
      oracle_peak = std::max(oracle_peak, stats.value().peak_intermediate);
    }
    table.AddRow({"Clean (oracle)", TablePrinter::Num(
                      static_cast<double>(oracle_work)),
                  "1.00",
                  TablePrinter::Num(static_cast<double>(oracle_peak)), "0"});

    for (const std::string& name : models) {
      auto est = ce::MakeEstimator(name, neural);
      if (!est->Build(*bench.db, bench.train).ok()) continue;
      uint64_t work = 0, peak = 0;
      int aborted = 0;
      for (const auto& lq : queries) {
        opt::CardFn est_cards = [&](const std::vector<int>& tables) {
          return est->EstimateCardinality(
              query::Restrict(lq.q, tables, bench.db->schema()));
        };
        opt::Plan plan = planner.BestPlan(lq.q, est_cards);
        auto stats = physical.Execute(lq.q, plan);
        if (!stats.ok()) {
          ++aborted;
          continue;
        }
        LCE_CHECK_MSG(stats.value().result == lq.cardinality,
                      "plan produced a wrong count");
        work += stats.value().TotalWork();
        peak = std::max(peak, stats.value().peak_intermediate);
      }
      table.AddRow({name, TablePrinter::Num(static_cast<double>(work)),
                    TablePrinter::Fixed(static_cast<double>(work) /
                                            static_cast<double>(oracle_work),
                                        2),
                    TablePrinter::Num(static_cast<double>(peak)),
                    std::to_string(aborted)});
    }
    table.Print();
  }
  return 0;
}
