// R15 (ablation) — planner sensitivity: exact DP enumeration vs greedy
// operator ordering (GOO), each driven by true cards, a learned estimator,
// and the classical histogram. Shows how much join-enumeration quality can
// compensate for (or amplify) estimation error.

#include "bench/bench_common.h"
#include "src/optimizer/planner.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r15_planner_ablation");

  PrintHeader("R15", "planner ablation: DP vs greedy under three estimators",
              "with any fixed cardinality source DP <= greedy by "
              "construction; on tree-shaped <=4-way joins greedy is "
              "near-optimal, so estimate quality — not enumeration — "
              "dominates plan cost (compare rows, not columns)");

  BenchConfig cfg = BenchConfig::FromEnv();
  ce::NeuralOptions neural = BenchNeuralOptions();
  std::vector<BenchDb> dbs;
  dbs.push_back(MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg));
  dbs.push_back(MakeBenchDb(storage::datagen::StatsLikeSpec(cfg.scale), cfg));

  for (BenchDb& bench : dbs) {
    workload::WorkloadOptions opts;
    opts.max_joins = 3;
    workload::WorkloadGenerator gen(bench.db.get(), opts);
    Rng rng(23);
    std::vector<query::LabeledQuery> queries;
    while (queries.size() < 25) {
      auto batch = gen.GenerateLabeled(10, &rng);
      for (auto& lq : batch) {
        if (lq.q.tables.size() >= 3 && queries.size() < 25) {
          queries.push_back(std::move(lq));
        }
      }
    }

    opt::Planner planner(bench.db.get(), opt::CostModel{});
    auto hist = ce::MakeEstimator("Histogram");
    LCE_CHECK_OK(hist->Build(*bench.db, bench.train));
    auto mscn = ce::MakeEstimator("MSCN", neural);
    LCE_CHECK_OK(mscn->Build(*bench.db, bench.train));

    std::printf("\n-- database: %s (25 multi-join queries, total TRUE cost "
                "of chosen plans) --\n",
                bench.name.c_str());
    TablePrinter table({"cardinalities", "DP total cost", "Greedy total cost",
                        "greedy/DP"});
    struct Source {
      const char* label;
      ce::Estimator* est;  // nullptr = true cards
    };
    for (Source src : {Source{"true (oracle)", nullptr},
                       Source{"Histogram", hist.get()},
                       Source{"MSCN", mscn.get()}}) {
      double dp_total = 0, greedy_total = 0;
      for (const auto& lq : queries) {
        opt::CardFn true_cards = [&](const std::vector<int>& tables) {
          return bench.executor->SubsetCardinality(lq.q, tables);
        };
        opt::CardFn planning_cards =
            src.est == nullptr
                ? true_cards
                : opt::CardFn([&](const std::vector<int>& tables) {
                    return src.est->EstimateCardinality(
                        query::Restrict(lq.q, tables, bench.db->schema()));
                  });
        opt::Plan dp = planner.BestPlan(lq.q, planning_cards);
        opt::Plan greedy = planner.GreedyPlan(lq.q, planning_cards);
        dp_total += planner.CostWithCards(lq.q, dp, true_cards);
        greedy_total += planner.CostWithCards(lq.q, greedy, true_cards);
      }
      table.AddRow({src.label, TablePrinter::Num(dp_total),
                    TablePrinter::Num(greedy_total),
                    TablePrinter::Fixed(greedy_total / dp_total, 3)});
    }
    table.Print();
  }
  return 0;
}
