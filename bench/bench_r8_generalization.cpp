// R8 — Generalization: seen vs unseen join templates, and in-distribution vs
// out-of-range predicates (IMDb-like schema).

#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r8_generalization");

  PrintHeader("R8", "seen vs unseen join templates; in- vs out-of-range "
                    "predicates",
              "query-driven models lose accuracy on join templates absent "
              "from training and on predicate value regions never queried; "
              "the histogram's change comes only from query difficulty, not "
              "from the train/test split");

  BenchConfig cfg = BenchConfig::FromEnv();
  cfg.max_joins = 3;
  BenchDb bench = MakeBenchDb(storage::datagen::ImdbLikeSpec(cfg.scale), cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // Template split: hold out every 3-join template; train on the rest.
  workload::WorkloadOptions all;
  all.max_joins = 3;
  workload::WorkloadGenerator enumerator(bench.db.get(), all);
  std::vector<std::vector<int>> seen_templates, unseen_templates;
  for (const auto& tmpl : enumerator.EnumerateTemplates()) {
    (tmpl.size() == 4 ? unseen_templates : seen_templates).push_back(tmpl);
  }

  Rng rng(123);
  workload::WorkloadOptions seen_opts = all;
  seen_opts.template_whitelist = seen_templates;
  workload::WorkloadGenerator seen_gen(bench.db.get(), seen_opts);
  auto train = seen_gen.GenerateLabeled(2000, &rng);
  auto test_seen = seen_gen.GenerateLabeled(150, &rng);

  workload::WorkloadOptions unseen_opts = all;
  unseen_opts.template_whitelist = unseen_templates;
  workload::WorkloadGenerator unseen_gen(bench.db.get(), unseen_opts);
  auto test_unseen = unseen_gen.GenerateLabeled(150, &rng);

  // Predicate-region split: train centers from the first 60% of rows, OOD
  // test centers from the last 20%.
  workload::WorkloadOptions in_region = all;
  in_region.template_whitelist = seen_templates;
  in_region.center_lo = 0.0;
  in_region.center_hi = 0.6;
  workload::WorkloadGenerator in_gen(bench.db.get(), in_region);
  auto train_region = in_gen.GenerateLabeled(2000, &rng);
  auto test_in = in_gen.GenerateLabeled(150, &rng);
  workload::WorkloadOptions out_region = in_region;
  out_region.center_lo = 0.8;
  out_region.center_hi = 1.0;
  workload::WorkloadGenerator out_gen(bench.db.get(), out_region);
  auto test_out = out_gen.GenerateLabeled(150, &rng);

  const std::vector<std::string> models = {"Histogram", "FCN", "MSCN", "LSTM",
                                           "LW-XGB"};
  TablePrinter table({"estimator", "seen tmpl", "UNSEEN tmpl", "in-range",
                      "OUT-of-range"});
  for (const std::string& name : models) {
    std::vector<std::string> row = {name};
    {
      auto est = ce::MakeEstimator(name, neural);
      if (est->Build(*bench.db, train).ok()) {
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(est.get(), test_seen).summary.geo_mean));
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(est.get(), test_unseen).summary.geo_mean));
      } else {
        row.insert(row.end(), {"-", "-"});
      }
    }
    {
      auto est = ce::MakeEstimator(name, neural);
      if (est->Build(*bench.db, train_region).ok()) {
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(est.get(), test_in).summary.geo_mean));
        row.push_back(TablePrinter::Num(
            eval::EvaluateAccuracy(est.get(), test_out).summary.geo_mean));
      } else {
        row.insert(row.end(), {"-", "-"});
      }
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
