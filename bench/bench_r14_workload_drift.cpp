// R14 — Workload drift: accuracy as the test-query distribution diverges
// from the training distribution, with the divergence quantified by the
// Jensen–Shannon divergence of predicate-center histograms.

#include <algorithm>
#include <memory>

#include "bench/bench_common.h"
#include "src/util/telemetry/drift.h"

namespace {

// Histogram of normalized predicate centers, pooled over all predicates of a
// workload (20 bins). The JSD of two such histograms quantifies drift.
std::vector<double> CenterHistogram(
    const std::vector<lce::query::LabeledQuery>& workload,
    const lce::storage::Database& db) {
  std::vector<double> hist(20, 1e-9);
  for (const auto& lq : workload) {
    for (const auto& p : lq.q.predicates) {
      const auto& stats = db.table(p.col.table).stats(p.col.column);
      double span = static_cast<double>(stats.max - stats.min) + 1.0;
      double center =
          (static_cast<double>(p.lo + p.hi) / 2.0 - stats.min) / span;
      int bin = std::clamp(static_cast<int>(center * 20), 0, 19);
      hist[bin] += 1.0;
    }
  }
  return hist;
}

}  // namespace

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r14_workload_drift");

  PrintHeader("R14", "accuracy under workload drift (JSD-quantified)",
              "q-error of query-driven models grows with the divergence "
              "between training and test query distributions; "
              "data-independent statistics are unaffected");

  BenchConfig cfg = BenchConfig::FromEnv();
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // Train on centers from rows [0, 0.5); test workloads slide away.
  workload::WorkloadOptions train_opts;
  train_opts.max_joins = 0;
  train_opts.center_lo = 0.0;
  train_opts.center_hi = 0.5;
  workload::WorkloadGenerator train_gen(bench.db.get(), train_opts);
  Rng rng(55);
  auto train = train_gen.GenerateLabeled(1500, &rng);
  auto train_hist = CenterHistogram(train, *bench.db);

  struct DriftLevel {
    const char* label;
    double lo, hi;
  };
  const std::vector<DriftLevel> levels = {{"none (same region)", 0.0, 0.5},
                                          {"mild", 0.25, 0.75},
                                          {"strong", 0.5, 1.0},
                                          {"extreme", 0.8, 1.0}};

  const std::vector<std::string> models = {"Histogram", "FCN", "MSCN",
                                           "LW-XGB"};
  std::vector<std::unique_ptr<ce::Estimator>> built;
  for (const std::string& name : models) {
    auto est = ce::MakeEstimator(name, neural);
    LCE_CHECK_OK(est->Build(*bench.db, train));
    built.push_back(std::move(est));
  }

  TablePrinter table({"drift level", "JSD(train,test)", "Histogram", "FCN",
                      "MSCN", "LW-XGB"});
  // Per-model drift monitors, armed on the no-drift level: threshold = 4x
  // the in-distribution windowed p95 (floor 2). Each later level streams its
  // q-errors through the monitor; the first alert's index within the level
  // is the detection lag in queries.
  std::vector<std::unique_ptr<telemetry::DriftMonitor>> monitors;
  TablePrinter lag_table(
      {"drift level", "Histogram", "FCN", "MSCN", "LW-XGB"});
  for (const DriftLevel& level : levels) {
    workload::WorkloadOptions test_opts = train_opts;
    test_opts.center_lo = level.lo;
    test_opts.center_hi = level.hi;
    workload::WorkloadGenerator test_gen(bench.db.get(), test_opts);
    auto test = test_gen.GenerateLabeled(200, &rng);
    double jsd =
        JensenShannonDivergence(train_hist, CenterHistogram(test, *bench.db));
    std::vector<std::string> row = {level.label, TablePrinter::Fixed(jsd, 4)};
    std::vector<std::string> lag_row = {level.label};
    const bool arming = monitors.empty();
    for (size_t m = 0; m < built.size(); ++m) {
      eval::AccuracyReport rep = eval::EvaluateAccuracy(built[m].get(), test);
      row.push_back(TablePrinter::Num(rep.summary.geo_mean));
      if (arming) {
        telemetry::WindowedQuantileSketch sketch(
            std::max<size_t>(1, rep.qerrors.size()));
        for (double qe : rep.qerrors) sketch.Observe(qe);
        telemetry::DriftMonitor::Options mopts;
        mopts.window = std::min<size_t>(
            64, std::max<size_t>(8, rep.qerrors.size() / 2));
        mopts.threshold_p95 = std::max(4.0 * sketch.Quantile(0.95), 2.0);
        monitors.push_back(std::make_unique<telemetry::DriftMonitor>(
            models[m] + "@r14", mopts));
        for (double qe : rep.qerrors) monitors[m]->Observe(qe);
        monitors[m]->DrainAlerts();  // arming-phase crossings don't count
        lag_row.push_back("baseline");
      } else {
        uint64_t before = monitors[m]->observations();
        for (double qe : rep.qerrors) monitors[m]->Observe(qe);
        std::vector<telemetry::DriftAlert> alerts =
            monitors[m]->DrainAlerts();
        lag_row.push_back(
            alerts.empty()
                ? std::string("-")
                : std::to_string(alerts.front().observation - before) + " q");
      }
    }
    table.AddRow(row);
    lag_table.AddRow(lag_row);
  }
  table.Print();
  std::printf("\ndrift detection lag (queries until windowed-p95 alert, "
              "threshold = 4x in-distribution p95):\n");
  lag_table.Print();
  return 0;
}
