// R14 — Workload drift: accuracy as the test-query distribution diverges
// from the training distribution, with the divergence quantified by the
// Jensen–Shannon divergence of predicate-center histograms.

#include <algorithm>

#include "bench/bench_common.h"

namespace {

// Histogram of normalized predicate centers, pooled over all predicates of a
// workload (20 bins). The JSD of two such histograms quantifies drift.
std::vector<double> CenterHistogram(
    const std::vector<lce::query::LabeledQuery>& workload,
    const lce::storage::Database& db) {
  std::vector<double> hist(20, 1e-9);
  for (const auto& lq : workload) {
    for (const auto& p : lq.q.predicates) {
      const auto& stats = db.table(p.col.table).stats(p.col.column);
      double span = static_cast<double>(stats.max - stats.min) + 1.0;
      double center =
          (static_cast<double>(p.lo + p.hi) / 2.0 - stats.min) / span;
      int bin = std::clamp(static_cast<int>(center * 20), 0, 19);
      hist[bin] += 1.0;
    }
  }
  return hist;
}

}  // namespace

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r14_workload_drift");

  PrintHeader("R14", "accuracy under workload drift (JSD-quantified)",
              "q-error of query-driven models grows with the divergence "
              "between training and test query distributions; "
              "data-independent statistics are unaffected");

  BenchConfig cfg = BenchConfig::FromEnv();
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // Train on centers from rows [0, 0.5); test workloads slide away.
  workload::WorkloadOptions train_opts;
  train_opts.max_joins = 0;
  train_opts.center_lo = 0.0;
  train_opts.center_hi = 0.5;
  workload::WorkloadGenerator train_gen(bench.db.get(), train_opts);
  Rng rng(55);
  auto train = train_gen.GenerateLabeled(1500, &rng);
  auto train_hist = CenterHistogram(train, *bench.db);

  struct DriftLevel {
    const char* label;
    double lo, hi;
  };
  const std::vector<DriftLevel> levels = {{"none (same region)", 0.0, 0.5},
                                          {"mild", 0.25, 0.75},
                                          {"strong", 0.5, 1.0},
                                          {"extreme", 0.8, 1.0}};

  const std::vector<std::string> models = {"Histogram", "FCN", "MSCN",
                                           "LW-XGB"};
  std::vector<std::unique_ptr<ce::Estimator>> built;
  for (const std::string& name : models) {
    auto est = ce::MakeEstimator(name, neural);
    LCE_CHECK_OK(est->Build(*bench.db, train));
    built.push_back(std::move(est));
  }

  TablePrinter table({"drift level", "JSD(train,test)", "Histogram", "FCN",
                      "MSCN", "LW-XGB"});
  for (const DriftLevel& level : levels) {
    workload::WorkloadOptions test_opts = train_opts;
    test_opts.center_lo = level.lo;
    test_opts.center_hi = level.hi;
    workload::WorkloadGenerator test_gen(bench.db.get(), test_opts);
    auto test = test_gen.GenerateLabeled(200, &rng);
    double jsd =
        JensenShannonDivergence(train_hist, CenterHistogram(test, *bench.db));
    std::vector<std::string> row = {level.label, TablePrinter::Fixed(jsd, 4)};
    for (auto& est : built) {
      row.push_back(TablePrinter::Num(
          eval::EvaluateAccuracy(est.get(), test).summary.geo_mean));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
