// R18 (extension) — two robustness views:
//  (a) training convergence curves of the neural models (per-epoch loss);
//  (b) bound correction: clamping a learned model into a histogram envelope
//      tames out-of-distribution tails at a small in-distribution cost.

#include "bench/bench_common.h"
#include "src/ce/bounded.h"
#include "src/ce/query_driven/flat_models.h"
#include "src/ce/query_driven/set_models.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r18_convergence_bounds");

  PrintHeader("R18", "convergence curves + bound-corrected robustness",
              "losses fall steeply then flatten (convergence); the bounded "
              "model matches the raw model in-distribution and cuts the "
              "out-of-distribution max q-error by orders of magnitude");

  BenchConfig cfg = BenchConfig::FromEnv();
  BenchDb bench = MakeBenchDb(storage::datagen::DmvLikeSpec(cfg.dmv_scale),
                              cfg);
  ce::NeuralOptions neural = BenchNeuralOptions();

  // (a) Convergence curves.
  std::printf("\n(a) per-epoch mean training loss\n");
  {
    TablePrinter table({"epoch", "FCN", "MSCN"});
    ce::FcnEstimator fcn(neural);
    ce::MscnEstimator mscn(neural);
    LCE_CHECK_OK(fcn.Build(*bench.db, bench.train));
    LCE_CHECK_OK(mscn.Build(*bench.db, bench.train));
    for (size_t e = 0; e < fcn.epoch_losses().size(); e += 2) {
      table.AddRow({std::to_string(e + 1),
                    TablePrinter::Num(fcn.epoch_losses()[e]),
                    TablePrinter::Num(mscn.epoch_losses()[e])});
    }
    table.Print();
  }

  // (b) Bound correction under workload drift (the R14 stress).
  std::printf("\n(b) raw vs histogram-bounded FCN under workload drift\n");
  {
    workload::WorkloadOptions train_opts;
    train_opts.max_joins = 0;
    train_opts.center_lo = 0.0;
    train_opts.center_hi = 0.5;
    workload::WorkloadGenerator train_gen(bench.db.get(), train_opts);
    Rng rng(61);
    auto train = train_gen.GenerateLabeled(1500, &rng);

    auto raw = ce::MakeEstimator("FCN", neural);
    LCE_CHECK_OK(raw->Build(*bench.db, train));
    ce::BoundedEstimator bounded(ce::MakeEstimator("FCN", neural),
                                 ce::MakeEstimator("Histogram"),
                                 /*envelope=*/8.0);
    LCE_CHECK_OK(bounded.Build(*bench.db, train));

    TablePrinter table({"test workload", "FCN geo", "FCN max",
                        "FCN+Bound geo", "FCN+Bound max"});
    struct Level {
      const char* label;
      double lo, hi;
    };
    for (Level level : {Level{"in-distribution", 0.0, 0.5},
                        Level{"drifted", 0.5, 1.0},
                        Level{"extreme drift", 0.8, 1.0}}) {
      workload::WorkloadOptions test_opts = train_opts;
      test_opts.center_lo = level.lo;
      test_opts.center_hi = level.hi;
      workload::WorkloadGenerator test_gen(bench.db.get(), test_opts);
      auto test = test_gen.GenerateLabeled(200, &rng);
      auto raw_report = eval::EvaluateAccuracy(raw.get(), test);
      auto bounded_report = eval::EvaluateAccuracy(&bounded, test);
      table.AddRow({level.label,
                    TablePrinter::Num(raw_report.summary.geo_mean),
                    TablePrinter::Num(raw_report.summary.max),
                    TablePrinter::Num(bounded_report.summary.geo_mean),
                    TablePrinter::Num(bounded_report.summary.max)});
    }
    table.Print();
  }
  return 0;
}
