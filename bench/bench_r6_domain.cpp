// R6 — Accuracy vs domain size (distinct values per column).

#include "bench/bench_common.h"

int main() {
  using namespace lce;
  using namespace lce::bench;
  BenchRun bench_run("r6_domain");

  PrintHeader("R6", "q-error vs domain size (synthetic pair)",
              "small domains are easy for everyone; large domains sharpen "
              "the selectivity function and hurt flat-encoding NNs most, "
              "while equi-depth histograms adapt their bucket boundaries");

  const std::vector<uint64_t> domains = {10, 100, 1000, 10000};
  const std::vector<std::string> models = {"Histogram", "MultiHist", "FCN",
                                           "MSCN",      "LW-XGB",    "Naru",
                                           "DeepDB-SPN"};
  ce::NeuralOptions neural = BenchNeuralOptions();

  std::vector<std::vector<std::string>> rows(models.size());
  for (size_t m = 0; m < models.size(); ++m) rows[m].push_back(models[m]);

  for (uint64_t domain : domains) {
    storage::datagen::DatabaseGenSpec spec =
        storage::datagen::SyntheticPairSpec(30000, domain, 1.0, 0.5);
    BenchDb bench;
    bench.name = spec.name;
    bench.spec = spec;
    bench.db = storage::datagen::Generate(spec, 9);
    bench.executor = std::make_unique<exec::Executor>(bench.db.get());
    workload::WorkloadOptions wopts;
    wopts.max_joins = 0;
    wopts.min_predicates = 1;
    wopts.max_predicates = 2;
    workload::WorkloadGenerator gen(bench.db.get(), wopts);
    Rng rng(10);
    bench.train = gen.GenerateLabeled(1200, &rng);
    bench.test = gen.GenerateLabeled(200, &rng);

    for (size_t m = 0; m < models.size(); ++m) {
      EstimatorRun run = RunEstimator(models[m], bench, neural);
      rows[m].push_back(run.ok ? TablePrinter::Num(run.accuracy.summary.geo_mean)
                               : "-");
    }
  }

  TablePrinter table({"estimator", "dom=10", "dom=100", "dom=1000",
                      "dom=10000"});
  for (auto& row : rows) table.AddRow(row);
  table.Print();
  return 0;
}
