#include "src/ce/factory.h"

#include <gtest/gtest.h>

namespace lce {
namespace ce {
namespace {

TEST(FactoryTest, ConstructsEveryListedEstimator) {
  for (const std::string& name : AllEstimatorNames()) {
    auto est = MakeEstimator(name);
    ASSERT_NE(est, nullptr) << name;
    EXPECT_EQ(est->Name(), name);
  }
}

TEST(FactoryTest, QueryDrivenNamesAreASubset) {
  auto all = AllEstimatorNames();
  for (const std::string& name : QueryDrivenNeuralNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

TEST(FactoryTest, UnknownNameDies) {
  EXPECT_DEATH(MakeEstimator("NotAModel"), "unknown estimator");
}

TEST(FactoryTest, FifteenEstimatorsInTheZoo) {
  EXPECT_EQ(AllEstimatorNames().size(), 15u);
}

}  // namespace
}  // namespace ce
}  // namespace lce
