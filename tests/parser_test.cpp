#include "src/query/parser.h"

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace query {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.03), 1);
  }
  std::unique_ptr<storage::Database> db_;
};

TEST_F(ParserTest, ParsesSingleTableQuery) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer WHERE customer.c_nationkey = 7;", *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& q = result.value();
  EXPECT_EQ(q.tables, (std::vector<int>{0}));
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].lo, 7);
  EXPECT_EQ(q.predicates[0].hi, 7);
}

TEST_F(ParserTest, ParsesJoinAndBetween) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer, orders "
      "WHERE customer.c_custkey = orders.o_custkey "
      "AND orders.o_orderdate BETWEEN 100 AND 500;",
      *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Query& q = result.value();
  EXPECT_EQ(q.tables.size(), 2u);
  EXPECT_EQ(q.join_edges, (std::vector<int>{0}));
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].lo, 100);
  EXPECT_EQ(q.predicates[0].hi, 500);
}

TEST_F(ParserTest, JoinConditionOrderInsensitive) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer, orders "
      "WHERE orders.o_custkey = customer.c_custkey;",
      *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().join_edges, (std::vector<int>{0}));
}

TEST_F(ParserTest, OpenRangesCloseAgainstColumnStats) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM orders WHERE orders.o_orderdate >= 1000 "
      "AND orders.o_orderdate < 1200;",
      *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().predicates.size(), 1u);
  EXPECT_EQ(result.value().predicates[0].lo, 1000);
  EXPECT_EQ(result.value().predicates[0].hi, 1199);
}

TEST_F(ParserTest, KeywordsAreCaseInsensitive) {
  auto result = ParseSql(
      "select count(*) from customer where customer.c_acctbal between 5 and "
      "50;",
      *db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(ParserTest, RoundTripsToSqlOutput) {
  workload::WorkloadOptions opts;
  opts.max_joins = 3;
  workload::WorkloadGenerator gen(db_.get(), opts);
  exec::Executor ex(db_.get());
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    Query original = gen.GenerateQuery(&rng);
    std::string sql = ToSql(original, db_->schema());
    auto parsed = ParseSql(sql, *db_);
    ASSERT_TRUE(parsed.ok()) << sql << " -> " << parsed.status().ToString();
    // Semantics must match: identical true cardinalities.
    EXPECT_DOUBLE_EQ(ex.Cardinality(parsed.value()), ex.Cardinality(original))
        << sql;
  }
}

TEST_F(ParserTest, RejectsUnknownTable) {
  auto result = ParseSql("SELECT COUNT(*) FROM nope;", *db_);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown table"),
            std::string::npos);
}

TEST_F(ParserTest, RejectsUnknownColumn) {
  auto result =
      ParseSql("SELECT COUNT(*) FROM customer WHERE customer.zzz = 1;", *db_);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown column"),
            std::string::npos);
}

TEST_F(ParserTest, RejectsUndeclaredJoin) {
  // customer and part are not adjacent in the join graph.
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer, part "
      "WHERE customer.c_custkey = part.p_partkey;",
      *db_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ParserTest, RejectsDisconnectedFromClause) {
  auto result = ParseSql("SELECT COUNT(*) FROM customer, part;", *db_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ParserTest, RejectsContradictoryConstraints) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer WHERE customer.c_acctbal > 100 AND "
      "customer.c_acctbal < 50;",
      *db_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ParserTest, RejectsTrailingGarbage) {
  auto result =
      ParseSql("SELECT COUNT(*) FROM customer; GRANT ALL", *db_);
  EXPECT_FALSE(result.ok());
}

// --- Hostile-input hardening ------------------------------------------------
// The serving front end hands this parser raw request strings, so every
// malformed, truncated, oversized, or garbage input must come back as a
// Status — never a throw, crash, or hang.

TEST_F(ParserTest, RejectsOverflowIntegerLiterals) {
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal = 99999999999999999999;",
        "SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal = -99999999999999999999;",
        "SELECT COUNT(*) FROM customer WHERE customer.c_acctbal BETWEEN "
        "123456789012345678901234567890 AND 5;",
        "SELECT COUNT(*) FROM customer WHERE customer.c_acctbal BETWEEN "
        "1 AND 123456789012345678901234567890;",
        "SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal < 99999999999999999999;"}) {
    auto result = ParseSql(sql, *db_);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_NE(result.status().message().find("out of range"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(ParserTest, StrictBoundsSaturateAtInt64Edges) {
  // "< INT64_MIN" and "> INT64_MAX" must not overflow v-1 / v+1; the
  // saturated range collapses against the column stats and reports as
  // contradictory instead.
  for (const char* sql :
       {"SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal < -9223372036854775808;",
        "SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal > 9223372036854775807;"}) {
    auto result = ParseSql(sql, *db_);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_NE(result.status().message().find("contradictory"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(ParserTest, RejectsOversizedStatement) {
  std::string sql = "SELECT COUNT(*) FROM customer WHERE ";
  while (sql.size() <= 70 * 1024) {
    sql += "customer.c_acctbal >= 1 AND ";
  }
  sql += "customer.c_acctbal >= 1;";
  auto result = ParseSql(sql, *db_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("exceeds"), std::string::npos);
}

TEST_F(ParserTest, RejectsOversizedFromList) {
  std::string sql = "SELECT COUNT(*) FROM customer";
  for (int i = 0; i < 1025; ++i) sql += ",customer";
  sql += ";";
  auto result = ParseSql(sql, *db_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("FROM list exceeds"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(ParserTest, EveryTruncatedPrefixReturnsWithoutCrashing) {
  const std::string sql =
      "SELECT COUNT(*) FROM customer, orders "
      "WHERE customer.c_custkey = orders.o_custkey "
      "AND orders.o_orderdate BETWEEN 100 AND 500 "
      "AND customer.c_acctbal >= -17;";
  ASSERT_TRUE(ParseSql(sql, *db_).ok());
  for (size_t len = 0; len < sql.size(); ++len) {
    // The only requirement is a clean Status return on every prefix; most
    // prefixes are invalid, a few (dropped trailing terms) legally parse.
    auto result = ParseSql(sql.substr(0, len), *db_);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << "prefix " << len;
    }
  }
}

TEST_F(ParserTest, ByteSoupNeverCrashes) {
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t len = rng.Below(256);
    soup.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      soup.push_back(static_cast<char>(rng.Below(256)));  // NULs included
    }
    auto result = ParseSql(soup, *db_);
    EXPECT_FALSE(result.ok()) << "trial " << trial;
  }
}

TEST_F(ParserTest, MutatedValidStatementsNeverCrash) {
  const std::string base =
      "SELECT COUNT(*) FROM customer, orders "
      "WHERE customer.c_custkey = orders.o_custkey "
      "AND orders.o_orderdate BETWEEN 100 AND 500;";
  Rng rng(78);
  for (int trial = 0; trial < 300; ++trial) {
    std::string sql = base;
    // A handful of random byte flips per trial keeps most structure intact,
    // probing deeper parser states than pure noise reaches.
    int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      sql[rng.Below(static_cast<uint32_t>(sql.size()))] =
          static_cast<char>(rng.Below(256));
    }
    auto result = ParseSql(sql, *db_);  // ok or error; returning is the test
    (void)result;
  }
}

TEST_F(ParserTest, MergesMultipleConstraintsOnOneColumn) {
  auto result = ParseSql(
      "SELECT COUNT(*) FROM customer WHERE customer.c_acctbal >= 10 AND "
      "customer.c_acctbal <= 90 AND customer.c_acctbal >= 20;",
      *db_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().predicates.size(), 1u);
  EXPECT_EQ(result.value().predicates[0].lo, 20);
  EXPECT_EQ(result.value().predicates[0].hi, 90);
}

}  // namespace
}  // namespace query
}  // namespace lce
