#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/ce/traditional/histogram.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/util/rng.h"
#include "src/util/telemetry/drift.h"
#include "src/util/telemetry/telemetry.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

// Exact quantile with the same linear-interpolation convention the sketch
// documents: rank = q * (n - 1), interpolate between order statistics.
double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

TEST(WindowedQuantileSketchTest, MatchesExactQuantilesOverFullWindow) {
  Rng rng(11);
  std::vector<double> values;
  WindowedQuantileSketch sketch(200);
  for (int i = 0; i < 200; ++i) {
    double v = 1.0 + 50.0 * rng.Uniform();
    values.push_back(v);
    sketch.Observe(v);
  }
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), ExactQuantile(values, q)) << q;
  }
}

TEST(WindowedQuantileSketchTest, RollsOverToTrailingWindow) {
  Rng rng(12);
  std::vector<double> values;
  WindowedQuantileSketch sketch(50);
  for (int i = 0; i < 237; ++i) {
    double v = rng.Uniform() * 10.0;
    values.push_back(v);
    sketch.Observe(v);
  }
  EXPECT_TRUE(sketch.full());
  EXPECT_EQ(sketch.size(), 50u);
  EXPECT_EQ(sketch.count(), 237u);
  std::vector<double> tail(values.end() - 50, values.end());
  for (double q : {0.05, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), ExactQuantile(tail, q)) << q;
  }
}

TEST(WindowedQuantileSketchTest, WindowOneTracksLastObservation) {
  WindowedQuantileSketch sketch(1);
  EXPECT_EQ(sketch.window(), 1u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);  // empty
  sketch.Observe(3.0);
  EXPECT_TRUE(sketch.full());
  for (double v : {7.0, 2.0, 9.5}) {
    sketch.Observe(v);
    EXPECT_EQ(sketch.size(), 1u);
    // A one-element window: every quantile is the latest observation.
    EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), v);
    EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), v);
    EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), v);
  }
  EXPECT_EQ(sketch.count(), 4u);
}

TEST(WindowedQuantileSketchTest, ConstantStreamIsFlatAtEveryQuantile) {
  WindowedQuantileSketch sketch(16);
  for (int i = 0; i < 40; ++i) sketch.Observe(4.25);
  for (double q : {0.0, 0.01, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), 4.25) << q;
  }
}

TEST(WindowedQuantileSketchTest, ExtremeQuantilesClampToWindowMinMax) {
  WindowedQuantileSketch sketch(8);
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) sketch.Observe(v);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 9.0);
  // Out-of-range q clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(sketch.Quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.5), 9.0);
}

TEST(DriftMonitorTest, AlertHistorySurvivesDraining) {
  DriftMonitor::Options opts;
  opts.window = 4;
  opts.threshold_p95 = 10.0;
  DriftMonitor monitor("history-test", opts);
  for (double v : {1.0, 1.0, 1.0, 1.0}) monitor.Observe(v);
  for (double v : {50.0, 50.0}) monitor.Observe(v);
  ASSERT_EQ(monitor.DrainAlerts().size(), 1u);
  EXPECT_TRUE(monitor.DrainAlerts().empty());  // queue consumed
  // The non-draining history still reports the crossing for manifests.
  std::vector<DriftAlert> history = monitor.AlertHistory();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].monitor, "history-test");
  EXPECT_GT(history[0].p95, 10.0);
  ASSERT_EQ(monitor.AlertHistory().size(), 1u);  // reads don't consume
}

TEST(DriftMonitorTest, EdgeTriggeredAlertsWithDetectionLag) {
  DriftMonitor::Options opts;
  opts.window = 4;
  opts.threshold_p95 = 10.0;
  DriftMonitor monitor("test", opts);

  // A non-full window never alerts, however high the values.
  DriftMonitor unarmed("unarmed", opts);
  unarmed.Observe(100.0);
  unarmed.Observe(100.0);
  EXPECT_TRUE(unarmed.DrainAlerts().empty());

  // Arming phase: low values fill the window without crossing.
  for (double v : {1.0, 1.0, 1.0, 1.0}) monitor.Observe(v);
  EXPECT_TRUE(monitor.DrainAlerts().empty());
  uint64_t drift_start = monitor.observations();

  // Degradation: one alert at the upward crossing, none while staying above.
  for (double v : {50.0, 50.0, 50.0, 50.0}) monitor.Observe(v);
  std::vector<DriftAlert> alerts = monitor.DrainAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].monitor, "test");
  EXPECT_GT(alerts[0].p95, 10.0);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 10.0);
  // Detection lag: one 50 in a window of 4 already lifts the p95 past 10.
  EXPECT_EQ(alerts[0].observation - drift_start, 1u);

  // Recovery rearms the edge; the next crossing alerts again.
  for (double v : {1.0, 1.0, 1.0, 1.0}) monitor.Observe(v);
  EXPECT_TRUE(monitor.DrainAlerts().empty());
  for (double v : {80.0, 80.0, 80.0}) monitor.Observe(v);
  alerts = monitor.DrainAlerts();
  ASSERT_EQ(alerts.size(), 1u);
}

TEST(DriftMonitorTest, PublishesWindowGauges) {
  DriftMonitor::Options opts;
  opts.window = 8;
  DriftMonitor monitor("gauge-test", opts);
  for (int i = 1; i <= 8; ++i) monitor.Observe(static_cast<double>(i));
  double p95 =
      MetricsRegistry::Global().gauge("ce/gauge-test/qerr_p95_window").Value();
  double p50 =
      MetricsRegistry::Global().gauge("ce/gauge-test/qerr_p50_window").Value();
  EXPECT_DOUBLE_EQ(p95, monitor.WindowP95());
  EXPECT_DOUBLE_EQ(p50, monitor.WindowP50());
  EXPECT_GT(p95, p50);
}

TEST(DriftEnvTest, WindowOverrideControlsGlobalMonitors) {
  SetDriftWindowForTesting(16);
  EXPECT_TRUE(DriftEnabled());
  EXPECT_EQ(DriftWindow(), 16u);
  ResetDriftForTesting();
  DriftMonitor& mon = GlobalDriftMonitor("Histogram");
  EXPECT_EQ(mon.options().window, 16u);
  for (int i = 0; i < 20; ++i) mon.Observe(100.0);
  std::vector<DriftAlert> alerts = DrainAllDriftAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].monitor, "Histogram");

  SetDriftWindowForTesting(-1);
  ResetDriftForTesting();
}

TEST(DriftEnvTest, EvaluateAccuracyFeedsGlobalMonitorWithoutChangingQerrors) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(10000, 40, 0.0, 0.0), 21);
  ce::HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(22);
  auto test = gen.GenerateLabeled(40, &rng);

  SetDriftWindowForTesting(0);  // off
  ResetDriftForTesting();
  eval::AccuracyReport off = eval::EvaluateAccuracy(&est, test);

  SetDriftWindowForTesting(10);  // on
  ResetDriftForTesting();
  eval::AccuracyReport on = eval::EvaluateAccuracy(&est, test);
  DriftMonitor& mon = GlobalDriftMonitor("Histogram");
  EXPECT_EQ(mon.observations(), test.size());
  EXPECT_GT(mon.WindowP95(), 0.0);

  // Monitoring observes q-errors; it never changes them.
  ASSERT_EQ(off.qerrors.size(), on.qerrors.size());
  for (size_t i = 0; i < off.qerrors.size(); ++i) {
    EXPECT_EQ(off.qerrors[i], on.qerrors[i]) << i;
  }

  SetDriftWindowForTesting(-1);
  ResetDriftForTesting();
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
