// Finite-difference gradient verification for every trainable building block.
// Each check perturbs individual parameters and compares the numerical
// derivative of a scalar loss against the analytic gradient.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/nn/dense.h"
#include "src/nn/loss.h"
#include "src/nn/mlp.h"
#include "src/nn/recurrent.h"

namespace lce {
namespace nn {
namespace {

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // relative tolerance (float32 + ReLU kinks)

// Element access by flat logical index (storage is padded; see matrix.h).
float& ElemAt(Matrix& m, size_t i) {
  return m.At(static_cast<int>(i / m.cols()), static_cast<int>(i % m.cols()));
}

double SumElems(const Matrix& m) {
  double s = 0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) s += m.At(r, c);
  }
  return s;
}

// Checks d(loss)/d(param) for every parameter element against finite
// differences. `forward` must recompute the scalar loss from scratch;
// `backward` must populate gradients for a single evaluation.
void CheckParamGradients(const std::vector<Param*>& params,
                         const std::function<double()>& forward,
                         const std::function<void()>& backward) {
  for (Param* p : params) p->ZeroGrad();
  backward();
  int checked = 0;
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.size() && checked < 200; ++i, ++checked) {
      float original = ElemAt(p->value, i);
      ElemAt(p->value, i) = original + kEps;
      double up = forward();
      ElemAt(p->value, i) = original - kEps;
      double down = forward();
      ElemAt(p->value, i) = original;
      double numeric = (up - down) / (2.0 * kEps);
      double analytic = ElemAt(p->grad, i);
      // Floor keeps float32 finite-difference noise (~1e-4 on deep chains
      // like BPTT) from failing checks of near-zero gradients.
      double scale = std::max({std::abs(numeric), std::abs(analytic), 1e-2});
      EXPECT_NEAR(analytic, numeric, kTol * scale)
          << "param element " << i;
    }
  }
}

TEST(GradCheckTest, DenseLayer) {
  Rng rng(1);
  Dense dense(4, 3, &rng);
  Matrix x = Matrix::Randn(2, 4, 1.0f, &rng);
  // Loss = sum of outputs (gradient of ones).
  auto forward = [&]() {
    return SumElems(dense.Forward(x));
  };
  auto backward = [&]() {
    Matrix y = dense.Forward(x);
    Matrix ones(y.rows(), y.cols(), 1.0f);
    dense.Backward(ones);
  };
  CheckParamGradients(dense.Params(), forward, backward);
}

TEST(GradCheckTest, MlpWithTanhAndSigmoid) {
  Rng rng(2);
  // tanh avoids ReLU kinks that break finite differences.
  Mlp mlp({5, 7, 1}, Activation::kTanh, Activation::kSigmoid, &rng);
  Matrix x = Matrix::Randn(3, 5, 1.0f, &rng);
  std::vector<float> targets = {0.3f, 0.7f, 0.5f};
  auto forward = [&]() {
    Matrix y = mlp.Forward(x);
    return ComputeLoss(LossKind::kMse, y, targets).loss;
  };
  auto backward = [&]() {
    Matrix y = mlp.Forward(x);
    LossResult lr = ComputeLoss(LossKind::kMse, y, targets);
    mlp.Backward(lr.grad);
  };
  CheckParamGradients(mlp.Params(), forward, backward);
}

TEST(GradCheckTest, MlpInputGradient) {
  Rng rng(3);
  Mlp mlp({4, 6, 2}, Activation::kTanh, Activation::kIdentity, &rng);
  Matrix x = Matrix::Randn(1, 4, 1.0f, &rng);
  auto loss_of = [&](const Matrix& input) {
    Matrix y = mlp.Forward(input);
    double s = 0;
    for (float v : y.ToFlat()) s += v * v;
    return s;
  };
  Matrix y = mlp.Forward(x);
  Matrix dy(y.rows(), y.cols());
  for (size_t i = 0; i < y.size(); ++i) {
    ElemAt(dy, i) = 2.0f * ElemAt(y, i);
  }
  Matrix dx = mlp.Backward(dy);
  for (int c = 0; c < x.cols(); ++c) {
    Matrix xp = x, xm = x;
    xp.At(0, c) += kEps;
    xm.At(0, c) -= kEps;
    double numeric = (loss_of(xp) - loss_of(xm)) / (2.0 * kEps);
    double scale = std::max({std::abs(numeric),
                             std::abs(static_cast<double>(dx.At(0, c))),
                             1e-3});
    EXPECT_NEAR(dx.At(0, c), numeric, kTol * scale);
  }
}

TEST(GradCheckTest, RnnCellThroughTime) {
  Rng rng(4);
  RnnCell cell(3, 5, &rng);
  Matrix seq = Matrix::Randn(4, 3, 1.0f, &rng);
  auto forward = [&]() {
    return SumElems(cell.ForwardSequence(seq));
  };
  auto backward = [&]() {
    Matrix h = cell.ForwardSequence(seq);
    Matrix ones(1, h.cols(), 1.0f);
    cell.BackwardSequence(ones);
  };
  CheckParamGradients(cell.Params(), forward, backward);
}

TEST(GradCheckTest, LstmCellThroughTime) {
  Rng rng(5);
  LstmCell cell(3, 4, &rng);
  Matrix seq = Matrix::Randn(5, 3, 1.0f, &rng);
  auto forward = [&]() {
    return SumElems(cell.ForwardSequence(seq));
  };
  auto backward = [&]() {
    Matrix h = cell.ForwardSequence(seq);
    Matrix ones(1, h.cols(), 1.0f);
    cell.BackwardSequence(ones);
  };
  CheckParamGradients(cell.Params(), forward, backward);
}

TEST(GradCheckTest, LossGradients) {
  Matrix pred(3, 1);
  pred.At(0, 0) = 0.2f;
  pred.At(1, 0) = 0.9f;
  pred.At(2, 0) = 0.5f;
  std::vector<float> targets = {0.5f, 0.5f, 0.5f};
  for (LossKind kind : {LossKind::kMse, LossKind::kLogQ}) {
    LossResult lr = ComputeLoss(kind, pred, targets);
    for (int i = 0; i < 3; ++i) {
      Matrix up = pred, down = pred;
      up.At(i, 0) += kEps;
      down.At(i, 0) -= kEps;
      double numeric = (ComputeLoss(kind, up, targets).loss -
                        ComputeLoss(kind, down, targets).loss) /
                       (2.0 * kEps);
      if (kind == LossKind::kLogQ && i == 2) continue;  // at the kink
      EXPECT_NEAR(lr.grad.At(i, 0), numeric, 1e-3) << "loss kind " << (int)kind;
    }
  }
}

}  // namespace
}  // namespace nn
}  // namespace lce
