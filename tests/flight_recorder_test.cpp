#include "src/util/telemetry/flight_recorder.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/ce/traditional/histogram.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/telemetry/stage_timer.h"
#include "src/util/telemetry/telemetry.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

json::JsonValue ParseOrDie(const std::string& text) {
  json::JsonValue v;
  std::string error;
  EXPECT_TRUE(json::Parse(text, &v, &error)) << error << "\n" << text;
  return v;
}

json::JsonValue ReadJsonFile(const std::string& path) {
  std::string text;
  EXPECT_TRUE(fs::ReadFileToString(path, &text).ok()) << path;
  return ParseOrDie(text);
}

std::vector<json::JsonValue> ReadJsonl(const std::string& path) {
  std::string text;
  EXPECT_TRUE(fs::ReadFileToString(path, &text).ok()) << path;
  std::vector<json::JsonValue> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(ParseOrDie(text.substr(start, end - start)));
    start = end + 1;
  }
  return out;
}

ForensicRecord MakeRecord(double qerror, double latency_us = 10.0) {
  ForensicRecord rec;
  SetFrName(rec.estimator, sizeof(rec.estimator), "TestModel");
  SetFrName(rec.scope, sizeof(rec.scope), "test");
  rec.estimate = 100.0 * qerror;
  rec.truth = 100.0;
  rec.qerror = qerror;
  rec.latency_us = latency_us;
  rec.num_tables = 1;
  rec.tables_recorded = 1;
  rec.tables[0] = 0;
  rec.num_predicates = 2;
  rec.preds_recorded = 2;
  rec.preds[0] = {0, 1, 5, 50, 0.25};
  rec.preds[1] = {0, 2, -10, 10, -1.0};
  return rec;
}

// The recorder is a process-wide singleton; each test pins every knob,
// resets the ring, and points bundles at a private temp dir.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "lce_fr_" + info->name();
    std::filesystem::remove_all(root_);
    FlightRecorder& fr = FlightRecorder::Global();
    SetFlightRecorderEnabledForTesting(1);
    fr.SetBundleRootForTesting(root_.c_str());
    fr.SetQerrTriggerForTesting(0);
    fr.SetLatencyTriggerForTesting(0);
    fr.SetDriftTriggerForTesting(0);
    fr.SetMaxBundlesForTesting(8);
    fr.ResetForTesting();
  }
  void TearDown() override {
    FlightRecorder& fr = FlightRecorder::Global();
    fr.ResetForTesting();
    fr.SetBundleRootForTesting(nullptr);
    fr.SetQerrTriggerForTesting(-1);
    fr.SetLatencyTriggerForTesting(-1);
    fr.SetDriftTriggerForTesting(-1);
    fr.SetMaxBundlesForTesting(-1);
    SetFlightRecorderEnabledForTesting(-1);
    std::filesystem::remove_all(root_);
  }
  std::string root_;
};

TEST_F(FlightRecorderTest, AppendAssignsSeqTimestampAndHash) {
  FlightRecorder& fr = FlightRecorder::Global();
  uint64_t s1 = fr.Append(MakeRecord(2.0));
  uint64_t s2 = fr.Append(MakeRecord(3.0));
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(fr.RecordCount(), 2u);
  std::vector<ForensicRecord> ring = fr.SnapshotRing();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].seq, 1u);
  EXPECT_EQ(ring[1].seq, 2u);
  EXPECT_GT(ring[0].ts_ns, 0);
  EXPECT_NE(ring[0].query_hash, 0u);
  // Same IR → same hash, independent of estimate/qerror/latency.
  EXPECT_EQ(ring[0].query_hash, ring[1].query_hash);
  EXPECT_STREQ(ring[0].estimator, "TestModel");
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsAppends) {
  SetFlightRecorderEnabledForTesting(0);
  EXPECT_FALSE(FlightRecorderEnabled());
  EXPECT_EQ(FlightRecorder::Global().Append(MakeRecord(2.0)), 0u);
  EXPECT_EQ(FlightRecorder::Global().RecordCount(), 0u);
}

TEST_F(FlightRecorderTest, RingOverwritesOldestKeepsNewest) {
  FlightRecorder& fr = FlightRecorder::Global();
  const size_t slots = fr.RingSlots();
  const uint64_t total = slots + 37;
  for (uint64_t i = 0; i < total; ++i) {
    ForensicRecord rec = MakeRecord(1.0 + i);
    fr.Append(rec);
  }
  std::vector<ForensicRecord> ring = fr.SnapshotRing();
  ASSERT_EQ(ring.size(), slots);
  EXPECT_EQ(ring.front().seq, total - slots + 1);
  EXPECT_EQ(ring.back().seq, total);
}

TEST_F(FlightRecorderTest, SetFrNameSanitizesAndTruncates) {
  char buf[8];
  SetFrName(buf, sizeof(buf), "a\"b\\c\nd");
  EXPECT_STREQ(buf, "a_b_c_d");
  SetFrName(buf, sizeof(buf), "abcdefghijkl");
  EXPECT_STREQ(buf, "abcdefg");  // cap-1 chars + NUL
  SetFrName(buf, sizeof(buf), "");
  EXPECT_STREQ(buf, "");
}

TEST_F(FlightRecorderTest, FormatForensicRecordEmitsValidJson) {
  ForensicRecord rec = MakeRecord(12.5, 42.5);
  rec.seq = 7;
  rec.ts_ns = 1500000;
  rec.query_hash = rec.IrHash();
  rec.num_joins = 1;
  rec.num_fallbacks = 2;
  SetFrName(rec.fallback_site, sizeof(rec.fallback_site), "hist/oob");
  SetFrName(rec.stages[0].name, sizeof(rec.stages[0].name), "encode");
  rec.stages[0].micros = 3.25;
  SetFrName(rec.stages[1].name, sizeof(rec.stages[1].name), "forward");
  rec.stages[1].micros = 0.0;  // zero-duration stages must serialize cleanly
  rec.stages_recorded = 2;

  std::string line;
  AppendRecordJson(rec, &line);
  json::JsonValue v = ParseOrDie(line);
  EXPECT_DOUBLE_EQ(v.Find("seq")->number, 7);
  EXPECT_DOUBLE_EQ(v.Find("ts_ms")->number, 1.5);
  EXPECT_EQ(v.Find("kind")->string, "estimate");
  EXPECT_EQ(v.Find("estimator")->string, "TestModel");
  EXPECT_DOUBLE_EQ(v.Find("qerror")->number, 12.5);
  EXPECT_DOUBLE_EQ(v.Find("latency_us")->number, 42.5);
  ASSERT_EQ(v.Find("preds")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.Find("preds")->array[0].Find("sel")->number, 0.25);
  // Unattributed selectivity (< 0 sentinel) serializes as null.
  EXPECT_EQ(v.Find("preds")->array[1].Find("sel")->kind,
            json::JsonValue::Kind::kNull);
  ASSERT_EQ(v.Find("stages")->array.size(), 2u);
  EXPECT_EQ(v.Find("stages")->array[0].Find("s")->string, "encode");
  EXPECT_DOUBLE_EQ(v.Find("stages")->array[1].Find("us")->number, 0.0);
  EXPECT_DOUBLE_EQ(v.Find("fallbacks")->number, 2);
  EXPECT_EQ(v.Find("fallback_site")->string, "hist/oob");

  // Truth < 0 ("unknown") serializes as null; kind 'x' reads "exec".
  rec.truth = -1;
  rec.qerror = -1;
  rec.kind = 'x';
  line.clear();
  AppendRecordJson(rec, &line);
  v = ParseOrDie(line);
  EXPECT_EQ(v.Find("truth")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("kind")->string, "exec");
}

TEST_F(FlightRecorderTest, IrHashSeparatesQueriesNotTimings) {
  ForensicRecord a = MakeRecord(2.0, 10.0);
  ForensicRecord b = MakeRecord(900.0, 99999.0);
  SetFrName(b.estimator, sizeof(b.estimator), "OtherModel");
  EXPECT_EQ(a.IrHash(), b.IrHash());
  ForensicRecord c = MakeRecord(2.0);
  c.preds[1].hi = 11;
  EXPECT_NE(a.IrHash(), c.IrHash());
}

TEST_F(FlightRecorderTest, QerrTriggerWritesValidatedBundle) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetQerrTriggerForTesting(100.0);
  // Context records are never trigger-eligible, however bad.
  fr.Append(MakeRecord(1e6), /*trigger_eligible=*/false);
  EXPECT_TRUE(fr.Bundles().empty());
  fr.Append(MakeRecord(2.0));  // eligible but under threshold
  EXPECT_TRUE(fr.Bundles().empty());

  uint64_t seq = fr.Append(MakeRecord(500.0));
  std::vector<BundleInfo> bundles = fr.Bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].trigger, "qerr");
  EXPECT_EQ(bundles[0].seq, seq);

  json::JsonValue meta = ReadJsonFile(bundles[0].path + "/meta.json");
  EXPECT_GE(meta.Find("version")->number, 1);
  EXPECT_EQ(meta.Find("trigger")->string, "qerr");
  EXPECT_DOUBLE_EQ(meta.Find("offending_seq")->number,
                   static_cast<double>(seq));
  const json::JsonValue* off = meta.Find("offending");
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->Find("estimator")->string, "TestModel");
  EXPECT_DOUBLE_EQ(off->Find("qerror")->number, 500.0);
  EXPECT_DOUBLE_EQ(meta.Find("trigger_counts")->Find("qerr")->number, 1);

  std::vector<json::JsonValue> ring = ReadJsonl(bundles[0].path + "/ring.jsonl");
  ASSERT_EQ(ring.size(), 3u);  // context + good + offending
  EXPECT_DOUBLE_EQ(ring.back().Find("qerror")->number, 500.0);

  json::JsonValue metrics = ReadJsonFile(bundles[0].path + "/metrics.json");
  EXPECT_NE(metrics.Find("counters"), nullptr);
}

TEST_F(FlightRecorderTest, SameKindCooldownThrottlesBundles) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetQerrTriggerForTesting(100.0);
  fr.Append(MakeRecord(500.0));
  fr.Append(MakeRecord(600.0));  // within cooldown: suppressed
  EXPECT_EQ(fr.Bundles().size(), 1u);
  for (uint64_t i = 0; i < FlightRecorder::kSameKindCooldownRecords; ++i) {
    fr.Append(MakeRecord(2.0));
  }
  fr.Append(MakeRecord(700.0));  // past cooldown: second bundle
  EXPECT_EQ(fr.Bundles().size(), 2u);
}

TEST_F(FlightRecorderTest, MaxBundlesCapSuppresses) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetMaxBundlesForTesting(1);
  fr.Append(MakeRecord(2.0));
  ASSERT_TRUE(fr.TriggerManualBundle("first").ok());
  // Suppression is not an error: the run goes on, the counter records it.
  ASSERT_TRUE(fr.TriggerManualBundle("second").ok());
  EXPECT_EQ(fr.Bundles().size(), 1u);
}

TEST_F(FlightRecorderTest, LatencyTriggerArmsAfterWindowFills) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetLatencyTriggerForTesting(2.0);
  // A huge latency before the window fills must not trigger.
  fr.Append(MakeRecord(2.0, 100000.0));
  EXPECT_TRUE(fr.Bundles().empty());
  for (size_t i = 0; i < FlightRecorder::kLatencyWindow; ++i) {
    fr.Append(MakeRecord(2.0, 100.0));
  }
  fr.Append(MakeRecord(2.0, 100000.0));
  std::vector<BundleInfo> bundles = fr.Bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].trigger, "latency");
}

TEST_F(FlightRecorderTest, DriftTriggerIsOptIn) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Append(MakeRecord(2.0));
  fr.TriggerDriftAlert("TestModel", 512.0, 64.0);
  EXPECT_TRUE(fr.Bundles().empty());
  fr.SetDriftTriggerForTesting(1);
  fr.TriggerDriftAlert("TestModel", 512.0, 64.0);
  std::vector<BundleInfo> bundles = fr.Bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].trigger, "drift");
  json::JsonValue meta = ReadJsonFile(bundles[0].path + "/meta.json");
  // No single offending record for a drift alert.
  EXPECT_EQ(meta.Find("offending")->kind, json::JsonValue::Kind::kNull);
  EXPECT_NE(meta.Find("detail")->string.find("TestModel"), std::string::npos);
}

TEST_F(FlightRecorderTest, ManifestJsonSectionRoundTrips) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Append(MakeRecord(2.0));
  ASSERT_TRUE(fr.TriggerManualBundle("manifest test").ok());
  std::string text;
  {
    JsonWriter w(&text);
    fr.WriteJson(&w);
  }
  json::JsonValue v = ParseOrDie(text);
  EXPECT_TRUE(v.Find("enabled")->boolean);
  EXPECT_DOUBLE_EQ(v.Find("records")->number, 1);
  EXPECT_DOUBLE_EQ(v.Find("triggers")->Find("manual")->number, 1);
  ASSERT_EQ(v.Find("bundles")->array.size(), 1u);
  EXPECT_EQ(v.Find("bundles")->array[0].Find("trigger")->string, "manual");
}

TEST_F(FlightRecorderTest, ResetForTestingClearsEverything) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Append(MakeRecord(2.0));
  ASSERT_TRUE(fr.TriggerManualBundle("before reset").ok());
  fr.ResetForTesting();
  EXPECT_EQ(fr.RecordCount(), 0u);
  EXPECT_TRUE(fr.SnapshotRing().empty());
  EXPECT_TRUE(fr.Bundles().empty());
}

TEST_F(FlightRecorderTest, ThreadStageSamplesFeedRecords) {
  internal::ResetThreadStageSamples();
  internal::NoteThreadStageSample("encode", 3.5);
  internal::NoteThreadStageSample("forward", 0.0);
  ForensicRecord rec = MakeRecord(2.0);
  FillStagesFromThread(&rec);
  ASSERT_EQ(rec.stages_recorded, 2);
  EXPECT_STREQ(rec.stages[0].name, "encode");
  EXPECT_DOUBLE_EQ(rec.stages[0].micros, 3.5);
  EXPECT_STREQ(rec.stages[1].name, "forward");
  // Non-consuming: a second record sees the same samples.
  ForensicRecord rec2 = MakeRecord(2.0);
  FillStagesFromThread(&rec2);
  EXPECT_EQ(rec2.stages_recorded, 2);
  // Capped at kFrMaxStages.
  for (int i = 0; i < kFrMaxStages + 3; ++i) {
    internal::NoteThreadStageSample("extra", 1.0);
  }
  FillStagesFromThread(&rec);
  EXPECT_EQ(rec.stages_recorded, kFrMaxStages);
  internal::ResetThreadStageSamples();
}

// End to end through the evaluation harness: a planted mis-estimate crosses
// the q-error trigger during EvaluateAccuracy and the bundle's offending
// record carries per-predicate selectivities and stage micros (the ISSUE's
// acceptance shape, minus the bench binary around it).
TEST_F(FlightRecorderTest, EvaluateAccuracyEnrichesOffendingQuery) {
  FlightRecorder& fr = FlightRecorder::Global();
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(8000, 30, 0.0, 0.0), 11);
  ce::HistogramEstimator est;
  ASSERT_TRUE(est.Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(12);
  auto test = gen.GenerateLabeled(40, &rng);
  // Plant an impossible truth on the biggest query: the (correct) histogram
  // estimate then reads as a huge q-error against the trigger.
  size_t worst = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (test[i].cardinality > test[worst].cardinality) worst = i;
  }
  ASSERT_GT(test[worst].cardinality, 500);
  test[worst].cardinality = 1;

  fr.SetQerrTriggerForTesting(100.0);
  eval::AccuracyReport report = eval::EvaluateAccuracy(&est, test);
  ASSERT_EQ(report.qerrors.size(), test.size());

  std::vector<BundleInfo> bundles = fr.Bundles();
  ASSERT_GE(bundles.size(), 1u);
  json::JsonValue meta = ReadJsonFile(bundles[0].path + "/meta.json");
  const json::JsonValue* off = meta.Find("offending");
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->Find("estimator")->string, "Histogram");
  EXPECT_GE(off->Find("qerror")->number, 100.0);
  // Enrichment re-ran the estimate with diagnostics: every recorded
  // predicate carries an attributed selectivity and stages are present.
  ASSERT_GE(off->Find("preds")->array.size(), 1u);
  for (const json::JsonValue& p : off->Find("preds")->array) {
    EXPECT_EQ(p.Find("sel")->kind, json::JsonValue::Kind::kNumber);
  }
  EXPECT_GE(off->Find("stages")->array.size(), 1u);
}

// The fatal-signal path: the handler must write a parseable bundle and then
// re-raise, so the process still dies by the original signal.
TEST_F(FlightRecorderTest, SignalHandlerWritesBundleThenDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlightRecorder& fr = FlightRecorder::Global();
  std::filesystem::create_directories(root_);
  EXPECT_EXIT(
      {
        fr.SetBundleRootForTesting(root_.c_str());
        fr.InstallSignalHandlers();
        for (int i = 0; i < 5; ++i) {
          ForensicRecord rec = MakeRecord(2.0 + i);
          fr.Append(rec);
        }
        raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");

  // The child shares the filesystem: find its <unix-ts>-signal bundle.
  std::string bundle;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 7 && name.substr(name.size() - 7) == "-signal") {
      bundle = entry.path().string();
    }
  }
  ASSERT_FALSE(bundle.empty()) << "no signal bundle under " << root_;
  json::JsonValue meta = ReadJsonFile(bundle + "/meta.json");
  EXPECT_EQ(meta.Find("trigger")->string, "signal");
  EXPECT_DOUBLE_EQ(meta.Find("signal")->number, SIGTERM);
  EXPECT_DOUBLE_EQ(meta.Find("records_total")->number, 5);
  std::vector<json::JsonValue> ring = ReadJsonl(bundle + "/ring.jsonl");
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring[0].Find("estimator")->string, "TestModel");
  EXPECT_DOUBLE_EQ(ring.back().Find("qerror")->number, 6.0);
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
