#include "src/gbdt/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace lce {
namespace gbdt {
namespace {

TEST(FeatureBinnerTest, TransformStaysInRange) {
  std::vector<std::vector<float>> rows;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    rows.push_back({static_cast<float>(rng.Uniform(-5, 5)),
                    static_cast<float>(rng.Uniform(0, 100))});
  }
  FeatureBinner binner;
  binner.Fit(rows, 16);
  EXPECT_EQ(binner.num_features(), 2);
  for (const auto& row : rows) {
    auto bins = binner.Transform(row);
    for (uint8_t b : bins) EXPECT_LT(b, 16);
  }
  // Out-of-range values clamp to the extreme bins.
  auto low = binner.Transform({-1000.0f, -1000.0f});
  auto high = binner.Transform({1000.0f, 1000.0f});
  EXPECT_EQ(low[0], 0);
  EXPECT_EQ(high[0], 15);
}

TEST(FeatureBinnerTest, QuantileBinsBalanceMass) {
  std::vector<std::vector<float>> rows;
  Rng rng(2);
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({static_cast<float>(rng.Gaussian())});
  }
  FeatureBinner binner;
  binner.Fit(rows, 8);
  std::vector<int> counts(8, 0);
  for (const auto& row : rows) ++counts[binner.Transform(row)[0]];
  for (int c : counts) EXPECT_NEAR(c, 500, 150);
}

TEST(RegressionTreeTest, FitsStepFunctionExactly) {
  // Target depends only on whether feature crosses the midpoint.
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (int i = 0; i < 400; ++i) {
    float x = static_cast<float>(i) / 400.0f;
    rows.push_back({x});
    targets.push_back(x < 0.5f ? -1.0f : 2.0f);
  }
  FeatureBinner binner;
  binner.Fit(rows, 32);
  std::vector<std::vector<uint8_t>> binned;
  for (const auto& row : rows) binned.push_back(binner.Transform(row));
  RegressionTree tree;
  tree.Fit(binned, targets, RegressionTree::Options{}, 32);
  for (size_t i = 0; i < rows.size(); ++i) {
    // The single bin straddling the step boundary is allowed to be impure;
    // everywhere else the tree must recover the step exactly.
    if (std::abs(rows[i][0] - 0.5f) < 0.04f) continue;
    EXPECT_NEAR(tree.Predict(binned[i]), targets[i], 0.05) << rows[i][0];
  }
}

TEST(RegressionTreeTest, ConstantTargetYieldsSingleLeaf) {
  std::vector<std::vector<float>> rows(50, {1.0f});
  std::vector<float> targets(50, 3.5f);
  FeatureBinner binner;
  binner.Fit(rows, 8);
  std::vector<std::vector<uint8_t>> binned;
  for (const auto& row : rows) binned.push_back(binner.Transform(row));
  RegressionTree tree;
  tree.Fit(binned, targets, RegressionTree::Options{}, 8);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_FLOAT_EQ(tree.Predict(binned[0]), 3.5f);
}

double TrainMse(const GradientBoosting& model,
                const std::vector<std::vector<float>>& rows,
                const std::vector<float>& targets) {
  double mse = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    double diff = model.Predict(rows[i]) - targets[i];
    mse += diff * diff;
  }
  return mse / static_cast<double>(rows.size());
}

TEST(GradientBoostingTest, BoostingReducesTrainingError) {
  Rng rng(3);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (int i = 0; i < 1500; ++i) {
    float a = static_cast<float>(rng.Uniform());
    float b = static_cast<float>(rng.Uniform());
    rows.push_back({a, b});
    targets.push_back(std::sin(6 * a) + b * b);
  }
  GradientBoosting::Options few;
  few.num_trees = 4;
  GradientBoosting small(few);
  small.Fit(rows, targets);

  GradientBoosting::Options many;
  many.num_trees = 80;
  GradientBoosting large(many);
  large.Fit(rows, targets);

  EXPECT_LT(TrainMse(large, rows, targets), TrainMse(small, rows, targets));
  EXPECT_LT(TrainMse(large, rows, targets), 0.01);
}

TEST(GradientBoostingTest, IncrementalBoostAdaptsToNewData) {
  Rng rng(4);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (int i = 0; i < 800; ++i) {
    float a = static_cast<float>(rng.Uniform());
    rows.push_back({a});
    targets.push_back(a);
  }
  GradientBoosting model;
  model.Fit(rows, targets);
  size_t trees_before = model.num_trees();

  // New regime: target flipped.
  std::vector<float> flipped;
  for (float t : targets) flipped.push_back(1.0f - t);
  double before = TrainMse(model, rows, flipped);
  model.Boost(rows, flipped, 40);
  double after = TrainMse(model, rows, flipped);
  EXPECT_EQ(model.num_trees(), trees_before + 40);
  EXPECT_LT(after, before * 0.5);
}

TEST(GradientBoostingTest, SizeGrowsWithTrees) {
  Rng rng(5);
  std::vector<std::vector<float>> rows;
  std::vector<float> targets;
  for (int i = 0; i < 300; ++i) {
    float a = static_cast<float>(rng.Uniform());
    rows.push_back({a});
    targets.push_back(a * 2);
  }
  GradientBoosting model;
  model.Fit(rows, targets);
  uint64_t size_before = model.SizeBytes();
  model.Boost(rows, targets, 10);
  EXPECT_GT(model.SizeBytes(), size_before);
}

}  // namespace
}  // namespace gbdt
}  // namespace lce
