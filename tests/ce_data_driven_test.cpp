#include <gtest/gtest.h>

#include "src/ce/data_driven/bayesnet.h"
#include "src/ce/data_driven/binning.h"
#include "src/ce/data_driven/naru.h"
#include "src/ce/data_driven/spn.h"
#include "src/ce/factory.h"
#include "src/eval/metrics.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace ce {
namespace {

TEST(ColumnBinnerTest, SmallDomainGetsOneBinPerValue) {
  storage::ColumnStats stats;
  stats.min = 0;
  stats.max = 4;
  ColumnBinner binner;
  binner.Fit(stats, 64);
  EXPECT_EQ(binner.num_bins(), 5);
  for (storage::Value v = 0; v <= 4; ++v) {
    EXPECT_EQ(binner.BinOf(v), static_cast<int>(v));
  }
}

TEST(ColumnBinnerTest, OverlapFractionsSumToRangeCoverage) {
  storage::ColumnStats stats;
  stats.min = 0;
  stats.max = 99;
  ColumnBinner binner;
  binner.Fit(stats, 10);  // bins of width 10
  auto full = binner.Overlap(0, 99);
  double mass = 0;
  for (auto [bin, frac] : full) mass += frac;
  EXPECT_NEAR(mass, 10.0, 1e-9);  // every bin fully covered
  auto half_bin = binner.Overlap(0, 4);
  ASSERT_EQ(half_bin.size(), 1u);
  EXPECT_EQ(half_bin[0].first, 0);
  EXPECT_NEAR(half_bin[0].second, 0.5, 1e-9);
  EXPECT_TRUE(binner.Overlap(200, 300).empty());
}

struct DataDrivenCase {
  std::string name;
};

class DataDrivenModelTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const storage::Database& Db() {
    static auto* db =
        storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.15), 41)
            .release();
    return *db;
  }
};

TEST_P(DataDrivenModelTest, SingleTableAccuracyBeatsIndependenceOnCorrelated) {
  // Correlated synthetic pair: data-driven models should beat the
  // independence-assuming histogram on conjunctive predicates.
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(20000, 32, 0.4, 0.9), 42);
  auto model = MakeEstimator(GetParam(), NeuralOptions{}, 43);
  auto hist = MakeEstimator("Histogram", NeuralOptions{}, 43);
  ASSERT_TRUE(model->Build(*db, {}).ok());
  ASSERT_TRUE(hist->Build(*db, {}).ok());

  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  opts.min_predicates = 2;
  opts.max_predicates = 2;
  opts.equality_prob = 0.5;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(44);
  auto test = gen.GenerateLabeled(100, &rng);
  double model_g = eval::EvaluateAccuracy(model.get(), test).summary.geo_mean;
  double hist_g = eval::EvaluateAccuracy(hist.get(), test).summary.geo_mean;
  EXPECT_LT(model_g, hist_g) << GetParam();
}

TEST_P(DataDrivenModelTest, EstimatesAreSaneOnRealisticTable) {
  auto est = MakeEstimator(GetParam(), NeuralOptions{}, 45);
  ASSERT_TRUE(est->Build(Db(), {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 0;
  workload::WorkloadGenerator gen(&Db(), opts);
  Rng rng(46);
  auto test = gen.GenerateLabeled(80, &rng);
  double full_rows = static_cast<double>(Db().table(0).num_rows());
  for (const auto& lq : test) {
    double e = est->EstimateCardinality(lq.q);
    EXPECT_GE(e, 1.0);
    EXPECT_LE(e, full_rows * 1.01) << GetParam();
  }
  auto report = eval::EvaluateAccuracy(est.get(), test);
  EXPECT_LT(report.summary.p50, 10.0) << GetParam();
}

TEST_P(DataDrivenModelTest, UpdateWithDataTracksAppends) {
  storage::datagen::DatabaseGenSpec spec =
      storage::datagen::SyntheticPairSpec(10000, 16, 0.0, 0.0);
  auto db = storage::datagen::Generate(spec, 47);
  auto est = MakeEstimator(GetParam(), NeuralOptions{}, 48);
  ASSERT_TRUE(est->Build(*db, {}).ok());
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 0}, 0, 7}};  // half the domain
  double before = est->EstimateCardinality(q);
  storage::datagen::AppendShifted(db.get(), spec, 1.0, 0.0, 0.0, 49);
  ASSERT_TRUE(est->UpdateWithData(*db).ok());
  double after = est->EstimateCardinality(q);
  EXPECT_GT(after, before * 1.5) << GetParam();  // data doubled
  EXPECT_GT(est->SizeBytes(), 0u);
}

TEST_P(DataDrivenModelTest, JoinQueriesProduceFiniteEstimates) {
  auto db =
      storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.05), 50);
  auto est = MakeEstimator(GetParam(), NeuralOptions{}, 51);
  ASSERT_TRUE(est->Build(*db, {}).ok());
  workload::WorkloadOptions opts;
  opts.max_joins = 3;
  workload::WorkloadGenerator gen(db.get(), opts);
  Rng rng(52);
  auto test = gen.GenerateLabeled(40, &rng);
  for (const auto& lq : test) {
    double e = est->EstimateCardinality(lq.q);
    EXPECT_GE(e, 1.0);
    EXPECT_TRUE(std::isfinite(e)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, DataDrivenModelTest,
                         ::testing::Values("Naru", "DeepDB-SPN", "BayesNet"));

TEST(SpnModelTest, StructureContainsSumAndLeafNodes) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(8000, 32, 0.5, 0.5), 53);
  SpnTableModel model;
  Rng rng(54);
  model.Fit(db->table(0), SpnTableModel::Options{}, &rng);
  EXPECT_GT(model.num_nodes(), 1u);
  // Unconstrained query has probability ~1.
  std::vector<std::optional<std::pair<storage::Value, storage::Value>>> open(2);
  EXPECT_NEAR(model.Selectivity(open), 1.0, 1e-6);
}

TEST(SpnModelTest, SelectivityIsMonotoneInRangeWidth) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(8000, 64, 0.8, 0.3), 55);
  SpnTableModel model;
  Rng rng(56);
  model.Fit(db->table(0), SpnTableModel::Options{}, &rng);
  std::vector<std::optional<std::pair<storage::Value, storage::Value>>>
      narrow(2), wide(2);
  narrow[0] = {{10, 20}};
  wide[0] = {{5, 40}};
  EXPECT_LE(model.Selectivity(narrow), model.Selectivity(wide) + 1e-9);
}

TEST(BayesNetModelTest, UnconstrainedQueryHasUnitProbability) {
  auto db = storage::datagen::Generate(storage::datagen::DmvLikeSpec(0.05), 57);
  BayesNetTableModel model;
  Rng rng(58);
  model.Fit(db->table(0), BayesNetTableModel::Options{}, &rng);
  std::vector<std::optional<std::pair<storage::Value, storage::Value>>> open(
      db->table(0).num_columns());
  EXPECT_NEAR(model.Selectivity(open), 1.0, 1e-6);
}

TEST(NaruModelTest, SelectivityBoundedAndReproducible) {
  auto db = storage::datagen::Generate(
      storage::datagen::SyntheticPairSpec(10000, 32, 1.0, 0.5), 59);
  NaruTableModel model;
  Rng rng(60);
  model.Fit(db->table(0), NaruTableModel::Options{}, &rng);
  std::vector<std::optional<std::pair<storage::Value, storage::Value>>> r(2);
  r[0] = {{0, 10}};
  r[1] = {{0, 5}};
  Rng eval_rng1(61), eval_rng2(61);
  double s1 = model.Selectivity(r, &eval_rng1);
  double s2 = model.Selectivity(r, &eval_rng2);
  EXPECT_DOUBLE_EQ(s1, s2);
  EXPECT_GE(s1, 0.0);
  EXPECT_LE(s1, 1.0);
}

}  // namespace
}  // namespace ce
}  // namespace lce
