// Training-run observability: per-family training-log events (LCE_TRAIN_LOG),
// model cards, and the bit-identity guarantee with the gates unset.

#include "src/util/telemetry/train_log.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/storage/datagen.h"
#include "src/util/fs.h"
#include "src/util/json_writer.h"
#include "src/util/telemetry/model_card.h"
#include "src/util/telemetry/run_manifest.h"
#include "src/workload/generator.h"

namespace lce {
namespace telemetry {
namespace {

std::vector<json::JsonValue> ReadJsonl(const std::string& path) {
  std::string text;
  EXPECT_TRUE(fs::ReadFileToString(path, &text).ok()) << path;
  std::vector<json::JsonValue> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) {
      json::JsonValue v;
      std::string error;
      EXPECT_TRUE(json::Parse(text.substr(start, end - start), &v, &error))
          << error;
      out.push_back(std::move(v));
    }
    start = end + 1;
  }
  return out;
}

// Every event shares the envelope; family-specific fields are checked by the
// individual tests.
void ExpectCommonSchema(const json::JsonValue& ev) {
  ASSERT_NE(ev.Find("model"), nullptr);
  EXPECT_FALSE(ev.Find("model")->string.empty());
  ASSERT_NE(ev.Find("family"), nullptr);
  ASSERT_NE(ev.Find("event"), nullptr);
  ASSERT_NE(ev.Find("index"), nullptr);
  ASSERT_NE(ev.Find("loss"), nullptr);
  ASSERT_NE(ev.Find("wall_s"), nullptr);
  EXPECT_GE(ev.Find("wall_s")->number, 0.0);
}

class TrainLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "lce_train_log_test.jsonl";
    SetTrainLogPathForTesting(path_.c_str());
    TrainLog::Global().ResetForTesting();
    ModelCardRegistry::Global().ResetForTesting();
  }
  void TearDown() override {
    SetTrainLogPathForTesting(nullptr);
    TrainLog::Global().ResetForTesting();
    ModelCardRegistry::Global().ResetForTesting();
  }

  // A small labeled workload shared by the query-driven families.
  void MakeWorkload() {
    db_ = storage::datagen::Generate(
        storage::datagen::SyntheticPairSpec(6000, 30, 0.3, 0.2), 11);
    workload::WorkloadOptions opts;
    opts.max_joins = 0;
    workload::WorkloadGenerator gen(db_.get(), opts);
    Rng rng(5);
    train_ = gen.GenerateLabeled(60, &rng);
    test_ = gen.GenerateLabeled(15, &rng);
  }

  std::vector<json::JsonValue> FlushAndRead() {
    EXPECT_TRUE(TrainLog::Global().Flush().ok());
    return ReadJsonl(path_);
  }

  std::string path_;
  std::unique_ptr<storage::Database> db_;
  std::vector<query::LabeledQuery> train_;
  std::vector<query::LabeledQuery> test_;
};

TEST_F(TrainLogTest, DisabledSinkDropsRecords) {
  SetTrainLogPathForTesting("");
  EXPECT_FALSE(TrainLogEnabled());
  TrainingEvent ev;
  ev.family = "nn";
  ev.event = "epoch";
  RecordTrainingEvent(std::move(ev));
  EXPECT_EQ(TrainLog::Global().events_recorded(), 0u);
}

TEST_F(TrainLogTest, EventSerializationUsesNullForUnset) {
  TrainingEvent ev;
  ev.model = "M";
  ev.family = "nn";
  ev.event = "epoch";
  ev.index = 3;
  ev.loss = 0.5;
  // grad_norm / lr / examples / wall stay unset.
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(ev.ToJsonLine(), &v, &error)) << error;
  EXPECT_DOUBLE_EQ(v.Find("loss")->number, 0.5);
  EXPECT_EQ(v.Find("grad_norm")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("lr")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("examples")->kind, json::JsonValue::Kind::kNull);
  EXPECT_EQ(v.Find("rows_per_sec")->kind, json::JsonValue::Kind::kNull);
}

TEST_F(TrainLogTest, NeuralEpochEventsAndModelCard) {
  MakeWorkload();
  ce::NeuralOptions n;
  n.hidden_dim = 8;
  n.epochs = 4;
  auto est = ce::MakeEstimator("FCN", n, 3);
  ASSERT_TRUE(est->Build(*db_, train_).ok());
  std::vector<json::JsonValue> lines = FlushAndRead();
  ASSERT_EQ(lines.size(), 4u);
  for (size_t i = 0; i < lines.size(); ++i) {
    ExpectCommonSchema(lines[i]);
    EXPECT_EQ(lines[i].Find("family")->string, "nn");
    EXPECT_EQ(lines[i].Find("event")->string, "epoch");
    EXPECT_EQ(lines[i].Find("model")->string, "FCN");
    EXPECT_DOUBLE_EQ(lines[i].Find("index")->number,
                     static_cast<double>(i));
    EXPECT_TRUE(std::isfinite(lines[i].Find("loss")->number));
    EXPECT_GE(lines[i].Find("grad_norm")->number, 0.0);
    EXPECT_GT(lines[i].Find("lr")->number, 0.0);
    EXPECT_DOUBLE_EQ(lines[i].Find("examples")->number,
                     static_cast<double>(train_.size()));
  }

  ModelCard card;
  est->DescribeModel(&card);
  EXPECT_EQ(card.model, "FCN");
  EXPECT_EQ(card.family, "nn");
  EXPECT_GT(card.parameter_count, 0);
  EXPECT_GT(card.footprint_bytes, 0);
  EXPECT_EQ(card.train_examples, static_cast<int64_t>(train_.size()));
  EXPECT_EQ(card.epochs, 4);
  EXPECT_GE(card.final_train_loss, 0.0);
}

TEST_F(TrainLogTest, GbdtRoundEventsAndModelCard) {
  MakeWorkload();
  auto est = ce::MakeEstimator("LW-XGB", {}, 3);
  ASSERT_TRUE(est->Build(*db_, train_).ok());
  std::vector<json::JsonValue> lines = FlushAndRead();
  ASSERT_GT(lines.size(), 0u);
  for (const json::JsonValue& ev : lines) {
    ExpectCommonSchema(ev);
    EXPECT_EQ(ev.Find("family")->string, "gbdt");
    EXPECT_EQ(ev.Find("event")->string, "round");
    EXPECT_GE(ev.Find("loss")->number, 0.0);
    const json::JsonValue* extra = ev.Find("extra");
    ASSERT_NE(extra, nullptr);
    EXPECT_GT(extra->Find("tree_nodes")->number, 0.0);
  }

  ModelCard card;
  est->DescribeModel(&card);
  EXPECT_EQ(card.family, "gbdt");
  EXPECT_GT(card.parameter_count, 0);
  EXPECT_EQ(card.epochs, static_cast<int64_t>(lines.size()));
}

TEST_F(TrainLogTest, SpnPhaseEventsAndModelCard) {
  MakeWorkload();
  auto est = ce::MakeEstimator("DeepDB-SPN", {}, 3);
  ASSERT_TRUE(est->Build(*db_, {}).ok());
  std::vector<json::JsonValue> lines = FlushAndRead();
  ASSERT_GT(lines.size(), 0u);
  std::set<std::string> phases;
  for (const json::JsonValue& ev : lines) {
    ExpectCommonSchema(ev);
    EXPECT_EQ(ev.Find("family")->string, "spn");
    EXPECT_EQ(ev.Find("event")->string, "phase");
    phases.insert(ev.Find("phase")->string);
  }
  EXPECT_TRUE(phases.count("sample_bin"));
  EXPECT_TRUE(phases.count("structure"));

  ModelCard card;
  est->DescribeModel(&card);
  EXPECT_EQ(card.family, "spn");
  EXPECT_GT(card.parameter_count, 0);
  EXPECT_GT(card.train_examples, 0);
}

TEST_F(TrainLogTest, BayesNetPhaseEventsAndModelCard) {
  MakeWorkload();
  auto est = ce::MakeEstimator("BayesNet", {}, 3);
  ASSERT_TRUE(est->Build(*db_, {}).ok());
  std::vector<json::JsonValue> lines = FlushAndRead();
  ASSERT_GT(lines.size(), 0u);
  std::set<std::string> phases;
  for (const json::JsonValue& ev : lines) {
    ExpectCommonSchema(ev);
    EXPECT_EQ(ev.Find("family")->string, "bayesnet");
    EXPECT_EQ(ev.Find("event")->string, "phase");
    phases.insert(ev.Find("phase")->string);
  }
  EXPECT_TRUE(phases.count("sample_bin"));
  EXPECT_TRUE(phases.count("structure"));
  EXPECT_TRUE(phases.count("cpt"));

  ModelCard card;
  est->DescribeModel(&card);
  EXPECT_EQ(card.family, "bayesnet");
  EXPECT_GT(card.parameter_count, 0);
}

TEST_F(TrainLogTest, NaruEpochEventsAndModelCard) {
  MakeWorkload();
  auto est = ce::MakeEstimator("Naru", {}, 3);
  ASSERT_TRUE(est->Build(*db_, {}).ok());
  std::vector<json::JsonValue> lines = FlushAndRead();
  ASSERT_GT(lines.size(), 0u);
  for (const json::JsonValue& ev : lines) {
    ExpectCommonSchema(ev);
    EXPECT_EQ(ev.Find("family")->string, "naru");
    EXPECT_EQ(ev.Find("event")->string, "epoch");
    EXPECT_TRUE(std::isfinite(ev.Find("loss")->number));
    EXPECT_GT(ev.Find("lr")->number, 0.0);
    const json::JsonValue* extra = ev.Find("extra");
    ASSERT_NE(extra, nullptr);
    EXPECT_GE(extra->Find("column")->number, 0.0);
  }

  ModelCard card;
  est->DescribeModel(&card);
  EXPECT_EQ(card.family, "naru");
  EXPECT_GT(card.parameter_count, 0);
  EXPECT_GT(card.epochs, 0);
}

TEST_F(TrainLogTest, ModelCardJsonRoundTrips) {
  ModelCard card;
  card.model = "FCN";
  card.family = "nn";
  card.dataset = "imdb-like";
  card.parameter_count = 1234;
  card.footprint_bytes = 4936;
  card.train_examples = 100;
  card.epochs = 20;
  card.final_train_loss = 0.25;
  card.extra.emplace_back("qerr_p95", 4.5);
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  card.WriteJson(w);
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &v, &error)) << error;
  EXPECT_EQ(v.Find("model")->string, "FCN");
  EXPECT_DOUBLE_EQ(v.Find("parameter_count")->number, 1234);
  // Unset final_val_loss serializes as null.
  EXPECT_EQ(v.Find("final_val_loss")->kind, json::JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(v.Find("extra")->Find("qerr_p95")->number, 4.5);
}

TEST_F(TrainLogTest, ManifestCarriesModelCardsAndMemory) {
  MakeWorkload();
  ce::NeuralOptions n;
  n.hidden_dim = 8;
  n.epochs = 2;
  auto est = ce::MakeEstimator("FCN", n, 3);
  ASSERT_TRUE(est->Build(*db_, train_).ok());
  ModelCard card;
  est->DescribeModel(&card);
  card.dataset = "pair";
  ModelCardRegistry::Global().Add(std::move(card));

  std::string manifest = RunManifestJson("train_log_test", 1.0);
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(manifest, &v, &error)) << error;
  const json::JsonValue* cards = v.Find("model_cards");
  ASSERT_NE(cards, nullptr);
  ASSERT_EQ(cards->array.size(), 1u);
  EXPECT_EQ(cards->array[0].Find("model")->string, "FCN");
  const json::JsonValue* mem = v.Find("memory");
  ASSERT_NE(mem, nullptr);
  ASSERT_NE(mem->Find("subsystems"), nullptr);
  // The registry credited the card's footprint to the "model" subsystem.
  const json::JsonValue* model_bytes =
      mem->Find("subsystems")->Find("model");
  ASSERT_NE(model_bytes, nullptr);
  EXPECT_GT(model_bytes->number, 0.0);
  // Training-log path and latency cap are recorded alongside.
  ASSERT_NE(v.Find("train_log"), nullptr);
  EXPECT_EQ(v.Find("train_log")->string, path_);
  EXPECT_GT(v.Find("latency_sample_cap")->number, 0.0);
  ASSERT_NE(v.Find("drift_alerts"), nullptr);
}

TEST_F(TrainLogTest, EstimatesBitIdenticalWithTrainLogOnAndOff) {
  // The instrumented loops compute extra diagnostics (grad norms, round
  // losses) only when the sink is enabled, and never feed them back into
  // training: a twin built with the gate unset must estimate identically.
  MakeWorkload();
  ce::NeuralOptions n;
  n.hidden_dim = 8;
  n.epochs = 3;

  SetTrainLogPathForTesting("");  // gate off: plain build
  auto plain = ce::MakeEstimator("FCN", n, 9);
  ASSERT_TRUE(plain->Build(*db_, train_).ok());
  std::vector<double> expected;
  for (const auto& lq : test_) {
    expected.push_back(plain->EstimateCardinality(lq.q));
  }

  SetTrainLogPathForTesting(path_.c_str());  // gate on: instrumented build
  auto logged = ce::MakeEstimator("FCN", n, 9);
  ASSERT_TRUE(logged->Build(*db_, train_).ok());
  EXPECT_GT(TrainLog::Global().events_recorded(), 0u);
  for (size_t i = 0; i < test_.size(); ++i) {
    EXPECT_EQ(logged->EstimateCardinality(test_[i].q), expected[i]) << i;
  }

  // Same twin check for a sampling-free data-driven family.
  SetTrainLogPathForTesting("");
  auto plain_naru = ce::MakeEstimator("Naru", {}, 9);
  ASSERT_TRUE(plain_naru->Build(*db_, {}).ok());
  SetTrainLogPathForTesting(path_.c_str());
  auto logged_naru = ce::MakeEstimator("Naru", {}, 9);
  ASSERT_TRUE(logged_naru->Build(*db_, {}).ok());
  for (size_t i = 0; i < test_.size(); ++i) {
    // Naru's estimator consumes rng per estimate; compare fresh twins in
    // lockstep on the same query sequence.
    EXPECT_EQ(logged_naru->EstimateCardinality(test_[i].q),
              plain_naru->EstimateCardinality(test_[i].q))
        << i;
  }
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
