// Memory accounting: peak RSS sampling and the per-subsystem byte tracker
// surfaced in run manifests.

#include "src/util/telemetry/memory.h"

#include <string>

#include <gtest/gtest.h>

#include "src/util/json_writer.h"
#include "src/util/telemetry/telemetry.h"

namespace lce {
namespace telemetry {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryTracker::Global().ResetForTesting();
    SetMetricsEnabledForTesting(1);
    MetricsRegistry::Global().ResetForTesting();
  }
  void TearDown() override {
    MemoryTracker::Global().ResetForTesting();
    SetMetricsEnabledForTesting(-1);
    MetricsRegistry::Global().ResetForTesting();
  }
};

TEST_F(MemoryTest, PeakRssIsPositiveOnLinux) {
#if defined(__linux__)
  // The test binary has certainly touched a few MiB by now.
  EXPECT_GT(PeakRssBytes(), 1024u * 1024u);
#else
  EXPECT_EQ(PeakRssBytes(), 0u);
#endif
}

TEST_F(MemoryTest, AddSetAndSnapshot) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Add("model", 100);
  t.Add("model", 50);
  t.Set("index", 4096);
  t.Add("cache", 32);
  t.Add("cache", -32);
  EXPECT_EQ(t.Bytes("model"), 150);
  EXPECT_EQ(t.Bytes("index"), 4096);
  EXPECT_EQ(t.Bytes("cache"), 0);
  EXPECT_EQ(t.Bytes("never_touched"), 0);
  t.Set("index", 8192);  // idempotent re-measurement replaces
  EXPECT_EQ(t.Bytes("index"), 8192);
  auto snapshot = t.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);  // sorted by name
  EXPECT_EQ(snapshot[0].first, "cache");
  EXPECT_EQ(snapshot[1].first, "index");
  EXPECT_EQ(snapshot[2].first, "model");
}

TEST_F(MemoryTest, SamplePublishesGauges) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Set("model", 12345);
  uint64_t peak = t.SamplePeakRss();
#if defined(__linux__)
  EXPECT_GT(peak, 0u);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().gauge("mem.peak_rss_bytes").Value(),
      static_cast<double>(peak));
#endif
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().gauge("mem.model_bytes").Value(),
                   12345.0);
}

TEST_F(MemoryTest, WriteJsonParses) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Set("model", 100);
  t.Set("cache", 200);
  std::string out;
  JsonWriter w(&out, JsonWriter::Style::kCompact);
  t.WriteJson(w);
  json::JsonValue v;
  std::string error;
  ASSERT_TRUE(json::Parse(out, &v, &error)) << error;
  const json::JsonValue* subs = v.Find("subsystems");
  ASSERT_NE(subs, nullptr);
  EXPECT_DOUBLE_EQ(subs->Find("model")->number, 100.0);
  EXPECT_DOUBLE_EQ(subs->Find("cache")->number, 200.0);
  ASSERT_NE(v.Find("peak_rss_bytes"), nullptr);
#if defined(__linux__)
  EXPECT_GT(v.Find("peak_rss_bytes")->number, 0.0);
#endif
}

}  // namespace
}  // namespace telemetry
}  // namespace lce
