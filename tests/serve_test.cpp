// Estimation service: registry versioning and atomic swap, micro-batcher
// flush semantics (bypass, coalescing, max-batch cap, adaptive single-client
// fast path), and the SQL front end end-to-end — including that serving a
// query through the batched path answers bit-identically to calling the
// estimator directly.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/ce/factory.h"
#include "src/serve/batcher.h"
#include "src/serve/model_registry.h"
#include "src/serve/service.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace serve {
namespace {

/// Minimal built estimator answering a constant; lets registry/service tests
/// observe which model build served a request.
class ConstEstimator : public ce::Estimator {
 public:
  explicit ConstEstimator(double value) : value_(value) {}
  std::string Name() const override { return "Const"; }
  Status Build(const storage::Database&,
               const std::vector<query::LabeledQuery>&) override {
    return Status::OK();
  }
  double EstimateCardinality(const query::Query&) override { return value_; }
  uint64_t SizeBytes() const override { return sizeof(double); }

 private:
  double value_;
};

query::Query OneTableQuery() {
  query::Query q;
  q.tables = {0};
  return q;
}

TEST(ModelRegistryTest, RegisterBumpsVersionAndSwapsAtomically) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("fcn"), nullptr);

  EXPECT_EQ(registry.Register("fcn", std::make_shared<ConstEstimator>(1.0)),
            1u);
  std::shared_ptr<const ModelEntry> v1 = registry.Get("fcn");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);

  EXPECT_EQ(registry.Register("fcn", std::make_shared<ConstEstimator>(2.0)),
            2u);
  // The held entry is untouched by the swap; new readers see the new build.
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->estimator->EstimateCardinality(OneTableQuery()), 1.0);
  std::shared_ptr<const ModelEntry> v2 = registry.Get("fcn");
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(v2->estimator->EstimateCardinality(OneTableQuery()), 2.0);
}

TEST(ModelRegistryTest, ListsEveryModelSorted) {
  ModelRegistry registry;
  registry.Register("mscn", std::make_shared<ConstEstimator>(1.0));
  registry.Register("fcn", std::make_shared<ConstEstimator>(1.0));
  registry.Register("fcn", std::make_shared<ConstEstimator>(2.0));
  auto models = registry.List();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0], (std::pair<std::string, uint64_t>{"fcn", 2}));
  EXPECT_EQ(models[1], (std::pair<std::string, uint64_t>{"mscn", 1}));
}

TEST(MicroBatcherTest, DisabledExecutesEveryRequestAlone) {
  BatcherOptions opts;
  opts.enabled = false;
  std::vector<size_t> batch_sizes;
  MicroBatcher batcher(opts, [&](const std::vector<query::Query>& queries,
                                 std::vector<double>* estimates,
                                 uint64_t* version) {
    batch_sizes.push_back(queries.size());
    estimates->assign(queries.size(), 5.0);
    *version = 7;
  });
  query::Query q = OneTableQuery();
  for (int i = 0; i < 3; ++i) {
    MicroBatcher::Ticket t = batcher.Submit(q);
    EXPECT_EQ(t.estimate, 5.0);
    EXPECT_EQ(t.model_version, 7u);
    EXPECT_EQ(t.batch_size, 1);
  }
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{1, 1, 1}));
}

TEST(MicroBatcherTest, LoneClientDoesNotWaitOutTheDeadline) {
  BatcherOptions opts;
  opts.deadline_us = 5'000'000;  // 5s: a deadline wait would hang the test
  MicroBatcher batcher(opts, [&](const std::vector<query::Query>& queries,
                                 std::vector<double>* estimates,
                                 uint64_t* version) {
    estimates->assign(queries.size(), 1.0);
    *version = 1;
  });
  query::Query q = OneTableQuery();
  // The adaptive target sees one in-flight request already queued and
  // flushes immediately; finishing at all (within the test timeout) proves
  // the fast path.
  MicroBatcher::Ticket t = batcher.Submit(q);
  EXPECT_EQ(t.batch_size, 1);
}

TEST(MicroBatcherTest, CoalescesConcurrentClientsUpToMaxBatch) {
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.deadline_us = 200'000;
  std::atomic<int> flushes{0};
  std::atomic<int> served{0};
  std::atomic<int> oversized{0};
  MicroBatcher batcher(opts, [&](const std::vector<query::Query>& queries,
                                 std::vector<double>* estimates,
                                 uint64_t* version) {
    flushes.fetch_add(1);
    served.fetch_add(static_cast<int>(queries.size()));
    if (queries.size() > 4) oversized.fetch_add(1);
    // Hold the flush briefly so the remaining clients pile up and the next
    // leader finds a full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    estimates->assign(queries.size(), 3.0);
    *version = 1;
  });
  query::Query q = OneTableQuery();
  constexpr int kClients = 9;
  std::vector<std::thread> clients;
  std::vector<MicroBatcher::Ticket> tickets(kClients);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { tickets[i] = batcher.Submit(q); });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(served.load(), kClients);
  EXPECT_EQ(oversized.load(), 0) << "a flush exceeded max_batch";
  // 9 clients at max_batch 4 need at least 3 flushes; fewer than 9 proves
  // coalescing actually happened.
  EXPECT_GE(flushes.load(), 3);
  EXPECT_LT(flushes.load(), kClients);
  for (const MicroBatcher::Ticket& t : tickets) {
    EXPECT_EQ(t.estimate, 3.0);
    EXPECT_GE(t.batch_size, 1);
    EXPECT_LE(t.batch_size, 4);
  }
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.03), 1);
  }
  std::unique_ptr<storage::Database> db_;
};

TEST_F(ServiceTest, AnswersSqlWithModelAndVersion) {
  EstimationService service(db_.get());
  EXPECT_EQ(service.RegisterModel("fcn",
                                  std::make_shared<ConstEstimator>(42.0)),
            1u);
  auto resp = service.EstimateSql(
      "fcn", "SELECT COUNT(*) FROM customer WHERE customer.c_nationkey = 7;");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().estimate, 42.0);
  EXPECT_EQ(resp.value().model, "fcn");
  EXPECT_EQ(resp.value().model_version, 1u);
  EXPECT_GE(resp.value().batch_size, 1);
}

TEST_F(ServiceTest, SwappedModelServesNextRequestAtNewVersion) {
  EstimationService service(db_.get());
  service.RegisterModel("fcn", std::make_shared<ConstEstimator>(1.0));
  service.RegisterModel("fcn", std::make_shared<ConstEstimator>(2.0));
  auto resp = service.EstimateSql("fcn", "SELECT COUNT(*) FROM customer;");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().estimate, 2.0);
  EXPECT_EQ(resp.value().model_version, 2u);
  auto models = service.ListModels();
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models[0].second, 2u);
}

TEST_F(ServiceTest, MalformedSqlReturnsStatusNotCrash) {
  EstimationService service(db_.get());
  service.RegisterModel("fcn", std::make_shared<ConstEstimator>(1.0));
  for (const char* sql :
       {"SELECT COUNT(*) FROM",                     // truncated
        "DROP TABLE customer;",                      // wrong statement
        "SELECT COUNT(*) FROM nope;",                // unknown table
        "SELECT COUNT(*) FROM customer WHERE "
        "customer.c_acctbal = 99999999999999999999;",  // overflow literal
        ""}) {
    auto resp = service.EstimateSql("fcn", sql);
    EXPECT_FALSE(resp.ok()) << sql;
    EXPECT_EQ(resp.status().code(), StatusCode::kInvalidArgument) << sql;
  }
}

TEST_F(ServiceTest, UnknownModelReturnsNotFound) {
  EstimationService service(db_.get());
  auto resp = service.EstimateSql("ghost", "SELECT COUNT(*) FROM customer;");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, ExplainCarriesDiagnosticsAndMatchesEstimate) {
  EstimationService service(db_.get());
  service.RegisterModel("fcn", std::make_shared<ConstEstimator>(42.0));
  auto resp = service.ExplainSql(
      "fcn", "SELECT COUNT(*) FROM customer WHERE customer.c_nationkey = 7;");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().response.estimate, 42.0);
  EXPECT_EQ(resp.value().record.estimate, 42.0);
  EXPECT_EQ(resp.value().record.estimator, "Const");
  EXPECT_EQ(resp.value().record.num_tables, 1);
  EXPECT_EQ(resp.value().record.num_predicates, 1);
}

// End-to-end bit-identity: many clients hammering the batched service get
// exactly the answers a twin estimator gives query by query.
TEST_F(ServiceTest, BatchedServingIsBitIdenticalToDirectCalls) {
  workload::WorkloadOptions wopts;
  wopts.max_joins = 2;
  workload::WorkloadGenerator gen(db_.get(), wopts);
  Rng rng(5);
  std::vector<query::LabeledQuery> train = gen.GenerateLabeled(200, &rng);
  std::vector<query::Query> test;
  for (const auto& lq : gen.GenerateLabeled(32, &rng)) test.push_back(lq.q);

  ce::NeuralOptions fast;
  fast.epochs = 4;
  fast.hidden_dim = 16;
  auto served = ce::MakeEstimator("FCN", fast, 11);
  auto reference = ce::MakeEstimator("FCN", fast, 11);
  ASSERT_TRUE(served->Build(*db_, train).ok());
  ASSERT_TRUE(reference->Build(*db_, train).ok());

  BatcherOptions opts;  // batching on, defaults
  EstimationService service(db_.get(), opts);
  service.RegisterModel("fcn", std::move(served));

  std::vector<double> expected;
  for (const query::Query& q : test) {
    expected.push_back(reference->EstimateCardinality(q));
  }

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::vector<double>> got(kClients,
                                       std::vector<double>(test.size()));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < test.size(); ++i) {
        auto resp = service.Estimate("fcn", test[i]);
        ASSERT_TRUE(resp.ok());
        got[c][i] = resp.value().estimate;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (size_t i = 0; i < test.size(); ++i) {
      EXPECT_EQ(got[c][i], expected[i]) << "client " << c << " query " << i;
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace lce
