#include "src/nn/matrix.h"

#include <gtest/gtest.h>

namespace lce {
namespace nn {
namespace {

Matrix Fill(int rows, int cols, std::vector<float> values) {
  return Matrix::FromFlat(rows, cols, values);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a = Fill(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Fill(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, TransposedProductsAgreeWithExplicitTranspose) {
  Rng rng(1);
  Matrix a = Matrix::Randn(4, 3, 1.0f, &rng);
  Matrix b = Matrix::Randn(4, 5, 1.0f, &rng);
  // A^T * B via MatMulTransA must equal manual transpose.
  Matrix at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix expected = MatMul(at, b);
  Matrix got = MatMulTransA(a, b);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(got.At(i, j), expected.At(i, j), 1e-5);
    }
  }
}

TEST(MatrixTest, MatMulTransBMatchesDefinition) {
  Rng rng(2);
  Matrix a = Matrix::Randn(2, 3, 1.0f, &rng);
  Matrix b = Matrix::Randn(4, 3, 1.0f, &rng);
  Matrix got = MatMulTransB(a, b);  // 2x4
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      float dot = 0;
      for (int k = 0; k < 3; ++k) dot += a.At(i, k) * b.At(j, k);
      EXPECT_NEAR(got.At(i, j), dot, 1e-5);
    }
  }
}

TEST(MatrixTest, AddBiasRowBroadcasts) {
  Matrix x = Fill(2, 2, {1, 2, 3, 4});
  Matrix b = Fill(1, 2, {10, 20});
  AddBiasRow(&x, b);
  EXPECT_FLOAT_EQ(x.At(0, 0), 11);
  EXPECT_FLOAT_EQ(x.At(1, 1), 24);
}

TEST(MatrixTest, ColMeanAveragesRows) {
  Matrix x = Fill(2, 3, {1, 2, 3, 3, 4, 5});
  Matrix m = ColMean(x);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3);
  EXPECT_FLOAT_EQ(m.At(0, 2), 4);
}

TEST(MatrixTest, ConcatColsLaysOutParts) {
  Matrix a = Fill(2, 1, {1, 2});
  Matrix b = Fill(2, 2, {3, 4, 5, 6});
  Matrix c = ConcatCols({&a, &b});
  ASSERT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.At(0, 0), 1);
  EXPECT_FLOAT_EQ(c.At(0, 2), 4);
  EXPECT_FLOAT_EQ(c.At(1, 1), 5);
}

TEST(MatrixTest, StackRejectsRaggedInput) {
  EXPECT_DEATH(Matrix::Stack({{1.0f, 2.0f}, {3.0f}}), "ragged");
}

TEST(MatrixTest, TryStackReportsRaggedAndEmptyInput) {
  Result<Matrix> ragged = Matrix::TryStack({{1.0f, 2.0f}, {3.0f}});
  ASSERT_FALSE(ragged.ok());
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ragged.status().message().find("ragged"), std::string::npos);

  Result<Matrix> empty = Matrix::TryStack({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, TryStackBuildsMatrixFromValidRows) {
  Result<Matrix> ok = Matrix::TryStack({{1.0f, 2.0f}, {3.0f, 4.0f}});
  ASSERT_TRUE(ok.ok());
  const Matrix& m = ok.value();
  ASSERT_EQ(m.rows(), 2);
  ASSERT_EQ(m.cols(), 2);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
}

TEST(MatrixTest, TryMatMulVariantsRejectShapeMismatch) {
  Matrix a = Fill(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix bad(2, 2);

  Result<Matrix> mm = TryMatMul(a, bad);  // needs b.rows == 3
  ASSERT_FALSE(mm.ok());
  EXPECT_EQ(mm.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mm.status().message().find("MatMul"), std::string::npos);
  EXPECT_NE(mm.status().message().find("2x3"), std::string::npos);

  Matrix three_rows(3, 2);
  Result<Matrix> ta = TryMatMulTransA(a, three_rows);  // needs b.rows == 2
  ASSERT_FALSE(ta.ok());
  EXPECT_EQ(ta.status().code(), StatusCode::kInvalidArgument);

  Result<Matrix> tb = TryMatMulTransB(a, bad);  // needs b.cols == 3
  ASSERT_FALSE(tb.ok());
  EXPECT_EQ(tb.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, TryMatMulMatchesAbortingVariantOnValidShapes) {
  Matrix a = Fill(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Fill(3, 2, {7, 8, 9, 10, 11, 12});
  Result<Matrix> c = TryMatMul(a, b);
  ASSERT_TRUE(c.ok());
  Matrix expected = MatMul(a, b);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_FLOAT_EQ(c.value().At(i, j), expected.At(i, j));
    }
  }
}

TEST(MatrixTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix bad(2, 2);
  EXPECT_DEATH(MatMul(a, bad), "shape mismatch");
}

TEST(MatrixTest, ScalarRequiresOneByOne) {
  Matrix m = Fill(1, 1, {42});
  EXPECT_FLOAT_EQ(m.Scalar(), 42);
  Matrix wide = Fill(1, 2, {1, 2});
  EXPECT_DEATH(wide.Scalar(), "");
}

}  // namespace
}  // namespace nn
}  // namespace lce
