#include "src/exec/plan_executor.h"

#include <gtest/gtest.h>

#include "src/exec/executor.h"
#include "src/storage/datagen.h"
#include "src/workload/generator.h"

namespace lce {
namespace exec {
namespace {

class PlanExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = storage::datagen::Generate(storage::datagen::TpchLikeSpec(0.04), 1);
    analytic_ = std::make_unique<Executor>(db_.get());
    planner_ = std::make_unique<opt::Planner>(db_.get(), opt::CostModel{});
    physical_ = std::make_unique<PlanExecutor>(db_.get());
  }

  opt::Plan PlanFor(const query::Query& q) {
    opt::CardFn cards = [&](const std::vector<int>& tables) {
      return analytic_->SubsetCardinality(q, tables);
    };
    return planner_->BestPlan(q, cards);
  }

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<Executor> analytic_;
  std::unique_ptr<opt::Planner> planner_;
  std::unique_ptr<PlanExecutor> physical_;
};

TEST_F(PlanExecutorTest, SingleTableScanCountsFilteredRows) {
  query::Query q;
  q.tables = {0};
  q.predicates = {{{0, 1}, 0, 10}};
  auto stats = physical_->Execute(q, PlanFor(q));
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats.value().result, analytic_->Cardinality(q));
  EXPECT_EQ(stats.value().tuples_scanned, db_->table(0).num_rows());
  EXPECT_EQ(stats.value().tuples_built, 0u);
}

TEST_F(PlanExecutorTest, ExecutedJoinCountMatchesAnalyticOracle) {
  workload::WorkloadOptions opts;
  opts.max_joins = 3;
  workload::WorkloadGenerator gen(db_.get(), opts);
  Rng rng(2);
  int executed = 0;
  for (const auto& lq : gen.GenerateLabeled(40, &rng)) {
    auto stats = physical_->Execute(lq.q, PlanFor(lq.q));
    ASSERT_TRUE(stats.ok()) << query::ToSql(lq.q, db_->schema());
    EXPECT_DOUBLE_EQ(stats.value().result, lq.cardinality)
        << query::ToSql(lq.q, db_->schema());
    ++executed;
  }
  EXPECT_EQ(executed, 40);
}

TEST_F(PlanExecutorTest, ExecutedCountIsPlanShapeInvariant) {
  // The answer must not depend on which (valid) plan executes the query.
  query::Query q;
  q.tables = {0, 3, 4};  // customer ⋈ orders ⋈ lineitem
  q.join_edges = {0, 1};
  q.predicates = {{{0, 1}, 0, 10}};
  opt::CardFn cards = [&](const std::vector<int>& tables) {
    return analytic_->SubsetCardinality(q, tables);
  };
  opt::Plan dp = planner_->BestPlan(q, cards);
  opt::Plan greedy = planner_->GreedyPlan(q, cards);
  auto a = physical_->Execute(q, dp);
  auto b = physical_->Execute(q, greedy);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().result, b.value().result);
}

TEST_F(PlanExecutorTest, WorkStatisticsAreCoherent) {
  query::Query q;
  q.tables = {0, 3};
  q.join_edges = {0};
  auto stats = physical_->Execute(q, PlanFor(q));
  ASSERT_TRUE(stats.ok());
  const ExecStats& s = stats.value();
  EXPECT_EQ(s.tuples_scanned,
            db_->table(0).num_rows() + db_->table(3).num_rows());
  // Build side is the smaller filtered input.
  EXPECT_LE(s.tuples_built, std::max(db_->table(0).num_rows(),
                                     db_->table(3).num_rows()));
  EXPECT_GE(s.tuples_output, static_cast<uint64_t>(s.result));
  EXPECT_GE(s.peak_intermediate, static_cast<uint64_t>(s.result));
  EXPECT_EQ(s.TotalWork(),
            s.tuples_scanned + s.tuples_built + s.tuples_probed +
                s.tuples_output);
}

TEST_F(PlanExecutorTest, BudgetGuardAbortsExplodingPlans) {
  query::Query q;
  q.tables = {0, 3, 4};
  q.join_edges = {0, 1};
  PlanExecutor::Options opts;
  opts.max_intermediate_tuples = 10;  // absurdly small on purpose
  PlanExecutor tiny(db_.get(), opts);
  auto stats = tiny.Execute(q, PlanFor(q));
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("budget"), std::string::npos);
}

}  // namespace
}  // namespace exec
}  // namespace lce
